// Replication (v2) wire messages and the raft frame handler.
//
// The replicated log is the cluster's security backbone: a forged or
// malformed inter-CAS message must never crash a node, corrupt its
// persisted state, or decode into something its encoder disagrees with.
// Properties:
//  1. Exception confinement: every v2 deserializer — LogEntry,
//     TokenCommand, the vote/append/snapshot request+response pairs,
//     RaftReply, PersistentState — rejects garbage with a typed
//     ParseError/Error, never anything else.
//  2. Re-serialization stability: a successful decode re-encodes to one
//     canonical form (decode(encode(x)) round-trips byte-identically).
//  3. Constructed-valid round trips: messages built from fuzz-chosen
//     field values survive encode/decode with every field intact.
//  4. Frame-handler totality: RaftCore::handle_frame answers ANY byte
//     string — hostile framing, wrong version, unknown command, truncated
//     payload — with a well-formed v2 reply frame, and never throws.
//  5. Sealed-store totality: SealedLogStore::load maps an arbitrary blob
//     to a typed UnsealStatus, never a throw, never a partial state.
#include "harnesses.h"

#include <string>
#include <utility>

#include "cas/persistence.h"
#include "cas/protocol.h"
#include "cas/replication.h"
#include "common/error.h"
#include "common/serial.h"
#include "crypto/drbg.h"
#include "fuzz_util.h"
#include "net/sim_network.h"

namespace sinclave::fuzz {
namespace {

using cas::AppendRequestMsg;
using cas::AppendResponseMsg;
using cas::LogEntry;
using cas::PersistentState;
using cas::RaftReply;
using cas::SnapshotRequestMsg;
using cas::SnapshotResponseMsg;
using cas::TokenCommand;
using cas::VoteRequestMsg;
using cas::VoteResponseMsg;

/// Run `decode` on `input`; only typed errors may escape.
template <typename Decode>
bool typed_only(const Bytes& input, const Decode& decode) {
  try {
    decode(ByteView(input));
    return true;
  } catch (const Error&) {
    return false;  // ParseError derives from Error: the allowed rejection
  }
}

/// Decode, re-encode, decode again; the two encodings must agree.
template <typename T>
void stable(const Bytes& input) {
  typed_only(input, [](ByteView raw) {
    const T first = T::deserialize(raw);
    const Bytes once = first.serialize();
    const T second = T::deserialize(once);
    require(second.serialize() == once,
            "v2 serialize(deserialize(b)) not a fixed point");
  });
}

/// A throwaway single-node core for frame-handler totality. Never
/// start()ed: no endpoint is bound and no election timer is armed, so the
/// handler's parse/dispatch surface is exercised in isolation.
struct FrameFixture {
  net::SimNetwork net;
  cas::MonotonicCounter counter;
  cas::SealedLogStore store;
  cas::RaftCore core;

  FrameFixture()
      : store(crypto::Drbg::from_seed(21, "fuzz-raft-key").generate(32),
              &counter, crypto::Drbg::from_seed(21, "fuzz-raft-rng")),
        core(&net, fuzz_config(), &store,
             [](const LogEntry&) { return Status(); },
             [] { return Bytes{}; }, [](ByteView) {}) {}

  static cas::RaftConfig fuzz_config() {
    cas::RaftConfig config;
    config.node_id = 1;
    config.peers = {cas::RaftPeer{1, "fuzz-raft"}};
    return config;
  }
};

/// Whatever handle_frame answers must itself be a well-formed v2 reply.
void require_wellformed_reply(const Bytes& reply) {
  try {
    const cas::Envelope env = cas::Envelope::deserialize(reply);
    require(env.version == cas::kReplicationVersion,
            "raft reply is not a v2 envelope");
    (void)RaftReply::deserialize(env.payload);
  } catch (const Error&) {
    require(false, "raft reply frame does not decode");
  }
}

}  // namespace

int run_replication(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();

  switch (mode % 8) {
    case 0: {
      const Bytes input = in.rest();
      stable<LogEntry>(input);
      stable<TokenCommand>(input);
      break;
    }
    case 1: {
      const Bytes input = in.rest();
      stable<VoteRequestMsg>(input);
      stable<VoteResponseMsg>(input);
      break;
    }
    case 2: {
      const Bytes input = in.rest();
      stable<AppendRequestMsg>(input);
      stable<AppendResponseMsg>(input);
      break;
    }
    case 3: {
      const Bytes input = in.rest();
      stable<SnapshotRequestMsg>(input);
      stable<SnapshotResponseMsg>(input);
      break;
    }
    case 4: {
      const Bytes input = in.rest();
      stable<RaftReply>(input);
      stable<PersistentState>(input);
      break;
    }
    case 5: {
      // Constructed-valid round trips: fuzz-chosen fields must survive
      // encode/decode intact (not just canonically).
      VoteRequestMsg vote;
      vote.term = in.u64();
      vote.candidate_id = in.u64();
      vote.last_log_index = in.u64();
      vote.last_log_term = in.u64();
      const VoteRequestMsg vote2 =
          VoteRequestMsg::deserialize(vote.serialize());
      require(vote2.term == vote.term &&
                  vote2.candidate_id == vote.candidate_id &&
                  vote2.last_log_index == vote.last_log_index &&
                  vote2.last_log_term == vote.last_log_term,
              "vote request fields did not round-trip");

      AppendRequestMsg append;
      append.term = in.u64();
      append.leader_id = in.u64();
      append.prev_log_index = in.u64();
      append.prev_log_term = in.u64();
      append.leader_commit = in.u64();
      const std::size_t entries = in.below(4);
      for (std::size_t i = 0; i < entries; ++i) {
        LogEntry entry;
        entry.term = in.u64();
        entry.command = static_cast<cas::LogCommand>(in.below(4));
        entry.entry_id = in.u64();
        entry.payload = in.chunk();
        append.entries.push_back(std::move(entry));
      }
      const AppendRequestMsg append2 =
          AppendRequestMsg::deserialize(append.serialize());
      require(append2.entries.size() == append.entries.size() &&
                  append2.term == append.term &&
                  append2.leader_commit == append.leader_commit,
              "append request did not round-trip");
      for (std::size_t i = 0; i < append.entries.size(); ++i)
        require(append2.entries[i].serialize() ==
                    append.entries[i].serialize(),
                "append entry did not round-trip");
      break;
    }
    case 6: {
      // Sealed-store totality: arbitrary blobs load to a typed refusal;
      // a genuine save/load survives.
      cas::MonotonicCounter counter;
      cas::SealedLogStore store(
          crypto::Drbg::from_seed(22, "fuzz-store-key").generate(32),
          &counter, crypto::Drbg::from_seed(22, "fuzz-store-rng"));
      PersistentState state;
      state.current_term = in.u64();
      state.voted_for = in.u64();
      state.base_index = in.u64();
      state.base_term = in.u64();
      state.snapshot = in.chunk();
      store.save(state);
      PersistentState loaded;
      require(store.load(&loaded) == cas::UnsealStatus::kOk,
              "genuine sealed raft state did not load");
      require(loaded.serialize() == state.serialize(),
              "sealed raft state did not round-trip");
      store.set_blob(in.rest());
      PersistentState hostile;
      require(store.load(&hostile) != cas::UnsealStatus::kOk,
              "arbitrary blob accepted as sealed raft state");
      break;
    }
    case 7: {
      // Frame-handler totality, three layers deep: raw garbage, a valid
      // envelope of fuzz-chosen version/command, and a v2 raft command
      // with hostile payload — every answer is a well-formed v2 reply.
      FrameFixture fx;
      const std::uint8_t layer = in.u8() % 3;
      Bytes frame;
      if (layer == 0) {
        frame = in.rest();
      } else {
        cas::Envelope env;
        env.version = layer == 1 ? in.u8() : cas::kReplicationVersion;
        env.command = static_cast<cas::Command>(in.below(16));
        env.request_id = in.u64();
        env.payload = in.rest();
        frame = env.serialize();
      }
      require_wellformed_reply(fx.core.handle_frame(frame));
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
