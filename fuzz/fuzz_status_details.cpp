// Status-code mappings and the structured detail-string parsers.
//
// These strings are wire contract (clients parse retry hints back out of
// them), so the parsers face attacker-controlled text. Properties:
//  * parse_retry_after never throws on any string and never yields a
//    value above its documented one-day cap;
//  * composing a detail and parsing it back round-trips the value;
//  * every wire status byte maps into the enum (to_string never falls
//    through to "unknown") and known bytes map to themselves;
//  * the legacy error-string reverse map agrees with the forward
//    status_message table on every code.
#include "harnesses.h"

#include <chrono>
#include <string>

#include "cas/protocol.h"
#include "common/status.h"
#include "fuzz_util.h"

namespace sinclave::fuzz {

int run_status_details(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();

  switch (mode % 5) {
    case 0: {
      const Bytes raw = in.rest();
      const std::string detail(raw.begin(), raw.end());
      const auto parsed = parse_retry_after(detail);
      if (parsed.has_value())
        require(parsed->count() >= 0 && parsed->count() <= 86'400'000,
                "retry-after outside its documented cap");
      break;
    }
    case 1: {
      // Compose-then-parse round trips, with fuzz-chosen values. The
      // composers are total; the parser must find exactly what they wrote.
      const auto ms = std::chrono::milliseconds(in.u32() % 86'400'001);
      const auto parsed = parse_retry_after(retry_after_detail(ms));
      require(parsed.has_value() && *parsed == ms,
              "retry_after_detail does not round-trip");
      require(!parse_retry_after(breaker_open_detail()).has_value(),
              "breaker detail misread as a retry hint");
      const Bytes raw = in.rest();
      const std::string phase(raw.begin(), raw.end());
      (void)deadline_phase_detail(phase.c_str());
      break;
    }
    case 2: {
      const std::uint8_t wire = in.u8();
      const StatusCode code = status_code_from_wire(wire);
      require(std::string(to_string(code)) != "unknown",
              "wire byte mapped outside the enum");
      if (wire <= static_cast<std::uint8_t>(StatusCode::kNotLeader))
        require(static_cast<std::uint8_t>(code) == wire,
                "known wire byte did not map to itself");
      else
        require(code == StatusCode::kInternal,
                "unknown wire byte must decode as kInternal");
      // Status carries any (code, detail) through its accessors.
      const Bytes raw = in.rest();
      const Status s(code, std::string(raw.begin(), raw.end()));
      (void)s.message();
      (void)s.retryable();
      break;
    }
    case 3: {
      // Legacy reverse map: canonical strings map back to their code,
      // anything else lands on kInternal.
      const std::uint8_t wire = in.u8();
      const StatusCode code = status_code_from_wire(wire);
      if (code != StatusCode::kOk && code != StatusCode::kInternal)
        require(cas::status_code_from_legacy(status_message(code)) == code,
                "legacy map disagrees with status_message");
      const Bytes raw = in.rest();
      (void)cas::status_code_from_legacy(
          std::string(raw.begin(), raw.end()));
      break;
    }
    case 4: {
      // Leader-hint detail (clients re-route by it, so it faces hostile
      // text). Arbitrary details never throw; any extracted hint is a
      // printable endpoint name and a fixed point of compose-then-parse.
      const Bytes raw = in.chunk();
      const std::string detail(raw.begin(), raw.end());
      const auto hint = parse_leader_hint(detail);
      if (hint.has_value()) {
        require(!hint->empty() && hint->size() <= 256,
                "leader hint outside its documented bounds");
        for (const char c : *hint)
          require(c >= 0x21 && c <= 0x7e, "leader hint not printable");
        const auto again = parse_leader_hint(not_leader_detail(*hint));
        require(again.has_value() && *again == *hint,
                "leader hint is not a compose/parse fixed point");
      }
      // Compose from a fuzz-chosen well-formed address: must round-trip.
      Bytes addr_bytes = in.take(1 + in.below(64));
      std::string address;
      for (const std::uint8_t b : addr_bytes) {
        const char c = static_cast<char>(0x21 + (b % 0x5e));  // printable
        if (c != ')') address.push_back(c);
      }
      if (!address.empty()) {
        const auto parsed = parse_leader_hint(not_leader_detail(address));
        require(parsed.has_value() && *parsed == address,
                "not_leader_detail does not round-trip");
      }
      require(!parse_leader_hint(not_leader_detail("")).has_value(),
              "hintless detail must parse to no hint");
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
