// Differential oracle for the hash and AEAD layers.
//
// sha256 (the interruptible SinClave variant) and sha256_fast (the
// optimized baseline of the Fig. 6 comparison) are independent
// implementations of the same function — any divergence is a bug in one
// of them. On top of that: streaming must equal one-shot regardless of
// update boundaries, export/resume at a block boundary must be lossless,
// and the AEAD must round-trip honest records while rejecting every
// tampered byte and swapped associated-data string.
#include "harnesses.h"

#include <cstddef>

#include "common/error.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_fast.h"
#include "fuzz_util.h"

namespace sinclave::fuzz {

int run_sha_aead_diff(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();

  switch (mode % 4) {
    case 0: {
      const Bytes msg = in.rest();
      require(crypto::sha256(msg) == crypto::sha256_fast(msg),
              "sha256 and sha256_fast disagree");
      break;
    }
    case 1: {
      // Streaming with fuzz-chosen split points == one-shot.
      const std::size_t cut1 = in.below(4096);
      const std::size_t cut2 = in.below(4096);
      const Bytes msg = in.rest();
      const std::size_t a = cut1 < msg.size() ? cut1 : msg.size();
      const std::size_t b =
          a + (cut2 < msg.size() - a ? cut2 : msg.size() - a);
      crypto::Sha256 h;
      h.update(ByteView(msg).subspan(0, a));
      h.update(ByteView(msg).subspan(a, b - a));
      h.update(ByteView(msg).subspan(b));
      require(h.finalize() == crypto::sha256(msg),
              "streaming sha256 diverges from one-shot");
      break;
    }
    case 2: {
      // Export at a 64-byte boundary, resume, finish: must equal the
      // uninterrupted hash — this IS the base-hash mechanism the paper
      // builds on, so the property is load-bearing.
      const std::size_t blocks = in.below(8);
      const Bytes msg = in.rest();
      const std::size_t head =
          64 * blocks <= msg.size() ? 64 * blocks : (msg.size() / 64) * 64;
      crypto::Sha256 h;
      h.update(ByteView(msg).subspan(0, head));
      require(h.exportable(), "block-aligned hasher not exportable");
      const crypto::Sha256State state = h.export_state();
      crypto::Sha256 resumed = crypto::Sha256::resume(
          crypto::Sha256State::decode(state.encode()));
      resumed.update(ByteView(msg).subspan(head));
      require(resumed.finalize() == crypto::sha256(msg),
              "export/resume changed the digest");
      break;
    }
    case 3: {
      const Bytes key = crypto::hkdf(Bytes{}, in.take(16), Bytes{}, 32);
      Bytes nonce = in.take(crypto::kAeadNonceSize);
      nonce.resize(crypto::kAeadNonceSize, 0);
      const std::size_t flip = in.u16();
      const Bytes ad = in.chunk();
      const Bytes pt = in.rest();
      const crypto::Aead aead(key);
      const Bytes sealed = aead.seal(nonce, pt, ad);
      const auto opened = aead.open(nonce, sealed, ad);
      require(opened.has_value() && *opened == pt,
              "AEAD cannot open its own record");
      if (!sealed.empty()) {
        Bytes tampered = sealed;
        tampered[flip % sealed.size()] ^= 0x01;
        require(!aead.open(nonce, tampered, ad).has_value(),
                "AEAD accepted a tampered record");
      }
      Bytes other_ad = ad;
      other_ad.push_back(0);
      require(!aead.open(nonce, sealed, other_ad).has_value(),
              "AEAD accepted swapped associated data");
      require(!aead.open(nonce, ByteView(sealed).subspan(0, sealed.size() / 2),
                         ad)
                   .has_value(),
              "AEAD accepted a truncated record");
      // hmac/hkdf determinism (the AEAD's subkey schedule rests on it).
      require(crypto::hmac_sha256(key, pt) == crypto::hmac_sha256(key, pt),
              "hmac_sha256 is not deterministic");
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
