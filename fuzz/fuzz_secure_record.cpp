// Secure-channel record handling against LIVE sessions.
//
// SecureServer::handle is the outermost attacker-facing byte boundary of
// the attested endpoint; its contract is total: any byte string answers
// with a record (rejection at worst) and NEVER throws — a thrown record
// would kill a frontend worker thread. The client half faces a malicious
// server: connect/call on arbitrary response bytes may fail only with the
// typed channel errors. And garbage must not corrupt server state: an
// honest client's handshake and round trip must still succeed afterwards.
#include "harnesses.h"

#include <memory>
#include <optional>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "fuzz_util.h"
#include "net/secure_channel.h"
#include "net/sim_network.h"

namespace sinclave::fuzz {
namespace {

const crypto::RsaKeyPair& server_identity() {
  static const crypto::RsaKeyPair key = [] {
    crypto::Drbg rng = crypto::Drbg::from_seed(21, "fuzz-secure-identity");
    return crypto::RsaKeyPair::generate(rng, 1024);
  }();
  return key;
}

/// Accept-all server: the handshake hook admits every client (quote
/// verification is the protocol_session harness's business), the request
/// handler echoes. Fresh per input so sessions never leak across runs.
std::unique_ptr<net::SecureServer> make_server(std::uint64_t seed) {
  return std::make_unique<net::SecureServer>(
      &server_identity(), crypto::Drbg::from_seed(seed, "fuzz-secure-rng"),
      [](ByteView, ByteView, std::uint64_t, StatusCode*)
          -> std::optional<Bytes> { return Bytes{}; },
      [](std::uint64_t, ByteView plaintext) {
        return Bytes(plaintext.begin(), plaintext.end());
      });
}

void honest_round_trip(net::SimNetwork& net, const char* address) {
  net::SecureClient client(crypto::Drbg::from_seed(22, "fuzz-secure-client"));
  const auto accepted = client.connect(
      net.connect(address), server_identity().public_key(), Bytes{});
  require(accepted.has_value(),
          "honest handshake rejected after garbage records");
  const Bytes ping{'p', 'i', 'n', 'g'};
  require(client.call(ping) == ping,
          "honest round trip corrupted after garbage records");
}

}  // namespace

int run_secure_record(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();

  switch (mode % 4) {
    case 0: {
      // Garbage records straight into handle(); nothing may escape, every
      // answer is a record, and the server survives for an honest client.
      const auto server = make_server(23);
      net::SimNetwork net;
      net.listen("srv", [&server](ByteView raw) { return server->handle(raw); });
      int rounds = 0;
      while (!in.empty() && rounds++ < 8) {
        const Bytes record = in.chunk();
        const Bytes answer = server->handle(record);
        require(!answer.empty(), "server answered a record with silence");
        (void)net::classify_record(record);
        (void)net::peek_session_id(record);
      }
      const auto stats = server->stats();
      require(stats.open_sessions == server->open_sessions() &&
                  stats.open_sessions <= stats.sessions_opened,
              "session accounting inconsistent after garbage");
      honest_round_trip(net, "srv");
      break;
    }
    case 1: {
      // Garbage aimed at an ESTABLISHED session: same session id, fuzzed
      // counter/ciphertext. The session must survive (bad records are
      // rejected, not torn) and the honest client must keep working.
      const auto server = make_server(24);
      net::SimNetwork net;
      net.listen("srv", [&server](ByteView raw) { return server->handle(raw); });
      net::SecureClient client(
          crypto::Drbg::from_seed(25, "fuzz-secure-established"));
      const auto accepted = client.connect(
          net.connect("srv"), server_identity().public_key(), Bytes{});
      require(accepted.has_value(), "clean handshake rejected");
      const std::uint64_t session_id = 1;  // first session of a fresh server
      int rounds = 0;
      while (!in.empty() && rounds++ < 8) {
        ByteWriter w;
        w.u8(1);  // kMsgData
        w.u64(session_id);
        w.u64(in.u64());  // fuzzed counter
        w.bytes(in.chunk());
        (void)server->handle(std::move(w).take());
      }
      const Bytes ping{'o', 'k'};
      require(client.call(ping) == ping,
              "forged records broke an established session");
      break;
    }
    case 2: {
      // Malicious server vs connecting client: arbitrary handshake
      // response bytes. Typed outcomes only.
      const Bytes response = in.rest();
      net::SimNetwork net;
      net.listen("evil", [&response](ByteView) { return response; });
      net::SecureClient client(
          crypto::Drbg::from_seed(26, "fuzz-secure-victim"));
      try {
        StatusCode reject = StatusCode::kAttestationRejected;
        const auto outcome =
            client.connect(net.connect("evil"),
                           server_identity().public_key(), Bytes{}, &reject);
        if (outcome.has_value())
          require(false, "client accepted a forged handshake");
      } catch (const net::IdentityMismatchError&) {
      } catch (const Error&) {
      }
      break;
    }
    case 3: {
      // Malicious server vs an established client: handshake honestly,
      // then answer the data record with fuzz bytes.
      const Bytes response = in.rest();
      const auto server = make_server(27);
      net::SimNetwork net;
      net.listen("mitm", [&server, &response](ByteView raw) {
        if (net::classify_record(raw) == net::RecordType::kHandshake)
          return server->handle(raw);
        return response;
      });
      net::SecureClient client(
          crypto::Drbg::from_seed(28, "fuzz-secure-mitm"));
      const auto accepted = client.connect(
          net.connect("mitm"), server_identity().public_key(), Bytes{});
      require(accepted.has_value(), "clean handshake rejected");
      try {
        (void)client.call(Bytes{'x'});
        require(false, "client accepted a forged data response");
      } catch (const net::RecordRejectedError&) {
      } catch (const Error&) {
      }
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
