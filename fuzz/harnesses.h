// The fuzz harness bodies, as plain named functions.
//
// Each returns 0 (the libFuzzer convention) and encodes one property
// suite; see the respective fuzz/fuzz_<name>.cpp for what it checks.
// Entry points (fuzz/main/) and the tier-1 corpus-replay test
// (tests/test_fuzz_regression.cpp) both dispatch through this header.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sinclave::fuzz {

/// Envelope + every protocol message decoder (v1 and legacy v0):
/// only typed errors escape, successful decodes re-serialize stably,
/// frame servers never throw at all.
int run_envelope(const std::uint8_t* data, std::size_t size);

/// SecureServer/SecureClient record and handshake decoding against live
/// sessions: garbage never throws out of handle(), never corrupts the
/// server for a subsequent honest client.
int run_secure_record(const std::uint8_t* data, std::size_t size);

/// Sealed-state import: corrupt/truncated/rolled-back blobs are refused
/// without UB, and a failed CasService::import_state leaves NO partially
/// applied policy or token state behind.
int run_persistence(const std::uint8_t* data, std::size_t size);

/// SigStruct / Report / TargetInfo / Quote / Sha256State parsing:
/// typed errors only, decode(serialize(x)) == x.
int run_sigstruct_quote(const std::uint8_t* data, std::size_t size);

/// Status detail parsers (parse_retry_after and friends) plus the
/// wire/legacy status-code mappings.
int run_status_details(const std::uint8_t* data, std::size_t size);

/// Differential oracle: Montgomery exp/exp_u64/mul_mod/reduce vs a naive
/// square-and-multiply / long-division reference.
int run_bignum_diff(const std::uint8_t* data, std::size_t size);

/// Differential oracle: sha256 (interruptible) vs sha256_fast, streaming
/// vs one-shot, export/resume, and AEAD seal/open tamper rejection.
int run_sha_aead_diff(const std::uint8_t* data, std::size_t size);

/// Structured stateful fuzzing: decode the input into a sequence of
/// protocol operations against a live CasService (instance requests,
/// attestations, config fetches, introspection, garbage frames) and check
/// the global invariants after every step.
int run_protocol_session(const std::uint8_t* data, std::size_t size);

/// Replication (v2) wire messages: every raft decoder rejects garbage
/// with typed errors and re-serializes stably, RaftCore::handle_frame
/// answers arbitrary bytes with a well-formed reply frame, and the
/// sealed raft store refuses arbitrary blobs in kind.
int run_replication(const std::uint8_t* data, std::size_t size);

}  // namespace sinclave::fuzz
