// libFuzzer entry point for the sigstruct_quote harness; the body lives in
// fuzz/fuzz_sigstruct_quote.cpp so the tier-1 corpus-replay test can link it too.
#include <cstddef>
#include <cstdint>

#include "harnesses.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sinclave::fuzz::run_sigstruct_quote(data, size);
}
