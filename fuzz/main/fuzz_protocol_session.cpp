// libFuzzer entry point for the protocol_session harness; the body lives in
// fuzz/fuzz_protocol_session.cpp so the tier-1 corpus-replay test can link it too.
#include <cstddef>
#include <cstdint>

#include "harnesses.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sinclave::fuzz::run_protocol_session(data, size);
}
