// Standalone driver for the fuzz harnesses — the gcc fallback.
//
// libFuzzer is clang-only; this driver gives the same harness binaries a
// life under any toolchain: it replays corpus files/directories exactly
// like a libFuzzer binary invoked on them, and adds a DETERMINISTIC
// mutation loop (xorshift PRNG, fixed default seed) so `run_fuzzers.sh
// --smoke` exercises decoders with hostile inputs even where only gcc +
// ASan/UBSan are available. It is not a coverage-guided fuzzer and does
// not pretend to be one — coverage-guided runs happen under clang in CI.
//
//   fuzz_<name> [options] [corpus-file-or-dir]...
//     -runs=N      mutation iterations after replay (default 0)
//     -seed=S      PRNG seed (default 1 — deterministic by default)
//     -max_len=L   mutated input size cap (default 4096)
//
// Before each mutated execution the input is written to
// crash-<basename>.bin, so after an abort the file on disk IS the
// reproducer — move it into fuzz/corpus/regressions/ and it becomes a
// tier-1 regression test (tests/test_fuzz_regression.cpp).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using Input = std::vector<std::uint8_t>;

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

Input read_file(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  return Input(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

Input mutate(const Input& base, std::uint64_t& rng, std::size_t max_len) {
  Input out = base;
  if (out.size() > max_len) out.resize(max_len);
  const int edits = 1 + static_cast<int>(xorshift(rng) % 8);
  for (int i = 0; i < edits; ++i) {
    switch (xorshift(rng) % 4) {
      case 0:  // flip a byte
        if (!out.empty())
          out[xorshift(rng) % out.size()] ^=
              static_cast<std::uint8_t>(xorshift(rng));
        break;
      case 1:  // insert a byte
        if (out.size() < max_len)
          out.insert(out.begin() +
                         static_cast<std::ptrdiff_t>(
                             xorshift(rng) % (out.size() + 1)),
                     static_cast<std::uint8_t>(xorshift(rng)));
        break;
      case 2:  // truncate
        if (!out.empty()) out.resize(xorshift(rng) % out.size());
        break;
      case 3:  // overwrite a run with one value
        if (!out.empty()) {
          const std::size_t at = xorshift(rng) % out.size();
          const std::size_t len =
              1 + xorshift(rng) % (out.size() - at);
          std::memset(out.data() + at,
                      static_cast<int>(xorshift(rng) & 0xFF), len);
        }
        break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 0;
  std::uint64_t seed = 1;
  std::size_t max_len = 4096;
  std::vector<Input> corpus;
  std::size_t replayed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore unknown dash options so libFuzzer-style invocations
      // (e.g. -rss_limit_mb=...) do not break the fallback driver.
    } else if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg))
        if (entry.is_regular_file()) files.push_back(entry.path());
      std::sort(files.begin(), files.end());  // determinism
      for (const auto& f : files) corpus.push_back(read_file(f));
    } else if (std::filesystem::is_regular_file(arg)) {
      corpus.push_back(read_file(arg));
    } else {
      std::fprintf(stderr, "standalone driver: no such input: %s\n",
                   arg.c_str());
      return 2;
    }
  }

  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++replayed;
  }

  const std::string crash_file =
      "crash-" + std::filesystem::path(argv[0]).filename().string() + ".bin";
  std::uint64_t rng = seed ? seed : 1;
  for (std::uint64_t i = 0; i < runs; ++i) {
    const Input& base =
        corpus.empty() ? Input{} : corpus[xorshift(rng) % corpus.size()];
    const Input input = mutate(base, rng, max_len);
    {
      std::ofstream f(crash_file, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(input.data()),
              static_cast<std::streamsize>(input.size()));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::remove(crash_file.c_str());

  std::printf("standalone driver: %zu corpus inputs replayed, "
              "%llu mutated runs, all clean\n",
              replayed, static_cast<unsigned long long>(runs));
  return 0;
}
