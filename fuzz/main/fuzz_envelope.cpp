// libFuzzer entry point for the envelope harness; the body lives in
// fuzz/fuzz_envelope.cpp so the tier-1 corpus-replay test can link it too.
#include <cstddef>
#include <cstdint>

#include "harnesses.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sinclave::fuzz::run_envelope(data, size);
}
