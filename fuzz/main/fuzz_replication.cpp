// libFuzzer entry point for the replication harness; the body lives in
// fuzz/fuzz_replication.cpp so the tier-1 corpus-replay test can link it too.
#include <cstddef>
#include <cstdint>

#include "harnesses.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sinclave::fuzz::run_replication(data, size);
}
