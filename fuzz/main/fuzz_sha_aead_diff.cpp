// libFuzzer entry point for the sha_aead_diff harness; the body lives in
// fuzz/fuzz_sha_aead_diff.cpp so the tier-1 corpus-replay test can link it too.
#include <cstddef>
#include <cstdint>

#include "harnesses.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sinclave::fuzz::run_sha_aead_diff(data, size);
}
