// Sealed-state persistence and CasService state import.
//
// The singleton guarantee is only as strong as the token database's
// durability, so this harness attacks the restore path:
//  * unseal_state must map ANY blob to a typed UnsealStatus — no throw,
//    no UB — and every single-byte corruption or truncation of a genuine
//    sealed blob must be refused;
//  * a rolled-back (stale-counter) blob must be refused as kRolledBack;
//  * CasService::import_state must reject corrupt state with a typed
//    Error and WITHOUT partially-applied effects: after a failed import
//    the service has no imported policy and no imported token (a half-
//    imported token database would reopen the token-reuse attack);
//  * import(export()) must be lossless: re-exporting yields the same
//    bytes.
#include "harnesses.h"

#include <memory>

#include "cas/persistence.h"
#include "cas/service.h"
#include "common/error.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "fuzz_util.h"
#include "quote/attestation_service.h"

namespace sinclave::fuzz {
namespace {

/// Immutable cross-iteration fixture. The RSA identity is generated once
/// (keygen dominates everything else); each iteration copies it into a
/// fresh CasService so no state leaks between inputs.
struct Golden {
  crypto::RsaKeyPair identity;
  Bytes seal_key;
  Bytes exported;  // state of a service with two policies + two tokens
  Bytes sealed;    // `exported` sealed at counter value 1

  static crypto::RsaKeyPair make_identity() {
    crypto::Drbg rng = crypto::Drbg::from_seed(11, "fuzz-persist");
    return crypto::RsaKeyPair::generate(rng, 1024);
  }

  Golden() : identity(make_identity()) {
    crypto::Drbg rng = crypto::Drbg::from_seed(12, "fuzz-persist-misc");
    seal_key = rng.generate(32);
    quote::AttestationService attestation;
    cas::CasService cas(&attestation, identity,
                        crypto::Drbg::from_seed(12, "fuzz-persist-cas"));
    for (const char* name : {"p0", "p1"}) {
      cas::Policy p;
      p.session_name = name;
      p.expected_signer = crypto::sha256(identity.public_key().modulus_be());
      p.require_singleton = true;
      p.config.program = "prog";
      p.config.env["K"] = "V";
      cas.install_policy(p);
    }
    for (std::uint8_t fill : {std::uint8_t{0xAA}, std::uint8_t{0xBB}}) {
      core::AttestationToken token;
      token.data.fill(fill);
      sgx::Measurement mr;
      mr.data.fill(static_cast<std::uint8_t>(fill ^ 0xFF));
      cas.register_token(token, "p0", mr);
    }
    exported = cas.export_state();
    cas::MonotonicCounter counter;
    sealed = cas::seal_state(seal_key, counter, exported, rng);
  }

  /// CasService is pinned in place (mutex stripes), so fresh instances
  /// come on the heap.
  std::unique_ptr<cas::CasService> fresh_service() const {
    return std::make_unique<cas::CasService>(
        &attestation_, identity,
        crypto::Drbg::from_seed(13, "fuzz-persist-new"));
  }

  mutable quote::AttestationService attestation_;
};

const Golden& golden() {
  static const Golden g;
  return g;
}

/// A service that refused an import must look untouched.
void require_no_partial_state(const cas::CasService& cas) {
  require(!cas.get_policy("p0").has_value() &&
              !cas.get_policy("p1").has_value(),
          "failed import left a policy installed");
  require(cas.tokens_outstanding() == 0 && cas.tokens_used() == 0,
          "failed import left token state behind");
}

}  // namespace

int run_persistence(const std::uint8_t* data, std::size_t size) {
  const Golden& g = golden();
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();

  switch (mode % 5) {
    case 0: {
      // Arbitrary blob: a typed status, never a throw. A forged kOk would
      // need a valid AEAD tag under the seal key — treat one as fatal.
      const Bytes blob = in.rest();
      cas::MonotonicCounter counter;
      Bytes out;
      const cas::UnsealStatus s =
          cas::unseal_state(g.seal_key, counter, blob, out);
      require(s == cas::UnsealStatus::kMalformed ||
                  s == cas::UnsealStatus::kBadSeal ||
                  s == cas::UnsealStatus::kRolledBack,
              "unseal accepted an arbitrary blob");
      break;
    }
    case 1: {
      // Single-byte corruption and truncation of the genuine blob must be
      // refused; untampered unseal must keep working (and a bumped
      // counter must flag rollback).
      cas::MonotonicCounter counter;
      counter.increment();  // match the value bound into g.sealed
      Bytes out;
      require(cas::unseal_state(g.seal_key, counter, g.sealed, out) ==
                      cas::UnsealStatus::kOk &&
                  out == g.exported,
              "genuine sealed blob no longer unseals");
      Bytes corrupt = g.sealed;
      corrupt[in.u32() % corrupt.size()] ^=
          static_cast<std::uint8_t>(in.u8() | 1);
      require(cas::unseal_state(g.seal_key, counter, corrupt, out) !=
                  cas::UnsealStatus::kOk,
              "unseal accepted a corrupted blob");
      const std::size_t keep = in.u32() % g.sealed.size();
      require(cas::unseal_state(g.seal_key, counter,
                                ByteView(g.sealed).subspan(0, keep),
                                out) != cas::UnsealStatus::kOk,
              "unseal accepted a truncated blob");
      cas::MonotonicCounter advanced;
      advanced.increment();
      advanced.increment();
      require(cas::unseal_state(g.seal_key, advanced, g.sealed, out) ==
                  cas::UnsealStatus::kRolledBack,
              "stale sealed blob not flagged as rollback");
      break;
    }
    case 2: {
      // Arbitrary bytes into import_state: typed Error only, and the
      // service must come out empty-handed.
      const Bytes blob = in.rest();
      const auto cas = g.fresh_service();
      try {
        cas->import_state(blob);
      } catch (const Error&) {
        require_no_partial_state(*cas);
      }
      break;
    }
    case 3: {
      // Corrupt the genuine export at a fuzz-chosen offset. Either the
      // import succeeds (the byte was slack, e.g. inside a config string)
      // or it throws — and then NOTHING may have been applied.
      Bytes corrupt = g.exported;
      corrupt[in.u32() % corrupt.size()] ^=
          static_cast<std::uint8_t>(in.u8() | 1);
      const auto cas = g.fresh_service();
      try {
        cas->import_state(corrupt);
      } catch (const Error&) {
        require_no_partial_state(*cas);
      }
      break;
    }
    case 4: {
      // Lossless round trip, plus seal→unseal→import end to end.
      const auto cas = g.fresh_service();
      cas->import_state(g.exported);
      require(cas->export_state() == g.exported,
              "import/export round trip changed the state");
      require(cas->get_policy("p0").has_value() &&
                  cas->get_policy("p1").has_value(),
              "round-tripped state lost a policy");
      require(cas->tokens_outstanding() == 2,
              "round-tripped state lost tokens");
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
