// SGX structure parsing: SigStruct, Report, TargetInfo, Quote, and the
// exported SHA-256 mid-state (the base-hash wire format).
//
// Properties: garbage dies as a typed Error; successful decodes are
// fixed points of serialize∘deserialize (full equality, these types have
// operator==); the derived accessors (mr_signer, signature_valid,
// signed_message, resume) tolerate any successfully-decoded value —
// a hostile SigStruct with a degenerate RSA key must fail verification
// with `false` or a typed Error, not UB.
#include "harnesses.h"

#include "common/error.h"
#include "crypto/sha256.h"
#include "fuzz_util.h"
#include "quote/quote.h"
#include "sgx/report.h"
#include "sgx/sigstruct.h"

namespace sinclave::fuzz {
namespace {

template <typename T>
void round_trip(const Bytes& input) {
  try {
    const T first = T::deserialize(ByteView(input));
    const T second = T::deserialize(first.serialize());
    require(second == first, "decode(serialize(x)) != x");
  } catch (const Error&) {
  }
}

}  // namespace

int run_sigstruct_quote(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();
  const Bytes input = in.rest();

  switch (mode % 5) {
    case 0: {
      try {
        const sgx::SigStruct s = sgx::SigStruct::deserialize(ByteView(input));
        require(sgx::SigStruct::deserialize(s.serialize()) == s,
                "sigstruct decode not a fixed point");
        (void)s.signing_message();
        try {
          // Verification math over an attacker-chosen key may reject with
          // a typed Error (e.g. an even or zero RSA modulus); it must not
          // crash or accept by accident — acceptance is checked by the
          // protocol_session harness with real keys.
          (void)s.signature_valid();
          (void)s.mr_signer();
        } catch (const Error&) {
        }
      } catch (const Error&) {
      }
      break;
    }
    case 1:
      round_trip<sgx::Report>(input);
      break;
    case 2:
      round_trip<sgx::TargetInfo>(input);
      break;
    case 3: {
      try {
        const quote::Quote q = quote::Quote::deserialize(ByteView(input));
        require(quote::Quote::deserialize(q.serialize()) == q,
                "quote decode not a fixed point");
        (void)q.signed_message();
      } catch (const Error&) {
      }
      break;
    }
    case 4: {
      try {
        const crypto::Sha256State s = crypto::Sha256State::decode(input);
        require(crypto::Sha256State::decode(s.encode()) == s,
                "sha256 state decode not a fixed point");
        // A decoded state sits on a block boundary by construction
        // (decode enforces byte_count % 64 == 0), so resuming from it and
        // finalizing must be well-defined.
        crypto::Sha256 resumed = crypto::Sha256::resume(s);
        (void)resumed.finalize();
      } catch (const Error&) {
      }
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
