#include "fuzz_util.h"

#include <cstdio>
#include <cstdlib>

namespace sinclave::fuzz {

std::uint8_t FuzzInput::u8() {
  if (remaining() < 1) return 0;
  return data_[pos_++];
}

std::uint16_t FuzzInput::u16() {
  return static_cast<std::uint16_t>(u8() | (u8() << 8));
}

std::uint32_t FuzzInput::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t FuzzInput::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

std::uint32_t FuzzInput::below(std::uint32_t bound) {
  if (bound == 0) return 0;
  if (bound <= 256) return u8() % bound;
  return u32() % bound;
}

Bytes FuzzInput::take(std::size_t n) {
  if (n > remaining()) n = remaining();
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Bytes FuzzInput::chunk() {
  return take(u16());
}

Bytes FuzzInput::rest() {
  return take(remaining());
}

void require(bool condition, const char* what) {
  if (condition) return;
  std::fprintf(stderr, "fuzz invariant violated: %s\n", what);
  std::abort();
}

}  // namespace sinclave::fuzz
