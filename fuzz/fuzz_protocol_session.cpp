// Structured stateful protocol fuzzing.
//
// The input bytes decode into a SEQUENCE OF OPERATIONS against a live
// CasService bound to a simulated network — valid singleton retrievals,
// honest attestations, token-replay attempts, config fetches,
// introspection, and raw garbage frames on both endpoints, interleaved
// across two policy sessions. After EVERY operation the global invariants
// must hold:
//
//   * exactly-once token spend: used tokens == accepted attestations,
//     outstanding == minted - used, and a replayed token is rejected;
//   * no session leak: the secure channel's open-session count equals the
//     number of accepted handshakes (CAS never closes implicitly);
//   * total accounting: every request produced a decodable answer —
//     issued == ok + errors, nothing dropped, nothing thrown.
//
// The per-iteration services are rebuilt from scratch; the expensive
// immutable platform (RSA keys, SGX CPU, quoting enclave, signed image)
// is shared. Started enclaves do accumulate on the shared CPU across
// iterations — bounded by the per-input attest cap, and irrelevant to the
// properties checked.
#include "harnesses.h"

#include <memory>
#include <string>
#include <vector>

#include "cas/service.h"
#include "common/error.h"
#include "common/serial.h"
#include "core/signer.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "fuzz_util.h"
#include "net/secure_channel.h"
#include "net/sim_network.h"
#include "quote/quoting_enclave.h"
#include "runtime/starter.h"
#include "sgx/cpu.h"

namespace sinclave::fuzz {
namespace {

struct Platform {
  crypto::RsaKeyPair signer_key;
  crypto::RsaKeyPair identity;
  sgx::SgxCpu cpu;
  crypto::Drbg qe_rng;
  quote::QuotingEnclave qe;
  core::EnclaveImage image;
  core::Signer signer;
  core::SinclaveSignedImage signed_image;

  static crypto::RsaKeyPair make_key(std::uint64_t seed, const char* pers) {
    crypto::Drbg rng = crypto::Drbg::from_seed(seed, pers);
    return crypto::RsaKeyPair::generate(rng, 1024);
  }

  Platform()
      : signer_key(make_key(31, "fuzz-session-signer")),
        identity(make_key(32, "fuzz-session-identity")),
        cpu(sgx::SgxCpu::Config{}),
        qe_rng(crypto::Drbg::from_seed(33, "fuzz-session-qe")),
        qe(cpu, qe_rng),
        image(core::EnclaveImage::synthetic("fuzz", sgx::kPageSize,
                                            2 * sgx::kPageSize)),
        signer(&signer_key),
        signed_image(signer.sign_sinclave(image)) {}
};

Platform& platform() {
  static Platform p;
  return p;
}

/// One decoded-op interpreter run. Owns everything mutable so each fuzz
/// input starts from an identical world.
class SessionMachine {
 public:
  explicit SessionMachine(FuzzInput& in) : in_(in) {
    Platform& p = platform();
    attestation_.register_platform(p.qe.attestation_key());
    cas_ = std::make_unique<cas::CasService>(
        &attestation_, p.identity,
        crypto::Drbg::from_seed(34, "fuzz-session-cas"));
    cas_->add_signer_key(p.signer_key);
    for (const char* name : {"alpha", "beta"}) {
      cas::Policy policy;
      policy.session_name = name;
      policy.expected_signer =
          crypto::sha256(p.signer_key.public_key().modulus_be());
      policy.require_singleton = true;
      policy.base_hash = p.signed_image.base_hash;
      policy.config.program = "prog";
      cas_->install_policy(policy);
    }
    cas_->bind(net_, "cas");
  }

  void run() {
    int ops = 0;
    while (!in_.empty() && ops++ < 12) {
      switch (in_.u8() % 7) {
        case 0: mint(); break;
        case 1: attest_honest(); break;
        case 2: attest_replay(); break;
        case 3: get_config(); break;
        case 4: introspect(); break;
        case 5: garbage_instance(); break;
        case 6: garbage_secure(); break;
      }
      check_invariants();
    }
  }

 private:
  struct Minted {
    core::AttestationToken token;
    sgx::SigStruct sigstruct;
    Hash256 verifier_id;
    std::string session;
    bool spent = false;
  };

  const char* pick_session() { return in_.boolean() ? "alpha" : "beta"; }

  Bytes call_instance(Bytes frame) {
    ++issued_;
    const Bytes answer = net_.connect("cas.instance").call(frame);
    require(!answer.empty(), "instance endpoint went silent");
    return answer;
  }

  /// Wrap a payload in a v1 envelope (or send it raw legacy, fuzz's
  /// choice) and return the decoded response payload.
  Bytes enveloped_round_trip(cas::Command command, const Bytes& payload) {
    cas::Envelope env;
    env.command = command;
    env.request_id = ++next_request_id_;
    env.payload = payload;
    const Bytes answer = call_instance(env.serialize());
    const cas::Envelope reply = cas::Envelope::deserialize(answer);
    require(reply.request_id == env.request_id,
            "response request id does not echo the request");
    return reply.payload;
  }

  void mint() {
    Platform& p = platform();
    cas::InstanceRequest req;
    req.session_name = pick_session();
    req.common_sigstruct = p.signed_image.sigstruct;
    const Bytes payload =
        enveloped_round_trip(cas::Command::kGetInstance, req.serialize());
    const auto resp = cas::InstanceResponse::deserialize(payload);
    require(resp.ok(), "valid instance request refused");
    ++ok_;
    Minted m;
    m.token = resp.token;
    m.sigstruct = resp.singleton_sigstruct;
    m.verifier_id = resp.verifier_id;
    m.session = req.session_name;
    minted_.push_back(std::move(m));
  }

  /// Start the enclave for a minted credential and attest over the secure
  /// channel with a fresh client. Returns whether CAS accepted.
  bool attest_with(Minted& m, std::uint64_t client_seed,
                   std::unique_ptr<net::SecureClient>* keep) {
    Platform& p = platform();
    core::InstancePage page;
    page.token = m.token;
    page.verifier_id = m.verifier_id;
    const auto enclave =
        runtime::start_enclave(p.cpu, p.image, m.sigstruct, page);
    require(enclave.ok(), "predicted singleton enclave failed EINIT");
    auto client = std::make_unique<net::SecureClient>(
        crypto::Drbg::from_seed(client_seed, "fuzz-session-client"));
    const sgx::Report report =
        p.cpu.ereport(enclave.id, p.qe.target_info(),
                      net::channel_binding(client->dh_public()));
    const auto quote = p.qe.generate_quote(report);
    require(quote.has_value(), "quoting enclave refused a genuine report");
    cas::AttestPayload payload;
    payload.session_name = m.session;
    payload.quote = *quote;
    payload.token = m.token;
    ++issued_;
    const auto outcome = client->connect(
        net_.connect("cas"), cas_->identity(), payload.serialize());
    if (outcome.has_value() && keep != nullptr) *keep = std::move(client);
    return outcome.has_value();
  }

  void attest_honest() {
    if (attests_ >= 3) return;  // enclave starts are the expensive op
    Minted* fresh = nullptr;
    for (Minted& m : minted_)
      if (!m.spent) fresh = &m;
    if (fresh == nullptr) return;
    ++attests_;
    std::unique_ptr<net::SecureClient> client;
    require(attest_with(*fresh, 100 + attests_, &client),
            "honest attestation with an unspent token rejected");
    ++ok_;
    fresh->spent = true;
    ++spent_;
    ++accepted_sessions_;
    clients_.push_back(std::move(client));
  }

  void attest_replay() {
    if (attests_ >= 3) return;
    Minted* used = nullptr;
    for (Minted& m : minted_)
      if (m.spent) used = &m;
    if (used == nullptr) return;
    ++attests_;
    require(!attest_with(*used, 200 + attests_, nullptr),
            "token replay accepted: singleton guarantee broken");
    ++errors_;
  }

  void get_config() {
    if (clients_.empty()) return;
    net::SecureClient& client =
        *clients_[in_.below(static_cast<std::uint32_t>(clients_.size()))];
    cas::Envelope env;
    env.command = cas::Command::kGetConfig;
    env.request_id = ++next_request_id_;
    ++issued_;
    const Bytes answer = client.call(env.serialize());
    const cas::Envelope reply = cas::Envelope::deserialize(answer);
    const auto resp = cas::ConfigResponse::deserialize(reply.payload);
    require(resp.ok() && resp.config.program == "prog",
            "attested session could not fetch its config");
    ++ok_;
  }

  void introspect() {
    // Fuzz-shaped introspect payload: defaults, a valid request, or raw
    // bytes — the endpoint must answer a decodable IntrospectResponse
    // (ok or a typed error) in every case.
    Bytes payload;
    if (in_.boolean()) {
      cas::IntrospectRequest req;
      req.max_traces = in_.u8();
      req.include_slow = in_.boolean();
      payload = req.serialize();
    } else {
      payload = in_.chunk();
    }
    const Bytes reply =
        enveloped_round_trip(cas::Command::kIntrospect, payload);
    const auto resp = cas::IntrospectResponse::deserialize(reply);
    if (resp.ok())
      ++ok_;
    else
      ++errors_;
  }

  void garbage_instance() {
    const Bytes frame = in_.chunk();
    // In principle the fuzzer could evolve a garbage frame into a VALID
    // retrieval (it has the policy name in the corpus); account for any
    // token such a frame mints so the exactness of the invariant survives.
    const std::size_t before = cas_->tokens_outstanding();
    const Bytes answer = call_instance(frame);
    garbage_minted_ += cas_->tokens_outstanding() - before;
    // Whatever came in, the answer must decode on one of the two
    // documented response paths (envelope or legacy v0).
    try {
      if (cas::Envelope::matches(answer)) {
        const cas::Envelope reply = cas::Envelope::deserialize(answer);
        (void)reply;
      } else {
        (void)cas::InstanceResponse::deserialize_v0(answer);
      }
    } catch (const Error&) {
      require(false, "instance endpoint answered garbage with garbage");
    }
    ++errors_;
  }

  void garbage_secure() {
    ++issued_;
    const Bytes answer = net_.connect("cas").call(in_.chunk());
    require(!answer.empty(), "secure endpoint went silent on garbage");
    ++errors_;
  }

  void check_invariants() {
    require(cas_->tokens_used() == spent_,
            "token spend count diverged from accepted attestations");
    require(cas_->tokens_outstanding() ==
                minted_.size() - spent_ + garbage_minted_,
            "outstanding tokens diverged from mint/spend bookkeeping");
    require(cas_->secure_channel_stats().open_sessions == accepted_sessions_,
            "open sessions diverged from accepted handshakes");
    require(issued_ == ok_ + errors_,
            "a request vanished: issued != ok + errors");
  }

  FuzzInput& in_;
  quote::AttestationService attestation_;
  std::unique_ptr<cas::CasService> cas_;
  net::SimNetwork net_;
  std::vector<Minted> minted_;
  std::vector<std::unique_ptr<net::SecureClient>> clients_;
  std::uint64_t next_request_id_ = 0;
  std::size_t spent_ = 0;
  std::size_t garbage_minted_ = 0;
  std::size_t accepted_sessions_ = 0;
  int attests_ = 0;
  std::uint64_t issued_ = 0, ok_ = 0, errors_ = 0;
};

}  // namespace

int run_protocol_session(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  SessionMachine machine(in);
  machine.run();
  return 0;
}

}  // namespace sinclave::fuzz
