// Differential oracle for the Montgomery fast paths.
//
// The Montgomery context (fixed-window exponentiation, CIOS multiply,
// fold-based reduction) is the optimized engine under every RSA and DH
// operation in the repository; its reference is a naive square-and-
// multiply over BigInt's schoolbook multiply and long division — two
// independent code paths that must agree on every input. Operand sizes
// are clamped (modulus <= 24 bytes, exponent <= 8) so one iteration stays
// microseconds, letting the fuzzer explore limb-boundary shapes instead
// of burning time on huge numbers.
#include "harnesses.h"

#include "common/error.h"
#include "crypto/bignum.h"
#include "fuzz_util.h"

namespace sinclave::fuzz {
namespace {

using crypto::BigInt;
using crypto::Montgomery;

/// Square-and-multiply over schoolbook ops only — no Montgomery anywhere.
BigInt naive_mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt result = BigInt(1).mod(m);
  const BigInt b = base.mod(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result).mod(m);
    if (exp.bit(i)) result = (result * b).mod(m);
  }
  return result;
}

BigInt odd_modulus(FuzzInput& in, std::size_t max_bytes) {
  BigInt m = BigInt::from_bytes_be(in.take(1 + in.below(
      static_cast<std::uint32_t>(max_bytes))));
  if (!m.is_odd()) m = m + 1;
  if (m <= 1) m = 3;
  return m;
}

}  // namespace

int run_bignum_diff(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();

  switch (mode % 5) {
    case 0: {
      const BigInt m = odd_modulus(in, 24);
      const BigInt base = BigInt::from_bytes_be(in.take(1 + in.below(48)));
      const BigInt exp = BigInt::from_bytes_be(in.take(1 + in.below(8)));
      const Montgomery mont(m);
      require(mont.exp(base, exp) == naive_mod_exp(base, exp, m),
              "Montgomery exp disagrees with naive square-and-multiply");
      break;
    }
    case 1: {
      const BigInt m = odd_modulus(in, 24);
      const BigInt base = BigInt::from_bytes_be(in.take(1 + in.below(48)));
      const std::uint64_t e = in.u64();
      const Montgomery mont(m);
      require(mont.exp_u64(base, e) == naive_mod_exp(base, BigInt(e), m),
              "Montgomery exp_u64 disagrees with naive reference");
      break;
    }
    case 2: {
      const BigInt m = odd_modulus(in, 24);
      const BigInt a = BigInt::from_bytes_be(in.take(1 + in.below(48)));
      const BigInt b = BigInt::from_bytes_be(in.take(1 + in.below(48)));
      const Montgomery mont(m);
      require(mont.mul_mod(a, b) == (a * b).mod(m),
              "Montgomery mul_mod disagrees with schoolbook multiply");
      break;
    }
    case 3: {
      const BigInt m = odd_modulus(in, 24);
      const BigInt v = BigInt::from_bytes_be(in.take(1 + in.below(96)));
      const Montgomery mont(m);
      require(mont.reduce(v) == v.mod(m),
              "Montgomery fold-reduction disagrees with long division");
      break;
    }
    case 4: {
      // BigInt::mod_exp dispatches to Montgomery for odd moduli and plain
      // square-and-multiply for even ones; both routes must match the
      // naive reference, and mod_inverse must actually invert.
      BigInt m = BigInt::from_bytes_be(in.take(1 + in.below(24)));
      if (m <= 1) m = 4;
      const BigInt base = BigInt::from_bytes_be(in.take(1 + in.below(48)));
      const BigInt exp = BigInt::from_bytes_be(in.take(1 + in.below(8)));
      require(BigInt::mod_exp(base, exp, m) == naive_mod_exp(base, exp, m),
              "BigInt::mod_exp disagrees with naive reference");
      try {
        const BigInt inv = BigInt::mod_inverse(base, m);
        require((base * inv).mod(m) == BigInt(1).mod(m),
                "mod_inverse result is not an inverse");
      } catch (const Error&) {
        // gcd(base, m) != 1 — a typed refusal is the documented outcome.
      }
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
