// Envelope and protocol-message decoding.
//
// Properties:
//  1. Exception confinement: every deserializer rejects garbage with a
//     typed ParseError/Error — never std::length_error, bad_alloc, or
//     anything else (lint rule: frontends catch `const Error&` only).
//  2. Re-serialization stability: when a decode succeeds, serializing the
//     result and decoding it again yields the same bytes — the decoder
//     produced a value the encoder agrees on (one canonical form).
//  3. The frame servers (serve_instance_frame, serve_config_frame,
//     decode_attest_payload) never throw AT ALL: malformed input must
//     become a typed wire answer, not an exception.
#include "harnesses.h"

#include <string>

#include "cas/protocol.h"
#include "common/error.h"
#include "common/serial.h"
#include "fuzz_util.h"

namespace sinclave::fuzz {
namespace {

using cas::Envelope;

/// Run `decode` on `input`; only typed errors may escape. Returns whether
/// the decode succeeded.
template <typename Decode>
bool typed_only(const Bytes& input, const Decode& decode) {
  try {
    decode(ByteView(input));
    return true;
  } catch (const Error&) {
    return false;  // ParseError derives from Error: the allowed rejection
  }
  // Anything else unwinds out of the harness and crashes the fuzzer —
  // which is the point.
}

/// Decode, re-encode, decode again; the two encodings must agree.
template <typename T>
void stable(const Bytes& input) {
  typed_only(input, [](ByteView raw) {
    const T first = T::deserialize(raw);
    const Bytes once = first.serialize();
    const T second = T::deserialize(once);
    require(second.serialize() == once,
            "serialize(deserialize(b)) not a fixed point");
  });
}

/// The legacy (v0) encodings of the response types, same property.
template <typename T>
void stable_v0(const Bytes& input) {
  typed_only(input, [](ByteView raw) {
    const T first = T::deserialize_v0(raw);
    const Bytes once = first.serialize_v0();
    const T second = T::deserialize_v0(once);
    require(second.serialize_v0() == once,
            "v0 serialize(deserialize(b)) not a fixed point");
  });
}

}  // namespace

int run_envelope(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  const std::uint8_t mode = in.u8();
  const Bytes input = in.rest();

  switch (mode % 13) {
    case 0: {
      // Envelope framing itself, plus the cheap header peeks, which must
      // agree with the full decode whenever the full decode succeeds.
      typed_only(input, [&input](ByteView raw) {
        const Envelope e = Envelope::deserialize(raw);
        require(Envelope::matches(raw), "decoded envelope without magic");
        const auto peeked = Envelope::peek_request_id(raw);
        require(peeked.has_value() && *peeked == e.request_id,
                "peek_request_id disagrees with full decode");
        const Bytes once = e.serialize();
        require(Envelope::deserialize(once).serialize() == once,
                "envelope re-serialization unstable");
      });
      (void)Envelope::matches(input);
      (void)Envelope::peek_request_id(input);
      break;
    }
    case 1:
      stable<cas::AppConfig>(input);
      break;
    case 2:
      stable<cas::InstanceRequest>(input);
      break;
    case 3:
      stable<cas::InstanceResponse>(input);
      break;
    case 4:
      stable_v0<cas::InstanceResponse>(input);
      break;
    case 5:
      stable<cas::AttestPayload>(input);
      break;
    case 6:
      stable<cas::ConfigResponse>(input);
      break;
    case 7:
      stable_v0<cas::ConfigResponse>(input);
      break;
    case 8:
      stable<cas::IntrospectRequest>(input);
      break;
    case 9:
      stable<cas::IntrospectResponse>(input);
      break;
    case 10: {
      // The instance-endpoint frame server: must never throw, and must
      // always produce a non-empty answer (a frontend never goes silent).
      const auto handler = [](const cas::InstanceRequest&) {
        cas::InstanceResponse resp;
        resp.status = Status(StatusCode::kOk);
        return resp;
      };
      const auto introspect = [](const cas::IntrospectRequest&) {
        cas::IntrospectResponse resp;
        resp.status = Status(StatusCode::kOk);
        resp.metrics = "{}";
        return resp;
      };
      cas::FrameInfo info;
      const Bytes answer =
          cas::serve_instance_frame(input, handler, introspect, &info);
      require(!answer.empty(), "frame server produced an empty answer");
      break;
    }
    case 11: {
      const auto handler = [] {
        cas::ConfigResponse resp;
        resp.status = Status(StatusCode::kOk);
        resp.config.program = "p";
        return resp;
      };
      cas::FrameInfo info;
      const Bytes answer = cas::serve_config_frame(input, handler, &info);
      require(!answer.empty(), "config frame server went silent");
      break;
    }
    case 12: {
      // decode_attest_payload returns nullopt on garbage — never throws —
      // and the legacy status-string reverse map accepts any string.
      cas::FrameInfo info;
      (void)cas::decode_attest_payload(input, &info);
      const std::string text(input.begin(), input.end());
      const StatusCode code = cas::status_code_from_legacy(text);
      require(std::string(to_string(code)) != "unknown",
              "legacy status mapping produced an out-of-enum code");
      break;
    }
  }
  return 0;
}

}  // namespace sinclave::fuzz
