// Shared plumbing for the fuzz harnesses (fuzz/fuzz_*.cpp).
//
// Every harness body is an ordinary named function
//
//     int run_<name>(const std::uint8_t* data, std::size_t size)
//
// declared in fuzz/harnesses.h and compiled into a plain static library
// with NO fuzzer runtime attached. The thin entry points under fuzz/main/
// wrap one body each in LLVMFuzzerTestOneInput, so the same code runs
//
//   * under clang as a real libFuzzer target (-fsanitize=fuzzer,...),
//   * under gcc through the standalone replay/mutation driver
//     (fuzz/main/standalone_main.cpp) with ASan+UBSan,
//   * inside the tier-1 GTest corpus-replay gate
//     (tests/test_fuzz_regression.cpp), which links the bodies directly.
//
// FuzzInput is the FuzzedDataProvider stand-in: it carves the raw fuzz
// input into integers, choices, and byte chunks. It NEVER throws and never
// reads past the end — exhausted reads yield zeros/empties — so harnesses
// can decode structured operation sequences from arbitrary bytes without
// bounds bookkeeping. Determinism rule: the same input bytes must drive
// the same operations, or corpus replay loses its meaning.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace sinclave::fuzz {

class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit FuzzInput(ByteView data)
      : data_(data.data()), size_(data.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return remaining() == 0; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean() { return (u8() & 1) != 0; }

  /// Uniform-ish value in [0, bound); bound 0 yields 0. Consumes one byte
  /// for bounds up to 255, four otherwise.
  std::uint32_t below(std::uint32_t bound);

  /// Up to n bytes — fewer when the input is exhausted.
  Bytes take(std::size_t n);
  /// A u16-length-prefixed chunk, clamped to what is left. The prefix lets
  /// the fuzzer learn to vary chunk boundaries instead of us fixing them.
  Bytes chunk();
  /// Everything left (consumes it).
  Bytes rest();
  /// Everything left, without consuming (a view into the fuzz input —
  /// valid only for the duration of the harness call).
  ByteView rest_view() const { return ByteView(data_ + pos_, remaining()); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Fuzzer-visible invariant check: prints the message and aborts on
/// failure. Deliberately NOT assert(): it must fire identically in every
/// build flavor (libFuzzer, standalone driver, GTest replay, Release).
void require(bool condition, const char* what);

}  // namespace sinclave::fuzz
