// The instance (singleton) page (§4.4, Fig. 5).
//
// System software adds this one extra page at the end of the enclave during
// construction. Its content individualizes MRENCLAVE:
//
//   * the one-time attestation token minted by the verifier, and
//   * the verifier's cryptographic identity (hash of its public key).
//
// The runtime inside the enclave reads the page after EINIT:
//   * all-zero page  -> "common enclave": start without attestation
//                       (or run the vulnerable baseline flow),
//   * valid content  -> "singleton enclave": the runtime MUST attest with
//                       this token, and MUST accept configuration only from
//                       the verifier whose identity is embedded here.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "sgx/types.h"

namespace sinclave::core {

/// One-time attestation token (256-bit random value minted by the verifier).
using AttestationToken = FixedBytes<32>;

struct InstancePage {
  AttestationToken token;
  /// SHA-256 of the verifier's RSA public modulus.
  Hash256 verifier_id;

  /// Render into a full 4096-byte page (magic + fields + zero padding).
  Bytes render() const;

  /// Parse a page read back from enclave memory. Returns nullopt for the
  /// all-zero page (common enclave). Throws ParseError for a page that is
  /// neither zero nor well-formed (construction-time corruption).
  static std::optional<InstancePage> parse(ByteView page);

  friend bool operator==(const InstancePage&, const InstancePage&) = default;
};

}  // namespace sinclave::core
