#include "core/instance_page.h"

#include <algorithm>

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::core {

namespace {
constexpr std::uint64_t kInstancePageMagic = 0x53494e434c415645;  // "SINCLAVE"
}

Bytes InstancePage::render() const {
  ByteWriter w;
  w.u64(kInstancePageMagic);
  w.raw(token.view());
  w.raw(verifier_id.view());
  w.zeros(sgx::kPageSize - w.size());
  return std::move(w).take();
}

std::optional<InstancePage> InstancePage::parse(ByteView page) {
  if (page.size() != sgx::kPageSize)
    throw ParseError("instance page: wrong size");
  const bool all_zero =
      std::all_of(page.begin(), page.end(), [](std::uint8_t b) { return b == 0; });
  if (all_zero) return std::nullopt;

  ByteReader r(page);
  if (r.u64() != kInstancePageMagic)
    throw ParseError("instance page: bad magic");
  InstancePage out;
  out.token = r.fixed<32>();
  out.verifier_id = r.fixed<32>();
  // Remaining bytes must be zero padding.
  const Bytes rest = r.raw(r.remaining());
  if (!std::all_of(rest.begin(), rest.end(),
                   [](std::uint8_t b) { return b == 0; }))
    throw ParseError("instance page: nonzero padding");
  return out;
}

}  // namespace sinclave::core
