#include "core/on_demand.h"

#include "common/error.h"

namespace sinclave::core {

sgx::SigStruct make_on_demand_sigstruct(const sgx::SigStruct& common,
                                        const sgx::Measurement& singleton_mr,
                                        const crypto::RsaKeyPair& signer) {
  if (!(common.signer_key == signer.public_key()))
    throw Error("on-demand sigstruct: common sigstruct from different signer");
  if (!common.signature_valid())
    throw Error("on-demand sigstruct: common sigstruct signature invalid");

  sgx::SigStruct out = common;
  out.enclave_hash = singleton_mr;
  out.sign(signer);
  return out;
}

}  // namespace sinclave::core
