#include "core/on_demand.h"

#include <string>

#include "common/error.h"
#include "common/status.h"

namespace sinclave::core {

OnDemandSigner::OnDemandSigner(const sgx::SigStruct& common,
                               const crypto::RsaKeyPair& signer)
    : common_(common), signer_(signer) {
  if (!(common_.signer_key == signer_.public_key()))
    throw Error("on-demand sigstruct: common sigstruct from different signer");
  if (!common_.signature_valid())
    throw Error(std::string("on-demand sigstruct: ") +
                status_message(StatusCode::kBadSignature));
}

sgx::SigStruct OnDemandSigner::make(const sgx::Measurement& singleton_mr) {
  sgx::SigStruct out = common_;
  out.enclave_hash = singleton_mr;
  out.sign(signer_, scratch_);
  return out;
}

sgx::SigStruct make_on_demand_sigstruct(const sgx::SigStruct& common,
                                        const sgx::Measurement& singleton_mr,
                                        const crypto::RsaKeyPair& signer) {
  return OnDemandSigner(common, signer).make(singleton_mr);
}

}  // namespace sinclave::core
