#include "core/predictor.h"

#include "sgx/measurement.h"

namespace sinclave::core {

sgx::Measurement MeasurementPredictor::finish(const BaseHash& base,
                                              ByteView page_content) {
  sgx::MeasurementLog log = sgx::MeasurementLog::resume(base.state);
  log.add_measured_page(base.instance_page_offset, sgx::SecInfo::reg_rw(),
                        page_content);
  return log.finalize();
}

sgx::Measurement MeasurementPredictor::predict(const BaseHash& base,
                                               const InstancePage& page) {
  return finish(base, page.render());
}

sgx::Measurement MeasurementPredictor::predict_common(const BaseHash& base) {
  const Bytes zero_page(sgx::kPageSize, 0);
  return finish(base, zero_page);
}

}  // namespace sinclave::core
