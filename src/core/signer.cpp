#include "core/signer.h"

#include "common/error.h"
#include "sgx/measurement.h"

namespace sinclave::core {

namespace {

/// Shared all-zero page for heap/instance measurement (these paths run per
/// signing and per prediction; no point re-zeroing 4 KiB each time).
const Bytes& zero_page() {
  static const Bytes page(sgx::kPageSize, 0);
  return page;
}

/// Replays the full construction stream of `image` into `log`, stopping
/// before the instance page. `after_op` runs after every measurement
/// operation (the interruptible path uses it to export the hash state —
/// the suspend/resume cost the paper attributes the signing overhead to).
template <typename Log, typename AfterOp>
void measure_until_instance_page(Log& log, const EnclaveImage& image,
                                 AfterOp&& after_op) {
  log.ecreate(image.ssa_frame_size, image.total_size());
  after_op();

  for (std::uint64_t p = 0; p < image.code_pages(); ++p) {
    const Bytes page = image.code_page(p);
    log.eadd(p * sgx::kPageSize, sgx::SecInfo::reg_rx());
    after_op();
    for (std::size_t c = 0; c < sgx::kChunksPerPage; ++c) {
      log.eextend(p * sgx::kPageSize + c * sgx::kExtendChunkSize,
                  ByteView{page.data() + c * sgx::kExtendChunkSize,
                           sgx::kExtendChunkSize});
      after_op();
    }
  }

  const std::uint64_t heap_base = image.code_bytes_padded();
  for (std::uint64_t p = 0; p < image.heap_pages(); ++p) {
    const std::uint64_t off = heap_base + p * sgx::kPageSize;
    log.eadd(off, sgx::SecInfo::reg_rw());
    after_op();
    for (std::size_t c = 0; c < sgx::kChunksPerPage; ++c) {
      log.eextend(off + c * sgx::kExtendChunkSize,
                  ByteView{zero_page().data() + c * sgx::kExtendChunkSize,
                           sgx::kExtendChunkSize});
      after_op();
    }
  }
}

/// Appends the (zeroed) instance page to finish a *common* measurement.
template <typename Log>
void measure_zero_instance_page(Log& log, const EnclaveImage& image) {
  log.add_measured_page(image.instance_page_offset(), sgx::SecInfo::reg_rw(),
                        zero_page());
}

}  // namespace

Signer::Signer(const crypto::RsaKeyPair* key) : key_(key) {
  if (key_ == nullptr) throw Error("signer: key required");
}

sgx::Measurement Signer::measure_fast(const EnclaveImage& image) const {
  sgx::FastMeasurementLog log;
  measure_until_instance_page(log, image, [] {});
  measure_zero_instance_page(log, image);
  return log.finalize();
}

Signer::InterruptibleMeasurement Signer::measure_interruptible(
    const EnclaveImage& image) const {
  sgx::MeasurementLog log;
  crypto::Sha256State scratch{};
  // Export after every operation: the interruptible implementation's
  // defining cost (and capability).
  measure_until_instance_page(log, image,
                              [&] { scratch = log.export_state(); });

  InterruptibleMeasurement out;
  out.base_hash.state = log.export_state();
  out.base_hash.enclave_size = image.total_size();
  out.base_hash.instance_page_offset = image.instance_page_offset();
  out.base_hash.ssa_frame_size = image.ssa_frame_size;

  measure_zero_instance_page(log, image);
  out.mr_enclave = log.finalize();
  return out;
}

sgx::SigStruct Signer::make_sigstruct(const EnclaveImage& image,
                                      const sgx::Measurement& mr) const {
  sgx::SigStruct sig;
  sig.enclave_hash = mr;
  sig.attributes = image.attributes;
  // Enforce every attribute bit except INIT (set by hardware).
  sig.attribute_mask =
      sgx::Attributes{~std::uint64_t{sgx::Attributes::kInit}, ~std::uint64_t{0}};
  sig.isv_prod_id = image.isv_prod_id;
  sig.isv_svn = image.isv_svn;
  sig.date = 20231105;  // the paper's arXiv date; informational only
  sig.debug_allowed = image.attributes.debug();
  sig.sign(*key_);
  return sig;
}

SignedImage Signer::sign_baseline(const EnclaveImage& image) const {
  return SignedImage{make_sigstruct(image, measure_fast(image))};
}

SinclaveSignedImage Signer::sign_sinclave(const EnclaveImage& image) const {
  const InterruptibleMeasurement m = measure_interruptible(image);
  return SinclaveSignedImage{make_sigstruct(image, m.mr_enclave), m.base_hash};
}

}  // namespace sinclave::core
