// The base enclave hash — SinClave's central artifact (§4.4).
//
// A base hash is the *suspended* SHA-256 state of an enclave measurement,
// captured after the whole enclave except the final instance page has been
// measured, together with the structural facts a verifier needs to finish
// the computation for any candidate instance page:
//
//   * the suspended hash state (8 words + block-aligned length),
//   * the enclave size and SSA frame size (fixed by ECREATE),
//   * the offset where the instance page will be added.
//
// The signer ships this (embedded next to the common SigStruct) instead of
// — not in place of — the final measurement; the verifier can then compute
// the unique expected MRENCLAVE for a singleton enclave carrying any token
// without rehashing the whole enclave: only one page of measurement work
// plus finalization (the constant ~32 us of Fig. 6) remains.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace sinclave::core {

struct BaseHash {
  crypto::Sha256State state;
  std::uint64_t enclave_size = 0;
  std::uint64_t instance_page_offset = 0;
  std::uint32_t ssa_frame_size = 1;

  Bytes encode() const;
  static BaseHash decode(ByteView data);

  friend bool operator==(const BaseHash&, const BaseHash&) = default;
};

}  // namespace sinclave::core
