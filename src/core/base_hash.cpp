#include "core/base_hash.h"

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::core {

namespace {
constexpr std::uint32_t kBaseHashMagic = 0x42534831;  // "BSH1"
}

Bytes BaseHash::encode() const {
  ByteWriter w;
  w.u32(kBaseHashMagic);
  w.bytes(state.encode());
  w.u64(enclave_size);
  w.u64(instance_page_offset);
  w.u32(ssa_frame_size);
  return std::move(w).take();
}

BaseHash BaseHash::decode(ByteView data) {
  ByteReader r(data);
  if (r.u32() != kBaseHashMagic) throw ParseError("base hash: bad magic");
  BaseHash b;
  b.state = crypto::Sha256State::decode(r.bytes());
  b.enclave_size = r.u64();
  b.instance_page_offset = r.u64();
  b.ssa_frame_size = r.u32();
  r.expect_done();
  if (b.instance_page_offset >= b.enclave_size)
    throw ParseError("base hash: instance page outside enclave");
  return b;
}

}  // namespace sinclave::core
