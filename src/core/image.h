// Enclave binary images and their memory layout.
//
// An EnclaveImage is what the signer measures and the starter loads — the
// simulator's equivalent of a SCONE-built ELF binary. Layout (Fig. 5):
//
//   offset 0 ........... code/data pages (RX, measured content)
//   code_end ........... heap pages (RW, measured zero pages)
//   total - 4096 ....... the instance page (RW; zero for common enclaves,
//                        token + verifier id for singletons)
//
// The instance page slot exists in *every* image so baseline and SinClave
// enclaves are byte-comparable; the baseline simply leaves it zeroed.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "sgx/types.h"

namespace sinclave::core {

struct EnclaveImage {
  /// Program name (informational; shows up in policies and logs).
  std::string name;
  /// Code+data content; padded to a page multiple when measured.
  Bytes code;
  /// Heap size in bytes (page multiple).
  std::uint64_t heap_bytes = 1 << 20;
  sgx::Attributes attributes;
  std::uint32_t ssa_frame_size = 1;
  std::uint16_t isv_prod_id = 0;
  std::uint16_t isv_svn = 0;

  std::uint64_t code_bytes_padded() const;
  std::uint64_t code_pages() const { return code_bytes_padded() / sgx::kPageSize; }
  std::uint64_t heap_pages() const;
  /// Offset of the instance page (always the last page).
  std::uint64_t instance_page_offset() const;
  /// Total enclave size including the instance page.
  std::uint64_t total_size() const;

  /// One code page's content, zero-padded at the tail of the code segment.
  Bytes code_page(std::uint64_t page_index) const;

  /// Deterministic synthetic image of roughly `code_size` bytes of "code"
  /// — used by tests, benchmarks and examples in place of a real binary.
  static EnclaveImage synthetic(const std::string& name,
                                std::size_t code_size,
                                std::uint64_t heap_bytes);

  Bytes serialize() const;
  static EnclaveImage deserialize(ByteView data);

  friend bool operator==(const EnclaveImage&, const EnclaveImage&) = default;
};

}  // namespace sinclave::core
