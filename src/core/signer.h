// The enclave signer tool (the SCONE signing step, §5.2 "Enclave Program
// Compilation").
//
// Two signing paths exist and both are benchmarked in Fig. 7a:
//   * sign_baseline  — measures the image with the optimized SHA-256 and
//     produces only the common SigStruct (today's SCONE behaviour),
//   * sign_sinclave  — measures with the *interruptible* SHA-256, exports
//     the hash state after every construction operation (that per-operation
//     suspend/resume is the paper's explanation for the 4x signing
//     overhead), and additionally emits the BaseHash captured just before
//     the instance page.
//
// Both paths measure the same operation stream, so they produce identical
// common MRENCLAVE values — asserted by tests.
#pragma once

#include "core/base_hash.h"
#include "core/image.h"
#include "crypto/rsa.h"
#include "sgx/sigstruct.h"

namespace sinclave::core {

/// Result of the baseline signing path.
struct SignedImage {
  sgx::SigStruct sigstruct;  // pins the common (zero instance page) MRENCLAVE
};

/// Result of the SinClave signing path.
struct SinclaveSignedImage {
  sgx::SigStruct sigstruct;  // the *common* SigStruct (same as baseline's)
  BaseHash base_hash;        // suspended state for verifier-side finalization
};

class Signer {
 public:
  /// The signer key is borrowed; in the SinClave deployment model it is
  /// subsequently uploaded to the trusted verifier (CAS), which needs it
  /// for on-demand SigStruct creation.
  explicit Signer(const crypto::RsaKeyPair* key);

  SignedImage sign_baseline(const EnclaveImage& image) const;
  SinclaveSignedImage sign_sinclave(const EnclaveImage& image) const;

  /// Measurement of the common enclave using the optimized hasher
  /// (baseline path), without signing.
  sgx::Measurement measure_fast(const EnclaveImage& image) const;

  /// Measurement + base hash using the interruptible hasher (SinClave
  /// path), without signing.
  struct InterruptibleMeasurement {
    sgx::Measurement mr_enclave;
    BaseHash base_hash;
  };
  InterruptibleMeasurement measure_interruptible(const EnclaveImage& image) const;

 private:
  sgx::SigStruct make_sigstruct(const EnclaveImage& image,
                                const sgx::Measurement& mr) const;

  const crypto::RsaKeyPair* key_;
};

}  // namespace sinclave::core
