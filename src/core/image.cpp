#include "core/image.h"

#include <cstring>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/drbg.h"

namespace sinclave::core {

std::uint64_t EnclaveImage::code_bytes_padded() const {
  const std::uint64_t pages =
      (code.size() + sgx::kPageSize - 1) / sgx::kPageSize;
  return std::max<std::uint64_t>(pages, 1) * sgx::kPageSize;
}

std::uint64_t EnclaveImage::heap_pages() const {
  if (heap_bytes % sgx::kPageSize != 0)
    throw Error("image: heap size must be a page multiple");
  return heap_bytes / sgx::kPageSize;
}

std::uint64_t EnclaveImage::instance_page_offset() const {
  return code_bytes_padded() + heap_bytes;
}

std::uint64_t EnclaveImage::total_size() const {
  return instance_page_offset() + sgx::kPageSize;
}

Bytes EnclaveImage::code_page(std::uint64_t page_index) const {
  if (page_index >= code_pages()) throw Error("image: code page out of range");
  Bytes page(sgx::kPageSize, 0);
  const std::size_t start = page_index * sgx::kPageSize;
  if (start < code.size()) {
    const std::size_t n = std::min<std::size_t>(sgx::kPageSize,
                                                code.size() - start);
    std::memcpy(page.data(), code.data() + start, n);
  }
  return page;
}

EnclaveImage EnclaveImage::synthetic(const std::string& name,
                                     std::size_t code_size,
                                     std::uint64_t heap_bytes) {
  EnclaveImage img;
  img.name = name;
  crypto::Drbg rng(to_bytes(name), "synthetic-image");
  img.code = rng.generate(code_size);
  img.heap_bytes = heap_bytes;
  return img;
}

Bytes EnclaveImage::serialize() const {
  ByteWriter w;
  w.str(name);
  w.bytes(code);
  w.u64(heap_bytes);
  w.u64(attributes.flags);
  w.u64(attributes.xfrm);
  w.u32(ssa_frame_size);
  w.u16(isv_prod_id);
  w.u16(isv_svn);
  return std::move(w).take();
}

EnclaveImage EnclaveImage::deserialize(ByteView data) {
  ByteReader r(data);
  EnclaveImage img;
  img.name = r.str();
  img.code = r.bytes();
  img.heap_bytes = r.u64();
  img.attributes.flags = r.u64();
  img.attributes.xfrm = r.u64();
  img.ssa_frame_size = r.u32();
  img.isv_prod_id = r.u16();
  img.isv_svn = r.u16();
  r.expect_done();
  return img;
}

}  // namespace sinclave::core
