// Verifier-side measurement prediction ("Verifiable Enclave Extension",
// §4.4).
//
// Given a base hash and a candidate instance page, the verifier resumes the
// suspended SHA-256 state, folds in exactly the measurement operations the
// starter must execute for the instance page (one EADD + 16 EEXTENDs), and
// finalizes. The result is the unique MRENCLAVE the singleton enclave will
// have — computable without access to the enclave binary and in constant
// time (one page of hashing + finalization).
#pragma once

#include <optional>

#include "core/base_hash.h"
#include "core/instance_page.h"
#include "sgx/types.h"

namespace sinclave::core {

class MeasurementPredictor {
 public:
  /// Expected MRENCLAVE of the singleton enclave carrying `page`.
  static sgx::Measurement predict(const BaseHash& base,
                                  const InstancePage& page);

  /// Expected MRENCLAVE of the common enclave (zeroed instance page) —
  /// lets the verifier cross-check a received common SigStruct against a
  /// received base hash without trusting either in isolation.
  static sgx::Measurement predict_common(const BaseHash& base);

 private:
  static sgx::Measurement finish(const BaseHash& base, ByteView page_content);
};

}  // namespace sinclave::core
