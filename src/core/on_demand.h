// On-demand SigStruct creation (§4.4).
//
// EINIT only accepts an enclave whose MRENCLAVE matches a SigStruct signed
// by the enclave signer. Because every singleton enclave has a unique
// MRENCLAVE, the verifier — which holds the signer's private key — must
// mint a fresh SigStruct per instance. The on-demand SigStruct is identical
// to the common one except for the enclave hash (and consequently the
// signature); in particular MRSIGNER, attributes, product id and SVN are
// preserved, so sealing-key derivations and signer-based policies are
// unaffected.
#pragma once

#include "crypto/rsa.h"
#include "sgx/sigstruct.h"

namespace sinclave::core {

/// Derive the per-instance SigStruct from the signer-approved common one.
/// `common` must already verify under `signer`'s public key — creating
/// singleton SigStructs for enclaves the signer never approved would let
/// anyone with verifier access mint arbitrary enclaves under the signer's
/// identity. Throws Error on that precondition.
sgx::SigStruct make_on_demand_sigstruct(const sgx::SigStruct& common,
                                        const sgx::Measurement& singleton_mr,
                                        const crypto::RsaKeyPair& signer);

/// Batch form of the same derivation: the signer-approval precondition is
/// checked once at construction (one RSA verification for the whole
/// batch — not one per credential), and every make() reuses a single
/// Montgomery scratch arena. Not thread-safe; one instance per minting
/// thread or batch job.
class OnDemandSigner {
 public:
  /// Throws Error when `common` is not the `signer`'s or does not verify.
  /// Both references are borrowed and must outlive the signer.
  OnDemandSigner(const sgx::SigStruct& common,
                 const crypto::RsaKeyPair& signer);

  sgx::SigStruct make(const sgx::Measurement& singleton_mr);

 private:
  const sgx::SigStruct& common_;
  const crypto::RsaKeyPair& signer_;
  crypto::Montgomery::Scratch scratch_;
};

}  // namespace sinclave::core
