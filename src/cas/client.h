// CasClient — the one client SDK for the CAS wire API.
//
// Every caller that used to hand-roll `InstanceRequest{...}.serialize()` +
// `net.call(...)` + `deserialize` (starter, impersonator, load generator,
// examples, benchmarks) goes through this instead. The SDK owns:
//
//   * envelope framing (protocol version, command, request ids) and
//     response validation (version/command/id echo),
//   * typed results: every operation yields a Status — no string matching,
//   * retry with exponential backoff on *retryable* statuses (kUnavailable
//     and transport-level failures); typed refusals like
//     kUnsupportedVersion or kBadSignature are surfaced immediately,
//   * a sync call path and a completion-token async path
//     (SimNetwork::async_call) for open-loop issuers,
//   * the attested secure-channel flow (AttestedChannel): handshake with a
//     quote bound to the channel key, then typed config fetch.
//
// Thread-safe: one CasClient may be shared by many threads; the cached
// connection is re-established under a lock after transport failures.
// Lifetime: the client's state lives behind a shared_ptr Core that every
// async completion holds — destroying a CasClient with requests in flight
// is safe, late completions still deliver (mirroring SimNetwork's
// Connection design).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cas/protocol.h"
#include "common/status.h"
#include "crypto/drbg.h"
#include "net/secure_channel.h"
#include "net/sim_network.h"

namespace sinclave::cas {

struct RetryPolicy {
  /// Total attempts, including the first (1 = never retry).
  std::size_t max_attempts = 3;
  /// Base of the backoff window before the first retry; the window
  /// doubles per further retry (saturating at max_backoff) and the actual
  /// sleep is drawn *full-jitter* — uniform in [0, window] — so a fleet
  /// of clients knocked back by the same brownout does not return as a
  /// synchronized retry storm. Only the sync path sleeps — the async path
  /// re-issues immediately (an async issuer models pacing itself; see
  /// get_instance_async). A server retry-after hint, when present in a
  /// kUnavailable detail, overrides the drawn sleep.
  std::chrono::microseconds initial_backoff{200};
  /// Saturation cap for one backoff window.
  std::chrono::microseconds max_backoff{100'000};
  /// Seed of the jitter stream. 0 (the default) auto-derives a distinct
  /// seed per CasClient, so even a fleet constructed with identical
  /// configs de-synchronizes; set nonzero for bit-reproducible sleeps.
  std::uint64_t jitter_seed = 0;
  /// Overall per-operation time budget across attempts AND backoff
  /// sleeps (0 = unlimited). When the remaining budget cannot fit the
  /// next backoff, the operation returns its last typed failure instead
  /// of burning the rest of max_attempts.
  std::chrono::microseconds deadline{0};
  /// Circuit breaker: this many *consecutive* retryable failures open it
  /// (0 = disabled). While open, operations fail fast — typed
  /// kUnavailable with breaker_open_detail(), zero wire attempts — until
  /// breaker_cooldown elapses and the next operation probes.
  std::size_t breaker_threshold = 0;
  std::chrono::microseconds breaker_cooldown{50'000};

  /// The backoff drawn before retry #`retry` (1-based) from jitter stream
  /// `seed`: uniform in [0, min(max_backoff, initial_backoff <<
  /// (retry-1))]. A pure function — tests assert both reproducibility
  /// (same seed => same schedule) and fleet de-synchronization (distinct
  /// seeds => distinct schedules).
  std::chrono::microseconds backoff_before(std::size_t retry,
                                           std::uint64_t seed) const;
};

struct CasClientConfig {
  /// Base CAS address; the instance endpoint listens at
  /// `address + ".instance"`, the attestation endpoint at `address`.
  std::string address;
  /// Replicated-cluster membership (base addresses; may include
  /// `address`). When non-empty, two routing behaviors turn on:
  ///   * a kNotLeader answer whose detail parses to a leader hint
  ///     re-routes the NEXT attempt to that address immediately — no
  ///     backoff sleep (the cluster told us exactly where to go);
  ///   * transport failures and hintless kNotLeader answers rotate to the
  ///     next cluster peer before the normal paced retry, so a killed
  ///     leader is survived by discovering its successor.
  /// Empty (the default) keeps the single-server behavior bit-for-bit.
  std::vector<std::string> cluster;
  RetryPolicy retry;
};

/// Outcome of a singleton retrieval. Credential fields are meaningful only
/// when status.ok().
struct InstanceResult {
  Status status{StatusCode::kUnavailable};
  core::AttestationToken token;
  Hash256 verifier_id;
  sgx::SigStruct singleton_sigstruct;
  /// Attempts spent (retries + 1); observability for retry tests. 0 means
  /// the circuit breaker failed the operation fast — nothing touched the
  /// wire.
  std::size_t attempts = 0;

  bool ok() const { return status.ok(); }
};

class CasClient {
 public:
  CasClient(net::SimNetwork* net, CasClientConfig config);

  const CasClientConfig& config() const;

  /// Eagerly (re)open the instance-endpoint connection, paying the connect
  /// latency now instead of on the first call. Returns kUnavailable when
  /// nothing listens there.
  Status connect();

  /// Synchronous singleton retrieval. Retries per the RetryPolicy on
  /// retryable statuses and transport failures, reconnecting in between;
  /// typed refusals return immediately.
  InstanceResult get_instance(const std::string& session_name,
                              const sgx::SigStruct& common_sigstruct);

  /// Fetch the server's observability snapshot — metrics in the requested
  /// format plus recent and slow traces — over the instance endpoint
  /// (Command::kIntrospect). Same retry/reconnect behavior as
  /// get_instance; a pre-introspection server answers kUnknownCommand.
  IntrospectResponse introspect(const IntrospectRequest& request = {});

  /// Completion-token retrieval over SimNetwork::async_call: returns after
  /// dispatch; `callback` runs exactly once, on whatever thread completes
  /// the request — even if this CasClient has been destroyed by then (the
  /// completion keeps the client's shared Core alive). Retryable failures
  /// are re-issued inline (no backoff sleeps on the completion thread) up
  /// to the retry budget.
  using InstanceCallback = std::function<void(InstanceResult)>;
  void get_instance_async(const std::string& session_name,
                          const sgx::SigStruct& common_sigstruct,
                          InstanceCallback callback);

  /// Client-side resilience counters. trips = times the breaker opened;
  /// fast_fails = operations (or async re-issues) refused while open;
  /// leader_redirects = attempts re-routed by a kNotLeader leader hint.
  struct Stats {
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_fast_fails = 0;
    std::uint64_t leader_redirects = 0;
  };
  Stats stats() const;

  /// The base address requests currently target (== config().address
  /// until a leader hint or peer rotation moved it). Failover
  /// observability for tests and benches.
  std::string current_address() const;

 private:
  struct Core;
  static void issue_async(std::shared_ptr<Core> core, Bytes wire,
                          std::uint64_t request_id,
                          std::size_t attempts_left,
                          std::size_t attempts_used,
                          std::chrono::steady_clock::time_point deadline_at,
                          InstanceCallback callback);

  std::shared_ptr<Core> core_;
};

/// The attested (secure-channel) flow, typed end to end:
///
///   AttestedChannel ch(&net, cas_address, std::move(rng));
///   // bind ch.dh_public() into the quote's REPORTDATA...
///   Status s = ch.attest(cas_identity, payload);
///   Result<AppConfig> cfg = ch.get_config();
///
/// The channel key exists before the handshake so the caller can commit to
/// it in a report (net::channel_binding). Not thread-safe (one channel =
/// one logical client).
class AttestedChannel {
 public:
  AttestedChannel(net::SimNetwork* net, std::string cas_address,
                  crypto::Drbg rng);

  /// The DH public key to commit into REPORTDATA before attesting.
  const Bytes& dh_public() const { return client_.dh_public(); }

  /// Run the handshake: kAttest envelope carrying `payload`, server
  /// identity pinned to `cas_identity`. kOk on acceptance;
  /// kAttestationRejected when the verifier refused (or a typed
  /// protocol-level code like kUnsupportedVersion when the rejection
  /// record carried one); kUnavailable on transport failure; throws
  /// net::IdentityMismatchError only on server-identity mismatch (an
  /// active attack — never mapped to a Status).
  Status attest(const crypto::RsaPublicKey& cas_identity,
                const AttestPayload& payload);

  /// Typed config fetch over the attested channel.
  Result<AppConfig> get_config();

  bool attested() const { return client_.connected(); }

 private:
  net::SimNetwork* net_;
  std::string cas_address_;
  net::SecureClient client_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace sinclave::cas
