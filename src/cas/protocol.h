// Wire protocol between enclaves/starters and the CAS verifier service.
//
// Two endpoints:
//  * the *instance* endpoint (plain RPC — nothing secret flows here): the
//    untrusted starter requests an attestation token + on-demand SigStruct
//    for a session ("Singleton Page Retrieval", Fig. 7c),
//  * the *attestation* endpoint (secure channel): the enclave runtime — or,
//    in the attack, the TEE impersonator — presents a quote bound to the
//    channel and (in SinClave mode) its attestation token, and receives the
//    application configuration.
//
// Framing (protocol v1): every message on either endpoint travels inside a
// versioned Envelope
//
//     magic u32 | version u16 | command u8 | flags u8 | request_id u64
//     | payload (u32-length-prefixed)
//
// and every response payload leads with a typed Status (StatusCode u8 +
// optional detail string) instead of the seed-era `bool ok + string error`.
// Version rules: a server answers frames of its own major version in kind;
// frames with a HIGHER version get a well-formed current-version response
// carrying kUnsupportedVersion (the payload layout of the Status prefix is
// frozen, so future clients can always decode the refusal); frames that are
// not envelopes at all are served on the legacy (v0) path — decoded as the
// seed-era raw message and answered in the seed-era encoding — so old peers
// keep working. Unknown commands get kUnknownCommand, undecodable payloads
// kMalformedRequest; a frontend never answers a parse failure with a
// dropped or garbage reply.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/serial.h"
#include "common/status.h"
#include "core/instance_page.h"
#include "quote/quote.h"
#include "sgx/sigstruct.h"

namespace sinclave::cas {

// --- envelope ---------------------------------------------------------------

/// First four bytes of every enveloped frame. Legacy (v0) frames can never
/// collide: a v0 instance request starts with a u32 session-name length and
/// a v0 secure-channel plaintext with a u8 command — neither reaches this
/// value.
inline constexpr std::uint32_t kEnvelopeMagic = 0xC0A5E4F1u;
/// Current protocol version spoken by this build.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Wire commands (u8; append only).
enum class Command : std::uint8_t {
  /// Instance endpoint: singleton retrieval (token + on-demand SigStruct).
  kGetInstance = 1,
  /// Attested endpoint: fetch the application configuration.
  kGetConfig = 2,
  /// Attested endpoint: the handshake payload (quote + token).
  kAttest = 3,
  /// Instance endpoint: observability introspection — metrics snapshot,
  /// recent traces, slow-request log. Envelope-only (v1+): there is no
  /// legacy encoding because no v0 peer ever spoke it.
  kIntrospect = 4,
  // Inter-CAS replication traffic (cas/replication.h). These ride ONLY
  // v2 envelopes on the dedicated `<address>.raft` endpoint — a v1 client
  // endpoint receiving one answers kUnknownCommand, and a v1 client
  // hitting the raft endpoint answers kUnsupportedVersion, so the v1
  // surface is untouched.
  /// Raft leader election: RequestVote.
  kVoteRequest = 5,
  /// Raft log replication + heartbeat: AppendEntries.
  kAppendEntries = 6,
  /// Raft snapshot transfer for lagging/compacted followers.
  kInstallSnapshot = 7,
};

/// Stable name for logs/metrics ("get-instance", ...).
const char* to_string(Command command);

struct Envelope {
  std::uint16_t version = kProtocolVersion;
  Command command = Command::kGetInstance;
  std::uint64_t request_id = 0;
  Bytes payload;

  Bytes serialize() const;
  static Envelope deserialize(ByteView data);
  /// Cheap sniff: does this frame start with the envelope magic? (False
  /// selects the legacy v0 decode path.)
  static bool matches(ByteView data);

  /// Response envelope echoing this request's command and id.
  Envelope reply(Bytes response_payload) const;

  /// Cheap header peek: the request id of an enveloped frame without
  /// decoding (or validating) the payload — what the event-driven
  /// frontend stamps into a TraceContext at accept time, before any
  /// worker touches the frame. Nullopt for legacy/truncated frames.
  static std::optional<std::uint64_t> peek_request_id(ByteView data);
};

// --- messages ---------------------------------------------------------------

/// Application configuration: everything the paper lists as
/// behaviour-determining yet unmeasured — program selection, arguments,
/// environment, secrets, the filesystem key and the expected filesystem
/// state ("completeness").
struct AppConfig {
  std::string program;
  std::vector<std::string> args;
  std::map<std::string, std::string> env;
  std::map<std::string, Bytes> secrets;
  Bytes fs_key;              // 32-byte volume key (empty: no volume)
  Hash256 fs_manifest_root;  // expected volume manifest (ignored if no key)

  Bytes serialize() const;
  static AppConfig deserialize(ByteView data);

  friend bool operator==(const AppConfig&, const AppConfig&) = default;
};

/// Starter -> CAS (instance endpoint, envelope payload of kGetInstance).
struct InstanceRequest {
  std::string session_name;
  sgx::SigStruct common_sigstruct;

  Bytes serialize() const;
  static InstanceRequest deserialize(ByteView data);
};

/// CAS -> starter (instance endpoint). Typed status; credential fields are
/// meaningful only when status.ok(). Defaults to kInternal — like the
/// seed's `bool ok = false`, a response must be explicitly marked ok.
struct InstanceResponse {
  Status status{StatusCode::kInternal};
  core::AttestationToken token;
  Hash256 verifier_id;  // hash of the CAS identity key the enclave must pin
  sgx::SigStruct singleton_sigstruct;

  bool ok() const { return status.ok(); }

  Bytes serialize() const;  // v1 payload (Status-prefixed)
  static InstanceResponse deserialize(ByteView data);
  /// Seed-era (v0) encoding: `u8 ok | str error | ...` — what legacy peers
  /// sent and still receive. Decoding reverse-maps the canonical error
  /// strings back onto StatusCodes.
  Bytes serialize_v0() const;
  static InstanceResponse deserialize_v0(ByteView data);
};

/// Client handshake payload on the attestation endpoint (envelope payload
/// of kAttest; legacy peers send it raw).
struct AttestPayload {
  std::string session_name;
  quote::Quote quote;
  /// Present in SinClave (singleton) mode only.
  std::optional<core::AttestationToken> token;

  Bytes serialize() const;
  static AttestPayload deserialize(ByteView data);
};

/// Encrypted response to kGetConfig. Config meaningful only when
/// status.ok(); defaults to kInternal (must be explicitly marked ok).
struct ConfigResponse {
  Status status{StatusCode::kInternal};
  AppConfig config;

  bool ok() const { return status.ok(); }

  Bytes serialize() const;  // v1 payload (Status-prefixed)
  static ConfigResponse deserialize(ByteView data);
  Bytes serialize_v0() const;  // seed-era `u8 ok | str error | config`
  static ConfigResponse deserialize_v0(ByteView data);
};

/// How an IntrospectResponse's metrics snapshot is rendered.
enum class MetricsFormat : std::uint8_t {
  kJson = 0,
  kPrometheus = 1,
  kText = 2,
};

/// Client -> CAS (instance endpoint, envelope payload of kIntrospect).
/// An EMPTY payload is valid and means "all defaults" — a debugging
/// client can poke the endpoint with a bare envelope.
struct IntrospectRequest {
  /// Most recent completed traces to return (bounded server-side).
  std::uint32_t max_traces = 8;
  bool include_slow = true;
  MetricsFormat format = MetricsFormat::kJson;

  Bytes serialize() const;
  static IntrospectRequest deserialize(ByteView data);
};

/// One completed trace on the wire: the span tree flattened in start
/// order, offsets relative to the trace start (absolute steady-clock
/// timestamps are meaningless across processes).
struct TraceReport {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::int64_t duration_ns = 0;

  struct Phase {
    std::string name;
    std::uint32_t depth = 0;
    std::int64_t offset_ns = 0;  // from trace start
    std::int64_t duration_ns = 0;
  };
  std::vector<Phase> phases;

  void write(ByteWriter& w) const;
  static TraceReport read(ByteReader& r);
};

/// CAS -> client. Metrics/traces meaningful only when status.ok().
struct IntrospectResponse {
  Status status{StatusCode::kInternal};
  /// Registry snapshot rendered in the requested MetricsFormat.
  std::string metrics;
  /// Most recent completed traces, newest first.
  std::vector<TraceReport> traces;
  /// Retained slow-request log, oldest first (empty if not requested).
  std::vector<TraceReport> slow_traces;

  bool ok() const { return status.ok(); }

  Bytes serialize() const;
  static IntrospectResponse deserialize(ByteView data);
};

/// Map a legacy (v0) error string back to its StatusCode. Strings that are
/// not canonical messages decode as kInternal with the string preserved as
/// the detail.
StatusCode status_code_from_legacy(const std::string& error);

// --- shared frontend glue ---------------------------------------------------

/// What a decoded frame turned out to be — both serving frontends bump
/// their per-command metrics from this, so classification can't drift.
struct FrameInfo {
  bool legacy = false;                      // served on the v0 path
  std::uint16_t version = kProtocolVersion; // as sent by the peer
  Command command = Command::kGetInstance;
  std::uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;      // status of the answer
};

using InstanceHandler =
    std::function<InstanceResponse(const InstanceRequest&)>;

/// Serve one instance-endpoint frame: decode (envelope or legacy v0),
/// version-check, dispatch kGetInstance to `handler`, and encode the
/// response in the flavor the peer spoke. Never throws on malformed input —
/// deserializer exceptions become kMalformedRequest answers, handler
/// exceptions kInternal. Used verbatim by CasService::bind and
/// server::CasServer so the two frontends answer identically.
Bytes serve_instance_frame(ByteView raw, const InstanceHandler& handler,
                           FrameInfo* info = nullptr);

using IntrospectHandler =
    std::function<IntrospectResponse(const IntrospectRequest&)>;

/// serve_instance_frame with the observability command wired in: frames
/// carrying Command::kIntrospect dispatch to `introspect` (version-gated
/// like everything else; a null handler answers kUnknownCommand exactly
/// as the overload above does, so frontends without introspection stay
/// indistinguishable from older servers).
Bytes serve_instance_frame(ByteView raw, const InstanceHandler& handler,
                           const IntrospectHandler& introspect,
                           FrameInfo* info = nullptr);

using ConfigHandler = std::function<ConfigResponse()>;

/// Serve one decrypted attested-endpoint record: dispatch kGetConfig to
/// `handler` with the same envelope/legacy/version/command handling as the
/// instance endpoint.
Bytes serve_config_frame(ByteView plaintext, const ConfigHandler& handler,
                         FrameInfo* info = nullptr);

/// Decode a handshake payload that may be either an envelope-wrapped
/// (v1, kAttest) or raw legacy AttestPayload. Returns nullopt — never
/// throws — when the bytes are neither. `info` reports which flavor the
/// peer spoke so the accept payload can answer in kind (Envelope::reply
/// for v1, raw bytes for legacy).
std::optional<AttestPayload> decode_attest_payload(ByteView raw,
                                                   FrameInfo* info = nullptr);

}  // namespace sinclave::cas
