// Wire protocol between enclaves/starters and the CAS verifier service.
//
// Two endpoints:
//  * the *instance* endpoint (plain RPC — nothing secret flows here): the
//    untrusted starter requests an attestation token + on-demand SigStruct
//    for a session ("Singleton Page Retrieval", Fig. 7c),
//  * the *attestation* endpoint (secure channel): the enclave runtime — or,
//    in the attack, the TEE impersonator — presents a quote bound to the
//    channel and (in SinClave mode) its attestation token, and receives the
//    application configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/instance_page.h"
#include "quote/quote.h"
#include "sgx/sigstruct.h"

namespace sinclave::cas {

/// Application configuration: everything the paper lists as
/// behaviour-determining yet unmeasured — program selection, arguments,
/// environment, secrets, the filesystem key and the expected filesystem
/// state ("completeness").
struct AppConfig {
  std::string program;
  std::vector<std::string> args;
  std::map<std::string, std::string> env;
  std::map<std::string, Bytes> secrets;
  Bytes fs_key;              // 32-byte volume key (empty: no volume)
  Hash256 fs_manifest_root;  // expected volume manifest (ignored if no key)

  Bytes serialize() const;
  static AppConfig deserialize(ByteView data);

  friend bool operator==(const AppConfig&, const AppConfig&) = default;
};

/// Starter -> CAS (instance endpoint).
struct InstanceRequest {
  std::string session_name;
  sgx::SigStruct common_sigstruct;

  Bytes serialize() const;
  static InstanceRequest deserialize(ByteView data);
};

/// CAS -> starter (instance endpoint).
struct InstanceResponse {
  bool ok = false;
  std::string error;  // set when !ok
  core::AttestationToken token;
  Hash256 verifier_id;  // hash of the CAS identity key the enclave must pin
  sgx::SigStruct singleton_sigstruct;

  Bytes serialize() const;
  static InstanceResponse deserialize(ByteView data);
};

/// Client handshake payload on the attestation endpoint.
struct AttestPayload {
  std::string session_name;
  quote::Quote quote;
  /// Present in SinClave (singleton) mode only.
  std::optional<core::AttestationToken> token;

  Bytes serialize() const;
  static AttestPayload deserialize(ByteView data);
};

/// Encrypted request commands on an attested session.
enum class Command : std::uint8_t { kGetConfig = 1 };

/// Encrypted response to kGetConfig.
struct ConfigResponse {
  bool ok = false;
  std::string error;
  AppConfig config;

  Bytes serialize() const;
  static ConfigResponse deserialize(ByteView data);
};

}  // namespace sinclave::cas
