#include "cas/protocol.h"

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::cas {

const char* to_string(Command command) {
  switch (command) {
    case Command::kGetInstance:
      return "get-instance";
    case Command::kGetConfig:
      return "get-config";
    case Command::kAttest:
      return "attest";
    case Command::kIntrospect:
      return "introspect";
    case Command::kVoteRequest:
      return "vote-request";
    case Command::kAppendEntries:
      return "append-entries";
    case Command::kInstallSnapshot:
      return "install-snapshot";
  }
  return "unknown";
}

// --- envelope ---------------------------------------------------------------

Bytes Envelope::serialize() const {
  ByteWriter w;
  w.u32(kEnvelopeMagic);
  w.u16(version);
  w.u8(static_cast<std::uint8_t>(command));
  w.u8(0);  // flags, reserved
  w.u64(request_id);
  w.bytes(payload);
  return std::move(w).take();
}

Envelope Envelope::deserialize(ByteView data) {
  ByteReader r(data);
  if (r.u32() != kEnvelopeMagic)
    throw ParseError("envelope: bad magic");
  Envelope e;
  e.version = r.u16();
  e.command = static_cast<Command>(r.u8());
  r.skip(1);  // flags
  e.request_id = r.u64();
  e.payload = r.bytes();
  r.expect_done();
  return e;
}

bool Envelope::matches(ByteView data) {
  if (data.size() < 4) return false;
  const std::uint32_t magic = static_cast<std::uint32_t>(data[0]) |
                              static_cast<std::uint32_t>(data[1]) << 8 |
                              static_cast<std::uint32_t>(data[2]) << 16 |
                              static_cast<std::uint32_t>(data[3]) << 24;
  return magic == kEnvelopeMagic;
}

std::optional<std::uint64_t> Envelope::peek_request_id(ByteView data) {
  // magic u32 | version u16 | command u8 | flags u8 | request_id u64
  if (!matches(data) || data.size() < 16) return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8; ++i)
    id |= static_cast<std::uint64_t>(data[8 + i]) << (8 * i);
  return id;
}

Envelope Envelope::reply(Bytes response_payload) const {
  Envelope out;
  out.version = kProtocolVersion;  // a server always answers in its version
  out.command = command;
  out.request_id = request_id;
  out.payload = std::move(response_payload);
  return out;
}

// --- status encoding --------------------------------------------------------

namespace {

void write_status(ByteWriter& w, const Status& status) {
  w.u8(static_cast<std::uint8_t>(status.code));
  // The canonical message never rides the wire; only extra detail does.
  w.str(status.detail);
}

Status read_status(ByteReader& r) {
  const std::uint8_t raw = r.u8();
  Status s;
  s.code = status_code_from_wire(raw);
  s.detail = r.str();
  // A code this build does not know collapses to kInternal; keep the raw
  // byte visible (when no detail rode along) so the downgrade is
  // diagnosable rather than silent.
  if (s.code == StatusCode::kInternal &&
      raw != static_cast<std::uint8_t>(StatusCode::kInternal) &&
      s.detail.empty())
    s.detail = "unrecognized status code " + std::to_string(raw);
  return s;
}

/// Seed-era status prefix: `u8 ok | str error` (error empty on success).
void write_status_v0(ByteWriter& w, const Status& status) {
  w.u8(status.ok() ? 1 : 0);
  w.str(status.ok() ? std::string{} : status.message());
}

Status read_status_v0(ByteReader& r) {
  const bool was_ok = r.u8() != 0;
  const std::string error = r.str();
  if (was_ok) return Status();
  const StatusCode code = status_code_from_legacy(error);
  // Preserve non-canonical detail so nothing is lost in translation.
  return error == status_message(code) ? Status(code) : Status(code, error);
}

}  // namespace

StatusCode status_code_from_legacy(const std::string& error) {
  for (const StatusCode code :
       {StatusCode::kUnknownSession, StatusCode::kNotSingleton,
        StatusCode::kNoSignerKey, StatusCode::kBadSignature,
        StatusCode::kWrongSigner, StatusCode::kBaseHashMismatch,
        StatusCode::kTokenUnknown, StatusCode::kTokenReused,
        StatusCode::kSessionNotAttested, StatusCode::kAttestationRejected,
        StatusCode::kMalformedRequest, StatusCode::kUnsupportedVersion,
        StatusCode::kUnknownCommand, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded, StatusCode::kNotLeader}) {
    if (error == status_message(code)) return code;
  }
  return StatusCode::kInternal;
}

// --- messages ---------------------------------------------------------------

Bytes AppConfig::serialize() const {
  ByteWriter w;
  w.str(program);
  w.u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) w.str(a);
  w.u32(static_cast<std::uint32_t>(env.size()));
  for (const auto& [k, v] : env) {
    w.str(k);
    w.str(v);
  }
  w.u32(static_cast<std::uint32_t>(secrets.size()));
  for (const auto& [k, v] : secrets) {
    w.str(k);
    w.bytes(v);
  }
  w.bytes(fs_key);
  w.raw(fs_manifest_root.view());
  return std::move(w).take();
}

AppConfig AppConfig::deserialize(ByteView data) {
  ByteReader r(data);
  AppConfig c;
  c.program = r.str();
  // Counts are validated against the bytes left (every element costs at
  // least its length prefixes) so forged counts die as ParseError here
  // instead of driving huge loops or allocations.
  const std::uint32_t n_args = r.count(4);
  for (std::uint32_t i = 0; i < n_args; ++i) c.args.push_back(r.str());
  const std::uint32_t n_env = r.count(8);
  for (std::uint32_t i = 0; i < n_env; ++i) {
    std::string k = r.str();
    c.env[k] = r.str();
  }
  const std::uint32_t n_secrets = r.count(8);
  for (std::uint32_t i = 0; i < n_secrets; ++i) {
    std::string k = r.str();
    c.secrets[k] = r.bytes();
  }
  c.fs_key = r.bytes();
  c.fs_manifest_root = r.fixed<32>();
  r.expect_done();
  return c;
}

Bytes InstanceRequest::serialize() const {
  ByteWriter w;
  w.str(session_name);
  w.bytes(common_sigstruct.serialize());
  return std::move(w).take();
}

InstanceRequest InstanceRequest::deserialize(ByteView data) {
  ByteReader r(data);
  InstanceRequest req;
  req.session_name = r.str();
  req.common_sigstruct = sgx::SigStruct::deserialize(r.bytes());
  r.expect_done();
  return req;
}

Bytes InstanceResponse::serialize() const {
  ByteWriter w;
  write_status(w, status);
  w.raw(token.view());
  w.raw(verifier_id.view());
  w.bytes(ok() ? singleton_sigstruct.serialize() : Bytes{});
  return std::move(w).take();
}

InstanceResponse InstanceResponse::deserialize(ByteView data) {
  ByteReader r(data);
  InstanceResponse resp;
  resp.status = read_status(r);
  resp.token = r.fixed<32>();
  resp.verifier_id = r.fixed<32>();
  const Bytes sig = r.bytes();
  if (resp.ok()) resp.singleton_sigstruct = sgx::SigStruct::deserialize(sig);
  r.expect_done();
  return resp;
}

Bytes InstanceResponse::serialize_v0() const {
  ByteWriter w;
  write_status_v0(w, status);
  w.raw(token.view());
  w.raw(verifier_id.view());
  w.bytes(ok() ? singleton_sigstruct.serialize() : Bytes{});
  return std::move(w).take();
}

InstanceResponse InstanceResponse::deserialize_v0(ByteView data) {
  ByteReader r(data);
  InstanceResponse resp;
  resp.status = read_status_v0(r);
  resp.token = r.fixed<32>();
  resp.verifier_id = r.fixed<32>();
  const Bytes sig = r.bytes();
  if (resp.ok()) resp.singleton_sigstruct = sgx::SigStruct::deserialize(sig);
  r.expect_done();
  return resp;
}

Bytes AttestPayload::serialize() const {
  ByteWriter w;
  w.str(session_name);
  w.bytes(quote.serialize());
  w.u8(token.has_value() ? 1 : 0);
  if (token.has_value()) w.raw(token->view());
  return std::move(w).take();
}

AttestPayload AttestPayload::deserialize(ByteView data) {
  ByteReader r(data);
  AttestPayload p;
  p.session_name = r.str();
  p.quote = quote::Quote::deserialize(r.bytes());
  if (r.u8() != 0) p.token = r.fixed<32>();
  r.expect_done();
  return p;
}

Bytes ConfigResponse::serialize() const {
  ByteWriter w;
  write_status(w, status);
  w.bytes(ok() ? config.serialize() : Bytes{});
  return std::move(w).take();
}

ConfigResponse ConfigResponse::deserialize(ByteView data) {
  ByteReader r(data);
  ConfigResponse resp;
  resp.status = read_status(r);
  const Bytes cfg = r.bytes();
  if (resp.ok()) resp.config = AppConfig::deserialize(cfg);
  r.expect_done();
  return resp;
}

Bytes ConfigResponse::serialize_v0() const {
  ByteWriter w;
  write_status_v0(w, status);
  w.bytes(ok() ? config.serialize() : Bytes{});
  return std::move(w).take();
}

ConfigResponse ConfigResponse::deserialize_v0(ByteView data) {
  ByteReader r(data);
  ConfigResponse resp;
  resp.status = read_status_v0(r);
  const Bytes cfg = r.bytes();
  if (resp.ok()) resp.config = AppConfig::deserialize(cfg);
  r.expect_done();
  return resp;
}

Bytes IntrospectRequest::serialize() const {
  ByteWriter w;
  w.u32(max_traces);
  w.u8(include_slow ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(format));
  return std::move(w).take();
}

IntrospectRequest IntrospectRequest::deserialize(ByteView data) {
  IntrospectRequest req;
  if (data.empty()) return req;  // bare envelope: all defaults
  ByteReader r(data);
  req.max_traces = r.u32();
  req.include_slow = r.u8() != 0;
  req.format = static_cast<MetricsFormat>(r.u8());
  r.expect_done();
  return req;
}

void TraceReport::write(ByteWriter& w) const {
  w.u64(trace_id);
  w.u64(request_id);
  w.u64(session_id);
  w.u64(static_cast<std::uint64_t>(duration_ns));
  w.u32(static_cast<std::uint32_t>(phases.size()));
  for (const Phase& p : phases) {
    w.str(p.name);
    w.u32(p.depth);
    w.u64(static_cast<std::uint64_t>(p.offset_ns));
    w.u64(static_cast<std::uint64_t>(p.duration_ns));
  }
}

TraceReport TraceReport::read(ByteReader& r) {
  TraceReport t;
  t.trace_id = r.u64();
  t.request_id = r.u64();
  t.session_id = r.u64();
  t.duration_ns = static_cast<std::int64_t>(r.u64());
  // Each phase costs at least str-prefix(4) + u32(4) + 2×u64(16) = 24
  // bytes; a count claiming more is hostile and dies before reserve().
  const std::uint32_t n = r.count(24);
  t.phases.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Phase p;
    p.name = r.str();
    p.depth = r.u32();
    p.offset_ns = static_cast<std::int64_t>(r.u64());
    p.duration_ns = static_cast<std::int64_t>(r.u64());
    t.phases.push_back(std::move(p));
  }
  return t;
}

Bytes IntrospectResponse::serialize() const {
  ByteWriter w;
  write_status(w, status);
  w.str(metrics);
  w.u32(static_cast<std::uint32_t>(traces.size()));
  for (const TraceReport& t : traces) t.write(w);
  w.u32(static_cast<std::uint32_t>(slow_traces.size()));
  for (const TraceReport& t : slow_traces) t.write(w);
  return std::move(w).take();
}

IntrospectResponse IntrospectResponse::deserialize(ByteView data) {
  ByteReader r(data);
  IntrospectResponse resp;
  resp.status = read_status(r);
  resp.metrics = r.str();
  // A trace costs at least 4×u64 + phase-count u32 = 36 bytes on the
  // wire; validating the counts up front keeps forged values away from
  // reserve() (std::length_error is not part of the ParseError contract).
  const std::uint32_t n_traces = r.count(36);
  resp.traces.reserve(n_traces);
  for (std::uint32_t i = 0; i < n_traces; ++i)
    resp.traces.push_back(TraceReport::read(r));
  const std::uint32_t n_slow = r.count(36);
  resp.slow_traces.reserve(n_slow);
  for (std::uint32_t i = 0; i < n_slow; ++i)
    resp.slow_traces.push_back(TraceReport::read(r));
  r.expect_done();
  return resp;
}

// --- shared frontend glue ---------------------------------------------------

namespace {

/// Legacy v0 secure-channel command byte (the old `Command::kGetConfig`).
constexpr std::uint8_t kLegacyGetConfig = 1;

void note(FrameInfo* info, const FrameInfo& value) {
  if (info != nullptr) *info = value;
}

/// Decode the envelope and run the version/command gate common to both
/// endpoints. Returns the response payload to send (already enveloped) via
/// `reject`, or nullopt when dispatch should proceed.
template <typename MakeErrorPayload>
std::optional<Bytes> gate_envelope(const Envelope& env, Command expected,
                                   const MakeErrorPayload& error_payload,
                                   FrameInfo* info) {
  FrameInfo fi;
  fi.version = env.version;
  fi.command = env.command;
  fi.request_id = env.request_id;
  if (env.version > kProtocolVersion) {
    fi.status = StatusCode::kUnsupportedVersion;
    note(info, fi);
    return env.reply(error_payload(StatusCode::kUnsupportedVersion))
        .serialize();
  }
  if (env.command != expected) {
    fi.status = StatusCode::kUnknownCommand;
    note(info, fi);
    return env.reply(error_payload(StatusCode::kUnknownCommand)).serialize();
  }
  note(info, fi);
  return std::nullopt;
}

}  // namespace

Bytes serve_instance_frame(ByteView raw, const InstanceHandler& handler,
                           FrameInfo* info) {
  return serve_instance_frame(raw, handler, IntrospectHandler{}, info);
}

Bytes serve_instance_frame(ByteView raw, const InstanceHandler& handler,
                           const IntrospectHandler& introspect,
                           FrameInfo* info) {
  const auto error_payload = [](StatusCode code) {
    InstanceResponse resp;
    resp.status = Status(code);
    return resp.serialize();
  };

  // Request decode and handler dispatch live in SEPARATE try blocks so
  // blame lands correctly: a ParseError while decoding the frame is the
  // client's fault (kMalformedRequest), but a ParseError escaping the
  // handler is a server-side fault — e.g. a corrupt stored policy — and
  // must answer kInternal, not accuse a well-formed request.
  const auto dispatch = [&handler](const InstanceRequest& req) {
    try {
      return handler(req);
    } catch (const Error&) {
      InstanceResponse resp;
      resp.status = Status(StatusCode::kInternal);
      return resp;
    }
  };

  if (!Envelope::matches(raw)) {
    // Legacy v0 peer: raw InstanceRequest in, raw v0 response out.
    FrameInfo fi;
    fi.legacy = true;
    fi.version = 0;
    InstanceResponse resp;
    try {
      const InstanceRequest req = InstanceRequest::deserialize(raw);
      resp = dispatch(req);
    } catch (const Error&) {
      resp = InstanceResponse{};
      resp.status = Status(StatusCode::kMalformedRequest);
    }
    fi.status = resp.status.code;
    note(info, fi);
    return resp.serialize_v0();
  }

  Envelope env;
  try {
    env = Envelope::deserialize(raw);
  } catch (const Error&) {
    // Carried the magic but not the layout: answer a malformed-request
    // envelope with request_id 0 (we never learned the real one).
    FrameInfo fi;
    fi.status = StatusCode::kMalformedRequest;
    note(info, fi);
    Envelope out;
    out.payload = error_payload(StatusCode::kMalformedRequest);
    return out.serialize();
  }

  if (env.command == Command::kIntrospect && introspect != nullptr) {
    // The introspect branch answers with IntrospectResponse-shaped
    // payloads (the Status prefix layout is shared, so even a client that
    // guessed the wrong command can decode the refusal).
    const auto introspect_error = [](StatusCode code) {
      IntrospectResponse resp;
      resp.status = Status(code);
      return resp.serialize();
    };
    if (auto rejected =
            gate_envelope(env, Command::kIntrospect, introspect_error, info))
      return std::move(*rejected);
    IntrospectResponse resp;
    try {
      const IntrospectRequest req = IntrospectRequest::deserialize(env.payload);
      try {
        resp = introspect(req);
      } catch (const Error&) {
        resp = IntrospectResponse{};
        resp.status = Status(StatusCode::kInternal);
      }
    } catch (const Error&) {
      resp = IntrospectResponse{};
      resp.status = Status(StatusCode::kMalformedRequest);
    }
    if (info != nullptr) info->status = resp.status.code;
    return env.reply(resp.serialize()).serialize();
  }

  if (auto rejected =
          gate_envelope(env, Command::kGetInstance, error_payload, info))
    return std::move(*rejected);

  InstanceResponse resp;
  try {
    const InstanceRequest req = InstanceRequest::deserialize(env.payload);
    resp = dispatch(req);
  } catch (const Error&) {
    resp = InstanceResponse{};
    resp.status = Status(StatusCode::kMalformedRequest);
  }
  if (info != nullptr) info->status = resp.status.code;
  return env.reply(resp.serialize()).serialize();
}

Bytes serve_config_frame(ByteView plaintext, const ConfigHandler& handler,
                         FrameInfo* info) {
  const auto error_payload = [](StatusCode code) {
    ConfigResponse resp;
    resp.status = Status(code);
    return resp.serialize();
  };
  const auto run = [&handler]() {
    try {
      return handler();
    } catch (const Error&) {
      ConfigResponse resp;
      resp.status = Status(StatusCode::kInternal);
      return resp;
    }
  };

  if (!Envelope::matches(plaintext)) {
    // Legacy v0 record: `u8 command` plaintext, answered in kind. Like
    // the seed decoder, only the command byte is interpreted — trailing
    // bytes are tolerated, so pre-envelope peers keep working unchanged.
    FrameInfo fi;
    fi.legacy = true;
    fi.version = 0;
    fi.command = Command::kGetConfig;
    ConfigResponse resp;
    if (plaintext.empty()) {
      resp.status = Status(StatusCode::kMalformedRequest);
    } else if (plaintext[0] != kLegacyGetConfig) {
      resp.status = Status(StatusCode::kUnknownCommand);
    } else {
      resp = run();
    }
    fi.status = resp.status.code;
    note(info, fi);
    return resp.serialize_v0();
  }

  Envelope env;
  try {
    env = Envelope::deserialize(plaintext);
  } catch (const Error&) {
    FrameInfo fi;
    fi.command = Command::kGetConfig;
    fi.status = StatusCode::kMalformedRequest;
    note(info, fi);
    Envelope out;
    out.command = Command::kGetConfig;
    out.payload = error_payload(StatusCode::kMalformedRequest);
    return out.serialize();
  }

  if (auto rejected =
          gate_envelope(env, Command::kGetConfig, error_payload, info))
    return std::move(*rejected);

  const ConfigResponse resp = run();
  if (info != nullptr) info->status = resp.status.code;
  return env.reply(resp.serialize()).serialize();
}

std::optional<AttestPayload> decode_attest_payload(ByteView raw,
                                                   FrameInfo* info) {
  if (Envelope::matches(raw)) {
    FrameInfo fi;
    try {
      const Envelope env = Envelope::deserialize(raw);
      fi.version = env.version;
      fi.command = env.command;
      fi.request_id = env.request_id;
      if (env.version > kProtocolVersion) {
        fi.status = StatusCode::kUnsupportedVersion;
        note(info, fi);
        return std::nullopt;
      }
      if (env.command != Command::kAttest) {
        fi.status = StatusCode::kUnknownCommand;
        note(info, fi);
        return std::nullopt;
      }
      AttestPayload payload = AttestPayload::deserialize(env.payload);
      note(info, fi);
      return payload;
    } catch (const Error&) {
      fi.status = StatusCode::kMalformedRequest;
      note(info, fi);
      return std::nullopt;
    }
  }
  FrameInfo fi;
  fi.legacy = true;
  fi.version = 0;
  fi.command = Command::kAttest;
  try {
    AttestPayload payload = AttestPayload::deserialize(raw);
    note(info, fi);
    return payload;
  } catch (const Error&) {
    fi.status = StatusCode::kMalformedRequest;
    note(info, fi);
    return std::nullopt;
  }
}

}  // namespace sinclave::cas
