#include "cas/protocol.h"

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::cas {

Bytes AppConfig::serialize() const {
  ByteWriter w;
  w.str(program);
  w.u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) w.str(a);
  w.u32(static_cast<std::uint32_t>(env.size()));
  for (const auto& [k, v] : env) {
    w.str(k);
    w.str(v);
  }
  w.u32(static_cast<std::uint32_t>(secrets.size()));
  for (const auto& [k, v] : secrets) {
    w.str(k);
    w.bytes(v);
  }
  w.bytes(fs_key);
  w.raw(fs_manifest_root.view());
  return std::move(w).take();
}

AppConfig AppConfig::deserialize(ByteView data) {
  ByteReader r(data);
  AppConfig c;
  c.program = r.str();
  const std::uint32_t n_args = r.u32();
  for (std::uint32_t i = 0; i < n_args; ++i) c.args.push_back(r.str());
  const std::uint32_t n_env = r.u32();
  for (std::uint32_t i = 0; i < n_env; ++i) {
    std::string k = r.str();
    c.env[k] = r.str();
  }
  const std::uint32_t n_secrets = r.u32();
  for (std::uint32_t i = 0; i < n_secrets; ++i) {
    std::string k = r.str();
    c.secrets[k] = r.bytes();
  }
  c.fs_key = r.bytes();
  c.fs_manifest_root = r.fixed<32>();
  r.expect_done();
  return c;
}

Bytes InstanceRequest::serialize() const {
  ByteWriter w;
  w.str(session_name);
  w.bytes(common_sigstruct.serialize());
  return std::move(w).take();
}

InstanceRequest InstanceRequest::deserialize(ByteView data) {
  ByteReader r(data);
  InstanceRequest req;
  req.session_name = r.str();
  req.common_sigstruct = sgx::SigStruct::deserialize(r.bytes());
  r.expect_done();
  return req;
}

Bytes InstanceResponse::serialize() const {
  ByteWriter w;
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.raw(token.view());
  w.raw(verifier_id.view());
  w.bytes(ok ? singleton_sigstruct.serialize() : Bytes{});
  return std::move(w).take();
}

InstanceResponse InstanceResponse::deserialize(ByteView data) {
  ByteReader r(data);
  InstanceResponse resp;
  resp.ok = r.u8() != 0;
  resp.error = r.str();
  resp.token = r.fixed<32>();
  resp.verifier_id = r.fixed<32>();
  const Bytes sig = r.bytes();
  if (resp.ok) resp.singleton_sigstruct = sgx::SigStruct::deserialize(sig);
  r.expect_done();
  return resp;
}

Bytes AttestPayload::serialize() const {
  ByteWriter w;
  w.str(session_name);
  w.bytes(quote.serialize());
  w.u8(token.has_value() ? 1 : 0);
  if (token.has_value()) w.raw(token->view());
  return std::move(w).take();
}

AttestPayload AttestPayload::deserialize(ByteView data) {
  ByteReader r(data);
  AttestPayload p;
  p.session_name = r.str();
  p.quote = quote::Quote::deserialize(r.bytes());
  if (r.u8() != 0) p.token = r.fixed<32>();
  r.expect_done();
  return p;
}

Bytes ConfigResponse::serialize() const {
  ByteWriter w;
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.bytes(ok ? config.serialize() : Bytes{});
  return std::move(w).take();
}

ConfigResponse ConfigResponse::deserialize(ByteView data) {
  ByteReader r(data);
  ConfigResponse resp;
  resp.ok = r.u8() != 0;
  resp.error = r.str();
  const Bytes cfg = r.bytes();
  if (resp.ok) resp.config = AppConfig::deserialize(cfg);
  r.expect_done();
  return resp;
}

}  // namespace sinclave::cas
