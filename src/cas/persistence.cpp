#include "cas/persistence.h"

#include "common/serial.h"
#include "crypto/aead.h"

namespace sinclave::cas {

namespace {
Bytes counter_ad(std::uint64_t value) {
  ByteWriter w;
  w.str("sinclave-cas-seal-v1");
  w.u64(value);
  return std::move(w).take();
}
}  // namespace

const char* to_string(UnsealStatus s) {
  switch (s) {
    case UnsealStatus::kOk:
      return "ok";
    case UnsealStatus::kBadSeal:
      return "bad-seal";
    case UnsealStatus::kRolledBack:
      return "rolled-back";
    case UnsealStatus::kMalformed:
      return "malformed";
  }
  return "unknown";
}

Bytes seal_state(ByteView seal_key, MonotonicCounter& counter,
                 ByteView state, crypto::Drbg& rng) {
  const crypto::Aead aead(seal_key);
  const std::uint64_t bound = counter.increment();
  const Bytes nonce = rng.generate(crypto::kAeadNonceSize);
  ByteWriter w;
  w.u64(bound);
  w.raw(nonce);
  w.bytes(aead.seal(nonce, state, counter_ad(bound)));
  return std::move(w).take();
}

UnsealStatus unseal_state(ByteView seal_key, const MonotonicCounter& counter,
                          ByteView blob, Bytes& out) {
  std::uint64_t bound = 0;
  Bytes nonce, sealed;
  try {
    ByteReader r(blob);
    bound = r.u64();
    nonce = r.raw(crypto::kAeadNonceSize);
    sealed = r.bytes();
    r.expect_done();
  } catch (const ParseError&) {
    return UnsealStatus::kMalformed;
  }

  const crypto::Aead aead(seal_key);
  const auto plaintext = aead.open(nonce, sealed, counter_ad(bound));
  if (!plaintext.has_value()) return UnsealStatus::kBadSeal;
  // Freshness: only the most recent seal (counter value bound at seal time
  // equals the hardware counter now) is acceptable.
  if (bound != counter.read()) return UnsealStatus::kRolledBack;
  out = *plaintext;
  return UnsealStatus::kOk;
}

}  // namespace sinclave::cas
