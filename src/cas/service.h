// The Configuration and Attestation Service (CAS) — the trusted verifier.
//
// Mirrors SCONE CAS as the paper uses it, extended with the SinClave
// mechanisms (§4.4):
//
//  * policy database, encrypted at rest (policies are decrypted and parsed
//    on every request — that work is the "miscellaneous CAS activities"
//    dominating Fig. 7c),
//  * quote verification through the TEE provider's attestation service,
//  * channel binding (quote REPORTDATA must commit to the client's DH key),
//  * SinClave: one-time token minting, verifier-side expected-MRENCLAVE
//    prediction from the base hash, on-demand SigStruct signing with the
//    enclave signer's key (which is uploaded to — and never leaves — CAS),
//    and singleton enforcement (every token attests at most once).
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cas/protocol.h"
#include "core/base_hash.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "fs/encrypted_volume.h"
#include "net/secure_channel.h"
#include "net/sim_network.h"
#include "quote/attestation_service.h"

namespace sinclave::cas {

/// Per-session verification policy, stored encrypted in the CAS database.
struct Policy {
  std::string session_name;
  /// MRSIGNER pin: which signer's enclaves may attest for this session.
  Hash256 expected_signer;
  /// SinClave mode: enforce singleton enclaves for this session.
  bool require_singleton = false;
  /// Permit debug-attribute enclaves (insecure; off by default).
  bool allow_debug = false;
  /// Baseline mode: the pinned common MRENCLAVE.
  std::optional<sgx::Measurement> expected_mr_enclave;
  /// SinClave mode: the base hash used to predict singleton measurements.
  std::optional<core::BaseHash> base_hash;
  /// Delivered to the enclave after successful attestation.
  AppConfig config;

  Bytes serialize() const;
  static Policy deserialize(ByteView data);
};

class CasService {
 public:
  /// Wall-clock breakdown of the last instance request (Fig. 7c series).
  struct InstanceTimings {
    std::chrono::nanoseconds db_load{0};    // decrypt+parse policy ("misc")
    std::chrono::nanoseconds verify{0};     // common SigStruct verification
    std::chrono::nanoseconds predict{0};    // expected-MRENCLAVE finalization
    std::chrono::nanoseconds sign{0};       // on-demand SigStruct signing
    std::chrono::nanoseconds total{0};
  };

  CasService(quote::AttestationService* attestation,
             crypto::RsaKeyPair identity, crypto::Drbg rng);

  const crypto::RsaPublicKey& identity() const {
    return identity_.public_key();
  }
  /// SHA-256 of the identity modulus — what instance pages embed.
  Hash256 verifier_id() const;

  /// Upload an enclave signer's key pair (required for on-demand SigStruct
  /// creation for that signer's enclaves).
  void add_signer_key(crypto::RsaKeyPair signer);

  /// Install (or replace) a session policy; persisted encrypted.
  void install_policy(const Policy& policy);

  /// Start serving: `address` (secure attestation endpoint) and
  /// `address + ".instance"` (plain starter endpoint).
  void bind(net::SimNetwork& net, const std::string& address);

  /// Direct entry points (benchmarks call these without the network).
  InstanceResponse handle_instance(const InstanceRequest& request);

  const InstanceTimings& last_instance_timings() const {
    return last_timings_;
  }
  /// Verdict of the most recent attestation attempt (test observability).
  Verdict last_attest_verdict() const { return last_attest_verdict_; }

  std::size_t tokens_outstanding() const;
  std::size_t tokens_used() const;

  /// Serialize the full mutable state — policies and the token database —
  /// for sealing across restarts (cas/persistence.h). Losing or rolling
  /// back the token database would reinstate the reuse attack, so this
  /// state must only ever be persisted through seal_state().
  Bytes export_state() const;
  /// Replace policies and token database from a previously exported state.
  void import_state(ByteView state);

 private:
  std::optional<Policy> load_policy(const std::string& session_name) const;

  std::optional<Bytes> on_handshake(ByteView client_payload,
                                    ByteView client_dh,
                                    std::uint64_t session_id);
  Bytes on_request(std::uint64_t session_id, ByteView plaintext);

  struct PendingToken {
    std::string session_name;
    sgx::Measurement expected_mr;
    bool used = false;
  };

  quote::AttestationService* attestation_;
  crypto::RsaKeyPair identity_;
  mutable crypto::Drbg rng_;
  mutable fs::EncryptedVolume policy_db_;
  std::map<Hash256, crypto::RsaKeyPair> signer_keys_;
  std::map<core::AttestationToken, PendingToken> tokens_;
  std::map<std::uint64_t, std::string> attested_sessions_;
  std::unique_ptr<net::SecureServer> secure_server_;
  InstanceTimings last_timings_;
  Verdict last_attest_verdict_ = Verdict::kOk;
};

}  // namespace sinclave::cas
