// The Configuration and Attestation Service (CAS) — the trusted verifier.
//
// Mirrors SCONE CAS as the paper uses it, extended with the SinClave
// mechanisms (§4.4):
//
//  * policy database, encrypted at rest (policies are decrypted and parsed
//    on every request — that work is the "miscellaneous CAS activities"
//    dominating Fig. 7c),
//  * quote verification through the TEE provider's attestation service,
//  * channel binding (quote REPORTDATA must commit to the client's DH key),
//  * SinClave: one-time token minting, verifier-side expected-MRENCLAVE
//    prediction from the base hash, on-demand SigStruct signing with the
//    enclave signer's key (which is uploaded to — and never leaves — CAS),
//    and singleton enforcement (every token attests at most once).
//
// Thread-safe and contention-striped: all entry points may be called
// concurrently (the server::CasServer frontend dispatches them from a
// worker pool). Token and singleton accounting is sharded into striped
// buckets (token id -> stripe), each bucket its own critical section, so
// racing attestations on *different* tokens never contend while two
// attestations racing the *same* token still serialize inside its bucket
// — the exactly-once-spend invariant is per bucket. Token minting draws
// from a striped DRBG pool (no global RNG lock on the hot path), and the
// encrypted policy DB sits behind a shared_mutex (concurrent decrypting
// readers, exclusive installs). An optional PolicyCache lets the serving
// layer interpose a decrypted-policy store in front of the encrypted DB;
// install_policy writes through to both.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag only; locking goes through common/mutex.h
#include <optional>
#include <string>
#include <vector>

#include "cas/protocol.h"
#include "common/mutex.h"
#include "core/base_hash.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "fs/encrypted_volume.h"
#include "net/secure_channel.h"
#include "net/sim_network.h"
#include "obs/registry.h"
#include "quote/attestation_service.h"

namespace sinclave::cas {

// The seed-era `cas::errors` string constants are gone: retrieval
// refusals are StatusCodes now, and the (single) human-readable text for
// each code lives in common/status.h's status_message table — the two
// serving frontends and the legacy (v0) wire encoding all draw from it,
// so they cannot drift.

/// Per-session verification policy, stored encrypted in the CAS database.
struct Policy {
  std::string session_name;
  /// MRSIGNER pin: which signer's enclaves may attest for this session.
  Hash256 expected_signer;
  /// SinClave mode: enforce singleton enclaves for this session.
  bool require_singleton = false;
  /// Permit debug-attribute enclaves (insecure; off by default).
  bool allow_debug = false;
  /// Baseline mode: the pinned common MRENCLAVE.
  std::optional<sgx::Measurement> expected_mr_enclave;
  /// SinClave mode: the base hash used to predict singleton measurements.
  std::optional<core::BaseHash> base_hash;
  /// Delivered to the enclave after successful attestation.
  AppConfig config;

  Bytes serialize() const;
  static Policy deserialize(ByteView data);
};

/// Cache of decrypted, parsed policies consulted before the encrypted DB.
/// Implementations must be safe for concurrent use (the serving layer's
/// sharded store is; see server/policy_store.h).
class PolicyCache {
 public:
  virtual ~PolicyCache() = default;
  virtual std::optional<Policy> get(const std::string& session_name) = 0;
  virtual void put(const std::string& session_name, const Policy& policy) = 0;
  virtual void erase(const std::string& session_name) = 0;
};

/// A freshly predicted-and-signed singleton credential: the token, the
/// MRENCLAVE an enclave carrying that token will measure to, and the
/// on-demand SigStruct for it. Inert until its token is registered with
/// register_token() — which is what makes it spendable, exactly once.
struct MintedCredential {
  core::AttestationToken token;
  sgx::Measurement mr_enclave;
  sgx::SigStruct sigstruct;
};

/// Replication interposition point (server::ClusterNode implements this
/// over cas::RaftCore). When a gate is attached, the two one-time-token
/// state transitions — arming a freshly minted token and spending it at
/// attestation — are committed through the replicated log instead of
/// mutating only this node's stripes: the gate proposes the transition,
/// blocks until a cluster majority has committed it, and every node
/// (including this one) then applies it via register_token /
/// apply_replicated_spend in identical log order. Both gate calls are
/// made with NO CasService lock held.
class ReplicationGate {
 public:
  virtual ~ReplicationGate() = default;
  /// Replicate the arming of a minted token. Ok only once committed
  /// cluster-wide; kNotLeader (with leader hint) when this node cannot
  /// commit writes; kUnavailable when no majority answers in time.
  virtual Status register_token(const core::AttestationToken& token,
                                const std::string& session_name,
                                const sgx::Measurement& expected_mr) = 0;
  /// Replicate a token spend. Ok iff THIS proposal is the first committed
  /// spend of the token cluster-wide; kTokenReused when a concurrent
  /// spend won the log race; kTokenUnknown / kAttestationRejected
  /// mirroring the local apply outcomes; kNotLeader / kUnavailable for
  /// routing and liveness failures.
  virtual Status spend_token(const core::AttestationToken& token,
                             const std::string& session_name,
                             const sgx::Measurement& mr_enclave) = 0;
  /// True when this replica's APPLIED state is authoritative for
  /// negative token lookups (a caught-up leader). A lagging replica can
  /// answer "token unknown" for a token whose registration is committed
  /// but not yet applied here — the serving path must then commit the
  /// spend through the log (which serializes after every registration)
  /// instead of trusting the local miss. Defaults to true: a gateless /
  /// single-authority deployment is always authoritative.
  virtual bool ready() const { return true; }
};

class CasService {
 public:
  /// Wall-clock breakdown of the last instance request (Fig. 7c series).
  struct InstanceTimings {
    std::chrono::nanoseconds db_load{0};    // decrypt+parse policy ("misc")
    std::chrono::nanoseconds verify{0};     // common SigStruct verification
    std::chrono::nanoseconds predict{0};    // expected-MRENCLAVE finalization
    std::chrono::nanoseconds sign{0};       // on-demand SigStruct signing
    std::chrono::nanoseconds total{0};
  };

  CasService(quote::AttestationService* attestation,
             crypto::RsaKeyPair identity, crypto::Drbg rng);

  const crypto::RsaPublicKey& identity() const {
    return identity_.public_key();
  }
  /// SHA-256 of the identity modulus — what instance pages embed.
  Hash256 verifier_id() const;

  /// Upload an enclave signer's key pair (required for on-demand SigStruct
  /// creation for that signer's enclaves).
  void add_signer_key(crypto::RsaKeyPair signer);
  bool has_signer_key(const Hash256& signer_id) const;

  /// Install (or replace) a session policy; persisted encrypted and written
  /// through to the policy cache when one is attached.
  void install_policy(const Policy& policy);

  /// Attach a decrypted-policy cache (not owned; must outlive serving).
  void set_policy_cache(PolicyCache* cache);

  /// Cache-aware policy lookup: cache hit skips the per-request
  /// EncryptedVolume decrypt+parse; a miss loads from the DB and fills the
  /// cache.
  std::optional<Policy> get_policy(const std::string& session_name) const;

  /// Shared precondition checks for singleton retrieval (both serving
  /// fronts call this): returns the typed refusal, or nullopt when the
  /// policy is retrieval-ready.
  std::optional<StatusCode> check_retrieval_preconditions(
      const Policy& policy) const;

  /// Start serving: `address` (secure attestation endpoint) and
  /// `address + ".instance"` (plain starter endpoint).
  void bind(net::SimNetwork& net, const std::string& address);

  /// Raw entry point of the secure attestation endpoint; usable by custom
  /// frontends (server::CasServer) without bind().
  Bytes handle_secure(ByteView raw);

  /// Direct entry points (benchmarks call these without the network).
  InstanceResponse handle_instance(const InstanceRequest& request);

  /// Predict + sign a fresh singleton credential for `policy` against the
  /// given verified common SigStruct. Pure minting: the token is NOT yet
  /// registered and cannot attest. `policy` must be singleton-configured
  /// and its signer key uploaded; throws Error otherwise. Thread-safe —
  /// this is what pre-minting workers call concurrently. `timings` (when
  /// given) accumulates the predict/sign breakdown.
  MintedCredential mint_credential(const Policy& policy,
                                   const sgx::SigStruct& common_sigstruct,
                                   InstanceTimings* timings = nullptr);

  /// Batch mint: `count` credentials with the per-batch costs paid once —
  /// one signer lookup, one common-SigStruct RSA verification, one
  /// verifier-id hash, one RNG critical section, and one Montgomery
  /// scratch arena shared across all `count` signatures. This is the
  /// refill path of the serving layer (server::CasServer coalesces pool
  /// top-ups into batch jobs). Same preconditions as mint_credential.
  std::vector<MintedCredential> mint_batch(
      const Policy& policy, const sgx::SigStruct& common_sigstruct,
      std::size_t count, InstanceTimings* timings = nullptr);

  /// Arm a minted credential: register its one-time token for
  /// `session_name` with the expected singleton measurement. Idempotent
  /// (re-registering an armed token is a no-op) — the replicated log may
  /// apply the same entry again after a restart.
  void register_token(const core::AttestationToken& token,
                      const std::string& session_name,
                      const sgx::Measurement& expected_mr);

  /// Attach (or detach, nullptr) the replication gate. Not owned; must
  /// outlive serving. With a gate attached, handle_instance and the
  /// attested handshake commit token transitions through it (see
  /// ReplicationGate).
  void set_replication_gate(ReplicationGate* gate);

  /// Read-only spend precheck for the gated handshake path: the typed
  /// refusal a spend of `token` would earn right now (kTokenUnknown,
  /// kTokenReused, kAttestationRejected on measurement mismatch), or ok
  /// when it looks spendable. Purely advisory — the authoritative spend
  /// is the replicated apply — but it keeps doomed proposals out of the
  /// log.
  Status peek_spend(const core::AttestationToken& token,
                    const std::string& session_name,
                    const sgx::Measurement& mr_enclave) const;

  /// Apply a committed spend from the replicated log. Deterministic and
  /// idempotent: the FIRST application spends the token (ok); any later
  /// one answers kTokenReused; a token this node never armed answers
  /// kTokenUnknown; a measurement mismatch answers kAttestationRejected
  /// without spending. Every node applies the same entries in the same
  /// order, so all outcomes agree cluster-wide.
  Status apply_replicated_spend(const core::AttestationToken& token,
                                const std::string& session_name,
                                const sgx::Measurement& mr_enclave);

  InstanceTimings last_instance_timings() const;
  /// Verdict of the most recent attestation attempt (test observability).
  Verdict last_attest_verdict() const;

  std::size_t tokens_outstanding() const;
  std::size_t tokens_used() const;

  /// Serialize the full mutable state — policies and the token database —
  /// for sealing across restarts (cas/persistence.h). Losing or rolling
  /// back the token database would reinstate the reuse attack, so this
  /// state must only ever be persisted through seal_state().
  Bytes export_state() const;
  /// Replace policies and token database from a previously exported state.
  void import_state(ByteView state);

  /// Contention observability of the attestation endpoint's striped
  /// session table (stripe collisions, sessions high-water); instantiates
  /// the secure server if it has not served yet.
  net::SecureServer::Stats secure_channel_stats();

  /// Options for the lazily created secure server (idle TTL, stripe
  /// counts). Must be called before the first secure-endpoint traffic —
  /// once the server exists the options are fixed.
  void set_secure_server_options(net::SecureServerOptions options);

  /// Run one idle-TTL sweep increment (one stripe; see
  /// SecureServer::sweep_idle). The serving layers call this from a
  /// periodic TimerWheel task. Returns sessions reaped.
  std::size_t sweep_idle_sessions();

  /// The unified metrics registry every layer's collectors plug into:
  /// CasService registers its own collector (tokens, secure-channel
  /// counters, legacy/envelope frame split) at construction, and serving
  /// frontends (server::CasServer) add theirs on top. Snapshots are cold;
  /// nothing on the record path touches this.
  obs::MetricsRegistry& metrics_registry() { return registry_; }

  /// Legacy-vs-envelope classification of the secure endpoint's frames.
  /// The split happens here — past the encryption boundary — because the
  /// serving layer only sees ciphertext (the documented legacy_frames gap
  /// in server/metrics.h). Counted per frame served, including rejects.
  struct SecureFrameStats {
    std::uint64_t attest_legacy = 0;
    std::uint64_t attest_envelope = 0;
    std::uint64_t config_legacy = 0;
    std::uint64_t config_envelope = 0;
  };
  SecureFrameStats secure_frame_stats() const;

  /// Observability introspection (Command::kIntrospect on the instance
  /// endpoint of either frontend): registry snapshot in the requested
  /// format plus recent/slow traces from the process-wide tracer.
  IntrospectResponse handle_introspect(const IntrospectRequest& request);

 private:
  std::optional<Bytes> on_handshake(ByteView client_payload,
                                    ByteView client_dh,
                                    std::uint64_t session_id,
                                    StatusCode* reject_status);
  Bytes on_request(std::uint64_t session_id, ByteView plaintext);
  Bytes serve_config_frame_inner(std::uint64_t session_id, ByteView plaintext,
                                 FrameInfo* frame);
  void ensure_secure_server();

  struct PendingToken {
    std::string session_name;
    sgx::Measurement expected_mr;
    bool used = false;
  };

  /// One shard of the token-spend store. Lookup, one-time check,
  /// measurement check, and spend of a token all happen inside its
  /// stripe's critical section — the exactly-once-spend invariant is per
  /// stripe, and tokens (uniform random 32 bytes) spread evenly.
  struct TokenStripe {
    mutable Mutex m{LockRank::kCasTokenStripe, "cas.token_stripe"};
    std::map<core::AttestationToken, PendingToken> tokens GUARDED_BY(m);
    std::size_t used GUARDED_BY(m) = 0;  // spent tokens (avoids scans)
  };
  static constexpr std::size_t kTokenStripes = 16;
  TokenStripe& token_stripe(const core::AttestationToken& token);
  const TokenStripe& token_stripe(const core::AttestationToken& token) const;

  /// Attested channel-session -> session-name bindings, sharded by the
  /// (atomically allocated, hence uniform) secure-channel session id.
  struct SessionStripe {
    mutable Mutex m{LockRank::kCasSessionStripe, "cas.session_stripe"};
    std::map<std::uint64_t, std::string> attested GUARDED_BY(m);
  };
  static constexpr std::size_t kSessionStripes = 16;

  quote::AttestationService* attestation_;
  crypto::RsaKeyPair identity_;

  // Cold paths only (setup forks); token minting uses token_rng_ below.
  mutable Mutex rng_mutex_{LockRank::kCasRng, "cas.rng"};
  mutable crypto::Drbg rng_ GUARDED_BY(rng_mutex_);
  // Hot-path randomness (token minting): striped children of rng_, no
  // global lock.
  mutable crypto::DrbgPool token_rng_;

  // Read-mostly policy path: concurrent get_policy readers decrypt in
  // parallel under the shared lock; install_policy is exclusive.
  mutable SharedMutex db_mutex_{LockRank::kCasPolicyDb, "cas.policy_db"};
  mutable fs::EncryptedVolume policy_db_ GUARDED_BY(db_mutex_);
  // Attach/detach races with readers, hence atomic. Cache fills happen
  // under (at least the shared half of) db_mutex_ so a fill can never
  // overwrite a newer install: installs are exclusive, so any fill wrote
  // a value read after the previous install completed.
  std::atomic<PolicyCache*> policy_cache_{nullptr};

  // Map nodes are pointer-stable, so signing borrows a key reference
  // after releasing the lock (kCasSigner outranks kCryptoRsaCtx: inserts
  // move an RsaKeyPair — and its context locks — under signer_mutex_).
  mutable Mutex signer_mutex_{LockRank::kCasSigner, "cas.signer_keys"};
  std::map<Hash256, crypto::RsaKeyPair> signer_keys_
      GUARDED_BY(signer_mutex_);

  std::array<TokenStripe, kTokenStripes> token_stripes_;
  std::array<SessionStripe, kSessionStripes> session_stripes_;

  std::once_flag secure_server_once_;
  std::unique_ptr<net::SecureServer> secure_server_;
  net::SecureServerOptions secure_options_{};

  /// Attach/detach races with serving threads, hence atomic (same
  /// discipline as policy_cache_).
  std::atomic<ReplicationGate*> replication_gate_{nullptr};

  mutable Mutex observe_mutex_{LockRank::kCasObserve, "cas.observe"};
  InstanceTimings last_timings_ GUARDED_BY(observe_mutex_);
  Verdict last_attest_verdict_ GUARDED_BY(observe_mutex_) = Verdict::kOk;

  /// Secure-endpoint frame classification (see SecureFrameStats).
  std::atomic<std::uint64_t> attest_legacy_frames_{0};
  std::atomic<std::uint64_t> attest_envelope_frames_{0};
  std::atomic<std::uint64_t> config_legacy_frames_{0};
  std::atomic<std::uint64_t> config_envelope_frames_{0};

  obs::MetricsRegistry registry_;
};

}  // namespace sinclave::cas
