#include "cas/client.h"

#include <atomic>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/mutex.h"
#include "obs/trace.h"

namespace sinclave::cas {

namespace {

using SteadyClock = std::chrono::steady_clock;

Status transport_status(const std::exception& e) {
  return Status(StatusCode::kUnavailable, e.what());
}

/// SplitMix64 — same fixed-constant scrambler the fault injector and load
/// generator use, so jitter draws are identical across toolchains.
std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Monotonic source of distinct default jitter seeds: clients constructed
/// with jitter_seed == 0 each draw the next value, so a fleet built from
/// one config still de-synchronizes its retry schedules.
std::atomic<std::uint64_t> g_jitter_counter{1};

/// Client-side trace root: opens a TraceScope for the operation and
/// records its depth-0 root span on destruction, so client-perceived
/// latency (attempts, backoff sleeps, handshake crypto) shows up in the
/// same phase histograms and rings as the server side.
struct RootScope {
  obs::Phase& root;
  obs::TraceContext ctx;
  std::int64_t start_ns;
  obs::TraceScope scope;

  RootScope(obs::Phase& root_phase, std::uint64_t request_id)
      : root(root_phase),
        ctx{obs::Tracer::instance().new_trace_id(), request_id, 0},
        start_ns(obs::Tracer::now_ns()),
        scope(ctx) {}
  ~RootScope() {
    if (ctx.active()) {
      obs::Tracer::instance().record_phase_root(root, ctx, start_ns,
                                                obs::Tracer::now_ns());
    }
  }
};

}  // namespace

/// Everything an in-flight request needs to outlive the CasClient object:
/// async completions hold this via shared_ptr, so a client destroyed with
/// requests in flight never leaves a dangling `this` behind.
struct CasClient::Core {
  net::SimNetwork* net = nullptr;
  CasClientConfig config;
  /// Resolved jitter stream: config.retry.jitter_seed, or a fresh draw
  /// from g_jitter_counter when that is 0.
  std::uint64_t jitter_seed = 0;
  std::atomic<std::uint64_t> next_request_id{1};
  Mutex connection_mutex{LockRank::kClientConnection, "cas.client_connection"};
  std::optional<net::SimNetwork::Connection> connection_cache
      GUARDED_BY(connection_mutex);
  /// Where requests go right now: config.address until a kNotLeader
  /// leader hint (or a peer rotation after transport failure) moves it.
  std::string current GUARDED_BY(connection_mutex);
  std::size_t cluster_cursor GUARDED_BY(connection_mutex) = 0;
  std::atomic<std::uint64_t> leader_redirects{0};

  // Circuit breaker (enabled iff retry.breaker_threshold > 0): counts
  // consecutive retryable failures across *operations and attempts*, and
  // holds the wall-clock point until which the breaker stays open.
  Mutex breaker_mutex{LockRank::kClientBreaker, "cas.client_breaker"};
  std::size_t breaker_consecutive GUARDED_BY(breaker_mutex) = 0;
  SteadyClock::time_point breaker_open_until GUARDED_BY(breaker_mutex){};
  std::atomic<std::uint64_t> breaker_trips{0};
  std::atomic<std::uint64_t> breaker_fast_fails{0};

  net::SimNetwork::Connection connection() REQUIRES_NOT(connection_mutex) {
    MutexLock lock(connection_mutex);
    if (!connection_cache.has_value())
      connection_cache = net->connect(current + ".instance");
    return *connection_cache;  // cheap copy; the handle is shareable
  }

  void drop_connection() REQUIRES_NOT(connection_mutex) {
    MutexLock lock(connection_mutex);
    connection_cache.reset();
  }

  /// Follow a kNotLeader leader hint: retarget and count the redirect.
  /// The redirected attempt is issued immediately — no backoff sleep.
  void redirect_to(const std::string& address)
      REQUIRES_NOT(connection_mutex) {
    {
      MutexLock lock(connection_mutex);
      if (current != address) {
        current = address;
        connection_cache.reset();
      }
    }
    leader_redirects.fetch_add(1, std::memory_order_relaxed);
  }

  /// After a transport failure (or hintless kNotLeader) with a cluster
  /// configured: advance to the next peer so the paced retry probes a
  /// different node. No-op without a cluster list.
  void rotate_peer() REQUIRES_NOT(connection_mutex) {
    if (config.cluster.empty()) return;
    MutexLock lock(connection_mutex);
    for (std::size_t i = 0; i < config.cluster.size(); ++i) {
      const std::string& next =
          config.cluster[cluster_cursor++ % config.cluster.size()];
      if (next != current) {
        current = next;
        connection_cache.reset();
        return;
      }
    }
  }

  /// False = the breaker is open: the caller must fail fast with
  /// breaker_open_detail() and not touch the wire. Counts the refusal.
  bool breaker_allows() REQUIRES_NOT(breaker_mutex) {
    if (config.retry.breaker_threshold == 0) return true;
    MutexLock lock(breaker_mutex);
    if (SteadyClock::now() < breaker_open_until) {
      breaker_fast_fails.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Feed one attempt's outcome to the breaker. Any answer from the
  /// server — success or typed refusal — proves it alive and closes the
  /// streak; only retryable failures (kUnavailable, transport) count
  /// toward opening.
  void breaker_record(bool retryable_failure) REQUIRES_NOT(breaker_mutex) {
    if (config.retry.breaker_threshold == 0) return;
    MutexLock lock(breaker_mutex);
    if (!retryable_failure) {
      breaker_consecutive = 0;
      return;
    }
    if (++breaker_consecutive >= config.retry.breaker_threshold) {
      breaker_consecutive = 0;
      breaker_open_until =
          SteadyClock::now() +
          std::chrono::duration_cast<SteadyClock::duration>(
              config.retry.breaker_cooldown);
      breaker_trips.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

namespace {

/// Shared retry pacing for the sync loops: tracks the operation's start,
/// and after each retryable failure decides whether another attempt fits
/// the budgets — sleeping the jittered (or server-hinted) backoff when it
/// does.
struct RetryPacer {
  const RetryPolicy& policy;
  std::uint64_t seed;
  SteadyClock::time_point start = SteadyClock::now();

  /// After a retryable failure on attempt #`attempt`: true = backoff
  /// slept, go again; false = out of attempts or deadline budget, return
  /// the last typed result as-is.
  bool pace(std::size_t attempt, const Status& last, obs::Phase* backoff) {
    if (attempt >= policy.max_attempts) return false;
    auto sleep = policy.backoff_before(attempt, seed);
    // A server that told us when to come back knows better than our dice.
    if (const auto hint = parse_retry_after(last.detail))
      sleep = std::chrono::duration_cast<std::chrono::microseconds>(*hint);
    if (policy.deadline.count() > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - start);
      if (elapsed + sleep >= policy.deadline) return false;
    }
    if (sleep.count() > 0) {
      if (backoff != nullptr) {
        obs::Span span(*backoff);
        std::this_thread::sleep_for(sleep);
      } else {
        std::this_thread::sleep_for(sleep);
      }
    }
    return true;
  }
};

}  // namespace

namespace {

Bytes encode_request(const InstanceRequest& request,
                     std::uint64_t request_id) {
  Envelope env;
  env.command = Command::kGetInstance;
  env.request_id = request_id;
  env.payload = request.serialize();
  return env.serialize();
}

/// Decode + validate one response frame against the request it answers.
InstanceResult decode_response(ByteView raw, std::uint64_t request_id) {
  InstanceResult result;
  try {
    const Envelope env = Envelope::deserialize(raw);
    if (env.command != Command::kGetInstance ||
        env.request_id != request_id) {
      result.status = Status(StatusCode::kInternal,
                             "response does not match request");
      return result;
    }
    const InstanceResponse resp = InstanceResponse::deserialize(env.payload);
    result.status = resp.status;
    result.token = resp.token;
    result.verifier_id = resp.verifier_id;
    result.singleton_sigstruct = resp.singleton_sigstruct;
  } catch (const Error& e) {
    result.status =
        Status(StatusCode::kInternal,
               std::string("undecodable response: ") + e.what());
  }
  return result;
}

}  // namespace

std::chrono::microseconds RetryPolicy::backoff_before(
    std::size_t retry, std::uint64_t seed) const {
  if (retry == 0) retry = 1;
  const std::uint64_t base =
      initial_backoff.count() > 0
          ? static_cast<std::uint64_t>(initial_backoff.count())
          : 0;
  const std::uint64_t cap =
      max_backoff.count() > 0 ? static_cast<std::uint64_t>(max_backoff.count())
                              : base;
  if (base == 0 || cap == 0) return std::chrono::microseconds{0};
  // Saturating exponential window: base << (retry-1), clamped to cap
  // (shift capped at 63 so large retry counts cannot overflow).
  std::uint64_t window = base;
  const std::size_t doublings = retry - 1;
  for (std::size_t i = 0; i < doublings && window < cap; ++i) window <<= 1;
  if (window > cap) window = cap;
  // Full jitter: uniform in [0, window] from the (seed, retry) stream.
  const std::uint64_t draw =
      splitmix(seed ^ splitmix(retry * 0x9e3779b97f4a7c15ull));
  return std::chrono::microseconds{draw % (window + 1)};
}

CasClient::CasClient(net::SimNetwork* net, CasClientConfig config)
    : core_(std::make_shared<Core>()) {
  if (net == nullptr) throw Error("cas client: network required");
  if (config.address.empty()) throw Error("cas client: address required");
  if (config.retry.max_attempts == 0) config.retry.max_attempts = 1;
  core_->net = net;
  core_->config = std::move(config);
  core_->jitter_seed =
      core_->config.retry.jitter_seed != 0
          ? core_->config.retry.jitter_seed
          : splitmix(g_jitter_counter.fetch_add(1, std::memory_order_relaxed));
  {
    MutexLock lock(core_->connection_mutex);
    core_->current = core_->config.address;
  }
}

CasClient::Stats CasClient::stats() const {
  return Stats{core_->breaker_trips.load(std::memory_order_relaxed),
               core_->breaker_fast_fails.load(std::memory_order_relaxed),
               core_->leader_redirects.load(std::memory_order_relaxed)};
}

std::string CasClient::current_address() const {
  MutexLock lock(core_->connection_mutex);
  return core_->current;
}

const CasClientConfig& CasClient::config() const { return core_->config; }

Status CasClient::connect() {
  try {
    auto conn = core_->net->connect(current_address() + ".instance");
    MutexLock lock(core_->connection_mutex);
    core_->connection_cache = std::move(conn);
    return Status();
  } catch (const Error& e) {
    return transport_status(e);
  }
}

InstanceResult CasClient::get_instance(
    const std::string& session_name, const sgx::SigStruct& common_sigstruct) {
  InstanceRequest request;
  request.session_name = session_name;
  request.common_sigstruct = common_sigstruct;

  static obs::Phase& p_root =
      obs::Tracer::instance().phase("client_get_instance");
  static obs::Phase& p_attempt =
      obs::Tracer::instance().phase("client_attempt");
  static obs::Phase& p_backoff =
      obs::Tracer::instance().phase("client_backoff");
  RootScope rs(p_root, 0);

  InstanceResult result;
  if (!core_->breaker_allows()) {
    result.status = Status(StatusCode::kUnavailable, breaker_open_detail());
    result.attempts = 0;
    return result;
  }
  RetryPacer pacer{core_->config.retry, core_->jitter_seed};
  for (std::size_t attempt = 1;; ++attempt) {
    const std::uint64_t id =
        core_->next_request_id.fetch_add(1, std::memory_order_relaxed);
    rs.ctx.request_id = id;  // the root carries the last attempt's id
    try {
      obs::Span span(p_attempt);
      result = decode_response(
          core_->connection().call(encode_request(request, id)), id);
    } catch (const Error& e) {
      // Transport failure: the listener may have moved; reconnect (and,
      // in a cluster, probe the next peer) on the next attempt.
      result = InstanceResult{};
      result.status = transport_status(e);
      core_->drop_connection();
      core_->rotate_peer();
    }
    result.attempts = attempt;
    if (result.status.code == StatusCode::kNotLeader) {
      // The follower told us who leads: re-route the next attempt there
      // IMMEDIATELY — no backoff sleep, the answer was not a failure but
      // a forwarding address. A hintless kNotLeader (election still in
      // flight) falls through to paced peer rotation below.
      if (const auto hint = parse_leader_hint(result.status.detail);
          hint.has_value() && attempt < core_->config.retry.max_attempts) {
        core_->redirect_to(*hint);
        core_->breaker_record(false);
        continue;
      }
      if (!core_->config.cluster.empty() &&
          pacer.pace(attempt, result.status, &p_backoff)) {
        core_->rotate_peer();
        core_->breaker_record(false);
        continue;
      }
      core_->breaker_record(false);
      return result;
    }
    const bool retryable = result.status.retryable();
    core_->breaker_record(retryable);
    if (!retryable || !pacer.pace(attempt, result.status, &p_backoff))
      return result;
    if (!core_->breaker_allows()) return result;  // tripped mid-operation
  }
}

IntrospectResponse CasClient::introspect(const IntrospectRequest& request) {
  static obs::Phase& p_root =
      obs::Tracer::instance().phase("client_introspect");
  static obs::Phase& p_attempt =
      obs::Tracer::instance().phase("client_attempt");
  RootScope rs(p_root, 0);

  IntrospectResponse result;
  if (!core_->breaker_allows()) {
    result.status = Status(StatusCode::kUnavailable, breaker_open_detail());
    return result;
  }
  RetryPacer pacer{core_->config.retry, core_->jitter_seed};
  for (std::size_t attempt = 1;; ++attempt) {
    const std::uint64_t id =
        core_->next_request_id.fetch_add(1, std::memory_order_relaxed);
    rs.ctx.request_id = id;
    Envelope env;
    env.command = Command::kIntrospect;
    env.request_id = id;
    env.payload = request.serialize();
    try {
      obs::Span span(p_attempt);
      const Bytes raw = core_->connection().call(env.serialize());
      const Envelope reply = Envelope::deserialize(raw);
      if (reply.command != Command::kIntrospect || reply.request_id != id) {
        result = IntrospectResponse{};
        result.status = Status(StatusCode::kInternal,
                               "response does not match request");
      } else {
        result = IntrospectResponse::deserialize(reply.payload);
      }
    } catch (const Error& e) {
      result = IntrospectResponse{};
      result.status = transport_status(e);
      core_->drop_connection();
      // Introspection is a read: ANY replica answers it, so rotation is
      // the whole failover story here (no kNotLeader to parse).
      core_->rotate_peer();
    }
    const bool retryable = result.status.retryable();
    core_->breaker_record(retryable);
    if (!retryable || !pacer.pace(attempt, result.status, nullptr))
      return result;
    if (!core_->breaker_allows()) return result;  // tripped mid-operation
  }
}

void CasClient::get_instance_async(const std::string& session_name,
                                   const sgx::SigStruct& common_sigstruct,
                                   InstanceCallback callback) {
  InstanceRequest request;
  request.session_name = session_name;
  request.common_sigstruct = common_sigstruct;
  const std::uint64_t id =
      core_->next_request_id.fetch_add(1, std::memory_order_relaxed);
  if (!core_->breaker_allows()) {
    // Fail fast inline — the breaker refuses before anything is dispatched,
    // so the callback runs on the caller's thread here.
    InstanceResult result;
    result.status = Status(StatusCode::kUnavailable, breaker_open_detail());
    result.attempts = 0;
    callback(result);
    return;
  }
  const auto deadline_at =
      core_->config.retry.deadline.count() > 0
          ? SteadyClock::now() + core_->config.retry.deadline
          : SteadyClock::time_point::max();
  issue_async(core_, encode_request(request, id), id,
              core_->config.retry.max_attempts, 0, deadline_at,
              std::move(callback));
}

void CasClient::issue_async(std::shared_ptr<Core> core, Bytes wire,
                            std::uint64_t request_id,
                            std::size_t attempts_left,
                            std::size_t attempts_used,
                            SteadyClock::time_point deadline_at,
                            InstanceCallback callback) {
  auto on_complete = [core, wire, request_id, attempts_left, attempts_used,
                      deadline_at, callback = std::move(callback)](
                         Bytes raw, std::exception_ptr error) mutable {
    InstanceResult result;
    if (error != nullptr) {
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        result.status = transport_status(e);
      } catch (...) {
        result.status = Status(StatusCode::kUnavailable, "transport failure");
      }
      core->drop_connection();
      core->rotate_peer();
    } else {
      result = decode_response(raw, request_id);
    }
    result.attempts = attempts_used + 1;
    if (result.status.code == StatusCode::kNotLeader && attempts_left > 1) {
      // Same immediate re-route as the sync path; the async path never
      // sleeps anyway, so hinted and hintless differ only in target.
      if (const auto hint = parse_leader_hint(result.status.detail))
        core->redirect_to(*hint);
      else
        core->rotate_peer();
      core->breaker_record(false);
      issue_async(core, std::move(wire), request_id, attempts_left - 1,
                  attempts_used + 1, deadline_at, std::move(callback));
      return;
    }
    const bool retryable = result.status.retryable();
    core->breaker_record(retryable);
    if (retryable && attempts_left > 1 && SteadyClock::now() < deadline_at &&
        core->breaker_allows()) {
      // Re-issue inline: no sleeping on the completion thread (it may be
      // the server's timer thread). Open-loop issuers model pacing.
      issue_async(core, std::move(wire), request_id, attempts_left - 1,
                  attempts_used + 1, deadline_at, std::move(callback));
      return;
    }
    callback(result);
  };
  try {
    // Pass a copy: async_call throws only when it cannot dispatch at all,
    // in which case the callback inside was never (and will never be)
    // invoked — the intact original below turns the throw into the same
    // completion path, so retry/delivery logic lives in one place.
    core->connection().async_call(wire, on_complete);
  } catch (const Error& e) {
    core->drop_connection();
    on_complete(Bytes{}, std::make_exception_ptr(e));
  }
}

// --- AttestedChannel --------------------------------------------------------

AttestedChannel::AttestedChannel(net::SimNetwork* net,
                                 std::string cas_address, crypto::Drbg rng)
    : net_(net),
      cas_address_(std::move(cas_address)),
      client_(std::move(rng)) {
  if (net_ == nullptr) throw Error("attested channel: network required");
}

Status AttestedChannel::attest(const crypto::RsaPublicKey& cas_identity,
                               const AttestPayload& payload) {
  static obs::Phase& p_root =
      obs::Tracer::instance().phase("client_attest");
  static obs::Phase& p_handshake =
      obs::Tracer::instance().phase("client_handshake");
  Envelope env;
  env.command = Command::kAttest;
  env.request_id = next_request_id_++;
  env.payload = payload.serialize();
  RootScope rs(p_root, env.request_id);

  std::optional<Bytes> accepted;
  StatusCode rejected = StatusCode::kAttestationRejected;
  try {
    obs::Span span(p_handshake);
    accepted = client_.connect(net_->connect(cas_address_), cas_identity,
                               env.serialize(), &rejected);
  } catch (const net::IdentityMismatchError&) {
    throw;  // an active attack must stay loud, never become a Status
  } catch (const Error& e) {
    return transport_status(e);
  }
  // A rejection may carry a typed protocol-level status (e.g.
  // kUnsupportedVersion from a server that cannot speak our version);
  // verification refusals arrive as the generic kAttestationRejected.
  if (!accepted.has_value()) return Status(rejected);
  return Status();
}

Result<AppConfig> AttestedChannel::get_config() {
  static obs::Phase& p_root =
      obs::Tracer::instance().phase("client_get_config");
  static obs::Phase& p_call = obs::Tracer::instance().phase("client_call");
  if (!client_.connected())
    return Status(StatusCode::kSessionNotAttested, "channel not attested");

  Envelope env;
  env.command = Command::kGetConfig;
  env.request_id = next_request_id_++;
  RootScope rs(p_root, env.request_id);

  Bytes plaintext;
  try {
    obs::Span span(p_call);
    plaintext = client_.call(env.serialize());
  } catch (const Error& e) {
    return transport_status(e);
  }
  try {
    const Envelope reply = Envelope::deserialize(plaintext);
    if (reply.command != Command::kGetConfig ||
        reply.request_id != env.request_id)
      return Status(StatusCode::kInternal,
                    "response does not match request");
    ConfigResponse resp = ConfigResponse::deserialize(reply.payload);
    if (!resp.ok()) return resp.status;
    return std::move(resp.config);
  } catch (const Error& e) {
    return Status(StatusCode::kInternal,
                  std::string("undecodable response: ") + e.what());
  }
}

}  // namespace sinclave::cas
