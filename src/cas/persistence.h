// CAS state sealing with rollback protection.
//
// The singleton guarantee — every attestation token attests AT MOST ONCE —
// is only as durable as the verifier's token database. If the CAS restarts
// from persistent state the adversarial host controls, rolling that state
// back to a snapshot taken *before* a token was consumed would mark the
// token unused again and reinstate the reuse attack (the classic rollback
// problem, cf. ROTE/Memoir).
//
// Defense implemented here:
//   * the full CAS state (policies + token database) is sealed with an
//     AEAD key available only inside the CAS enclave (derivable via
//     EGETKEY on real hardware; caller-supplied in the simulator),
//   * every seal binds the current value of a hardware monotonic counter
//     (TPM NV-counter / SGX platform-service analogue) as associated data
//     and then advances the counter,
//   * restore verifies the blob AND requires its bound counter value to
//     equal the counter's current value — any earlier snapshot fails.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/drbg.h"

namespace sinclave::cas {

/// Hardware monotonic counter stand-in. Strictly increasing; the adversary
/// can read it but not rewind it.
class MonotonicCounter {
 public:
  std::uint64_t read() const { return value_; }
  /// Advance and return the new value.
  std::uint64_t increment() { return ++value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Outcome of an unseal attempt.
enum class UnsealStatus {
  kOk,
  kBadSeal,    // wrong key or tampered ciphertext
  kRolledBack, // authentic blob, but bound to a stale counter value
  kMalformed,
};

const char* to_string(UnsealStatus s);

/// Seal `state` under `seal_key` (32 bytes), binding — and advancing — the
/// monotonic counter.
Bytes seal_state(ByteView seal_key, MonotonicCounter& counter,
                 ByteView state, crypto::Drbg& rng);

/// Unseal. On kOk, `out` receives the plaintext state.
UnsealStatus unseal_state(ByteView seal_key, const MonotonicCounter& counter,
                          ByteView blob, Bytes& out);

}  // namespace sinclave::cas
