#include "cas/service.h"

#include "common/serial.h"
#include "core/on_demand.h"
#include "core/predictor.h"
#include "crypto/sha256.h"

namespace sinclave::cas {

namespace {
using Clock = std::chrono::steady_clock;

std::string policy_path(const std::string& session_name) {
  return "policies/" + session_name;
}
}  // namespace

Bytes Policy::serialize() const {
  ByteWriter w;
  w.str(session_name);
  w.raw(expected_signer.view());
  w.u8(require_singleton ? 1 : 0);
  w.u8(allow_debug ? 1 : 0);
  w.u8(expected_mr_enclave.has_value() ? 1 : 0);
  if (expected_mr_enclave.has_value()) w.raw(expected_mr_enclave->view());
  w.u8(base_hash.has_value() ? 1 : 0);
  if (base_hash.has_value()) w.bytes(base_hash->encode());
  w.bytes(config.serialize());
  return std::move(w).take();
}

Policy Policy::deserialize(ByteView data) {
  ByteReader r(data);
  Policy p;
  p.session_name = r.str();
  p.expected_signer = r.fixed<32>();
  p.require_singleton = r.u8() != 0;
  p.allow_debug = r.u8() != 0;
  if (r.u8() != 0) p.expected_mr_enclave = r.fixed<32>();
  if (r.u8() != 0) p.base_hash = core::BaseHash::decode(r.bytes());
  p.config = AppConfig::deserialize(r.bytes());
  r.expect_done();
  return p;
}

CasService::CasService(quote::AttestationService* attestation,
                       crypto::RsaKeyPair identity, crypto::Drbg rng)
    : attestation_(attestation),
      identity_(std::move(identity)),
      rng_(std::move(rng)),
      policy_db_(rng_.generate(32),
                 crypto::Drbg(rng_.generate(16), "cas-db-nonces")) {
  if (attestation_ == nullptr)
    throw Error("cas: attestation service required");
}

Hash256 CasService::verifier_id() const {
  return crypto::sha256(identity_.public_key().modulus_be());
}

void CasService::add_signer_key(crypto::RsaKeyPair signer) {
  const Hash256 id = crypto::sha256(signer.public_key().modulus_be());
  signer_keys_.emplace(id, std::move(signer));
}

void CasService::install_policy(const Policy& policy) {
  policy_db_.write_file(policy_path(policy.session_name), policy.serialize());
}

std::optional<Policy> CasService::load_policy(
    const std::string& session_name) const {
  const auto blob = policy_db_.read_file(policy_path(session_name));
  if (!blob.has_value()) return std::nullopt;
  return Policy::deserialize(*blob);
}

void CasService::bind(net::SimNetwork& net, const std::string& address) {
  net.listen(address + ".instance", [this](ByteView raw) {
    InstanceResponse resp;
    try {
      resp = handle_instance(InstanceRequest::deserialize(raw));
    } catch (const ParseError& e) {
      resp.ok = false;
      resp.error = e.what();
    }
    return resp.serialize();
  });

  secure_server_ = std::make_unique<net::SecureServer>(
      &identity_, crypto::Drbg(rng_.generate(16), "cas-channel"),
      [this](ByteView payload, ByteView dh, std::uint64_t sid) {
        return on_handshake(payload, dh, sid);
      },
      [this](std::uint64_t sid, ByteView plaintext) {
        return on_request(sid, plaintext);
      });
  net.listen(address,
             [this](ByteView raw) { return secure_server_->handle(raw); });
}

InstanceResponse CasService::handle_instance(const InstanceRequest& request) {
  InstanceResponse resp;
  InstanceTimings t;
  const auto total_start = Clock::now();

  // "Misc": decrypt and parse the session's policy from the encrypted DB.
  auto mark = Clock::now();
  const auto policy = load_policy(request.session_name);
  t.db_load = Clock::now() - mark;

  if (!policy.has_value()) {
    resp.error = "unknown session";
    return resp;
  }
  if (!policy->require_singleton || !policy->base_hash.has_value()) {
    resp.error = "session is not configured for singleton enclaves";
    return resp;
  }
  const auto signer_it = signer_keys_.find(policy->expected_signer);
  if (signer_it == signer_keys_.end()) {
    resp.error = "no signer key uploaded for this session";
    return resp;
  }

  // Verify the received common SigStruct: authentic (RSA) and from the
  // expected signer.
  mark = Clock::now();
  const bool sig_ok = request.common_sigstruct.signature_valid();
  t.verify = Clock::now() - mark;
  if (!sig_ok) {
    resp.error = "common sigstruct signature invalid";
    return resp;
  }
  if (request.common_sigstruct.mr_signer() != policy->expected_signer) {
    resp.error = "common sigstruct from unexpected signer";
    return resp;
  }

  // Predict measurements: the common one (cross-check the received
  // SigStruct against the policy's base hash) and the singleton one.
  core::AttestationToken token;
  rng_.generate(token.data.data(), token.size());

  mark = Clock::now();
  const sgx::Measurement expected_common =
      core::MeasurementPredictor::predict_common(*policy->base_hash);
  core::InstancePage page;
  page.token = token;
  page.verifier_id = verifier_id();
  const sgx::Measurement expected_singleton =
      core::MeasurementPredictor::predict(*policy->base_hash, page);
  t.predict = Clock::now() - mark;

  if (request.common_sigstruct.enclave_hash != expected_common) {
    resp.error = "common sigstruct does not match session base hash";
    return resp;
  }

  // On-demand SigStruct for the individualized enclave.
  mark = Clock::now();
  resp.singleton_sigstruct = core::make_on_demand_sigstruct(
      request.common_sigstruct, expected_singleton, signer_it->second);
  t.sign = Clock::now() - mark;

  tokens_.emplace(token, PendingToken{request.session_name,
                                      expected_singleton, false});
  resp.ok = true;
  resp.token = token;
  resp.verifier_id = verifier_id();

  t.total = Clock::now() - total_start;
  last_timings_ = t;
  return resp;
}

std::optional<Bytes> CasService::on_handshake(ByteView client_payload,
                                              ByteView client_dh,
                                              std::uint64_t session_id) {
  AttestPayload payload;
  try {
    payload = AttestPayload::deserialize(client_payload);
  } catch (const ParseError&) {
    last_attest_verdict_ = Verdict::kMalformed;
    return std::nullopt;
  }

  const auto policy = load_policy(payload.session_name);
  if (!policy.has_value()) {
    last_attest_verdict_ = Verdict::kPolicyViolation;
    return std::nullopt;
  }

  // 1. Quote genuineness (the TEE provider's attestation service).
  const quote::QuoteVerification qv = attestation_->verify(payload.quote);
  if (!qv.ok()) {
    last_attest_verdict_ = qv.verdict;
    return std::nullopt;
  }

  // 2. Channel binding: REPORTDATA must commit to the client's DH key.
  if (!(qv.report_data == net::channel_binding(client_dh))) {
    last_attest_verdict_ = Verdict::kPolicyViolation;
    return std::nullopt;
  }

  // 3. No debug enclaves unless the policy opts in.
  if (qv.identity->attributes.debug() && !policy->allow_debug) {
    last_attest_verdict_ = Verdict::kAttributesMismatch;
    return std::nullopt;
  }

  // 4. Signer pin.
  if (qv.identity->mr_signer != policy->expected_signer) {
    last_attest_verdict_ = Verdict::kSignerMismatch;
    return std::nullopt;
  }

  // 5. Measurement check: singleton (SinClave) or pinned common (baseline).
  if (policy->require_singleton) {
    if (!payload.token.has_value()) {
      last_attest_verdict_ = Verdict::kTokenUnknown;
      return std::nullopt;
    }
    const auto it = tokens_.find(*payload.token);
    if (it == tokens_.end() ||
        it->second.session_name != payload.session_name) {
      last_attest_verdict_ = Verdict::kTokenUnknown;
      return std::nullopt;
    }
    if (it->second.used) {
      last_attest_verdict_ = Verdict::kTokenReused;
      return std::nullopt;
    }
    if (qv.identity->mr_enclave != it->second.expected_mr) {
      last_attest_verdict_ = Verdict::kMeasurementMismatch;
      return std::nullopt;
    }
    it->second.used = true;  // singleton: this token never attests again
  } else {
    if (!policy->expected_mr_enclave.has_value() ||
        qv.identity->mr_enclave != *policy->expected_mr_enclave) {
      last_attest_verdict_ = Verdict::kMeasurementMismatch;
      return std::nullopt;
    }
  }

  last_attest_verdict_ = Verdict::kOk;
  attested_sessions_[session_id] = payload.session_name;
  return to_bytes("attested");
}

Bytes CasService::on_request(std::uint64_t session_id, ByteView plaintext) {
  ConfigResponse resp;
  ByteReader r(plaintext);
  const auto cmd = static_cast<Command>(r.u8());
  if (cmd != Command::kGetConfig) {
    resp.error = "unknown command";
    return resp.serialize();
  }
  const auto it = attested_sessions_.find(session_id);
  if (it == attested_sessions_.end()) {
    resp.error = "session not attested";
    return resp.serialize();
  }
  const auto policy = load_policy(it->second);
  if (!policy.has_value()) {
    resp.error = "policy disappeared";
    return resp.serialize();
  }
  resp.ok = true;
  resp.config = policy->config;
  return resp.serialize();
}

std::size_t CasService::tokens_outstanding() const {
  std::size_t n = 0;
  for (const auto& [token, pending] : tokens_)
    if (!pending.used) ++n;
  return n;
}

std::size_t CasService::tokens_used() const {
  return tokens_.size() - tokens_outstanding();
}

Bytes CasService::export_state() const {
  ByteWriter w;
  const auto names = policy_db_.list_files();
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) {
    const auto blob = policy_db_.read_file(name);
    if (!blob.has_value()) throw Error("cas: policy db corrupted");
    w.str(name);
    w.bytes(*blob);
  }
  w.u32(static_cast<std::uint32_t>(tokens_.size()));
  for (const auto& [token, pending] : tokens_) {
    w.raw(token.view());
    w.str(pending.session_name);
    w.raw(pending.expected_mr.view());
    w.u8(pending.used ? 1 : 0);
  }
  return std::move(w).take();
}

void CasService::import_state(ByteView state) {
  ByteReader r(state);
  std::map<core::AttestationToken, PendingToken> tokens;
  std::vector<std::pair<std::string, Bytes>> policies;
  const std::uint32_t n_policies = r.u32();
  for (std::uint32_t i = 0; i < n_policies; ++i) {
    std::string name = r.str();
    policies.emplace_back(std::move(name), r.bytes());
  }
  const std::uint32_t n_tokens = r.u32();
  for (std::uint32_t i = 0; i < n_tokens; ++i) {
    const auto token = r.fixed<32>();
    PendingToken pending;
    pending.session_name = r.str();
    pending.expected_mr = r.fixed<32>();
    pending.used = r.u8() != 0;
    tokens.emplace(token, std::move(pending));
  }
  r.expect_done();

  // Commit only after the whole state parsed.
  for (auto& [name, blob] : policies) {
    Policy policy = Policy::deserialize(blob);
    install_policy(policy);
  }
  tokens_ = std::move(tokens);
}

}  // namespace sinclave::cas
