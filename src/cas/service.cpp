#include "cas/service.h"

#include <algorithm>

#include "common/serial.h"
#include "core/on_demand.h"
#include "core/predictor.h"
#include "crypto/sha256.h"
#include "obs/trace.h"

namespace sinclave::cas {

namespace {
using Clock = std::chrono::steady_clock;

std::string policy_path(const std::string& session_name) {
  return "policies/" + session_name;
}

/// Token -> stripe: tokens are uniform DRBG output, so their leading
/// bytes are already a perfect hash.
std::size_t token_stripe_index(const core::AttestationToken& token,
                               std::size_t stripes) {
  std::uint64_t h = 0;
  for (int i = 0; i < 8; ++i)
    h = (h << 8) | token.data[static_cast<std::size_t>(i)];
  return static_cast<std::size_t>(h % stripes);
}
}  // namespace

Bytes Policy::serialize() const {
  ByteWriter w;
  w.str(session_name);
  w.raw(expected_signer.view());
  w.u8(require_singleton ? 1 : 0);
  w.u8(allow_debug ? 1 : 0);
  w.u8(expected_mr_enclave.has_value() ? 1 : 0);
  if (expected_mr_enclave.has_value()) w.raw(expected_mr_enclave->view());
  w.u8(base_hash.has_value() ? 1 : 0);
  if (base_hash.has_value()) w.bytes(base_hash->encode());
  w.bytes(config.serialize());
  return std::move(w).take();
}

Policy Policy::deserialize(ByteView data) {
  ByteReader r(data);
  Policy p;
  p.session_name = r.str();
  p.expected_signer = r.fixed<32>();
  p.require_singleton = r.u8() != 0;
  p.allow_debug = r.u8() != 0;
  if (r.u8() != 0) p.expected_mr_enclave = r.fixed<32>();
  if (r.u8() != 0) p.base_hash = core::BaseHash::decode(r.bytes());
  p.config = AppConfig::deserialize(r.bytes());
  r.expect_done();
  return p;
}

CasService::CasService(quote::AttestationService* attestation,
                       crypto::RsaKeyPair identity, crypto::Drbg rng)
    : attestation_(attestation),
      identity_(std::move(identity)),
      rng_(std::move(rng)),
      token_rng_(crypto::Drbg(rng_.generate(32), "cas-token-root"),
                 "cas-tokens", kTokenStripes),
      policy_db_(rng_.generate(32),
                 crypto::Drbg(rng_.generate(16), "cas-db-nonces")) {
  if (attestation_ == nullptr)
    throw Error("cas: attestation service required");

  // The service's own collector: token accounting, the token-minting DRBG
  // pool, the secure endpoint's frame classification, and the secure
  // channel's raw stats (under channel_* names; the serving layer's
  // ServerMetrics mirror keeps its own secure_* spellings). The registry
  // dies with the service, so `this` cannot dangle.
  registry_.add_collector([this](obs::MetricsSnapshot& snap) {
    snap.gauge("tokens_outstanding", tokens_outstanding());
    snap.counter("tokens_spent", tokens_used());
    snap.counter("token_rng_stripe_collisions", token_rng_.collisions());
    const SecureFrameStats frames = secure_frame_stats();
    snap.counter("secure_attest_legacy_frames", frames.attest_legacy);
    snap.counter("secure_attest_envelope_frames", frames.attest_envelope);
    snap.counter("secure_config_legacy_frames", frames.config_legacy);
    snap.counter("secure_config_envelope_frames", frames.config_envelope);
    // ensure_secure_server(): call_once is the synchronization that makes
    // secure_server_ safely readable here (a bare null check would race
    // a first handshake on another thread).
    const net::SecureServer::Stats s = secure_channel_stats();
    snap.counter("channel_sessions_opened", s.sessions_opened);
    snap.counter("channel_handshakes_rejected", s.handshakes_rejected);
    snap.counter("channel_stripe_collisions", s.stripe_collisions);
    snap.gauge("channel_sessions_high_water", s.sessions_high_water);
    snap.gauge("channel_open_sessions", s.open_sessions);
    snap.counter("channel_sessions_expired", s.sessions_expired);
  });
}

CasService::TokenStripe& CasService::token_stripe(
    const core::AttestationToken& token) {
  return token_stripes_[token_stripe_index(token, kTokenStripes)];
}

const CasService::TokenStripe& CasService::token_stripe(
    const core::AttestationToken& token) const {
  return token_stripes_[token_stripe_index(token, kTokenStripes)];
}

Hash256 CasService::verifier_id() const {
  return crypto::sha256(identity_.public_key().modulus_be());
}

void CasService::add_signer_key(crypto::RsaKeyPair signer) {
  const Hash256 id = crypto::sha256(signer.public_key().modulus_be());
  MutexLock lock(signer_mutex_);
  signer_keys_.emplace(id, std::move(signer));
}

bool CasService::has_signer_key(const Hash256& signer_id) const {
  MutexLock lock(signer_mutex_);
  return signer_keys_.contains(signer_id);
}

void CasService::install_policy(const Policy& policy) {
  WriterLock lock(db_mutex_);
  policy_db_.write_file(policy_path(policy.session_name),
                        policy.serialize());
  // Write-through *under the exclusive lock*: cache updates happen in
  // DB-write order, so a concurrent miss-path fill (which holds at least
  // the shared half of db_mutex_) can never overwrite this install with
  // an older policy.
  if (PolicyCache* cache = policy_cache_.load())
    cache->put(policy.session_name, policy);
}

void CasService::set_policy_cache(PolicyCache* cache) {
  policy_cache_.store(cache);
}

std::optional<Policy> CasService::get_policy(
    const std::string& session_name) const {
  // "policy_load" covers the whole lookup — cache hit or decrypt+parse —
  // so the phase histogram shows the cache doing its job (bimodal split).
  static obs::Phase& p_policy = obs::Tracer::instance().phase("policy_load");
  obs::Span span(p_policy);
  if (PolicyCache* cache = policy_cache_.load()) {
    auto cached = cache->get(session_name);
    if (cached.has_value()) return cached;
  }
  // Read-mostly path: concurrent misses decrypt+parse in parallel under
  // the shared lock (EncryptedVolume reads are const); installs take the
  // exclusive half.
  ReaderLock lock(db_mutex_);
  const auto blob = policy_db_.read_file(policy_path(session_name));
  if (!blob.has_value()) return std::nullopt;
  Policy loaded = Policy::deserialize(*blob);
  // Fill the cache while still holding the shared lock: an install
  // (exclusive) cannot interleave, so every fill writes a value read
  // after the latest completed install (see install_policy).
  if (PolicyCache* cache = policy_cache_.load())
    cache->put(session_name, loaded);
  return loaded;
}

void CasService::ensure_secure_server() {
  std::call_once(secure_server_once_, [this] {
    crypto::Drbg channel_rng = [this] {
      MutexLock lock(rng_mutex_);
      return crypto::Drbg(rng_.generate(16), "cas-channel");
    }();
    secure_server_ = std::make_unique<net::SecureServer>(
        &identity_, std::move(channel_rng),
        [this](ByteView payload, ByteView dh, std::uint64_t sid,
               StatusCode* reject_status) {
          return on_handshake(payload, dh, sid, reject_status);
        },
        [this](std::uint64_t sid, ByteView plaintext) {
          return on_request(sid, plaintext);
        },
        secure_options_);
  });
}

void CasService::set_secure_server_options(net::SecureServerOptions options) {
  secure_options_ = options;
}

std::size_t CasService::sweep_idle_sessions() {
  ensure_secure_server();
  return secure_server_->sweep_idle();
}

void CasService::set_replication_gate(ReplicationGate* gate) {
  replication_gate_.store(gate, std::memory_order_release);
}

Bytes CasService::handle_secure(ByteView raw) {
  ensure_secure_server();
  obs::Tracer& tracer = obs::Tracer::instance();
  // The event-driven frontend (server::CasServer) opens its own scope on
  // the worker before calling in and records its own root; only open one
  // here when this is the outermost traced entry (the bind() frontend or
  // a direct caller).
  if (obs::TraceScope::active() || !tracer.enabled())
    return secure_server_->handle(raw);

  obs::TraceContext ctx;
  ctx.trace_id = tracer.new_trace_id();
  ctx.session_id = net::peek_session_id(raw).value_or(0);
  obs::TraceScope scope(ctx);
  const std::int64_t start = obs::Tracer::now_ns();
  const net::RecordType type = net::classify_record(raw);
  Bytes out = secure_server_->handle(raw);
  static obs::Phase& p_attest = tracer.phase("request_attest");
  static obs::Phase& p_config = tracer.phase("request_get_config");
  static obs::Phase& p_unknown = tracer.phase("request_secure_unknown");
  obs::Phase& root = type == net::RecordType::kHandshake ? p_attest
                     : type == net::RecordType::kData    ? p_config
                                                         : p_unknown;
  // The scope carries the session id the handshake bound mid-request.
  tracer.record_phase_root(root, obs::TraceScope::current(), start,
                           obs::Tracer::now_ns());
  return out;
}

net::SecureServer::Stats CasService::secure_channel_stats() {
  ensure_secure_server();
  return secure_server_->stats();
}

void CasService::bind(net::SimNetwork& net, const std::string& address) {
  net.listen(address + ".instance", [this](ByteView raw) {
    // Envelope/legacy decode, version gate, and malformed-input handling
    // all live in serve_instance_frame — shared with server::CasServer so
    // the two frontends answer identically.
    obs::Tracer& tracer = obs::Tracer::instance();
    obs::TraceContext ctx;
    ctx.trace_id = tracer.new_trace_id();
    ctx.request_id = Envelope::peek_request_id(raw).value_or(0);
    obs::TraceScope scope(ctx);
    const std::int64_t start = obs::Tracer::now_ns();
    FrameInfo frame;
    Bytes out = serve_instance_frame(
        raw,
        [this](const InstanceRequest& req) { return handle_instance(req); },
        [this](const IntrospectRequest& req) {
          return handle_introspect(req);
        },
        &frame);
    if (ctx.active()) {
      static obs::Phase& p_instance =
          tracer.phase("request_get_instance");
      static obs::Phase& p_introspect =
          tracer.phase("request_introspect");
      tracer.record_phase_root(frame.command == Command::kIntrospect
                                   ? p_introspect
                                   : p_instance,
                               ctx, start, obs::Tracer::now_ns());
    }
    return out;
  });

  ensure_secure_server();
  net.listen(address,
             [this](ByteView raw) { return handle_secure(raw); });
}

MintedCredential CasService::mint_credential(
    const Policy& policy, const sgx::SigStruct& common_sigstruct,
    InstanceTimings* timings) {
  return std::move(mint_batch(policy, common_sigstruct, 1, timings).front());
}

std::vector<MintedCredential> CasService::mint_batch(
    const Policy& policy, const sgx::SigStruct& common_sigstruct,
    std::size_t count, InstanceTimings* timings) {
  static obs::Phase& p_mint = obs::Tracer::instance().phase("mint");
  obs::Span span(p_mint);
  if (!policy.require_singleton || !policy.base_hash.has_value())
    throw Error("cas: policy is not configured for singleton enclaves");

  const crypto::RsaKeyPair* signer = nullptr;
  {
    MutexLock lock(signer_mutex_);
    const auto it = signer_keys_.find(policy.expected_signer);
    if (it == signer_keys_.end())
      throw Error(std::string("cas: ") +
                  status_message(StatusCode::kNoSignerKey));
    signer = &it->second;  // map nodes are pointer-stable under inserts
  }

  std::vector<MintedCredential> batch(count);
  if (count == 0) return batch;

  // Per-batch costs, paid once: the common-SigStruct verification (inside
  // OnDemandSigner) plus its scratch arena, the verifier-id hash, and one
  // DRBG-stripe lease for all the tokens. The lease comes from the
  // striped token_rng_ pool, so concurrent minters draw from different
  // generators instead of serializing on a global RNG lock.
  // The RSA-CRT signing loop below is the most expensive code in the
  // process (~5 ms per signature); holding any lock across it would
  // serialize the whole service behind one batch.
  lockrank::assert_none_held("mint_batch signing");
  core::OnDemandSigner minter(common_sigstruct, *signer);
  const Hash256 vid = verifier_id();
  {
    const auto lease = token_rng_.lease();
    for (MintedCredential& cred : batch)
      lease.rng().generate(cred.token.data.data(), cred.token.size());
  }

  for (MintedCredential& cred : batch) {
    auto mark = Clock::now();
    core::InstancePage page;
    page.token = cred.token;
    page.verifier_id = vid;
    cred.mr_enclave =
        core::MeasurementPredictor::predict(*policy.base_hash, page);
    if (timings != nullptr) timings->predict += Clock::now() - mark;

    mark = Clock::now();
    cred.sigstruct = minter.make(cred.mr_enclave);
    if (timings != nullptr) timings->sign += Clock::now() - mark;
  }
  return batch;
}

void CasService::register_token(const core::AttestationToken& token,
                                const std::string& session_name,
                                const sgx::Measurement& expected_mr) {
  TokenStripe& stripe = token_stripe(token);
  MutexLock lock(stripe.m);
  // emplace: re-applying the same log entry after a restart must not
  // reset a token that was meanwhile spent.
  stripe.tokens.emplace(token,
                        PendingToken{session_name, expected_mr, false});
}

Status CasService::peek_spend(const core::AttestationToken& token,
                              const std::string& session_name,
                              const sgx::Measurement& mr_enclave) const {
  const TokenStripe& stripe = token_stripe(token);
  MutexLock lock(stripe.m);
  const auto it = stripe.tokens.find(token);
  if (it == stripe.tokens.end() || it->second.session_name != session_name)
    return Status(StatusCode::kTokenUnknown);
  if (it->second.used) return Status(StatusCode::kTokenReused);
  if (mr_enclave != it->second.expected_mr)
    return Status(StatusCode::kAttestationRejected);
  return Status();
}

Status CasService::apply_replicated_spend(const core::AttestationToken& token,
                                          const std::string& session_name,
                                          const sgx::Measurement& mr_enclave) {
  TokenStripe& stripe = token_stripe(token);
  MutexLock lock(stripe.m);
  const auto it = stripe.tokens.find(token);
  if (it == stripe.tokens.end() || it->second.session_name != session_name)
    return Status(StatusCode::kTokenUnknown);
  if (it->second.used) return Status(StatusCode::kTokenReused);
  if (mr_enclave != it->second.expected_mr)
    return Status(StatusCode::kAttestationRejected);
  it->second.used = true;  // singleton: this token never attests again
  ++stripe.used;
  return Status();
}

std::optional<StatusCode> CasService::check_retrieval_preconditions(
    const Policy& policy) const {
  if (!policy.require_singleton || !policy.base_hash.has_value())
    return StatusCode::kNotSingleton;
  if (!has_signer_key(policy.expected_signer))
    return StatusCode::kNoSignerKey;
  return std::nullopt;
}

InstanceResponse CasService::handle_instance(const InstanceRequest& request) {
  InstanceResponse resp;
  InstanceTimings t;
  const auto total_start = Clock::now();

  // "Misc": decrypt and parse the session's policy from the encrypted DB
  // (or the decrypted-policy cache, when the serving layer attached one).
  auto mark = Clock::now();
  const auto policy = get_policy(request.session_name);
  t.db_load = Clock::now() - mark;

  if (!policy.has_value()) {
    resp.status = Status(StatusCode::kUnknownSession);
    return resp;
  }
  if (const auto refused = check_retrieval_preconditions(*policy)) {
    resp.status = Status(*refused);
    return resp;
  }

  // Verify the received common SigStruct: authentic (RSA) and from the
  // expected signer.
  mark = Clock::now();
  const bool sig_ok = request.common_sigstruct.signature_valid();
  t.verify = Clock::now() - mark;
  if (!sig_ok) {
    resp.status = Status(StatusCode::kBadSignature);
    return resp;
  }
  if (request.common_sigstruct.mr_signer() != policy->expected_signer) {
    resp.status = Status(StatusCode::kWrongSigner);
    return resp;
  }

  // Cross-check the received SigStruct against the policy's base hash.
  mark = Clock::now();
  const sgx::Measurement expected_common =
      core::MeasurementPredictor::predict_common(*policy->base_hash);
  t.predict = Clock::now() - mark;
  if (request.common_sigstruct.enclave_hash != expected_common) {
    resp.status = Status(StatusCode::kBaseHashMismatch);
    return resp;
  }

  // Mint the singleton credential (token + prediction + on-demand
  // SigStruct) and arm its one-time token. In cluster mode the arming is
  // a log entry: the gate answers only after a majority committed it and
  // THIS node applied it (register_token via the log), so a credential
  // is never released that a failover could forget.
  const MintedCredential cred =
      mint_credential(*policy, request.common_sigstruct, &t);
  if (ReplicationGate* gate =
          replication_gate_.load(std::memory_order_acquire);
      gate != nullptr) {
    const Status committed =
        gate->register_token(cred.token, request.session_name,
                             cred.mr_enclave);
    if (!committed.ok()) {
      resp.status = committed;
      return resp;
    }
  } else {
    register_token(cred.token, request.session_name, cred.mr_enclave);
  }

  resp.status = Status();
  resp.token = cred.token;
  resp.verifier_id = verifier_id();
  resp.singleton_sigstruct = cred.sigstruct;

  t.total = Clock::now() - total_start;
  {
    MutexLock lock(observe_mutex_);
    last_timings_ = t;
  }
  return resp;
}

std::optional<Bytes> CasService::on_handshake(ByteView client_payload,
                                              ByteView client_dh,
                                              std::uint64_t session_id,
                                              StatusCode* reject_status) {
  const auto verdict = [this](Verdict v) {
    MutexLock lock(observe_mutex_);
    last_attest_verdict_ = v;
  };

  // Envelope-wrapped (v1 kAttest) or raw legacy payload, decoded without
  // letting deserializer exceptions escape; the accept payload below
  // answers in the flavor the peer spoke. Only protocol-level refusals
  // ride back to the (unauthenticated) peer as typed statuses —
  // verification failures stay the generic rejection so the handshake is
  // no oracle; the fine-grained Verdict is server-side observability.
  FrameInfo frame;
  const auto decoded = decode_attest_payload(client_payload, &frame);
  // Legacy-vs-envelope classification lives here, past the encryption
  // boundary, where the plaintext flavor is actually visible; the serving
  // layer mirrors these into its per-command metrics at snapshot time.
  (frame.legacy ? attest_legacy_frames_ : attest_envelope_frames_)
      .fetch_add(1, std::memory_order_relaxed);
  if (!decoded.has_value()) {
    if (reject_status != nullptr && is_protocol_level(frame.status))
      *reject_status = frame.status;
    verdict(Verdict::kMalformed);
    return std::nullopt;
  }
  const AttestPayload& payload = *decoded;

  const auto policy = get_policy(payload.session_name);
  if (!policy.has_value()) {
    verdict(Verdict::kPolicyViolation);
    return std::nullopt;
  }

  // 1. Quote genuineness (the TEE provider's attestation service).
  const quote::QuoteVerification qv = [&] {
    static obs::Phase& p_check = obs::Tracer::instance().phase("quote_check");
    obs::Span span(p_check);
    return attestation_->verify(payload.quote);
  }();
  if (!qv.ok()) {
    verdict(qv.verdict);
    return std::nullopt;
  }

  // 2. Channel binding: REPORTDATA must commit to the client's DH key.
  if (!(qv.report_data == net::channel_binding(client_dh))) {
    verdict(Verdict::kPolicyViolation);
    return std::nullopt;
  }

  // 3. No debug enclaves unless the policy opts in.
  if (qv.identity->attributes.debug() && !policy->allow_debug) {
    verdict(Verdict::kAttributesMismatch);
    return std::nullopt;
  }

  // 4. Signer pin.
  if (qv.identity->mr_signer != policy->expected_signer) {
    verdict(Verdict::kSignerMismatch);
    return std::nullopt;
  }

  // 5. Measurement check: singleton (SinClave) or pinned common (baseline).
  if (policy->require_singleton) {
    if (!payload.token.has_value()) {
      verdict(Verdict::kTokenUnknown);
      return std::nullopt;
    }
    if (ReplicationGate* gate =
            replication_gate_.load(std::memory_order_acquire);
        gate != nullptr) {
      // Cluster mode. A cheap local precheck first (rejects that need no
      // log traffic), then the spend commits through the replicated log
      // with no lock held; apply_replicated_spend — run on every node in
      // log order — is the authoritative mark-used. Two handshakes racing
      // the same token may both pass the precheck and both propose; the
      // log serializes them, the first applied spend wins everywhere, and
      // the loser's own proposal answers kTokenReused.
      Status spent = peek_spend(*payload.token, payload.session_name,
                                qv.identity->mr_enclave);
      // A local "token unknown" is only authoritative on a caught-up
      // leader: a lagging replica (follower, or a fresh leader before
      // its no-op applies) may simply not have applied the registration
      // yet. Commit the spend through the log instead — it serializes
      // after every registration, so the apply verdict is authoritative
      // (and a follower answers kNotLeader, routing the client onward).
      const bool local_miss_untrusted =
          spent.code == StatusCode::kTokenUnknown && !gate->ready();
      if (spent.ok() || local_miss_untrusted) {
        static obs::Phase& p_spend =
            obs::Tracer::instance().phase("token_spend");
        obs::Span spend_span(p_spend);  // covers the replicated commit
        spent = gate->spend_token(*payload.token, payload.session_name,
                                  qv.identity->mr_enclave);
      }
      if (!spent.ok()) {
        // kNotLeader is protocol-level, so the client learns to re-route;
        // verification outcomes stay the generic rejection as ever.
        if (reject_status != nullptr && is_protocol_level(spent.code))
          *reject_status = spent.code;
        verdict(spent.code == StatusCode::kTokenReused
                    ? Verdict::kTokenReused
                : spent.code == StatusCode::kTokenUnknown
                    ? Verdict::kTokenUnknown
                : spent.code == StatusCode::kAttestationRejected
                    ? Verdict::kMeasurementMismatch
                    : Verdict::kStale);  // routing/liveness refusals
        return std::nullopt;
      }
    } else {
      // Lookup, one-time check, measurement check and spend are one
      // critical section *inside the token's stripe*: two attestations
      // racing on the same token hash to the same stripe and serialize
      // there, so exactly one can ever flip `used`; attestations of
      // different tokens proceed on different stripes in parallel.
      static obs::Phase& p_spend =
          obs::Tracer::instance().phase("token_spend");
      obs::Span spend_span(p_spend);  // covers stripe-lock wait + spend
      TokenStripe& stripe = token_stripe(*payload.token);
      MutexLock lock(stripe.m);
      const auto it = stripe.tokens.find(*payload.token);
      if (it == stripe.tokens.end() ||
          it->second.session_name != payload.session_name) {
        verdict(Verdict::kTokenUnknown);
        return std::nullopt;
      }
      if (it->second.used) {
        verdict(Verdict::kTokenReused);
        return std::nullopt;
      }
      if (qv.identity->mr_enclave != it->second.expected_mr) {
        verdict(Verdict::kMeasurementMismatch);
        return std::nullopt;
      }
      it->second.used = true;  // singleton: this token never attests again
      ++stripe.used;
    }
  } else {
    if (!policy->expected_mr_enclave.has_value() ||
        qv.identity->mr_enclave != *policy->expected_mr_enclave) {
      verdict(Verdict::kMeasurementMismatch);
      return std::nullopt;
    }
  }
  {
    SessionStripe& stripe = session_stripes_[session_id % kSessionStripes];
    MutexLock lock(stripe.m);
    stripe.attested[session_id] = payload.session_name;
  }

  verdict(Verdict::kOk);
  if (frame.legacy) return to_bytes("attested");
  Envelope accept;
  accept.command = Command::kAttest;
  accept.request_id = frame.request_id;
  accept.payload = to_bytes("attested");
  return accept.serialize();
}

Bytes CasService::on_request(std::uint64_t session_id, ByteView plaintext) {
  static obs::Phase& p_serve = obs::Tracer::instance().phase("config_serve");
  FrameInfo frame;
  Bytes out;
  {
    obs::Span span(p_serve);
    out = serve_config_frame_inner(session_id, plaintext, &frame);
  }
  (frame.legacy ? config_legacy_frames_ : config_envelope_frames_)
      .fetch_add(1, std::memory_order_relaxed);
  return out;
}

Bytes CasService::serve_config_frame_inner(std::uint64_t session_id,
                                           ByteView plaintext,
                                           FrameInfo* frame) {
  return serve_config_frame(plaintext, [this, session_id]() {
    ConfigResponse resp;
    std::string session_name;
    {
      const SessionStripe& stripe =
          session_stripes_[session_id % kSessionStripes];
      MutexLock lock(stripe.m);
      const auto it = stripe.attested.find(session_id);
      if (it == stripe.attested.end()) {
        resp.status = Status(StatusCode::kSessionNotAttested);
        return resp;
      }
      session_name = it->second;
    }
    const auto policy = get_policy(session_name);
    if (!policy.has_value()) {
      resp.status = Status(StatusCode::kUnknownSession, "policy disappeared");
      return resp;
    }
    resp.status = Status();
    resp.config = policy->config;
    return resp;
  }, frame);
}

CasService::SecureFrameStats CasService::secure_frame_stats() const {
  SecureFrameStats s;
  s.attest_legacy = attest_legacy_frames_.load(std::memory_order_relaxed);
  s.attest_envelope = attest_envelope_frames_.load(std::memory_order_relaxed);
  s.config_legacy = config_legacy_frames_.load(std::memory_order_relaxed);
  s.config_envelope = config_envelope_frames_.load(std::memory_order_relaxed);
  return s;
}

namespace {

TraceReport to_report(const obs::Trace& trace) {
  TraceReport report;
  report.trace_id = trace.trace_id;
  report.request_id = trace.request_id;
  report.session_id = trace.session_id;
  report.duration_ns = trace.duration_ns();
  report.phases.reserve(trace.spans.size());
  for (const obs::CollectedSpan& span : trace.spans) {
    TraceReport::Phase p;
    p.name = span.name;
    p.depth = span.depth;
    p.offset_ns = span.start_ns - trace.start_ns;
    p.duration_ns = span.duration_ns();
    report.phases.push_back(std::move(p));
  }
  return report;
}

}  // namespace

IntrospectResponse CasService::handle_introspect(
    const IntrospectRequest& request) {
  IntrospectResponse resp;
  if (request.format != MetricsFormat::kJson &&
      request.format != MetricsFormat::kPrometheus &&
      request.format != MetricsFormat::kText) {
    resp.status = Status(StatusCode::kMalformedRequest, "unknown format");
    return resp;
  }

  const obs::MetricsSnapshot snap = registry_.snapshot();
  switch (request.format) {
    case MetricsFormat::kPrometheus:
      resp.metrics = snap.to_prometheus();
      break;
    case MetricsFormat::kText:
      resp.metrics = snap.to_text();
      break;
    case MetricsFormat::kJson:
      resp.metrics = snap.to_json();
      break;
  }

  obs::Tracer& tracer = obs::Tracer::instance();
  // Server-side cap: introspection is a debugging endpoint, not a bulk
  // trace exporter.
  const std::size_t cap = std::min<std::uint32_t>(request.max_traces, 64);
  for (const obs::Trace& trace : tracer.collect(cap))
    resp.traces.push_back(to_report(trace));
  if (request.include_slow) {
    for (const obs::Trace& trace : tracer.slow_traces())
      resp.slow_traces.push_back(to_report(trace));
  }
  resp.status = Status();
  return resp;
}

CasService::InstanceTimings CasService::last_instance_timings() const {
  MutexLock lock(observe_mutex_);
  return last_timings_;
}

Verdict CasService::last_attest_verdict() const {
  MutexLock lock(observe_mutex_);
  return last_attest_verdict_;
}

std::size_t CasService::tokens_outstanding() const {
  std::size_t outstanding = 0;
  for (const TokenStripe& stripe : token_stripes_) {
    MutexLock lock(stripe.m);
    outstanding += stripe.tokens.size() - stripe.used;
  }
  return outstanding;
}

std::size_t CasService::tokens_used() const {
  std::size_t used = 0;
  for (const TokenStripe& stripe : token_stripes_) {
    MutexLock lock(stripe.m);
    used += stripe.used;
  }
  return used;
}

Bytes CasService::export_state() const {
  ByteWriter w;
  {
    ReaderLock lock(db_mutex_);
    const auto names = policy_db_.list_files();
    w.u32(static_cast<std::uint32_t>(names.size()));
    for (const auto& name : names) {
      const auto blob = policy_db_.read_file(name);
      if (!blob.has_value()) throw Error("cas: policy db corrupted");
      w.str(name);
      w.bytes(*blob);
    }
  }
  {
    // Merge the stripes into one token-ordered map first: the serialized
    // layout stays byte-identical to the pre-striping format (sorted by
    // token), so sealed state round-trips across versions.
    std::map<core::AttestationToken, PendingToken> merged;
    for (const TokenStripe& stripe : token_stripes_) {
      MutexLock lock(stripe.m);
      merged.insert(stripe.tokens.begin(), stripe.tokens.end());
    }
    w.u32(static_cast<std::uint32_t>(merged.size()));
    for (const auto& [token, pending] : merged) {
      w.raw(token.view());
      w.str(pending.session_name);
      w.raw(pending.expected_mr.view());
      w.u8(pending.used ? 1 : 0);
    }
  }
  return std::move(w).take();
}

void CasService::import_state(ByteView state) {
  ByteReader r(state);
  std::map<core::AttestationToken, PendingToken> tokens;
  std::vector<Policy> policies;
  // Sequence counts validated against remaining input (a policy entry
  // costs at least its two u32 length prefixes, a token entry 32+4+32+1
  // bytes) so a corrupt count dies as ParseError before any allocation.
  const std::uint32_t n_policies = r.count(8);
  for (std::uint32_t i = 0; i < n_policies; ++i) {
    r.str();  // name: recomputed from the policy's session_name on install
    const Bytes blob = r.bytes();
    // Decode NOW, inside the parse phase: a corrupt nested policy blob
    // must fail the whole import, not surface mid-commit after earlier
    // policies were already installed (partially-applied state).
    policies.push_back(Policy::deserialize(blob));
  }
  const std::uint32_t n_tokens = r.count(69);
  for (std::uint32_t i = 0; i < n_tokens; ++i) {
    const auto token = r.fixed<32>();
    PendingToken pending;
    pending.session_name = r.str();
    pending.expected_mr = r.fixed<32>();
    pending.used = r.u8() != 0;
    tokens.emplace(token, std::move(pending));
  }
  r.expect_done();

  // Commit only after the whole state parsed.
  for (Policy& policy : policies) install_policy(policy);
  for (TokenStripe& stripe : token_stripes_) {
    MutexLock lock(stripe.m);
    stripe.tokens.clear();
    stripe.used = 0;
  }
  for (auto& [token, pending] : tokens) {
    TokenStripe& stripe = token_stripe(token);
    MutexLock lock(stripe.m);
    if (pending.used) ++stripe.used;
    stripe.tokens.emplace(token, std::move(pending));
  }
}

}  // namespace sinclave::cas
