// Replicated CAS log: leader-elected (Raft-style) replication of the two
// state machines that make the singleton guarantee — the policy database
// and the one-time token table — across a small cluster of CAS nodes.
//
// Why the CAS needs consensus at all: a single verifier is a single point
// of failure, but naively running N independent verifiers re-opens the
// token-reuse attack the paper closes — an attacker replays one
// attestation token at two replicas and both release the credential. Here
// every token transition (arming a minted token, spending it at
// attestation) is a log entry: the leader appends it, replicates it, and
// only a MAJORITY-COMMITTED entry is applied — on every node, in the same
// order — before any credential is released. Exactly-once token spend then
// survives leader kill, partition, and rejoin, because "spent" is a fact
// of the replicated log, not of one node's memory.
//
// Shape (hand-rolled, simulator-scale Raft):
//   * leader election with randomized timeouts on an internal TimerWheel;
//   * AppendEntries replication + heartbeats; commit advances only over
//     current-term entries counted at a majority (Raft §5.4.2);
//   * a no-op entry on election win recommits the previous leader's tail;
//   * InstallSnapshot (the CAS export_state blob) for lagging followers
//     once the applied prefix is compacted away;
//   * term / vote / log persisted through the SEALED, monotonic-counter-
//     bound store (cas/persistence.h) BEFORE any message is answered — a
//     restarted node whose host replays a stale blob refuses to start, so
//     a spent token can never roll back to unspent.
//
// Wire: every inter-CAS message rides a protocol-v2 Envelope (commands
// kVoteRequest / kAppendEntries / kInstallSnapshot) on the dedicated
// `<address>.raft` endpoint. The v1 client surface is untouched: the raft
// endpoint answers any other version with kUnsupportedVersion and any
// non-raft command with kUnknownCommand, and client endpoints never decode
// these commands. A follower asked to write answers kNotLeader whose
// detail carries the leader hint CasClient re-routes on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cas/persistence.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "core/instance_page.h"
#include "crypto/drbg.h"
#include "net/sim_network.h"
#include "net/timer_wheel.h"
#include "sgx/types.h"

namespace sinclave::cas {

/// Protocol version of inter-CAS replication envelopes. Distinct from the
/// client-facing kProtocolVersion (1): replication frames are v2-only, so
/// a v1 peer that strays onto the raft endpoint gets a clean
/// kUnsupportedVersion refusal instead of a half-understood frame.
inline constexpr std::uint16_t kReplicationVersion = 2;

// --- log entries ------------------------------------------------------------

/// What a committed log entry does to the CAS state machine (u8 on the
/// wire; append only).
enum class LogCommand : std::uint8_t {
  /// No state change. Appended by every fresh leader to recommit the
  /// previous term's tail (Raft forbids counting replicas of old-term
  /// entries directly).
  kNoop = 0,
  /// Payload: cas::Policy::serialize() — install/replace a session policy.
  kInstallPolicy = 1,
  /// Payload: TokenCommand — arm a freshly minted one-time token.
  kRegisterToken = 2,
  /// Payload: TokenCommand — spend a token at attestation. The FIRST
  /// committed spend wins cluster-wide; later ones apply to kTokenReused.
  kSpendToken = 3,
};

const char* to_string(LogCommand command);

/// One replicated log entry.
struct LogEntry {
  std::uint64_t term = 0;
  LogCommand command = LogCommand::kNoop;
  /// Proposer-unique id (proposer node id in the top byte, sequence
  /// below): lets a waiting proposer detect that its slot was overwritten
  /// by a different leader's entry after a failover.
  std::uint64_t entry_id = 0;
  Bytes payload;

  Bytes serialize() const;
  static LogEntry deserialize(ByteView data);
};

/// Payload of kRegisterToken / kSpendToken entries.
struct TokenCommand {
  core::AttestationToken token;
  std::string session_name;
  sgx::Measurement mr_enclave;

  Bytes serialize() const;
  static TokenCommand deserialize(ByteView data);
};

// --- messages (v2 envelope payloads) ----------------------------------------

/// Command::kVoteRequest payload.
struct VoteRequestMsg {
  std::uint64_t term = 0;
  std::uint64_t candidate_id = 0;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;

  Bytes serialize() const;
  static VoteRequestMsg deserialize(ByteView data);
};

/// Body of the RaftReply answering kVoteRequest.
struct VoteResponseMsg {
  std::uint64_t term = 0;
  bool granted = false;

  Bytes serialize() const;
  static VoteResponseMsg deserialize(ByteView data);
};

/// Command::kAppendEntries payload (empty `entries` = heartbeat).
struct AppendRequestMsg {
  std::uint64_t term = 0;
  std::uint64_t leader_id = 0;
  std::uint64_t prev_log_index = 0;
  std::uint64_t prev_log_term = 0;
  std::uint64_t leader_commit = 0;
  std::vector<LogEntry> entries;

  Bytes serialize() const;
  static AppendRequestMsg deserialize(ByteView data);
};

/// Body of the RaftReply answering kAppendEntries.
struct AppendResponseMsg {
  std::uint64_t term = 0;
  bool success = false;
  /// On success: highest index known replicated on the follower.
  std::uint64_t match_index = 0;
  /// Always: the follower's last log index — the leader's fast next_index
  /// back-off hint, so catch-up skips the one-per-round probe descent.
  std::uint64_t last_log_index = 0;

  Bytes serialize() const;
  static AppendResponseMsg deserialize(ByteView data);
};

/// Command::kInstallSnapshot payload. `state` is the CAS export_state()
/// blob at `last_included_index` — snapshots travel only between CAS
/// enclaves over the attested-identity simulator fabric here; a production
/// port would seal them to the receiving enclave.
struct SnapshotRequestMsg {
  std::uint64_t term = 0;
  std::uint64_t leader_id = 0;
  std::uint64_t last_included_index = 0;
  std::uint64_t last_included_term = 0;
  Bytes state;

  Bytes serialize() const;
  static SnapshotRequestMsg deserialize(ByteView data);
};

/// Body of the RaftReply answering kInstallSnapshot.
struct SnapshotResponseMsg {
  std::uint64_t term = 0;
  bool ok = false;

  Bytes serialize() const;
  static SnapshotResponseMsg deserialize(ByteView data);
};

/// Payload of every raft response envelope: a typed Status (so the
/// endpoint can refuse malformed/unknown/wrong-version frames in kind)
/// followed by the command-specific response body when status is ok.
struct RaftReply {
  Status status;
  Bytes body;

  Bytes serialize() const;
  static RaftReply deserialize(ByteView data);
};

// --- persistence ------------------------------------------------------------

/// Everything a node must not lose (or roll back) across a restart:
/// Raft's term/vote pair, the log suffix, and the snapshot it hangs off.
/// commit_index is deliberately absent — it is rediscovered from the next
/// leader's commit advance, and re-applying is safe because every apply is
/// idempotent.
struct PersistentState {
  std::uint64_t current_term = 0;
  std::uint64_t voted_for = 0;  // 0 = none (node ids start at 1)
  std::uint64_t base_index = 0;
  std::uint64_t base_term = 0;
  Bytes snapshot;  // CAS export_state at base_index (empty at genesis)
  std::vector<LogEntry> log;  // entries base_index+1 .. base_index+size

  Bytes serialize() const;
  static PersistentState deserialize(ByteView data);
};

/// Sealed backing store for PersistentState: every save() re-seals under
/// the node's seal key, binding and advancing the hardware monotonic
/// counter (cas/persistence.h). load() refuses — UnsealStatus::kRolledBack
/// — any blob bound to a stale counter value, which is what stops the
/// adversarial host from resurrecting a pre-spend token table by replaying
/// an old blob at restart.
///
/// Not internally synchronized: RaftCore calls it under its own mutex;
/// tests touch blob()/set_blob() only while the node is stopped. The
/// MonotonicCounter and the blob both belong to the host (they survive
/// enclave restarts); the seal key does not.
class SealedLogStore {
 public:
  SealedLogStore(Bytes seal_key, MonotonicCounter* counter, crypto::Drbg rng);

  bool empty() const { return blob_.empty(); }
  void save(const PersistentState& state);
  UnsealStatus load(PersistentState* out) const;

  /// The opaque sealed blob, as the untrusted host stores it. Tests use
  /// this to capture a pre-spend blob and replay it after a restart.
  const Bytes& blob() const { return blob_; }
  void set_blob(Bytes blob) { blob_ = std::move(blob); }

 private:
  Bytes seal_key_;
  MonotonicCounter* counter_;
  crypto::Drbg rng_;
  Bytes blob_;
};

// --- the consensus core -----------------------------------------------------

/// One cluster member, by stable id and base network address (the raft
/// endpoint is `<address>.raft`).
struct RaftPeer {
  std::uint64_t id = 0;
  std::string address;
};

struct RaftConfig {
  std::uint64_t node_id = 1;
  /// All cluster members, including this node.
  std::vector<RaftPeer> peers;
  /// Randomized election timeout window (Raft's liveness lever).
  std::chrono::nanoseconds election_timeout_min{std::chrono::milliseconds(40)};
  std::chrono::nanoseconds election_timeout_max{std::chrono::milliseconds(80)};
  std::chrono::nanoseconds heartbeat_interval{std::chrono::milliseconds(10)};
  /// How long propose() waits for majority commit + local apply before
  /// giving up with kUnavailable.
  std::chrono::nanoseconds propose_timeout{std::chrono::seconds(2)};
  /// Compact the applied log prefix into a snapshot beyond this many
  /// retained entries.
  std::size_t snapshot_threshold = 256;
  /// Max log entries per AppendEntries frame.
  std::size_t append_batch = 64;
  /// Seeds the election-timeout DRBG (deterministic tests).
  std::uint64_t seed = 0;
};

/// Point-in-time observability snapshot (cluster_* metrics + tests).
struct RaftStats {
  std::uint64_t term = 0;
  std::uint64_t commit_index = 0;
  std::uint64_t last_applied = 0;
  std::uint64_t base_index = 0;
  std::uint64_t log_entries = 0;  // in-memory suffix length
  std::uint64_t leader_id = 0;    // 0 = unknown
  bool is_leader = false;
  std::uint64_t elections_started = 0;
  std::uint64_t elections_won = 0;
  std::uint64_t heartbeat_rounds = 0;
  std::uint64_t proposals = 0;
  std::uint64_t proposals_failed = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t snapshots_installed = 0;
  /// Leader only: max over followers of (leader last index - match index).
  std::uint64_t max_follower_lag = 0;
};

/// The replication engine. Owns the raft endpoint, the election/heartbeat
/// timers (on its own TimerWheel), and the in-memory log; state-machine
/// effects are delegated to the three callbacks so the core stays free of
/// CAS types.
///
/// Threading: one mutex (LockRank::kClusterRaft) guards all volatile
/// state. The iron rule for the inline-dispatch simulator network is that
/// NO raft RPC is ever sent while that mutex is held — handlers and timer
/// callbacks mutate state and stage outbound messages under the lock,
/// release it, then send (the peer's handler runs inline on this thread
/// and takes its own same-rank mutex). Apply callbacks DO run under the
/// raft mutex; everything they acquire (CAS policy/stripe locks) ranks
/// below it.
class RaftCore {
 public:
  /// Applies a committed entry to the local state machine. Must be
  /// deterministic and idempotent; the returned Status is the proposal
  /// outcome propagated to a propose() waiting on this entry.
  using Applier = std::function<Status(const LogEntry& entry)>;
  /// Captures the full state-machine state at last_applied (compaction).
  using SnapshotTaker = std::function<Bytes()>;
  /// Replaces the full state-machine state (snapshot install / restart).
  using SnapshotInstaller = std::function<void(ByteView state)>;

  RaftCore(net::SimNetwork* net, RaftConfig config, SealedLogStore* store,
           Applier apply, SnapshotTaker take_snapshot,
           SnapshotInstaller install_snapshot);
  ~RaftCore();

  RaftCore(const RaftCore&) = delete;
  RaftCore& operator=(const RaftCore&) = delete;

  /// Load (and verify) persisted state, bind the raft endpoint, arm the
  /// election timer. Throws Error when the persisted blob fails to unseal
  /// or is rolled back — a node with tampered durable state must not
  /// serve.
  void start();
  /// Unbind, cancel timers, fail in-flight proposals with kUnavailable.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Replicate one command. Blocks until the entry is majority-committed
  /// AND applied locally (returning the apply outcome), or fails with
  /// kNotLeader (+ leader hint detail) on a follower, kUnavailable on
  /// timeout / lost leadership / shutdown.
  Status propose(LogCommand command, Bytes payload);

  bool is_leader() const;
  /// True when this node's APPLIED state is authoritative for negative
  /// lookups: it leads AND has applied an entry of its own term (the
  /// election no-op), so every entry committed by earlier leaders —
  /// every token registration in particular — has been applied here.
  /// A fresh leader is NOT ready between winning the election and its
  /// no-op applying; a follower never is (its applied prefix may lag).
  bool ready() const;
  /// Best-known leader address ("" when unknown) — the kNotLeader detail.
  std::string leader_hint() const;
  RaftStats stats() const;

  /// Raw raft-endpoint entry point (bound to `<address>.raft` by
  /// start()). Exposed for tests: hostile bytes must come back as typed
  /// RaftReply refusals, never crashes.
  Bytes handle_frame(ByteView raw);

 private:
  enum class Role { kFollower, kCandidate, kLeader };

  /// A staged outbound RPC, sent only after the mutex is released.
  struct Outbound {
    std::uint64_t peer_id = 0;
    std::string address;
    std::uint8_t command = 0;  // cas::Command
    Bytes payload;
    /// For kInstallSnapshot: last_included_index, to advance match_index
    /// from the ack (the response body carries no index).
    std::uint64_t snapshot_index = 0;
  };

  struct Waiter {
    std::uint64_t entry_id = 0;
    bool done = false;
    Status outcome;
  };

  std::string raft_address() const { return self_address_ + ".raft"; }

  std::uint64_t last_index_locked() const REQUIRES(mutex_);
  std::uint64_t term_at_locked(std::uint64_t index) const REQUIRES(mutex_);
  std::size_t majority() const { return config_.peers.size() / 2 + 1; }
  std::uint64_t make_entry_id_locked() REQUIRES(mutex_);
  std::string leader_hint_locked() const REQUIRES(mutex_);

  void persist_locked() REQUIRES(mutex_);
  void arm_election_timer_locked() REQUIRES(mutex_);
  void arm_heartbeat_timer_locked() REQUIRES(mutex_);
  void step_down_locked(std::uint64_t term) REQUIRES(mutex_);
  void fail_waiters_locked(const Status& status) REQUIRES(mutex_);
  void become_leader_locked(std::vector<Outbound>* out) REQUIRES(mutex_);
  void maybe_advance_commit_locked() REQUIRES(mutex_);
  void apply_committed_locked() REQUIRES(mutex_);
  void maybe_compact_locked() REQUIRES(mutex_);
  Outbound build_append_locked(const RaftPeer& peer) REQUIRES(mutex_);

  void on_election_timeout();
  void on_heartbeat();
  /// Send staged RPCs (no raft lock held) and process their replies,
  /// which may stage follow-ups (e.g. the first heartbeat round of a
  /// fresh leader) — those are drained in the same call.
  void send_round(std::vector<Outbound> work);
  void process_reply(const Outbound& sent, ByteView raw,
                     std::vector<Outbound>* follow);

  Status handle_vote(const VoteRequestMsg& msg, VoteResponseMsg* out);
  Status handle_append(const AppendRequestMsg& msg, AppendResponseMsg* out);
  Status handle_snapshot(const SnapshotRequestMsg& msg,
                         SnapshotResponseMsg* out);

  net::SimNetwork* net_;
  const RaftConfig config_;
  SealedLogStore* store_;
  Applier apply_;
  SnapshotTaker take_snapshot_;
  SnapshotInstaller install_snapshot_;
  std::string self_address_;

  mutable Mutex mutex_{LockRank::kClusterRaft, "cas.raft"};
  CondVar cv_;

  Role role_ GUARDED_BY(mutex_) = Role::kFollower;
  std::uint64_t current_term_ GUARDED_BY(mutex_) = 0;
  std::uint64_t voted_for_ GUARDED_BY(mutex_) = 0;
  std::uint64_t leader_id_ GUARDED_BY(mutex_) = 0;
  std::uint64_t base_index_ GUARDED_BY(mutex_) = 0;
  std::uint64_t base_term_ GUARDED_BY(mutex_) = 0;
  Bytes snapshot_ GUARDED_BY(mutex_);
  std::vector<LogEntry> log_ GUARDED_BY(mutex_);
  std::uint64_t commit_index_ GUARDED_BY(mutex_) = 0;
  std::uint64_t last_applied_ GUARDED_BY(mutex_) = 0;
  std::uint64_t entry_seq_ GUARDED_BY(mutex_) = 0;

  // Candidate bookkeeping.
  std::uint64_t vote_term_ GUARDED_BY(mutex_) = 0;
  std::size_t votes_granted_ GUARDED_BY(mutex_) = 0;

  // Leader bookkeeping (keyed by peer id).
  std::map<std::uint64_t, std::uint64_t> next_index_ GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::uint64_t> match_index_ GUARDED_BY(mutex_);

  std::map<std::uint64_t, Waiter> waiters_ GUARDED_BY(mutex_);

  crypto::Drbg rng_ GUARDED_BY(mutex_);
  net::TimerWheel::TimerId election_timer_ GUARDED_BY(mutex_) = 0;
  net::TimerWheel::TimerId heartbeat_timer_ GUARDED_BY(mutex_) = 0;

  bool stopped_ GUARDED_BY(mutex_) = false;
  std::atomic<bool> bound_{false};
  std::atomic<std::uint64_t> next_request_id_{1};

  // Counters (under mutex_ for simplicity; stats() snapshots them).
  std::uint64_t elections_started_ GUARDED_BY(mutex_) = 0;
  std::uint64_t elections_won_ GUARDED_BY(mutex_) = 0;
  std::uint64_t heartbeat_rounds_ GUARDED_BY(mutex_) = 0;
  std::uint64_t proposals_ GUARDED_BY(mutex_) = 0;
  std::uint64_t proposals_failed_ GUARDED_BY(mutex_) = 0;
  std::uint64_t snapshots_taken_ GUARDED_BY(mutex_) = 0;
  std::uint64_t snapshots_installed_ GUARDED_BY(mutex_) = 0;

  /// Declared LAST so it is destroyed FIRST: the wheel destructor joins
  /// its thread (firing pending callbacks, which see stopped_ and
  /// return), so no timer callback can outlive the members above.
  net::TimerWheel wheel_;
};

}  // namespace sinclave::cas
