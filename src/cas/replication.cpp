#include "cas/replication.h"

#include <algorithm>
#include <utility>

#include "cas/protocol.h"
#include "common/error.h"
#include "common/serial.h"

namespace sinclave::cas {

namespace {

std::uint64_t u64_from_drbg(crypto::Drbg& rng) {
  const Bytes r = rng.generate(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(r[i]) << (8 * i);
  }
  return v;
}

void write_log_entry(ByteWriter& w, const LogEntry& e) {
  w.u64(e.term);
  w.u8(static_cast<std::uint8_t>(e.command));
  w.u64(e.entry_id);
  w.bytes(e.payload);
}

LogEntry read_log_entry(ByteReader& r) {
  LogEntry e;
  e.term = r.u64();
  const std::uint8_t cmd = r.u8();
  if (cmd > static_cast<std::uint8_t>(LogCommand::kSpendToken)) {
    throw ParseError("raft log entry: unknown command");
  }
  e.command = static_cast<LogCommand>(cmd);
  e.entry_id = r.u64();
  e.payload = r.bytes();
  return e;
}

/// Minimum wire size of one LogEntry (u64 + u8 + u64 + empty bytes):
/// ByteReader::count's forgery bound for entry sequences.
constexpr std::size_t kLogEntryMinBytes = 8 + 1 + 8 + 4;

}  // namespace

const char* to_string(LogCommand command) {
  switch (command) {
    case LogCommand::kNoop:
      return "noop";
    case LogCommand::kInstallPolicy:
      return "install-policy";
    case LogCommand::kRegisterToken:
      return "register-token";
    case LogCommand::kSpendToken:
      return "spend-token";
  }
  return "unknown";
}

// --- codecs -----------------------------------------------------------------

Bytes LogEntry::serialize() const {
  ByteWriter w;
  write_log_entry(w, *this);
  return std::move(w).take();
}

LogEntry LogEntry::deserialize(ByteView data) {
  ByteReader r(data);
  LogEntry e = read_log_entry(r);
  r.expect_done();
  return e;
}

Bytes TokenCommand::serialize() const {
  ByteWriter w;
  w.raw(token.view());
  w.str(session_name);
  w.raw(mr_enclave.view());
  return std::move(w).take();
}

TokenCommand TokenCommand::deserialize(ByteView data) {
  ByteReader r(data);
  TokenCommand c;
  c.token = r.fixed<32>();
  c.session_name = r.str();
  c.mr_enclave = r.fixed<32>();
  r.expect_done();
  return c;
}

Bytes VoteRequestMsg::serialize() const {
  ByteWriter w;
  w.u64(term);
  w.u64(candidate_id);
  w.u64(last_log_index);
  w.u64(last_log_term);
  return std::move(w).take();
}

VoteRequestMsg VoteRequestMsg::deserialize(ByteView data) {
  ByteReader r(data);
  VoteRequestMsg m;
  m.term = r.u64();
  m.candidate_id = r.u64();
  m.last_log_index = r.u64();
  m.last_log_term = r.u64();
  r.expect_done();
  return m;
}

Bytes VoteResponseMsg::serialize() const {
  ByteWriter w;
  w.u64(term);
  w.u8(granted ? 1 : 0);
  return std::move(w).take();
}

VoteResponseMsg VoteResponseMsg::deserialize(ByteView data) {
  ByteReader r(data);
  VoteResponseMsg m;
  m.term = r.u64();
  const std::uint8_t g = r.u8();
  if (g > 1) throw ParseError("vote response: bad granted flag");
  m.granted = g == 1;
  r.expect_done();
  return m;
}

Bytes AppendRequestMsg::serialize() const {
  ByteWriter w;
  w.u64(term);
  w.u64(leader_id);
  w.u64(prev_log_index);
  w.u64(prev_log_term);
  w.u64(leader_commit);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const LogEntry& e : entries) write_log_entry(w, e);
  return std::move(w).take();
}

AppendRequestMsg AppendRequestMsg::deserialize(ByteView data) {
  ByteReader r(data);
  AppendRequestMsg m;
  m.term = r.u64();
  m.leader_id = r.u64();
  m.prev_log_index = r.u64();
  m.prev_log_term = r.u64();
  m.leader_commit = r.u64();
  const std::uint32_t n = r.count(kLogEntryMinBytes);
  m.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.entries.push_back(read_log_entry(r));
  r.expect_done();
  return m;
}

Bytes AppendResponseMsg::serialize() const {
  ByteWriter w;
  w.u64(term);
  w.u8(success ? 1 : 0);
  w.u64(match_index);
  w.u64(last_log_index);
  return std::move(w).take();
}

AppendResponseMsg AppendResponseMsg::deserialize(ByteView data) {
  ByteReader r(data);
  AppendResponseMsg m;
  m.term = r.u64();
  const std::uint8_t s = r.u8();
  if (s > 1) throw ParseError("append response: bad success flag");
  m.success = s == 1;
  m.match_index = r.u64();
  m.last_log_index = r.u64();
  r.expect_done();
  return m;
}

Bytes SnapshotRequestMsg::serialize() const {
  ByteWriter w;
  w.u64(term);
  w.u64(leader_id);
  w.u64(last_included_index);
  w.u64(last_included_term);
  w.bytes(state);
  return std::move(w).take();
}

SnapshotRequestMsg SnapshotRequestMsg::deserialize(ByteView data) {
  ByteReader r(data);
  SnapshotRequestMsg m;
  m.term = r.u64();
  m.leader_id = r.u64();
  m.last_included_index = r.u64();
  m.last_included_term = r.u64();
  m.state = r.bytes();
  r.expect_done();
  return m;
}

Bytes SnapshotResponseMsg::serialize() const {
  ByteWriter w;
  w.u64(term);
  w.u8(ok ? 1 : 0);
  return std::move(w).take();
}

SnapshotResponseMsg SnapshotResponseMsg::deserialize(ByteView data) {
  ByteReader r(data);
  SnapshotResponseMsg m;
  m.term = r.u64();
  const std::uint8_t o = r.u8();
  if (o > 1) throw ParseError("snapshot response: bad ok flag");
  m.ok = o == 1;
  r.expect_done();
  return m;
}

Bytes RaftReply::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status.code));
  w.str(status.detail);
  w.bytes(body);
  return std::move(w).take();
}

RaftReply RaftReply::deserialize(ByteView data) {
  ByteReader r(data);
  RaftReply rep;
  rep.status.code = status_code_from_wire(r.u8());
  rep.status.detail = r.str();
  rep.body = r.bytes();
  r.expect_done();
  return rep;
}

Bytes PersistentState::serialize() const {
  ByteWriter w;
  w.u64(current_term);
  w.u64(voted_for);
  w.u64(base_index);
  w.u64(base_term);
  w.bytes(snapshot);
  w.u32(static_cast<std::uint32_t>(log.size()));
  for (const LogEntry& e : log) write_log_entry(w, e);
  return std::move(w).take();
}

PersistentState PersistentState::deserialize(ByteView data) {
  ByteReader r(data);
  PersistentState st;
  st.current_term = r.u64();
  st.voted_for = r.u64();
  st.base_index = r.u64();
  st.base_term = r.u64();
  st.snapshot = r.bytes();
  const std::uint32_t n = r.count(kLogEntryMinBytes);
  st.log.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) st.log.push_back(read_log_entry(r));
  r.expect_done();
  return st;
}

// --- SealedLogStore ---------------------------------------------------------

SealedLogStore::SealedLogStore(Bytes seal_key, MonotonicCounter* counter,
                               crypto::Drbg rng)
    : seal_key_(std::move(seal_key)), counter_(counter), rng_(std::move(rng)) {}

void SealedLogStore::save(const PersistentState& state) {
  blob_ = seal_state(seal_key_, *counter_, state.serialize(), rng_);
}

UnsealStatus SealedLogStore::load(PersistentState* out) const {
  Bytes plain;
  const UnsealStatus s = unseal_state(seal_key_, *counter_, blob_, plain);
  if (s != UnsealStatus::kOk) return s;
  try {
    *out = PersistentState::deserialize(plain);
  } catch (const ParseError&) {
    return UnsealStatus::kMalformed;
  }
  return UnsealStatus::kOk;
}

// --- RaftCore ---------------------------------------------------------------

RaftCore::RaftCore(net::SimNetwork* net, RaftConfig config,
                   SealedLogStore* store, Applier apply,
                   SnapshotTaker take_snapshot,
                   SnapshotInstaller install_snapshot)
    : net_(net),
      config_(std::move(config)),
      store_(store),
      apply_(std::move(apply)),
      take_snapshot_(std::move(take_snapshot)),
      install_snapshot_(std::move(install_snapshot)),
      rng_(crypto::Drbg::from_seed(config_.seed ^ config_.node_id,
                                   "raft-election")) {
  for (const RaftPeer& p : config_.peers) {
    if (p.id == config_.node_id) self_address_ = p.address;
  }
  if (self_address_.empty()) {
    throw Error("raft: node_id missing from peer list");
  }
}

RaftCore::~RaftCore() { stop(); }

void RaftCore::start() {
  {
    MutexLock lock(mutex_);
    if (stopped_) throw Error("raft: start after stop");
    if (!store_->empty()) {
      PersistentState st;
      const UnsealStatus s = store_->load(&st);
      if (s != UnsealStatus::kOk) {
        throw Error(std::string("raft: refusing persisted state: ") +
                    to_string(s));
      }
      current_term_ = st.current_term;
      voted_for_ = st.voted_for;
      base_index_ = st.base_index;
      base_term_ = st.base_term;
      snapshot_ = std::move(st.snapshot);
      log_ = std::move(st.log);
      // commit_index is rediscovered from the next leader; re-applying
      // from the snapshot point is safe because every apply is idempotent.
      commit_index_ = base_index_;
      last_applied_ = base_index_;
      if (!snapshot_.empty()) install_snapshot_(snapshot_);
    }
    arm_election_timer_locked();
  }
  net_->listen(raft_address(), [this](ByteView raw) { return handle_frame(raw); });
  bound_.store(true, std::memory_order_release);
}

void RaftCore::stop() {
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    fail_waiters_locked(Status(StatusCode::kUnavailable, "raft: node stopping"));
    wheel_.cancel(election_timer_);
    wheel_.cancel(heartbeat_timer_);
  }
  if (bound_.exchange(false, std::memory_order_acq_rel)) {
    net_->shutdown(raft_address());
  }
}

bool RaftCore::is_leader() const {
  MutexLock lock(mutex_);
  return role_ == Role::kLeader;
}

bool RaftCore::ready() const {
  MutexLock lock(mutex_);
  // Applied an entry of the current term <=> the election no-op (or a
  // later proposal) is in the applied prefix, and log order puts every
  // previously committed entry before it.
  return role_ == Role::kLeader && last_applied_ > 0 &&
         term_at_locked(last_applied_) == current_term_;
}

std::string RaftCore::leader_hint() const {
  MutexLock lock(mutex_);
  return leader_hint_locked();
}

std::string RaftCore::leader_hint_locked() const {
  if (leader_id_ == 0) return "";
  for (const RaftPeer& p : config_.peers) {
    if (p.id == leader_id_) return p.address;
  }
  return "";
}

RaftStats RaftCore::stats() const {
  MutexLock lock(mutex_);
  RaftStats s;
  s.term = current_term_;
  s.commit_index = commit_index_;
  s.last_applied = last_applied_;
  s.base_index = base_index_;
  s.log_entries = log_.size();
  s.leader_id = leader_id_;
  s.is_leader = role_ == Role::kLeader;
  s.elections_started = elections_started_;
  s.elections_won = elections_won_;
  s.heartbeat_rounds = heartbeat_rounds_;
  s.proposals = proposals_;
  s.proposals_failed = proposals_failed_;
  s.snapshots_taken = snapshots_taken_;
  s.snapshots_installed = snapshots_installed_;
  if (s.is_leader) {
    const std::uint64_t last = last_index_locked();
    for (const auto& [peer, match] : match_index_) {
      (void)peer;
      s.max_follower_lag = std::max(s.max_follower_lag, last - match);
    }
  }
  return s;
}

// --- small helpers ----------------------------------------------------------

std::uint64_t RaftCore::last_index_locked() const {
  return base_index_ + log_.size();
}

std::uint64_t RaftCore::term_at_locked(std::uint64_t index) const {
  if (index == 0) return 0;
  if (index == base_index_) return base_term_;
  return log_.at(index - base_index_ - 1).term;
}

std::uint64_t RaftCore::make_entry_id_locked() {
  return (config_.node_id << 56) | ++entry_seq_;
}

void RaftCore::persist_locked() { store_->save(PersistentState{
    current_term_, voted_for_, base_index_, base_term_, snapshot_, log_}); }

void RaftCore::arm_election_timer_locked() {
  wheel_.cancel(election_timer_);
  std::chrono::nanoseconds delay = config_.election_timeout_min;
  const auto span = config_.election_timeout_max - config_.election_timeout_min;
  if (span.count() > 0) {
    delay += std::chrono::nanoseconds(
        u64_from_drbg(rng_) % static_cast<std::uint64_t>(span.count()));
  }
  try {
    election_timer_ =
        wheel_.schedule_after(delay, [this] { on_election_timeout(); });
  } catch (const Error&) {
    // Wheel shutting down (destructor racing a late reschedule): fine,
    // stopped_ is (or is about to be) set.
  }
}

void RaftCore::arm_heartbeat_timer_locked() {
  try {
    heartbeat_timer_ = wheel_.schedule_after(config_.heartbeat_interval,
                                             [this] { on_heartbeat(); });
  } catch (const Error&) {
  }
}

void RaftCore::step_down_locked(std::uint64_t term) {
  current_term_ = term;
  voted_for_ = 0;
  leader_id_ = 0;
  role_ = Role::kFollower;
  // Entries this node proposed as leader may still commit under the new
  // leader, but the waiters can no longer learn their apply outcome —
  // fail them kUnavailable; the client-visible semantics are the same as
  // a reply lost mid-handshake (retry surfaces kTokenReused if the spend
  // did land).
  fail_waiters_locked(Status(StatusCode::kUnavailable, "raft: lost leadership"));
}

void RaftCore::fail_waiters_locked(const Status& status) {
  bool woke = false;
  for (auto& [index, w] : waiters_) {
    (void)index;
    if (!w.done) {
      w.done = true;
      w.outcome = status;
      woke = true;
    }
  }
  if (woke) cv_.notify_all();
}

void RaftCore::become_leader_locked(std::vector<Outbound>* out) {
  role_ = Role::kLeader;
  leader_id_ = config_.node_id;
  ++elections_won_;
  next_index_.clear();
  match_index_.clear();
  for (const RaftPeer& p : config_.peers) {
    if (p.id == config_.node_id) continue;
    next_index_[p.id] = last_index_locked() + 1;
    match_index_[p.id] = 0;
  }
  // A no-op in the new term: committing it recommits every earlier entry
  // (Raft never counts replicas of old-term entries directly).
  log_.push_back(LogEntry{current_term_, LogCommand::kNoop,
                          make_entry_id_locked(), Bytes{}});
  persist_locked();
  maybe_advance_commit_locked();
  apply_committed_locked();
  for (const RaftPeer& p : config_.peers) {
    if (p.id == config_.node_id) continue;
    out->push_back(build_append_locked(p));
  }
  arm_heartbeat_timer_locked();
}

void RaftCore::maybe_advance_commit_locked() {
  if (role_ != Role::kLeader) return;
  std::vector<std::uint64_t> matches;
  matches.reserve(config_.peers.size());
  matches.push_back(last_index_locked());  // self
  for (const auto& [peer, match] : match_index_) {
    (void)peer;
    matches.push_back(match);
  }
  std::sort(matches.begin(), matches.end(), std::greater<>());
  const std::uint64_t candidate = matches[majority() - 1];
  if (candidate <= commit_index_ || candidate < base_index_) return;
  if (term_at_locked(candidate) != current_term_) return;
  commit_index_ = candidate;
}

void RaftCore::apply_committed_locked() {
  bool applied = false;
  while (last_applied_ < commit_index_) {
    const LogEntry& e = log_.at(last_applied_ - base_index_);
    ++last_applied_;
    Status outcome;
    if (e.command != LogCommand::kNoop) {
      try {
        outcome = apply_(e);
      } catch (const std::exception& ex) {
        // A malformed committed payload fails deterministically on every
        // node (same bytes, same parse), so state stays converged.
        outcome = Status(StatusCode::kInternal,
                         std::string("raft apply: ") + ex.what());
      }
    }
    auto it = waiters_.find(last_applied_);
    if (it != waiters_.end() && !it->second.done) {
      it->second.done = true;
      it->second.outcome =
          it->second.entry_id == e.entry_id
              ? outcome
              : Status(StatusCode::kUnavailable, "raft: entry overwritten");
    }
    applied = true;
  }
  if (applied) cv_.notify_all();
  maybe_compact_locked();
}

void RaftCore::maybe_compact_locked() {
  if (last_applied_ - base_index_ < config_.snapshot_threshold) return;
  snapshot_ = take_snapshot_();
  base_term_ = term_at_locked(last_applied_);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(last_applied_ -
                                                        base_index_));
  base_index_ = last_applied_;
  persist_locked();
  ++snapshots_taken_;
}

RaftCore::Outbound RaftCore::build_append_locked(const RaftPeer& peer) {
  Outbound o;
  o.peer_id = peer.id;
  o.address = peer.address + ".raft";
  const std::uint64_t next = next_index_[peer.id];
  if (next <= base_index_) {
    // The entries this follower needs are compacted away: ship the
    // snapshot instead.
    SnapshotRequestMsg m;
    m.term = current_term_;
    m.leader_id = config_.node_id;
    m.last_included_index = base_index_;
    m.last_included_term = base_term_;
    m.state = snapshot_;
    o.command = static_cast<std::uint8_t>(Command::kInstallSnapshot);
    o.payload = m.serialize();
    o.snapshot_index = base_index_;
    return o;
  }
  AppendRequestMsg m;
  m.term = current_term_;
  m.leader_id = config_.node_id;
  m.prev_log_index = next - 1;
  m.prev_log_term = term_at_locked(next - 1);
  m.leader_commit = commit_index_;
  const std::uint64_t last = last_index_locked();
  const std::uint64_t end =
      std::min(last, next + config_.append_batch - 1);
  for (std::uint64_t i = next; i <= end; ++i) {
    m.entries.push_back(log_.at(i - base_index_ - 1));
  }
  o.command = static_cast<std::uint8_t>(Command::kAppendEntries);
  o.payload = m.serialize();
  return o;
}

// --- timers -----------------------------------------------------------------

void RaftCore::on_election_timeout() {
  std::vector<Outbound> out;
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    arm_election_timer_locked();
    if (role_ == Role::kLeader) return;
    // Become candidate for the next term and solicit votes.
    ++current_term_;
    role_ = Role::kCandidate;
    voted_for_ = config_.node_id;
    leader_id_ = 0;
    vote_term_ = current_term_;
    votes_granted_ = 1;  // own vote
    ++elections_started_;
    persist_locked();
    if (votes_granted_ >= majority()) {
      become_leader_locked(&out);  // single-node cluster
    } else {
      VoteRequestMsg m;
      m.term = current_term_;
      m.candidate_id = config_.node_id;
      m.last_log_index = last_index_locked();
      m.last_log_term = term_at_locked(m.last_log_index);
      const Bytes payload = m.serialize();
      for (const RaftPeer& p : config_.peers) {
        if (p.id == config_.node_id) continue;
        Outbound o;
        o.peer_id = p.id;
        o.address = p.address + ".raft";
        o.command = static_cast<std::uint8_t>(Command::kVoteRequest);
        o.payload = payload;
        out.push_back(std::move(o));
      }
    }
  }
  send_round(std::move(out));
}

void RaftCore::on_heartbeat() {
  std::vector<Outbound> out;
  {
    MutexLock lock(mutex_);
    if (stopped_ || role_ != Role::kLeader) return;  // self-cancels
    ++heartbeat_rounds_;
    for (const RaftPeer& p : config_.peers) {
      if (p.id == config_.node_id) continue;
      out.push_back(build_append_locked(p));
    }
    arm_heartbeat_timer_locked();
  }
  send_round(std::move(out));
}

// --- outbound side ----------------------------------------------------------

void RaftCore::send_round(std::vector<Outbound> work) {
  // Indexed loop: process_reply may append follow-ups (a fresh leader's
  // first heartbeat round) that are drained in the same pass. No raft
  // lock is held across any send — the peer's handler runs inline on
  // this thread and takes its own same-rank mutex.
  for (std::size_t i = 0; i < work.size(); ++i) {
    // Copy: process_reply may grow `work`, invalidating references.
    const Outbound sent = work[i];
    Bytes reply_raw;
    try {
      net::SimNetwork::Connection conn = net_->connect(sent.address);
      Envelope env;
      env.version = kReplicationVersion;
      env.command = static_cast<Command>(sent.command);
      env.request_id =
          next_request_id_.fetch_add(1, std::memory_order_relaxed);
      env.payload = sent.payload;
      reply_raw = conn.call(env.serialize());
    } catch (const Error&) {
      continue;  // peer down or partitioned: the next round retries
    }
    try {
      process_reply(sent, reply_raw, &work);
    } catch (const Error&) {
      continue;  // undecodable reply: treat like a drop
    }
  }
}

void RaftCore::process_reply(const Outbound& sent, ByteView raw,
                             std::vector<Outbound>* follow) {
  const Envelope env = Envelope::deserialize(raw);
  const RaftReply rep = RaftReply::deserialize(env.payload);
  if (!rep.status.ok()) return;  // typed refusal: nothing to learn
  MutexLock lock(mutex_);
  if (stopped_) return;
  switch (static_cast<Command>(sent.command)) {
    case Command::kVoteRequest: {
      const VoteResponseMsg v = VoteResponseMsg::deserialize(rep.body);
      if (v.term > current_term_) {
        step_down_locked(v.term);
        persist_locked();
        return;
      }
      if (role_ != Role::kCandidate || current_term_ != vote_term_) return;
      if (v.granted && ++votes_granted_ >= majority()) {
        become_leader_locked(follow);
      }
      return;
    }
    case Command::kAppendEntries: {
      const AppendResponseMsg a = AppendResponseMsg::deserialize(rep.body);
      if (a.term > current_term_) {
        step_down_locked(a.term);
        persist_locked();
        return;
      }
      if (role_ != Role::kLeader || a.term != current_term_) return;
      if (a.success) {
        std::uint64_t& match = match_index_[sent.peer_id];
        match = std::max(match, a.match_index);
        next_index_[sent.peer_id] = match + 1;
        maybe_advance_commit_locked();
        apply_committed_locked();
      } else {
        // Back off next_index using the follower's last-index hint so a
        // rejoined node catches up in one bound instead of one probe per
        // heartbeat.
        std::uint64_t& next = next_index_[sent.peer_id];
        next = std::max<std::uint64_t>(
            1, std::min(next - 1, a.last_log_index + 1));
      }
      return;
    }
    case Command::kInstallSnapshot: {
      const SnapshotResponseMsg s = SnapshotResponseMsg::deserialize(rep.body);
      if (s.term > current_term_) {
        step_down_locked(s.term);
        persist_locked();
        return;
      }
      if (role_ != Role::kLeader || s.term != current_term_ || !s.ok) return;
      std::uint64_t& match = match_index_[sent.peer_id];
      match = std::max(match, sent.snapshot_index);
      next_index_[sent.peer_id] = match + 1;
      return;
    }
    default:
      return;
  }
}

// --- propose ----------------------------------------------------------------

Status RaftCore::propose(LogCommand command, Bytes payload) {
  std::vector<Outbound> out;
  std::uint64_t index = 0;
  {
    MutexLock lock(mutex_);
    ++proposals_;
    if (stopped_) {
      ++proposals_failed_;
      return Status(StatusCode::kUnavailable, "raft: node stopping");
    }
    if (role_ != Role::kLeader) {
      ++proposals_failed_;
      return Status(StatusCode::kNotLeader,
                    not_leader_detail(leader_hint_locked()));
    }
    const std::uint64_t entry_id = make_entry_id_locked();
    log_.push_back(
        LogEntry{current_term_, command, entry_id, std::move(payload)});
    index = last_index_locked();
    persist_locked();
    waiters_.emplace(index, Waiter{entry_id, false, Status()});
    // Single-node clusters commit on their own persist.
    maybe_advance_commit_locked();
    apply_committed_locked();
    for (const RaftPeer& p : config_.peers) {
      if (p.id == config_.node_id) continue;
      out.push_back(build_append_locked(p));
    }
  }
  send_round(std::move(out));
  // The fast path resolved the waiter inline above (SimNetwork dispatch
  // is synchronous); the slow path — a straggling majority — is finished
  // by heartbeat rounds on the wheel thread.
  const auto deadline =
      std::chrono::steady_clock::now() + config_.propose_timeout;
  MutexLock lock(mutex_);
  for (;;) {
    auto it = waiters_.find(index);
    if (it == waiters_.end()) {
      ++proposals_failed_;
      return Status(StatusCode::kUnavailable, "raft: proposal dropped");
    }
    if (it->second.done) {
      const Status outcome = it->second.outcome;
      waiters_.erase(it);
      if (!outcome.ok()) ++proposals_failed_;
      return outcome;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      waiters_.erase(it);
      ++proposals_failed_;
      return Status(StatusCode::kUnavailable, "raft: replication timeout");
    }
    cv_.wait_until(mutex_, deadline);
  }
}

// --- inbound side -----------------------------------------------------------

namespace {

Bytes raft_reply_frame(const Envelope& request, RaftReply reply) {
  Envelope out;
  out.version = kReplicationVersion;  // raft endpoint answers in v2
  out.command = request.command;
  out.request_id = request.request_id;
  out.payload = reply.serialize();
  return out.serialize();
}

}  // namespace

Bytes RaftCore::handle_frame(ByteView raw) {
  Envelope env;
  if (!Envelope::matches(raw)) {
    return raft_reply_frame(env,
                            RaftReply{Status(StatusCode::kMalformedRequest),
                                      Bytes{}});
  }
  try {
    env = Envelope::deserialize(raw);
  } catch (const ParseError&) {
    return raft_reply_frame(Envelope{},
                            RaftReply{Status(StatusCode::kMalformedRequest),
                                      Bytes{}});
  }
  if (env.version != kReplicationVersion) {
    return raft_reply_frame(
        env, RaftReply{Status(StatusCode::kUnsupportedVersion), Bytes{}});
  }
  RaftReply rep;
  try {
    switch (env.command) {
      case Command::kVoteRequest: {
        const VoteRequestMsg m = VoteRequestMsg::deserialize(env.payload);
        VoteResponseMsg resp;
        rep.status = handle_vote(m, &resp);
        rep.body = resp.serialize();
        break;
      }
      case Command::kAppendEntries: {
        const AppendRequestMsg m = AppendRequestMsg::deserialize(env.payload);
        AppendResponseMsg resp;
        rep.status = handle_append(m, &resp);
        rep.body = resp.serialize();
        break;
      }
      case Command::kInstallSnapshot: {
        const SnapshotRequestMsg m = SnapshotRequestMsg::deserialize(env.payload);
        SnapshotResponseMsg resp;
        rep.status = handle_snapshot(m, &resp);
        rep.body = resp.serialize();
        break;
      }
      default:
        rep.status = Status(StatusCode::kUnknownCommand);
        break;
    }
  } catch (const ParseError&) {
    rep = RaftReply{Status(StatusCode::kMalformedRequest), Bytes{}};
  }
  return raft_reply_frame(env, rep);
}

Status RaftCore::handle_vote(const VoteRequestMsg& msg, VoteResponseMsg* out) {
  MutexLock lock(mutex_);
  if (stopped_) return Status(StatusCode::kUnavailable, "raft: node stopping");
  bool dirty = false;
  if (msg.term > current_term_) {
    step_down_locked(msg.term);
    dirty = true;
  }
  out->term = current_term_;
  out->granted = false;
  const std::uint64_t last = last_index_locked();
  const std::uint64_t last_term = term_at_locked(last);
  const bool up_to_date =
      msg.last_log_term > last_term ||
      (msg.last_log_term == last_term && msg.last_log_index >= last);
  if (msg.term == current_term_ &&
      (voted_for_ == 0 || voted_for_ == msg.candidate_id) && up_to_date) {
    voted_for_ = msg.candidate_id;
    out->granted = true;
    dirty = true;
    arm_election_timer_locked();
  }
  if (dirty) persist_locked();
  return Status();
}

Status RaftCore::handle_append(const AppendRequestMsg& msg,
                               AppendResponseMsg* out) {
  MutexLock lock(mutex_);
  if (stopped_) return Status(StatusCode::kUnavailable, "raft: node stopping");
  bool dirty = false;
  if (msg.term > current_term_) {
    step_down_locked(msg.term);
    dirty = true;
  }
  out->term = current_term_;
  out->success = false;
  out->match_index = 0;
  out->last_log_index = last_index_locked();
  if (msg.term < current_term_) {
    if (dirty) persist_locked();
    return Status();
  }
  // Current-term append: the sender is the one legitimate leader.
  if (role_ != Role::kFollower) role_ = Role::kFollower;
  leader_id_ = msg.leader_id;
  arm_election_timer_locked();

  // Entries at or below our snapshot base are known committed and
  // identical — skip that overlap instead of failing consistency.
  std::uint64_t prev = msg.prev_log_index;
  std::size_t skip = 0;
  if (prev < base_index_) {
    skip = static_cast<std::size_t>(
        std::min<std::uint64_t>(base_index_ - prev, msg.entries.size()));
    prev += skip;
  }
  if (prev < base_index_) {
    // Everything sent is inside the snapshot: already replicated.
    out->success = true;
    out->match_index = base_index_;
    if (dirty) persist_locked();
    return Status();
  }
  if (prev > last_index_locked() || term_at_locked(prev) != msg.prev_log_term) {
    // Consistency probe failed; last_log_index (set above) is the
    // leader's back-off hint.
    if (dirty) persist_locked();
    return Status();
  }
  std::size_t i = skip;
  for (; i < msg.entries.size(); ++i) {
    const std::uint64_t at = prev + 1 + (i - skip);
    if (at > last_index_locked()) break;
    if (term_at_locked(at) != msg.entries[i].term) {
      // Conflict: an uncommitted divergent suffix from a dead leader.
      log_.resize(static_cast<std::size_t>(at - base_index_ - 1));
      dirty = true;
      break;
    }
  }
  for (; i < msg.entries.size(); ++i) {
    log_.push_back(msg.entries[i]);
    dirty = true;
  }
  out->success = true;
  out->match_index = prev + (msg.entries.size() - skip);
  out->last_log_index = last_index_locked();
  const std::uint64_t new_commit =
      std::min(msg.leader_commit, last_index_locked());
  if (new_commit > commit_index_) commit_index_ = new_commit;
  if (dirty) persist_locked();
  apply_committed_locked();
  return Status();
}

Status RaftCore::handle_snapshot(const SnapshotRequestMsg& msg,
                                 SnapshotResponseMsg* out) {
  MutexLock lock(mutex_);
  if (stopped_) return Status(StatusCode::kUnavailable, "raft: node stopping");
  bool dirty = false;
  if (msg.term > current_term_) {
    step_down_locked(msg.term);
    dirty = true;
  }
  out->term = current_term_;
  out->ok = false;
  if (msg.term < current_term_) {
    if (dirty) persist_locked();
    return Status();
  }
  if (role_ != Role::kFollower) role_ = Role::kFollower;
  leader_id_ = msg.leader_id;
  arm_election_timer_locked();
  if (msg.last_included_index <= last_index_locked()) {
    // We already hold (or applied past) this prefix: ack so the leader
    // advances match_index and resumes AppendEntries.
    out->ok = true;
    if (dirty) persist_locked();
    return Status();
  }
  // Genuinely ahead of us: adopt the snapshot wholesale.
  log_.clear();
  base_index_ = msg.last_included_index;
  base_term_ = msg.last_included_term;
  snapshot_ = msg.state;
  commit_index_ = base_index_;
  last_applied_ = base_index_;
  install_snapshot_(snapshot_);
  ++snapshots_installed_;
  persist_locked();
  out->ok = true;
  return Status();
}

}  // namespace sinclave::cas
