#include "net/fault_plan.h"

#include <algorithm>
#include <utility>

#include "obs/registry.h"

namespace sinclave::net {

namespace {

// The same splitmix64 scramble the load generator uses for its schedules:
// bit-identical across standard libraries, so fault traces are
// reproducible cross-toolchain.
std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Uniform in [0, 1), a pure function of (seed, op, address, kind): every
/// fault dimension draws independently, and nothing about one endpoint's
/// draws perturbs another's.
double draw(std::uint64_t seed, std::uint64_t op, std::uint64_t addr_hash,
            std::uint64_t kind) {
  const std::uint64_t h =
      splitmix(seed ^ splitmix(op * 0x9e3779b97f4a7c15ull + kind) ^
               addr_hash);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::size_t kTraceCap = 1 << 20;  // 1 MiB of trace, then truncate

bool matches(const FaultWindow& w, std::uint64_t op,
             const std::string& address) {
  return op >= w.from_op && op < w.until_op &&
         address.compare(0, w.address_prefix.size(), w.address_prefix) == 0;
}

void merge(EndpointFaults& into, const EndpointFaults& from) {
  into.drop_request = std::max(into.drop_request, from.drop_request);
  into.drop_response = std::max(into.drop_response, from.drop_response);
  into.reset = std::max(into.reset, from.reset);
  into.corrupt_response =
      std::max(into.corrupt_response, from.corrupt_response);
  if (from.delay > into.delay || into.delay_amount.count() == 0)
    into.delay_amount = std::max(into.delay_amount, from.delay_amount);
  into.delay = std::max(into.delay, from.delay);
}

}  // namespace

void FaultInjector::set_plan(FaultPlan plan) {
  const bool active = !plan.empty();
  {
    MutexLock lock(mutex_);
    plan_ = std::move(plan);
    trace_.clear();
    trace_truncated_ = false;
  }
  clock_.store(0);
  requests_dropped_.store(0);
  responses_dropped_.store(0);
  resets_.store(0);
  corruptions_.store(0);
  delays_.store(0);
  active_.store(active, std::memory_order_release);
}

EndpointFaults FaultInjector::effective(const FaultPlan& plan,
                                        std::uint64_t op,
                                        const std::string& address) const {
  EndpointFaults f;
  const auto it = plan.per_endpoint.find(address);
  if (it != plan.per_endpoint.end()) f = it->second;
  for (const FaultWindow& w : plan.windows)
    if (matches(w, op, address)) merge(f, w.faults);
  return f;
}

FaultDecision FaultInjector::decide(const std::string& address) {
  FaultDecision d;
  MutexLock lock(mutex_);
  const std::uint64_t op = clock_.fetch_add(1, std::memory_order_relaxed);
  const EndpointFaults f = effective(plan_, op, address);
  if (!f.any()) return d;

  const std::uint64_t seed = plan_.seed;
  const std::uint64_t addr = fnv1a(address);
  // Request-side faults are mutually exclusive (a reset request was not
  // also dropped); response-side faults apply only when a request made it.
  if (f.drop_request > 0 && draw(seed, op, addr, 1) < f.drop_request) {
    d.drop_request = true;
  } else if (f.reset > 0 && draw(seed, op, addr, 2) < f.reset) {
    d.reset = true;
  } else {
    if (f.drop_response > 0 && draw(seed, op, addr, 3) < f.drop_response)
      d.drop_response = true;
    if (!d.drop_response && f.corrupt_response > 0 &&
        draw(seed, op, addr, 4) < f.corrupt_response) {
      d.corrupt_response = true;
      d.corrupt_bit = splitmix(seed ^ op ^ addr);
    }
  }
  if (f.delay > 0 && draw(seed, op, addr, 5) < f.delay) d.delay = f.delay_amount;

  const auto note = [&](const char* kind) {
    if (trace_.size() >= kTraceCap) {
      if (!trace_truncated_) {
        trace_ += "...truncated\n";
        trace_truncated_ = true;
      }
      return;
    }
    trace_ += "op=" + std::to_string(op) + " addr=" + address +
              " kind=" + kind + "\n";
  };
  if (d.drop_request) {
    requests_dropped_.fetch_add(1, std::memory_order_relaxed);
    note("drop-request");
  }
  if (d.reset) {
    resets_.fetch_add(1, std::memory_order_relaxed);
    note("reset");
  }
  if (d.drop_response) {
    responses_dropped_.fetch_add(1, std::memory_order_relaxed);
    note("drop-response");
  }
  if (d.corrupt_response) {
    corruptions_.fetch_add(1, std::memory_order_relaxed);
    note("corrupt");
  }
  if (d.delay.count() > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    note("delay");
  }
  return d;
}

FaultInjector::Stats FaultInjector::stats() const {
  Stats s;
  s.ops = clock_.load();
  s.requests_dropped = requests_dropped_.load();
  s.responses_dropped = responses_dropped_.load();
  s.resets = resets_.load();
  s.corruptions = corruptions_.load();
  s.delays = delays_.load();
  return s;
}

std::string FaultInjector::trace() const {
  MutexLock lock(mutex_);
  return trace_;
}

void FaultInjector::collect(obs::MetricsSnapshot& snap) const {
  const Stats s = stats();
  snap.counter("net_fault_ops", s.ops);
  snap.counter("net_fault_requests_dropped", s.requests_dropped);
  snap.counter("net_fault_responses_dropped", s.responses_dropped);
  snap.counter("net_fault_resets", s.resets);
  snap.counter("net_fault_corruptions", s.corruptions);
  snap.counter("net_fault_delays", s.delays);
}

}  // namespace sinclave::net
