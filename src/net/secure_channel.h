// Attestation-bindable secure channel (the RA-TLS / wireguard stand-in).
//
// Handshake (client = enclave runtime, starter tool, or the attacker's
// impersonator; server = the verifier/CAS):
//
//   client -> server : client DH public || opaque client payload
//   server -> client : server DH public || RSA signature over
//                      (client DH || server DH) || opaque server payload
//
// Both sides derive AES-256 AEAD traffic keys from the DH secret via HKDF.
// The *server* is authenticated by its RSA identity key (clients check it
// against the expected verifier identity — for SinClave singletons, against
// the identity baked into the measured instance page). The *client* is
// authenticated at a higher layer: its payload typically carries an SGX
// quote whose REPORTDATA must commit to the client's DH public key. That
// commitment — and how the paper's attack forges it via a report server —
// is the crux of §3.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aead.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "net/sim_network.h"

namespace sinclave::net {

/// The value an attested client must place in its report's REPORTDATA:
/// SHA-256 of the client DH public key, zero padded to 64 bytes.
FixedBytes<64> channel_binding(ByteView client_dh_public);

/// Transport record kinds on the secure endpoint. Frontends split their
/// per-command metrics on this — it needs no session keys (the record type
/// byte is cleartext framing, the payloads stay encrypted).
enum class RecordType : std::uint8_t { kHandshake, kData, kUnknown };
RecordType classify_record(ByteView raw);

/// Thrown by SecureClient::connect when the server's handshake signature
/// does not verify under the pinned identity — an active attack, never a
/// routine rejection. A distinct type so callers (the client SDK) can
/// keep it loud without matching message strings.
class IdentityMismatchError : public Error {
 public:
  IdentityMismatchError()
      : Error("secure channel: server identity mismatch") {}
};

/// Server half. Owns per-session traffic keys; plug `handle` into
/// SimNetwork::listen.
///
/// Thread-safe: handle() may be called from many dispatcher threads at
/// once. A coarse mutex serializes handshakes and per-session record
/// processing (the hooks run under it — they must not call back into this
/// SecureServer).
class SecureServer {
 public:
  /// Decides whether to accept a handshake. Receives the client's payload
  /// and DH public key; returns the server payload to accept, or nullopt
  /// to reject the session. On rejection the hook may set `reject_status`
  /// to a protocol-level code (kUnsupportedVersion, kMalformedRequest) —
  /// it rides the rejection record so well-behaved clients learn how to
  /// remediate; verification failures should leave the generic default
  /// (no oracle for unauthenticated peers).
  using HandshakeHook = std::function<std::optional<Bytes>(
      ByteView client_payload, ByteView client_dh_public,
      std::uint64_t session_id, StatusCode* reject_status)>;
  /// Handles one decrypted request; the return value is encrypted back.
  using RequestHandler =
      std::function<Bytes(std::uint64_t session_id, ByteView plaintext)>;

  SecureServer(const crypto::RsaKeyPair* identity, crypto::Drbg rng,
               HandshakeHook on_handshake, RequestHandler on_request);

  /// Raw transport entry point.
  Bytes handle(ByteView raw);

  /// Terminate a session (e.g. after config delivery).
  void close_session(std::uint64_t session_id);

  std::size_t open_sessions() const {
    std::lock_guard lock(mutex_);
    return sessions_.size();
  }

 private:
  struct Session {
    crypto::Aead c2s;
    crypto::Aead s2c;
    std::uint64_t recv_counter = 0;
    std::uint64_t send_counter = 0;
  };

  const crypto::RsaKeyPair* identity_;
  mutable std::mutex mutex_;
  crypto::Drbg rng_;
  HandshakeHook on_handshake_;
  RequestHandler on_request_;
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_ = 1;
};

/// Client half.
class SecureClient {
 public:
  explicit SecureClient(crypto::Drbg rng);

  /// The DH public key, available before connecting so callers can bind it
  /// into a report (channel_binding()).
  const Bytes& dh_public() const { return dh_public_; }

  /// Run the handshake. `expected_server` pins the server identity —
  /// mismatch throws IdentityMismatchError (this is the check SinClave
  /// roots in the instance page). Returns the server's handshake payload;
  /// nullopt when the server rejected the session — `reject_status`, when
  /// given, then carries the typed rejection (kAttestationRejected unless
  /// the rejection record said otherwise; pre-status servers send none).
  std::optional<Bytes> connect(SimNetwork::Connection connection,
                               const crypto::RsaPublicKey& expected_server,
                               ByteView client_payload,
                               StatusCode* reject_status = nullptr);

  /// Encrypted round trip; only valid after a successful connect. Throws
  /// Error if the server cannot decrypt / authenticate (torn session).
  Bytes call(ByteView plaintext);

  bool connected() const { return session_.has_value(); }

 private:
  struct Session {
    SimNetwork::Connection connection;
    std::uint64_t id;
    crypto::Aead c2s;
    crypto::Aead s2c;
    std::uint64_t send_counter = 0;
    std::uint64_t recv_counter = 0;
  };

  crypto::Drbg rng_;
  crypto::DhKeyPair dh_;
  Bytes dh_public_;
  std::optional<Session> session_;
};

}  // namespace sinclave::net
