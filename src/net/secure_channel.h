// Attestation-bindable secure channel (the RA-TLS / wireguard stand-in).
//
// Handshake (client = enclave runtime, starter tool, or the attacker's
// impersonator; server = the verifier/CAS):
//
//   client -> server : client DH public || opaque client payload
//   server -> client : server DH public || RSA signature over
//                      (client DH || server DH) || opaque server payload
//
// Both sides derive AES-256 AEAD traffic keys from the DH secret via HKDF.
// The *server* is authenticated by its RSA identity key (clients check it
// against the expected verifier identity — for SinClave singletons, against
// the identity baked into the measured instance page). The *client* is
// authenticated at a higher layer: its payload typically carries an SGX
// quote whose REPORTDATA must commit to the client's DH public key. That
// commitment — and how the paper's attack forges it via a report server —
// is the crux of §3.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "crypto/aead.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "net/sim_network.h"

namespace sinclave {
class ByteReader;  // common/serial.h
}

namespace sinclave::net {

/// The value an attested client must place in its report's REPORTDATA:
/// SHA-256 of the client DH public key, zero padded to 64 bytes.
FixedBytes<64> channel_binding(ByteView client_dh_public);

/// Transport record kinds on the secure endpoint. Frontends split their
/// per-command metrics on this — it needs no session keys (the record type
/// byte is cleartext framing, the payloads stay encrypted).
enum class RecordType : std::uint8_t { kHandshake, kData, kUnknown };
RecordType classify_record(ByteView raw);

/// Cleartext session id of a data record (the id is transport framing,
/// not payload — only the payload is encrypted). Nullopt for handshakes,
/// truncated frames, or non-data records. Lets the event-driven frontend
/// stamp the session into a TraceContext at accept time, before any
/// worker decrypts anything.
std::optional<std::uint64_t> peek_session_id(ByteView raw);

/// Thrown by SecureClient::connect when the server's handshake signature
/// does not verify under the pinned identity — an active attack, never a
/// routine rejection. A distinct type so callers (the client SDK) can
/// keep it loud without matching message strings.
class IdentityMismatchError : public Error {
 public:
  IdentityMismatchError()
      : Error("secure channel: server identity mismatch") {}
};

/// Thrown by SecureClient::call when the server answered the data record
/// with a typed rejection status — e.g. kSessionNotAttested when the
/// session was closed server-side between two calls. Distinct from the
/// generic Error so callers can branch on the code without string
/// matching.
class RecordRejectedError : public Error {
 public:
  explicit RecordRejectedError(StatusCode code)
      : Error(std::string("secure channel: request rejected: ") +
              status_message(code)),
        code_(code) {}
  StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

/// Tuning knobs for the striped session table.
struct SecureServerOptions {
  /// Session-table stripes: independent sessions hash to different
  /// stripes, so their table lookups never contend on one mutex.
  std::size_t session_stripes = 16;
  /// DRBG stripes for handshake randomness (crypto::DrbgPool).
  std::size_t rng_stripes = 8;
  /// Reap sessions idle for at least this long when sweep_idle() runs
  /// (0 = sessions live until close_session, the pre-TTL behavior). A
  /// long-running CAS needs this: abandoned sessions — clients that
  /// attested and vanished — otherwise accumulate keys forever.
  std::chrono::nanoseconds idle_ttl{0};
};

/// Server half. Owns per-session traffic keys; plug `handle` into
/// SimNetwork::listen.
///
/// Thread-safe and contention-striped: handle() may be called from many
/// dispatcher threads at once. Sessions live in a striped hash table
/// (SecureServerOptions::session_stripes shards, each with its own mutex)
/// behind shared_ptr, with a per-session lock serializing only records of
/// that one session. ALL handshake crypto — the HandshakeHook (quote
/// verification, the expensive part), DH derivation, transcript hashing,
/// HKDF, and the RSA identity signature — runs with no SecureServer lock
/// held; a session is published to its stripe only after its keys are
/// fully derived. Consequently (and unlike the earlier coarse-mutex
/// design) hooks and request handlers MAY call back into this
/// SecureServer: close_session, open_sessions, and stats are all safe
/// from either hook, and a HandshakeHook (which runs with no lock held)
/// may even re-enter handle(). The one restriction left is that a
/// RequestHandler must not re-enter handle() — it runs under its
/// session's lock, and the no-crypto-under-a-lock discipline (enforced
/// by the debug lock-rank detector: every handshake crypto stage runs
/// behind lockrank::assert_none_held) covers every record type.
class SecureServer {
 public:
  /// Decides whether to accept a handshake. Receives the client's payload
  /// and DH public key; returns the server payload to accept, or nullopt
  /// to reject the session. On rejection the hook may set `reject_status`
  /// to a protocol-level code (kUnsupportedVersion, kMalformedRequest) —
  /// it rides the rejection record so well-behaved clients learn how to
  /// remediate; verification failures should leave the generic default
  /// (no oracle for unauthenticated peers).
  using HandshakeHook = std::function<std::optional<Bytes>(
      ByteView client_payload, ByteView client_dh_public,
      std::uint64_t session_id, StatusCode* reject_status)>;
  /// Handles one decrypted request; the return value is encrypted back.
  using RequestHandler =
      std::function<Bytes(std::uint64_t session_id, ByteView plaintext)>;

  SecureServer(const crypto::RsaKeyPair* identity, crypto::Drbg rng,
               HandshakeHook on_handshake, RequestHandler on_request,
               SecureServerOptions options = {});

  /// Raw transport entry point.
  Bytes handle(ByteView raw);

  /// Terminate a session (e.g. after config delivery). Safe to call from
  /// inside a hook or request handler. A data record racing the close
  /// either completes normally (it entered its session before the close)
  /// or receives a typed kSessionNotAttested rejection — never a torn
  /// decrypt (keys are shared_ptr-owned and outlive in-flight records).
  void close_session(std::uint64_t session_id);

  std::size_t open_sessions() const {
    return open_count_.load(std::memory_order_relaxed);
  }

  /// Sweep ONE stripe (round-robin cursor) for sessions whose last
  /// activity is older than options.idle_ttl, reaping each like
  /// close_session would (typed kSessionNotAttested for any later
  /// record). One stripe per call keeps each sweep's stripe-lock hold
  /// bounded, so a periodic TimerWheel caller never stalls the serving
  /// path behind a full-table scan. Returns the number reaped; no-op
  /// (returns 0) when idle_ttl is 0.
  std::size_t sweep_idle();

  /// Contention observability for the serving layer's metrics.
  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t handshakes_rejected = 0;
    /// Lock acquisitions (session-table stripes + handshake DRBG stripes)
    /// that found their target busy: the residual cross-session
    /// contention of the striped design.
    std::uint64_t stripe_collisions = 0;
    /// Most sessions ever simultaneously open.
    std::uint64_t sessions_high_water = 0;
    std::uint64_t open_sessions = 0;
    /// Sessions reaped by the idle-TTL sweep.
    std::uint64_t sessions_expired = 0;
  };
  Stats stats() const;

 private:
  struct Session {
    // Per-session lock: serializes records *of this session* (counter
    // discipline demands it); records of different sessions never share a
    // lock. The AEAD contexts and cached ADs are immutable after
    // construction. Ranked above the stripe lock: the request handler
    // runs under this lock and may call close_session (stripe).
    Mutex m{LockRank::kSecureSession, "net.secure_session"};
    crypto::Aead c2s;
    crypto::Aead s2c;
    Bytes ad_c2s;  // per-session associated data, built once per session
    Bytes ad_s2c;
    std::uint64_t recv_counter GUARDED_BY(m) = 0;
    std::uint64_t send_counter GUARDED_BY(m) = 0;
    /// Set by close_session without taking `m` (close must not block on —
    /// or deadlock with — a handler calling close for its own session).
    std::atomic<bool> closed{false};
    /// steady_clock ns of the last record served (stamped at publish,
    /// then per data record). Atomic so the idle sweep can read it under
    /// only the stripe lock — taking the session lock there would invert
    /// the stripe < session rank order.
    std::atomic<std::int64_t> last_activity_ns{0};

    Session(crypto::Aead c2s_in, crypto::Aead s2c_in, Bytes ad_c2s_in,
            Bytes ad_s2c_in)
        : c2s(std::move(c2s_in)),
          s2c(std::move(s2c_in)),
          ad_c2s(std::move(ad_c2s_in)),
          ad_s2c(std::move(ad_s2c_in)) {}
  };

  struct Stripe {
    mutable Mutex m{LockRank::kSecureStripe, "net.secure_stripe"};
    std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions
        GUARDED_BY(m);
  };

  Stripe& stripe_for(std::uint64_t session_id) {
    return stripes_[session_id % stripes_.size()];
  }
  // Stripe locking uses ContendedMutexLock(stripe.m, stripe_collisions_)
  // inline: it counts contended acquisitions for stats() while keeping
  // the acquisition visible to thread-safety analysis.

  Bytes handle_handshake(ByteReader& r);
  Bytes handle_data(ByteReader& r);

  const crypto::RsaKeyPair* identity_;
  crypto::DrbgPool rng_;
  HandshakeHook on_handshake_;
  RequestHandler on_request_;
  std::vector<Stripe> stripes_;
  std::chrono::nanoseconds idle_ttl_;
  std::atomic<std::uint64_t> next_session_{1};

  std::atomic<std::uint64_t> open_count_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> handshakes_rejected_{0};
  std::atomic<std::uint64_t> stripe_collisions_{0};
  std::atomic<std::uint64_t> sessions_high_water_{0};
  std::atomic<std::uint64_t> sessions_expired_{0};
  std::atomic<std::uint64_t> sweep_cursor_{0};
};

/// Client half.
class SecureClient {
 public:
  explicit SecureClient(crypto::Drbg rng);

  /// The DH public key, available before connecting so callers can bind it
  /// into a report (channel_binding()).
  const Bytes& dh_public() const { return dh_public_; }

  /// Run the handshake. `expected_server` pins the server identity —
  /// mismatch throws IdentityMismatchError (this is the check SinClave
  /// roots in the instance page). Returns the server's handshake payload;
  /// nullopt when the server rejected the session — `reject_status`, when
  /// given, then carries the typed rejection (kAttestationRejected unless
  /// the rejection record said otherwise; pre-status servers send none).
  std::optional<Bytes> connect(SimNetwork::Connection connection,
                               const crypto::RsaPublicKey& expected_server,
                               ByteView client_payload,
                               StatusCode* reject_status = nullptr);

  /// Encrypted round trip; only valid after a successful connect. Throws
  /// RecordRejectedError when the server rejected the record with a typed
  /// status (e.g. the session was closed server-side), Error for generic
  /// rejections and authentication failures (torn session).
  Bytes call(ByteView plaintext);

  bool connected() const { return session_.has_value(); }

 private:
  struct Session {
    SimNetwork::Connection connection;
    std::uint64_t id;
    crypto::Aead c2s;
    crypto::Aead s2c;
    Bytes ad_c2s;  // per-session associated data, built once at connect
    Bytes ad_s2c;
    std::uint64_t send_counter = 0;
    std::uint64_t recv_counter = 0;
  };

  crypto::Drbg rng_;
  crypto::DhKeyPair dh_;
  Bytes dh_public_;
  std::optional<Session> session_;
};

}  // namespace sinclave::net
