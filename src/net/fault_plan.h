// Deterministic network fault injection for SimNetwork.
//
// A FaultPlan describes, per endpoint and per scripted window, the
// probability of each fault kind; SimNetwork consults a FaultInjector at
// every dispatch, behind the existing async_call/listen_async contract, so
// every caller exercises faults unchanged. Fault decisions are a pure
// function of (seed, logical-clock op index, address, fault kind): the
// same plan driven by the same single-threaded call sequence produces a
// byte-identical fault trace (tests/test_net.cpp asserts it), which is
// what makes a chaos run a *reproducible* experiment rather than an
// anecdote.
//
// The logical clock is the injector's dispatch counter — not wall time —
// so scripted windows ("partition from op 0 to op 3", "brownout for the
// first thousand requests") key off protocol progress and stay meaningful
// under sanitizers and on loaded CI machines.
//
// Fault semantics (all delivered through the normal completion machinery,
// never as a hang):
//
//   * drop_request  — the handler never sees the request; the caller's
//     callback receives a transport Error (clients map it to kUnavailable).
//   * reset         — connection reset at dispatch; same caller-visible
//     shape as drop_request but counted separately (models RST vs loss).
//   * drop_response — the handler runs to completion (server-side effects
//     happen: tokens get spent!) but the response is replaced by a
//     transport Error. This is the fault that distinguishes "server never
//     saw it" from "client never heard back" — the crux of exactly-once.
//   * corrupt       — one deterministic bit of the response payload is
//     flipped; clients see a typed decode failure, not garbage behavior.
//   * delay         — extra latency, accounted in virtual time (and slept
//     only on the synchronous call path, never on a completion thread).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace sinclave::obs {
class MetricsSnapshot;
}  // namespace sinclave::obs

namespace sinclave::net {

/// Per-endpoint fault probabilities, each drawn independently per dispatch.
struct EndpointFaults {
  double drop_request = 0.0;
  double drop_response = 0.0;
  double reset = 0.0;
  double corrupt_response = 0.0;
  double delay = 0.0;
  /// Added latency when the delay fault fires.
  std::chrono::microseconds delay_amount{0};

  bool any() const {
    return drop_request > 0 || drop_response > 0 || reset > 0 ||
           corrupt_response > 0 || delay > 0;
  }
};

/// A scripted fault window keyed off the injector's logical clock: ops in
/// [from_op, until_op) whose address starts with `address_prefix` take
/// `faults` in addition to any per-endpoint entry (field-wise max). An
/// empty prefix matches every address. Windows are how partitions and
/// brownouts are scripted: full drop for the first K ops, then heal.
struct FaultWindow {
  std::uint64_t from_op = 0;
  std::uint64_t until_op = UINT64_MAX;
  std::string address_prefix;
  EndpointFaults faults;
};

/// The whole experiment: one seed, exact-match per-endpoint faults, and
/// scripted windows. A default-constructed plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::map<std::string, EndpointFaults> per_endpoint;
  std::vector<FaultWindow> windows;

  bool empty() const { return per_endpoint.empty() && windows.empty(); }
};

/// What one dispatch must suffer. Request-side faults (drop_request,
/// reset) pre-empt the handler; response-side faults ride inside the
/// Completion state and apply when the handler finishes.
struct FaultDecision {
  bool drop_request = false;
  bool drop_response = false;
  bool reset = false;
  bool corrupt_response = false;
  std::chrono::microseconds delay{0};
  /// Which response bit to flip (mod payload size) when corrupting.
  std::uint64_t corrupt_bit = 0;

  bool any() const {
    return drop_request || drop_response || reset || corrupt_response ||
           delay.count() > 0;
  }
};

/// The decision engine SimNetwork embeds. Thread-safe; when no plan is
/// installed the per-dispatch cost is one relaxed atomic load.
class FaultInjector {
 public:
  /// Install (or clear, with {}) the plan. Resets the logical clock,
  /// counters, and trace so each plan is a fresh experiment.
  void set_plan(FaultPlan plan) REQUIRES_NOT(mutex_);

  bool active() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Advance the logical clock and decide this dispatch's faults.
  /// Deterministic: the decision depends only on (seed, op index, address).
  FaultDecision decide(const std::string& address) REQUIRES_NOT(mutex_);

  /// Injected-fault counters (counted at decision time, exactly when the
  /// trace records them — so trace and counters can never disagree).
  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t requests_dropped = 0;
    std::uint64_t responses_dropped = 0;
    std::uint64_t resets = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t delays = 0;

    std::uint64_t total_faults() const {
      return requests_dropped + responses_dropped + resets + corruptions +
             delays;
    }
  };
  Stats stats() const;

  /// The fault trace: one "op=N addr=A kind=K\n" line per injected fault,
  /// in decision order. Byte-identical across runs of the same plan and
  /// call sequence (single-threaded drive; concurrent drives are still
  /// deterministic per-op but the interleaving of lines is not).
  std::string trace() const REQUIRES_NOT(mutex_);

  /// Contribute net_fault_* counters to a metrics snapshot.
  void collect(obs::MetricsSnapshot& snap) const;

 private:
  /// Effective faults for (op, address): exact per-endpoint entry merged
  /// field-wise-max with every matching window.
  EndpointFaults effective(const FaultPlan& plan, std::uint64_t op,
                           const std::string& address) const;

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> requests_dropped_{0};
  std::atomic<std::uint64_t> responses_dropped_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> delays_{0};

  mutable Mutex mutex_{LockRank::kNetFault, "net.fault_injector"};
  FaultPlan plan_ GUARDED_BY(mutex_);
  std::string trace_ GUARDED_BY(mutex_);
  bool trace_truncated_ GUARDED_BY(mutex_) = false;
};

}  // namespace sinclave::net
