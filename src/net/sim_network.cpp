#include "net/sim_network.h"

#include <thread>

#include "common/error.h"

namespace sinclave::net {

void SimNetwork::listen(const std::string& address, Handler handler) {
  if (!handler) throw Error("net: null handler");
  const auto [it, inserted] = listeners_.emplace(address, std::move(handler));
  (void)it;
  if (!inserted) throw Error("net: address already in use: " + address);
}

void SimNetwork::shutdown(const std::string& address) {
  listeners_.erase(address);
}

bool SimNetwork::has_listener(const std::string& address) const {
  return listeners_.contains(address);
}

void SimNetwork::spend(std::chrono::microseconds d) {
  virtual_time_ += d;
  if (latency_.real_sleep && d.count() > 0) std::this_thread::sleep_for(d);
}

SimNetwork::Connection SimNetwork::connect(const std::string& address) {
  if (!listeners_.contains(address))
    throw Error("net: connection refused: " + address);
  spend(latency_.connect);
  return Connection(this, address);
}

Bytes SimNetwork::Connection::call(ByteView request) {
  const auto it = net_->listeners_.find(address_);
  if (it == net_->listeners_.end())
    throw Error("net: peer went away: " + address_);
  net_->spend(net_->latency_.round_trip);
  ++net_->round_trips_;
  return it->second(request);
}

}  // namespace sinclave::net
