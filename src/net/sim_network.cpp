#include "net/sim_network.h"

#include <thread>

#include "common/error.h"

namespace sinclave::net {

void SimNetwork::listen(const std::string& address, Handler handler) {
  if (!handler) throw Error("net: null handler");
  auto listener = std::make_shared<Listener>();
  listener->handler = std::move(handler);
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = listeners_.emplace(address, std::move(listener));
  (void)it;
  if (!inserted) throw Error("net: address already in use: " + address);
}

void SimNetwork::shutdown(const std::string& address) {
  std::unique_lock lock(mutex_);
  const auto it = listeners_.find(address);
  if (it == listeners_.end()) return;
  std::shared_ptr<Listener> listener = it->second;
  listeners_.erase(it);
  // Block until every call that already holds this listener returns, so
  // the service behind it may safely free its state afterwards.
  drained_.wait(lock, [&] { return listener->in_flight == 0; });
}

bool SimNetwork::has_listener(const std::string& address) const {
  std::lock_guard lock(mutex_);
  return listeners_.contains(address);
}

void SimNetwork::spend(std::chrono::microseconds d) {
  virtual_time_ns_ +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  if (latency_.real_sleep && d.count() > 0) std::this_thread::sleep_for(d);
}

SimNetwork::Connection SimNetwork::connect(const std::string& address) {
  if (!has_listener(address))
    throw Error("net: connection refused: " + address);
  spend(latency_.connect);
  return Connection(this, address);
}

Bytes SimNetwork::Connection::call(ByteView request) {
  std::shared_ptr<Listener> listener;
  {
    std::lock_guard lock(net_->mutex_);
    const auto it = net_->listeners_.find(address_);
    if (it == net_->listeners_.end())
      throw Error("net: peer went away: " + address_);
    listener = it->second;
    ++listener->in_flight;  // visible to shutdown() under the same lock
  }
  // Latency (which may really sleep) and the handler itself run outside the
  // lock so concurrent calls to different — or the same — services overlap.
  net_->spend(net_->latency_.round_trip);
  ++net_->round_trips_;
  try {
    Bytes response = listener->handler(request);
    std::lock_guard lock(net_->mutex_);
    if (--listener->in_flight == 0) net_->drained_.notify_all();
    return response;
  } catch (...) {
    std::lock_guard lock(net_->mutex_);
    if (--listener->in_flight == 0) net_->drained_.notify_all();
    throw;
  }
}

}  // namespace sinclave::net
