#include "net/sim_network.h"

#include <thread>
#include <utility>

#include "common/error.h"
#include "common/mutex.h"
#include "obs/registry.h"

namespace sinclave::net {

// All mutable simulator state lives behind one shared Core so that
// Connections and Completions can outlive the SimNetwork object (and each
// other) without ever touching freed memory: they fail deterministically
// instead.
struct SimNetwork::Connection::Core {
  struct Listener {
    AsyncHandler handler;
    std::size_t in_flight = 0;  // guarded by Core::mutex
  };

  explicit Core(LatencyModel latency) : latency(latency) {}

  void account(std::chrono::microseconds d) {
    virtual_time_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  }

  void spend(std::chrono::microseconds d) {
    account(d);
    if (latency.real_sleep && d.count() > 0) std::this_thread::sleep_for(d);
  }

  const LatencyModel latency;
  // Guards listeners + in_flight + destroyed.
  mutable Mutex mutex{LockRank::kNetCore, "net.sim_core"};
  CondVar drained;
  // Listeners are held by shared_ptr so a request dispatched concurrently
  // with shutdown() keeps the closure alive until it completes.
  std::map<std::string, std::shared_ptr<Listener>> listeners
      GUARDED_BY(mutex);
  bool destroyed GUARDED_BY(mutex) = false;
  std::atomic<std::int64_t> virtual_time_ns{0};
  std::atomic<std::uint64_t> round_trips{0};
  // Fault injection (internally synchronized; one relaxed load per
  // dispatch when no plan is installed).
  FaultInjector faults;
};

// One request in flight. The completion gate (`completed`) makes delivery
// exactly-once across Completion copies; the destructor turns an
// abandoned request into a delivered error so callers can never be
// stranded waiting on a response that no one owes anymore.
struct SimNetwork::Completion::State {
  std::shared_ptr<Connection::Core> core;
  std::shared_ptr<Connection::Core::Listener> listener;
  Callback callback;
  std::string address;
  std::atomic<bool> completed{false};
  // Response-side injected faults, decided at dispatch time and applied
  // here so the handler's side effects (token spends!) happen while the
  // caller still observes loss/corruption — the asymmetry real networks
  // have and exactly-once machinery exists for.
  bool fault_drop_response = false;
  bool fault_corrupt_response = false;
  std::uint64_t fault_corrupt_bit = 0;

  void finish(Bytes response, std::exception_ptr error) {
    if (completed.exchange(true)) return;
    if (error == nullptr && fault_drop_response) {
      response.clear();
      error = std::make_exception_ptr(
          Error("net: fault injected: response dropped: " + address));
    } else if (error == nullptr && fault_corrupt_response &&
               !response.empty()) {
      response[(fault_corrupt_bit / 8) % response.size()] ^=
          static_cast<std::uint8_t>(1u << (fault_corrupt_bit % 8));
    }
    {
      // Decrement before invoking the client callback: shutdown() promises
      // only that the *handler side* is done with the request. A client
      // callback may therefore still be running when shutdown returns —
      // and may itself call shutdown without deadlocking on its own count.
      MutexLock lock(core->mutex);
      if (--listener->in_flight == 0) core->drained.notify_all();
    }
    callback(std::move(response), error);
  }

  ~State() {
    if (!completed.load())
      finish({}, std::make_exception_ptr(
                     Error("net: request dropped: " + address)));
  }
};

void SimNetwork::Completion::operator()(Bytes response) const {
  if (!state_) throw Error("net: empty completion");
  state_->finish(std::move(response), nullptr);
}

void SimNetwork::Completion::fail(std::exception_ptr error) const {
  if (!state_) throw Error("net: empty completion");
  state_->finish({}, error ? error
                           : std::make_exception_ptr(
                                 Error("net: request failed")));
}

SimNetwork::SimNetwork(LatencyModel latency)
    : latency_(latency),
      core_(std::make_shared<Connection::Core>(latency)) {}

SimNetwork::~SimNetwork() {
  std::map<std::string, std::shared_ptr<Connection::Core::Listener>> doomed;
  {
    MutexLock lock(core_->mutex);
    core_->destroyed = true;
    doomed.swap(core_->listeners);
  }
  // Listener closures die here (outside the lock); requests already in
  // flight hold their own shared_ptr and complete normally.
}

void SimNetwork::listen(const std::string& address, Handler handler) {
  if (!handler) throw Error("net: null handler");
  listen_async(address,
               [handler = std::move(handler)](ByteView request,
                                              Completion done) {
                 done(handler(request));
               });
}

void SimNetwork::listen_async(const std::string& address,
                              AsyncHandler handler) {
  if (!handler) throw Error("net: null handler");
  auto listener = std::make_shared<Connection::Core::Listener>();
  listener->handler = std::move(handler);
  MutexLock lock(core_->mutex);
  const auto [it, inserted] =
      core_->listeners.emplace(address, std::move(listener));
  (void)it;
  if (!inserted) throw Error("net: address already in use: " + address);
}

void SimNetwork::shutdown(const std::string& address) {
  MutexLock lock(core_->mutex);
  const auto it = core_->listeners.find(address);
  if (it == core_->listeners.end()) return;
  std::shared_ptr<Connection::Core::Listener> listener = it->second;
  core_->listeners.erase(it);
  // Block until every request that already holds this listener has been
  // completed, so the service behind it may safely free its state.
  while (listener->in_flight != 0) core_->drained.wait(core_->mutex);
}

bool SimNetwork::has_listener(const std::string& address) const {
  MutexLock lock(core_->mutex);
  return core_->listeners.contains(address);
}

SimNetwork::Connection SimNetwork::connect(const std::string& address) {
  if (!has_listener(address))
    throw Error("net: connection refused: " + address);
  core_->spend(latency_.connect);
  return Connection(core_, address);
}

std::chrono::nanoseconds SimNetwork::virtual_time() const {
  return std::chrono::nanoseconds(core_->virtual_time_ns.load());
}

std::uint64_t SimNetwork::round_trips() const {
  return core_->round_trips.load();
}

void SimNetwork::set_fault_plan(FaultPlan plan) {
  core_->faults.set_plan(std::move(plan));
}

FaultInjector::Stats SimNetwork::fault_stats() const {
  return core_->faults.stats();
}

std::string SimNetwork::fault_trace() const { return core_->faults.trace(); }

std::uint64_t SimNetwork::register_fault_metrics(
    obs::MetricsRegistry& registry) const {
  // Capture the core by shared_ptr: a collector left registered past this
  // SimNetwork's lifetime still reads valid (frozen) counters.
  return registry.add_collector(
      [core = core_](obs::MetricsSnapshot& snap) {
        core->faults.collect(snap);
      });
}

void SimNetwork::Connection::async_call(ByteView request, Callback callback) {
  dispatch(request, std::move(callback), /*sleep_latency=*/false);
}

void SimNetwork::Connection::dispatch(ByteView request, Callback callback,
                                      bool sleep_latency) {
  if (!callback) throw Error("net: null callback");
  std::shared_ptr<Core::Listener> listener;
  {
    MutexLock lock(core_->mutex);
    if (core_->destroyed)
      throw Error("net: network destroyed: " + address_);
    const auto it = core_->listeners.find(address_);
    if (it == core_->listeners.end())
      throw Error("net: peer went away: " + address_);
    listener = it->second;
    ++listener->in_flight;  // visible to shutdown() under the same lock
  }
  // Fault decision happens after admission (in_flight counted, outside
  // the core lock) so every injected failure flows through the same
  // exactly-once completion gate as a real one.
  FaultDecision fault;
  if (core_->faults.active()) fault = core_->faults.decide(address_);
  // Round-trip latency is always accounted in virtual time; only the
  // synchronous form really sleeps for it on the caller's thread —
  // async_call must return immediately (issuers model wire/backend delay
  // with server-side timers instead). The handler runs outside the lock
  // so concurrent requests to different — or the same — services overlap.
  if (sleep_latency)
    core_->spend(core_->latency.round_trip);
  else
    core_->account(core_->latency.round_trip);
  if (fault.delay.count() > 0) {
    if (sleep_latency)
      core_->spend(fault.delay);
    else
      core_->account(fault.delay);
  }
  core_->round_trips.fetch_add(1);

  auto state = std::make_shared<Completion::State>();
  state->core = core_;
  state->listener = listener;
  state->callback = std::move(callback);
  state->address = address_;
  state->fault_drop_response = fault.drop_response;
  state->fault_corrupt_response = fault.corrupt_response;
  state->fault_corrupt_bit = fault.corrupt_bit;
  if (fault.drop_request || fault.reset) {
    // The handler never sees the request; the caller gets a typed
    // transport failure through the normal completion path (which also
    // settles the in-flight count).
    state->finish(
        {}, std::make_exception_ptr(Error(
                fault.reset
                    ? "net: fault injected: connection reset: " + address_
                    : "net: fault injected: request dropped: " + address_)));
    return;
  }
  try {
    listener->handler(request, Completion(state));
  } catch (...) {
    // A synchronous handler throw is a failed request, delivered through
    // the same exactly-once gate (no-op if the handler completed first).
    state->finish({}, std::current_exception());
  }
}

Bytes SimNetwork::Connection::call(ByteView request) {
  struct Waiter {
    Mutex mutex{LockRank::kNetWaiter, "net.call_waiter"};
    CondVar cv;
    bool done GUARDED_BY(mutex) = false;
    Bytes response GUARDED_BY(mutex);
    std::exception_ptr error GUARDED_BY(mutex);
  };
  auto waiter = std::make_shared<Waiter>();
  dispatch(request, [waiter](Bytes response, std::exception_ptr error) {
    MutexLock lock(waiter->mutex);
    waiter->response = std::move(response);
    waiter->error = error;
    waiter->done = true;
    waiter->cv.notify_all();
  }, /*sleep_latency=*/true);
  MutexLock lock(waiter->mutex);
  while (!waiter->done) waiter->cv.wait(waiter->mutex);
  if (waiter->error) std::rethrow_exception(waiter->error);
  return std::move(waiter->response);
}

}  // namespace sinclave::net
