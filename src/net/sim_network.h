// In-process network simulator.
//
// Services register request handlers under string addresses; clients open
// connections and perform synchronous request/response calls. A configurable
// latency model either really sleeps (wall-clock benchmarks, e.g. the
// connection-setup share of Fig. 7c) or merely accounts virtual time
// (fast deterministic tests).
//
// Thread-safe: many client threads may call concurrently, and handlers may
// be registered or torn down while calls are in flight. The listener map is
// mutex-guarded; handlers execute *outside* the lock (a handler may itself
// use the network). shutdown() blocks until every in-flight call to that
// address has returned, so after it returns the handler's state may be
// freed — consequently a handler must never shut down its own address.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/bytes.h"

namespace sinclave::net {

struct LatencyModel {
  /// One-time cost of opening a connection (the paper's "O/C" 3.74 ms).
  std::chrono::microseconds connect{0};
  /// Per round-trip cost.
  std::chrono::microseconds round_trip{0};
  /// true: sleep for the configured latencies (benchmarks);
  /// false: only account them in virtual_time (tests).
  bool real_sleep = false;
};

class SimNetwork {
 public:
  using Handler = std::function<Bytes(ByteView request)>;

  explicit SimNetwork(LatencyModel latency = {}) : latency_(latency) {}

  /// Register a service. Throws Error if the address is taken.
  void listen(const std::string& address, Handler handler);
  /// Deregister and wait for in-flight calls to the address to drain.
  void shutdown(const std::string& address);
  bool has_listener(const std::string& address) const;

  /// A client-side connection handle. Cheap to copy; performing a call on
  /// a connection whose listener went away throws Error.
  class Connection {
   public:
    /// One synchronous round trip.
    Bytes call(ByteView request);
    const std::string& address() const { return address_; }

   private:
    friend class SimNetwork;
    Connection(SimNetwork* net, std::string address)
        : net_(net), address_(std::move(address)) {}
    SimNetwork* net_;
    std::string address_;
  };

  /// Open a connection (pays the connect latency). Throws Error when
  /// nothing listens at `address`.
  Connection connect(const std::string& address);

  /// Total virtual network time accounted so far (both modes).
  std::chrono::nanoseconds virtual_time() const {
    return std::chrono::nanoseconds(virtual_time_ns_.load());
  }
  /// Total round trips performed (tests assert protocol message counts).
  std::uint64_t round_trips() const { return round_trips_.load(); }

  const LatencyModel& latency() const { return latency_; }

 private:
  void spend(std::chrono::microseconds d);

  struct Listener {
    Handler handler;
    std::size_t in_flight = 0;  // guarded by SimNetwork::mutex_
  };

  LatencyModel latency_;
  mutable std::mutex mutex_;  // guards listeners_ + each Listener::in_flight
  std::condition_variable drained_;
  // Listeners are held by shared_ptr so a call dispatched concurrently with
  // shutdown() keeps the closure alive for the duration of the call.
  std::map<std::string, std::shared_ptr<Listener>> listeners_;
  std::atomic<std::int64_t> virtual_time_ns_{0};
  std::atomic<std::uint64_t> round_trips_{0};
};

}  // namespace sinclave::net
