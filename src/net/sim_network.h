// In-process network simulator.
//
// Services register request handlers under string addresses; clients open
// connections and perform request/response calls. A configurable latency
// model either really sleeps (wall-clock benchmarks, e.g. the
// connection-setup share of Fig. 7c) or merely accounts virtual time
// (fast deterministic tests).
//
// Two serving models share one wire:
//
//   * listen(address, Handler)            — synchronous: the handler returns
//     the response bytes and the round trip is done.
//   * listen_async(address, AsyncHandler) — completion-driven: the handler
//     receives a Completion token and may finish the request later, from
//     any thread (a worker pool, a timer wheel). This is what lets a
//     frontend hold hundreds of requests in flight without parking one
//     thread per request. The synchronous forms (listen / Connection::call)
//     are thin wrappers over the async core.
//
// Thread-safe: many client threads may call concurrently, and handlers may
// be registered or torn down while calls are in flight. Handlers execute
// outside the simulator's locks (a handler may itself use the network).
// shutdown() blocks until every in-flight request to that address has been
// *completed*, so after it returns the handler's state may be freed —
// consequently a handler (or anything completing on its behalf) must never
// shut down its own address.
//
// Lifetime: a Connection holds the network's innards via shared_ptr, so
// using one after shutdown() of its peer — or after the SimNetwork object
// itself was destroyed — deterministically throws Error instead of touching
// freed state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "net/fault_plan.h"

namespace sinclave::obs {
class MetricsRegistry;
}  // namespace sinclave::obs

namespace sinclave::net {

struct LatencyModel {
  /// One-time cost of opening a connection (the paper's "O/C" 3.74 ms).
  std::chrono::microseconds connect{0};
  /// Per round-trip cost.
  std::chrono::microseconds round_trip{0};
  /// true: sleep for the configured latencies (benchmarks);
  /// false: only account them in virtual_time (tests).
  bool real_sleep = false;
};

class SimNetwork {
 public:
  using Handler = std::function<Bytes(ByteView request)>;
  /// Client-side completion: exactly one of (response, error) is
  /// meaningful; error != nullptr means the request failed in transit
  /// (handler threw, or the service dropped it during shutdown).
  using Callback = std::function<void(Bytes response, std::exception_ptr error)>;

  /// Handler-side completion token. Copyable (so it can travel through
  /// std::function job queues); all copies complete the same request, and
  /// only the first completion wins. If every copy is destroyed without
  /// completing, the request fails with Error — a dropped request never
  /// strands its caller.
  class Completion {
   public:
    Completion() = default;
    /// Deliver the response.
    void operator()(Bytes response) const;
    /// Fail the request (the client's callback receives the exception).
    void fail(std::exception_ptr error) const;
    explicit operator bool() const { return state_ != nullptr; }

   private:
    friend class SimNetwork;
    struct State;
    explicit Completion(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  using AsyncHandler = std::function<void(ByteView request, Completion done)>;

  explicit SimNetwork(LatencyModel latency = {});
  /// Marks the network destroyed (subsequent Connection use throws Error)
  /// and releases listener closures. Does NOT wait for in-flight requests
  /// — shut addresses down explicitly if handler state must outlive them.
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Register a synchronous service. Throws Error if the address is taken.
  void listen(const std::string& address, Handler handler);
  /// Register a completion-driven service. Throws Error if taken.
  void listen_async(const std::string& address, AsyncHandler handler);
  /// Deregister and wait for in-flight requests to the address to complete.
  void shutdown(const std::string& address);
  bool has_listener(const std::string& address) const;

  /// A client-side connection handle. Cheap to copy; performing a call on
  /// a connection whose listener (or whole network) went away throws Error.
  class Connection {
   public:
    /// One synchronous round trip (async_call + wait).
    Bytes call(ByteView request);
    /// Issue the request and return immediately; `callback` runs exactly
    /// once, on whatever thread completes the request. Round-trip latency
    /// is accounted in virtual time but never slept on the caller — async
    /// issuers model delay with server-side timers. Throws Error only
    /// when the request cannot be dispatched at all (no listener /
    /// destroyed network) — in-flight failures go through the callback.
    void async_call(ByteView request, Callback callback);
    const std::string& address() const { return address_; }

   private:
    friend class SimNetwork;
    struct Core;
    Connection(std::shared_ptr<Core> core, std::string address)
        : core_(std::move(core)), address_(std::move(address)) {}
    void dispatch(ByteView request, Callback callback, bool sleep_latency);
    std::shared_ptr<Core> core_;
    std::string address_;
  };

  /// Open a connection (pays the connect latency). Throws Error when
  /// nothing listens at `address`.
  Connection connect(const std::string& address);

  /// Total virtual network time accounted so far (both modes).
  std::chrono::nanoseconds virtual_time() const;
  /// Total round trips performed (tests assert protocol message counts).
  std::uint64_t round_trips() const;

  // --- deterministic fault injection (see net/fault_plan.h) ---------------
  //
  // Faults apply at dispatch, behind the async_call/listen_async contract:
  // a dropped or reset request delivers a transport Error through the
  // caller's callback (never a hang), a dropped response suppresses the
  // handler's answer after its side effects happened, a corrupted response
  // reaches the caller with one bit flipped. Install {} to heal.
  void set_fault_plan(FaultPlan plan);
  FaultInjector::Stats fault_stats() const;
  /// Byte-identical across same-plan, same-sequence runs.
  std::string fault_trace() const;
  /// Register the per-fault-kind counters as a collector in `registry`;
  /// returns the collector id (caller removes it). The collector holds the
  /// network's core alive, so it stays valid even past ~SimNetwork.
  std::uint64_t register_fault_metrics(obs::MetricsRegistry& registry) const;

  const LatencyModel& latency() const { return latency_; }

 private:
  LatencyModel latency_;
  std::shared_ptr<Connection::Core> core_;
};

}  // namespace sinclave::net
