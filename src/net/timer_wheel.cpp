#include "net/timer_wheel.h"

#include "common/error.h"

namespace sinclave::net {

TimerWheel::TimerWheel() : thread_([this] { run(); }) {}

TimerWheel::~TimerWheel() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  thread_.join();
}

void TimerWheel::schedule_after(std::chrono::nanoseconds delay, Callback fn) {
  if (!fn) throw Error("timer: null callback");
  {
    MutexLock lock(mutex_);
    if (stopping_) throw Error("timer: shutting down");
    heap_.push(Entry{Clock::now() + delay, next_seq_++, std::move(fn)});
  }
  wake_.notify_one();
}

std::size_t TimerWheel::pending() const {
  MutexLock lock(mutex_);
  return heap_.size();
}

void TimerWheel::run() {
  for (;;) {
    Callback fn;
    {
      MutexLock lock(mutex_);
      if (heap_.empty()) {
        if (stopping_) return;
        while (!(stopping_ || !heap_.empty())) wake_.wait(mutex_);
        continue;
      }
      const Clock::time_point deadline = heap_.top().deadline;
      // Stopping fires everything immediately; otherwise sleep until the
      // earliest deadline (re-checking when a new earlier timer arrives).
      if (!stopping_ && Clock::now() < deadline) {
        wake_.wait_until(mutex_, deadline);
        continue;
      }
      // priority_queue::top() is const; the callback has to be moved out
      // via const_cast, which is safe because pop() follows before anyone
      // else can observe the entry.
      fn = std::move(const_cast<Entry&>(heap_.top()).fn);
      heap_.pop();
    }
    // Counted before running so an observer woken *by* the callback
    // already sees it included.
    fired_.fetch_add(1, std::memory_order_relaxed);
    try {
      fn();
    } catch (...) {
      // A timer callback must not take down the wheel; completions report
      // errors through their own response channels.
    }
  }
}

}  // namespace sinclave::net
