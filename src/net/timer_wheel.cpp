#include "net/timer_wheel.h"

#include "common/error.h"

namespace sinclave::net {

TimerWheel::TimerWheel() : thread_([this] { run(); }) {}

TimerWheel::~TimerWheel() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  thread_.join();
}

TimerWheel::TimerId TimerWheel::schedule_after(std::chrono::nanoseconds delay,
                                               Callback fn) {
  if (!fn) throw Error("timer: null callback");
  TimerId id = 0;
  {
    MutexLock lock(mutex_);
    if (stopping_) throw Error("timer: shutting down");
    id = next_seq_++;
    pending_ids_.insert(id);
    heap_.push(Entry{Clock::now() + delay, id, std::move(fn)});
  }
  wake_.notify_one();
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  MutexLock lock(mutex_);
  // Winning the race = removing the id from pending_ids_ before the run
  // loop (or the shutdown drain) pops its entry. The entry stays in the
  // heap until reaped; cancelled_ tells the reaper to destroy it unfired.
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  cancelled_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t TimerWheel::pending() const {
  MutexLock lock(mutex_);
  return pending_ids_.size();
}

void TimerWheel::run() {
  for (;;) {
    Callback fn;
    bool fire = false;
    {
      MutexLock lock(mutex_);
      if (heap_.empty()) {
        if (stopping_) return;
        while (!(stopping_ || !heap_.empty())) wake_.wait(mutex_);
        continue;
      }
      const Clock::time_point deadline = heap_.top().deadline;
      // Stopping fires everything immediately; otherwise sleep until the
      // earliest deadline (re-checking when a new earlier timer arrives).
      if (!stopping_ && Clock::now() < deadline) {
        wake_.wait_until(mutex_, deadline);
        continue;
      }
      // priority_queue::top() is const; the callback has to be moved out
      // via const_cast, which is safe because pop() follows before anyone
      // else can observe the entry.
      Entry& top = const_cast<Entry&>(heap_.top());
      // A cancelled entry is reaped, not fired: its callback is destroyed
      // outside the lock below (destroying it may deliver a completion
      // error — never under our mutex), and cancel()'s promise that the
      // callback won't run is kept even by the shutdown drain.
      fire = cancelled_.erase(top.seq) == 0;
      if (fire) pending_ids_.erase(top.seq);
      fn = std::move(top.fn);
      heap_.pop();
    }
    if (!fire) {
      fn = nullptr;  // destroy the cancelled callback outside the lock
      continue;
    }
    // Counted before running so an observer woken *by* the callback
    // already sees it included.
    fired_.fetch_add(1, std::memory_order_relaxed);
    try {
      fn();
    } catch (...) {
      // A timer callback must not take down the wheel; completions report
      // errors through their own response channels.
    }
  }
}

}  // namespace sinclave::net
