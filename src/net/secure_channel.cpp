#include "net/secure_channel.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hkdf.h"
#include "crypto/sha256.h"

namespace sinclave::net {

namespace {

constexpr std::uint8_t kMsgHandshake = 0;
constexpr std::uint8_t kMsgData = 1;

constexpr std::uint8_t kStatusRejected = 0;
constexpr std::uint8_t kStatusOk = 1;

struct TrafficKeys {
  Bytes c2s;
  Bytes s2c;
};

TrafficKeys derive_keys(ByteView shared_secret, ByteView client_dh,
                        ByteView server_dh) {
  const Hash256 transcript = crypto::sha256(concat({client_dh, server_dh}));
  TrafficKeys keys;
  keys.c2s = crypto::hkdf(to_bytes("sinclave-channel"), shared_secret,
                          concat({to_bytes("c2s"), transcript.view()}), 32);
  keys.s2c = crypto::hkdf(to_bytes("sinclave-channel"), shared_secret,
                          concat({to_bytes("s2c"), transcript.view()}), 32);
  return keys;
}

Bytes counter_nonce(std::uint64_t counter) {
  ByteWriter w;
  w.u32(0);
  w.u64(counter);
  return std::move(w).take();
}

Bytes session_ad(std::string_view direction, std::uint64_t session_id) {
  ByteWriter w;
  w.str(direction);
  w.u64(session_id);
  return std::move(w).take();
}

}  // namespace

FixedBytes<64> channel_binding(ByteView client_dh_public) {
  const Hash256 h = crypto::sha256(client_dh_public);
  return FixedBytes<64>::from_view(h.view());  // zero padded to 64 bytes
}

RecordType classify_record(ByteView raw) {
  if (raw.empty()) return RecordType::kUnknown;
  if (raw[0] == kMsgHandshake) return RecordType::kHandshake;
  if (raw[0] == kMsgData) return RecordType::kData;
  return RecordType::kUnknown;
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

SecureServer::SecureServer(const crypto::RsaKeyPair* identity,
                           crypto::Drbg rng, HandshakeHook on_handshake,
                           RequestHandler on_request)
    : identity_(identity),
      rng_(std::move(rng)),
      on_handshake_(std::move(on_handshake)),
      on_request_(std::move(on_request)) {
  if (identity_ == nullptr) throw Error("secure server: identity required");
  if (!on_handshake_ || !on_request_)
    throw Error("secure server: hooks required");
}

Bytes SecureServer::handle(ByteView raw) {
  std::lock_guard lock(mutex_);
  try {
    ByteReader r(raw);
    const std::uint8_t type = r.u8();

    if (type == kMsgHandshake) {
      const Bytes client_dh = r.bytes();
      const Bytes client_payload = r.bytes();
      r.expect_done();

      const std::uint64_t session_id = next_session_;
      StatusCode reject_status = StatusCode::kAttestationRejected;
      const auto server_payload =
          on_handshake_(client_payload, client_dh, session_id,
                        &reject_status);
      if (!server_payload.has_value()) {
        // Rejection record: status byte appended after the rejected
        // marker. Pre-status clients stop at the marker (they never read
        // past the first byte), so the extension is wire-compatible both
        // ways.
        ByteWriter w;
        w.u8(kStatusRejected);
        w.u8(static_cast<std::uint8_t>(reject_status));
        return std::move(w).take();
      }

      crypto::DhKeyPair server_dh = crypto::DhKeyPair::generate(rng_);
      const Bytes server_pub = server_dh.public_value();
      const Bytes secret = server_dh.shared_secret(client_dh);
      TrafficKeys keys = derive_keys(secret, client_dh, server_pub);

      next_session_++;
      sessions_.emplace(session_id,
                        Session{crypto::Aead(keys.c2s), crypto::Aead(keys.s2c),
                                0, 0});

      ByteWriter w;
      w.u8(kStatusOk);
      w.u64(session_id);
      w.bytes(server_pub);
      w.bytes(identity_->sign_pkcs1_sha256(concat({client_dh, server_pub})));
      w.bytes(*server_payload);
      return std::move(w).take();
    }

    if (type == kMsgData) {
      const std::uint64_t session_id = r.u64();
      const std::uint64_t counter = r.u64();
      const Bytes ciphertext = r.bytes();
      r.expect_done();

      const auto it = sessions_.find(session_id);
      if (it == sessions_.end()) {
        ByteWriter w;
        w.u8(kStatusRejected);
        return std::move(w).take();
      }
      Session& s = it->second;
      // Strictly increasing counters prevent replay within a session.
      if (counter < s.recv_counter) {
        ByteWriter w;
        w.u8(kStatusRejected);
        return std::move(w).take();
      }
      const auto plaintext = s.c2s.open(counter_nonce(counter), ciphertext,
                                        session_ad("c2s", session_id));
      if (!plaintext.has_value()) {
        ByteWriter w;
        w.u8(kStatusRejected);
        return std::move(w).take();
      }
      s.recv_counter = counter + 1;

      const Bytes response = on_request_(session_id, *plaintext);
      const std::uint64_t send_counter = s.send_counter++;
      ByteWriter w;
      w.u8(kStatusOk);
      w.u64(send_counter);
      w.bytes(s.s2c.seal(counter_nonce(send_counter), response,
                         session_ad("s2c", session_id)));
      return std::move(w).take();
    }

    ByteWriter w;
    w.u8(kStatusRejected);
    return std::move(w).take();
  } catch (const Error&) {
    // Not just ParseError: malformed DH points or hook-level deserializer
    // failures must answer a clean rejection, never escape into (and kill
    // futures on) a frontend worker thread.
    ByteWriter w;
    w.u8(kStatusRejected);
    return std::move(w).take();
  }
}

void SecureServer::close_session(std::uint64_t session_id) {
  std::lock_guard lock(mutex_);
  sessions_.erase(session_id);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

SecureClient::SecureClient(crypto::Drbg rng)
    : rng_(std::move(rng)), dh_(crypto::DhKeyPair::generate(rng_)) {
  dh_public_ = dh_.public_value();
}

std::optional<Bytes> SecureClient::connect(
    SimNetwork::Connection connection,
    const crypto::RsaPublicKey& expected_server, ByteView client_payload,
    StatusCode* reject_status) {
  ByteWriter req;
  req.u8(kMsgHandshake);
  req.bytes(dh_public_);
  req.bytes(client_payload);
  const Bytes raw = connection.call(req.data());

  ByteReader r(raw);
  if (r.u8() != kStatusOk) {
    if (reject_status != nullptr) {
      // Typed rejection when the server sent one; generic otherwise
      // (pre-status servers end the record at the marker). Whitelisted
      // through is_protocol_level: anything else — including a hostile
      // 0 = "ok" on a rejected handshake, or bytes outside the enum —
      // stays the generic rejection, so a rejected handshake can never
      // read as success.
      *reject_status = StatusCode::kAttestationRejected;
      if (!r.done()) {
        const auto code = static_cast<StatusCode>(r.u8());
        if (is_protocol_level(code)) *reject_status = code;
      }
    }
    return std::nullopt;
  }
  const std::uint64_t session_id = r.u64();
  const Bytes server_pub = r.bytes();
  const Bytes signature = r.bytes();
  const Bytes server_payload = r.bytes();
  r.expect_done();

  // Server authentication: the expected verifier must have signed the
  // handshake transcript. A mismatch is an active attack, not a routine
  // rejection -> throw.
  if (!expected_server.verify_pkcs1_sha256(concat({dh_public_, server_pub}),
                                           signature))
    throw IdentityMismatchError();

  const Bytes secret = dh_.shared_secret(server_pub);
  TrafficKeys keys = derive_keys(secret, dh_public_, server_pub);
  session_.emplace(Session{connection, session_id, crypto::Aead(keys.c2s),
                           crypto::Aead(keys.s2c), 0, 0});
  return server_payload;
}

Bytes SecureClient::call(ByteView plaintext) {
  if (!session_.has_value()) throw Error("secure channel: not connected");
  Session& s = *session_;

  const std::uint64_t counter = s.send_counter++;
  ByteWriter req;
  req.u8(kMsgData);
  req.u64(s.id);
  req.u64(counter);
  req.bytes(s.c2s.seal(counter_nonce(counter), plaintext,
                       session_ad("c2s", s.id)));
  const Bytes raw = s.connection.call(req.data());

  ByteReader r(raw);
  if (r.u8() != kStatusOk) throw Error("secure channel: request rejected");
  const std::uint64_t resp_counter = r.u64();
  const Bytes ciphertext = r.bytes();
  r.expect_done();
  if (resp_counter < s.recv_counter)
    throw Error("secure channel: replayed response");
  const auto plain =
      s.s2c.open(counter_nonce(resp_counter), ciphertext,
                 session_ad("s2c", s.id));
  if (!plain.has_value())
    throw Error("secure channel: response authentication failed");
  s.recv_counter = resp_counter + 1;
  return *plain;
}

}  // namespace sinclave::net
