#include "net/secure_channel.h"

#include <array>
#include <chrono>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hkdf.h"
#include "crypto/sha256.h"
#include "obs/trace.h"

namespace sinclave::net {

namespace {

constexpr std::uint8_t kMsgHandshake = 0;
constexpr std::uint8_t kMsgData = 1;

constexpr std::uint8_t kStatusRejected = 0;
constexpr std::uint8_t kStatusOk = 1;

struct TrafficKeys {
  Bytes c2s;
  Bytes s2c;
};

TrafficKeys derive_keys(ByteView shared_secret, ByteView client_dh,
                        ByteView server_dh) {
  const Hash256 transcript = crypto::sha256(concat({client_dh, server_dh}));
  TrafficKeys keys;
  keys.c2s = crypto::hkdf(to_bytes("sinclave-channel"), shared_secret,
                          concat({to_bytes("c2s"), transcript.view()}), 32);
  keys.s2c = crypto::hkdf(to_bytes("sinclave-channel"), shared_secret,
                          concat({to_bytes("s2c"), transcript.view()}), 32);
  return keys;
}

/// Record nonce on the stack: u32(0) || u64(counter), little-endian —
/// byte-identical to the old ByteWriter-built heap nonce, without the
/// per-record allocation.
using NonceBuf = std::array<std::uint8_t, crypto::kAeadNonceSize>;
static_assert(crypto::kAeadNonceSize == 12);

NonceBuf counter_nonce(std::uint64_t counter) {
  NonceBuf nonce{};
  for (int i = 0; i < 8; ++i)
    nonce[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter >> (8 * i));
  return nonce;
}

ByteView view(const NonceBuf& nonce) {
  return ByteView{nonce.data(), nonce.size()};
}

/// Per-session associated data: str(direction) || u64(session_id). Built
/// once per session at key derivation and cached (the data path reuses
/// it for every record instead of re-serializing).
Bytes session_ad(std::string_view direction, std::uint64_t session_id) {
  ByteWriter w;
  w.str(direction);
  w.u64(session_id);
  return std::move(w).take();
}

Bytes rejection_record() {
  ByteWriter w;
  w.u8(kStatusRejected);
  return std::move(w).take();
}

Bytes rejection_record(StatusCode status) {
  ByteWriter w;
  w.u8(kStatusRejected);
  w.u8(static_cast<std::uint8_t>(status));
  return std::move(w).take();
}

// The old hand-rolled tls_secure_server_locks_held counter is gone: the
// "no crypto under a lock" contract is now enforced by the common debug
// lock-rank detector (lockrank::assert_none_held below), which covers
// *every* sinclave::Mutex this thread holds — not just this server's.

}  // namespace

FixedBytes<64> channel_binding(ByteView client_dh_public) {
  const Hash256 h = crypto::sha256(client_dh_public);
  return FixedBytes<64>::from_view(h.view());  // zero padded to 64 bytes
}

RecordType classify_record(ByteView raw) {
  if (raw.empty()) return RecordType::kUnknown;
  if (raw[0] == kMsgHandshake) return RecordType::kHandshake;
  if (raw[0] == kMsgData) return RecordType::kData;
  return RecordType::kUnknown;
}

std::optional<std::uint64_t> peek_session_id(ByteView raw) {
  // Data record: u8 kMsgData | u64 session_id (LE) | u64 counter | bytes.
  if (raw.size() < 9 || raw[0] != kMsgData) return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8; ++i)
    id |= static_cast<std::uint64_t>(raw[1 + i]) << (8 * i);
  return id;
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

SecureServer::SecureServer(const crypto::RsaKeyPair* identity,
                           crypto::Drbg rng, HandshakeHook on_handshake,
                           RequestHandler on_request,
                           SecureServerOptions options)
    : identity_(identity),
      rng_(std::move(rng), "secure-server",
           options.rng_stripes == 0 ? 1 : options.rng_stripes),
      on_handshake_(std::move(on_handshake)),
      on_request_(std::move(on_request)),
      stripes_(options.session_stripes == 0 ? 1 : options.session_stripes),
      idle_ttl_(options.idle_ttl) {
  if (identity_ == nullptr) throw Error("secure server: identity required");
  if (!on_handshake_ || !on_request_)
    throw Error("secure server: hooks required");
}

Bytes SecureServer::handle(ByteView raw) {
  try {
    ByteReader r(raw);
    const std::uint8_t type = r.u8();
    if (type == kMsgHandshake) return handle_handshake(r);
    if (type == kMsgData) return handle_data(r);
    return rejection_record();
  } catch (const Error&) {
    // Not just ParseError: malformed DH points or hook-level deserializer
    // failures must answer a clean rejection, never escape into (and kill
    // futures on) a frontend worker thread.
    return rejection_record();
  }
}

Bytes SecureServer::handle_handshake(ByteReader& r) {
  const Bytes client_dh = r.bytes();
  const Bytes client_payload = r.bytes();
  r.expect_done();

  const std::uint64_t session_id =
      next_session_.fetch_add(1, std::memory_order_relaxed);
  // Bind the freshly-allocated session into any active trace so the
  // handshake phases below are attributable to it.
  obs::TraceScope::set_session(session_id);

  // The quote-verification hook — the expensive part of every attested
  // handshake — runs with no lock held: N racing handshakes verify N
  // quotes on N cores.
  lockrank::assert_none_held("handshake quote verification");
  StatusCode reject_status = StatusCode::kAttestationRejected;
  std::optional<Bytes> server_payload;
  {
    static obs::Phase& p_verify =
        obs::Tracer::instance().phase("quote_verify");
    obs::Span span(p_verify);
    server_payload =
        on_handshake_(client_payload, client_dh, session_id, &reject_status);
  }
  if (!server_payload.has_value()) {
    handshakes_rejected_.fetch_add(1, std::memory_order_relaxed);
    // Rejection record: status byte appended after the rejected marker.
    // Pre-status clients stop at the marker (they never read past the
    // first byte), so the extension is wire-compatible both ways.
    return rejection_record(reject_status);
  }

  // All key-establishment crypto stays outside every lock too. The DRBG
  // lease is held only for the 48-byte exponent draw; the modexps, the
  // transcript hash, the HKDF expansion, and the RSA identity signature
  // run lock-free.
  Bytes server_pub;
  Bytes secret;
  {
    static obs::Phase& p_dh = obs::Tracer::instance().phase("dh_derive");
    obs::Span span(p_dh);
    Bytes exponent;
    {
      auto lease = rng_.lease();
      exponent = lease.rng().generate(crypto::DhKeyPair::kExponentBytes);
    }
    lockrank::assert_none_held("handshake key derivation");
    const crypto::DhKeyPair server_dh =
        crypto::DhKeyPair::from_exponent(exponent);
    server_pub = server_dh.public_value();
    secret = server_dh.shared_secret(client_dh);
  }
  TrafficKeys keys;
  {
    static obs::Phase& p_hkdf = obs::Tracer::instance().phase("hkdf");
    obs::Span span(p_hkdf);
    keys = derive_keys(secret, client_dh, server_pub);
  }
  Bytes signature;
  {
    static obs::Phase& p_sign =
        obs::Tracer::instance().phase("identity_sign");
    obs::Span span(p_sign);
    signature = identity_->sign_pkcs1_sha256(concat({client_dh, server_pub}));
  }

  // Publish the fully-derived session: the only stripe-lock work on the
  // handshake path is this hash-map insert.
  auto session = std::make_shared<Session>(
      crypto::Aead(keys.c2s), crypto::Aead(keys.s2c),
      session_ad("c2s", session_id), session_ad("s2c", session_id));
  session->last_activity_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  {
    static obs::Phase& p_publish =
        obs::Tracer::instance().phase("session_publish");
    obs::Span span(p_publish);
    Stripe& stripe = stripe_for(session_id);
    ContendedMutexLock lock(stripe.m, stripe_collisions_);
    stripe.sessions.emplace(session_id, std::move(session));
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t open =
      open_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t seen = sessions_high_water_.load(std::memory_order_relaxed);
  while (open > seen && !sessions_high_water_.compare_exchange_weak(
                            seen, open, std::memory_order_relaxed)) {
  }

  ByteWriter w;
  w.u8(kStatusOk);
  w.u64(session_id);
  w.bytes(server_pub);
  w.bytes(signature);
  w.bytes(*server_payload);
  return std::move(w).take();
}

Bytes SecureServer::handle_data(ByteReader& r) {
  const std::uint64_t session_id = r.u64();
  const std::uint64_t counter = r.u64();
  const Bytes ciphertext = r.bytes();
  r.expect_done();
  obs::TraceScope::set_session(session_id);

  // Stripe lock only for the lookup; the shared_ptr keeps the session
  // (and its keys) alive past any concurrent close_session, so a racing
  // close can never tear a decrypt out from under us.
  std::shared_ptr<Session> session;
  {
    Stripe& stripe = stripe_for(session_id);
    ContendedMutexLock lock(stripe.m, stripe_collisions_);
    const auto it = stripe.sessions.find(session_id);
    if (it != stripe.sessions.end()) session = it->second;
  }
  if (session == nullptr)
    return rejection_record(StatusCode::kSessionNotAttested);
  // Stamp before serving: a session being actively driven never looks
  // idle to the sweep, however long the request handler runs.
  session->last_activity_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);

  // Records of one session serialize on its own lock (the counter
  // discipline needs exactly that); records of other sessions proceed in
  // parallel. Alias first, lock through the alias: thread-safety analysis
  // matches guarded accesses below against the lock expression s.m.
  Session& s = *session;
  MutexLock session_lock(s.m);
  if (s.closed.load(std::memory_order_acquire)) {
    // close_session won the race: deterministic typed rejection.
    return rejection_record(StatusCode::kSessionNotAttested);
  }
  // Strictly increasing counters prevent replay within a session.
  if (counter < s.recv_counter) return rejection_record();
  std::optional<Bytes> plaintext;
  {
    static obs::Phase& p_open = obs::Tracer::instance().phase("record_open");
    obs::Span span(p_open);  // span recording never acquires a lock, so
                             // running under the session lock is fine
    plaintext = s.c2s.open(view(counter_nonce(counter)), ciphertext, s.ad_c2s);
  }
  if (!plaintext.has_value()) return rejection_record();
  s.recv_counter = counter + 1;

  const Bytes response = on_request_(session_id, *plaintext);
  const std::uint64_t send_counter = s.send_counter++;
  ByteWriter w;
  w.u8(kStatusOk);
  w.u64(send_counter);
  {
    static obs::Phase& p_seal = obs::Tracer::instance().phase("record_seal");
    obs::Span span(p_seal);
    w.bytes(
        s.s2c.seal(view(counter_nonce(send_counter)), response, s.ad_s2c));
  }
  return std::move(w).take();
}

void SecureServer::close_session(std::uint64_t session_id) {
  std::shared_ptr<Session> session;
  {
    Stripe& stripe = stripe_for(session_id);
    ContendedMutexLock lock(stripe.m, stripe_collisions_);
    const auto it = stripe.sessions.find(session_id);
    if (it == stripe.sessions.end()) return;
    session = std::move(it->second);
    stripe.sessions.erase(it);
  }
  // Flag it closed WITHOUT taking the session lock: a request handler may
  // call close_session for its own session (it holds that lock), and an
  // in-flight record that already entered the session completes normally
  // — the close then applies to every later record.
  session->closed.store(true, std::memory_order_release);
  open_count_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t SecureServer::sweep_idle() {
  if (idle_ttl_.count() <= 0) return 0;
  const std::int64_t cutoff =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count() -
      idle_ttl_.count();
  Stripe& stripe =
      stripes_[sweep_cursor_.fetch_add(1, std::memory_order_relaxed) %
               stripes_.size()];
  // Reaped sessions leave the stripe under its lock but are destroyed —
  // AEAD contexts and all — outside it.
  std::vector<std::shared_ptr<Session>> reaped;
  {
    ContendedMutexLock lock(stripe.m, stripe_collisions_);
    for (auto it = stripe.sessions.begin(); it != stripe.sessions.end();) {
      if (it->second->last_activity_ns.load(std::memory_order_relaxed) <=
          cutoff) {
        reaped.push_back(std::move(it->second));
        it = stripe.sessions.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& session : reaped) {
    // Same close discipline as close_session: flag without the session
    // lock; an in-flight record that already entered completes normally,
    // every later record gets the typed kSessionNotAttested rejection.
    session->closed.store(true, std::memory_order_release);
    open_count_.fetch_sub(1, std::memory_order_relaxed);
    sessions_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  return reaped.size();
}

SecureServer::Stats SecureServer::stats() const {
  Stats s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.handshakes_rejected =
      handshakes_rejected_.load(std::memory_order_relaxed);
  s.stripe_collisions =
      stripe_collisions_.load(std::memory_order_relaxed) + rng_.collisions();
  s.sessions_high_water =
      sessions_high_water_.load(std::memory_order_relaxed);
  s.open_sessions = open_count_.load(std::memory_order_relaxed);
  s.sessions_expired = sessions_expired_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

SecureClient::SecureClient(crypto::Drbg rng)
    : rng_(std::move(rng)), dh_(crypto::DhKeyPair::generate(rng_)) {
  dh_public_ = dh_.public_value();
}

std::optional<Bytes> SecureClient::connect(
    SimNetwork::Connection connection,
    const crypto::RsaPublicKey& expected_server, ByteView client_payload,
    StatusCode* reject_status) {
  ByteWriter req;
  req.u8(kMsgHandshake);
  req.bytes(dh_public_);
  req.bytes(client_payload);
  const Bytes raw = connection.call(req.data());

  ByteReader r(raw);
  if (r.u8() != kStatusOk) {
    if (reject_status != nullptr) {
      // Typed rejection when the server sent one; generic otherwise
      // (pre-status servers end the record at the marker). Whitelisted
      // through is_protocol_level: anything else — including a hostile
      // 0 = "ok" on a rejected handshake, or bytes outside the enum —
      // stays the generic rejection, so a rejected handshake can never
      // read as success.
      *reject_status = StatusCode::kAttestationRejected;
      if (!r.done()) {
        const auto code = static_cast<StatusCode>(r.u8());
        if (is_protocol_level(code)) *reject_status = code;
      }
    }
    return std::nullopt;
  }
  const std::uint64_t session_id = r.u64();
  const Bytes server_pub = r.bytes();
  const Bytes signature = r.bytes();
  const Bytes server_payload = r.bytes();
  r.expect_done();

  // Server authentication: the expected verifier must have signed the
  // handshake transcript. A mismatch is an active attack, not a routine
  // rejection -> throw.
  if (!expected_server.verify_pkcs1_sha256(concat({dh_public_, server_pub}),
                                           signature))
    throw IdentityMismatchError();

  const Bytes secret = dh_.shared_secret(server_pub);
  TrafficKeys keys = derive_keys(secret, dh_public_, server_pub);
  session_.emplace(Session{connection, session_id, crypto::Aead(keys.c2s),
                           crypto::Aead(keys.s2c),
                           session_ad("c2s", session_id),
                           session_ad("s2c", session_id), 0, 0});
  return server_payload;
}

Bytes SecureClient::call(ByteView plaintext) {
  if (!session_.has_value()) throw Error("secure channel: not connected");
  Session& s = *session_;

  const std::uint64_t counter = s.send_counter++;
  ByteWriter req;
  req.u8(kMsgData);
  req.u64(s.id);
  req.u64(counter);
  req.bytes(s.c2s.seal(view(counter_nonce(counter)), plaintext, s.ad_c2s));
  const Bytes raw = s.connection.call(req.data());

  ByteReader r(raw);
  if (r.u8() != kStatusOk) {
    // A typed rejection status may ride after the marker (e.g.
    // kSessionNotAttested when the server closed this session); the
    // whitelist mirrors the handshake path — out-of-enum bytes or a
    // hostile "ok" stay the generic rejection.
    if (!r.done()) {
      const auto code = static_cast<StatusCode>(r.u8());
      if (is_protocol_level(code) ||
          code == StatusCode::kSessionNotAttested)
        throw RecordRejectedError(code);
    }
    throw Error("secure channel: request rejected");
  }
  const std::uint64_t resp_counter = r.u64();
  const Bytes ciphertext = r.bytes();
  r.expect_done();
  if (resp_counter < s.recv_counter)
    throw Error("secure channel: replayed response");
  const auto plain =
      s.s2c.open(view(counter_nonce(resp_counter)), ciphertext, s.ad_s2c);
  if (!plain.has_value())
    throw Error("secure channel: response authentication failed");
  s.recv_counter = resp_counter + 1;
  return *plain;
}

}  // namespace sinclave::net
