// Deadline scheduler for the event-driven serving path.
//
// One background thread fires callbacks when their deadline passes; the
// canonical use is parking a request's simulated backend-I/O stall here so
// no worker thread sleeps through it — hundreds of requests can be "waiting
// on the backend" while the worker pool keeps draining CPU work.
//
// Not actually a hashed wheel: pending entries live in a min-heap, which at
// the fan-out this repo simulates (hundreds of concurrent stalls) is both
// simpler and cache-friendlier than bucketed spokes. The name keeps the
// io_uring/kernel-timer mental model the serving layer is written against.
//
// Shutdown semantics: the destructor fires every still-pending callback
// immediately (early, not never). Callbacks are completion tokens for
// in-flight requests — dropping them would deadlock whoever waits on the
// response, while firing early merely shortens a simulated stall.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace sinclave::net {

class TimerWheel {
 public:
  using Callback = std::function<void()>;
  using Clock = std::chrono::steady_clock;

  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Run `fn` once `delay` has elapsed (non-positive delays fire as soon
  /// as the timer thread gets to them — never inline on the caller).
  /// Throws Error after shutdown began. Callbacks run on the timer thread
  /// and must not block on it (scheduling further timers is fine).
  void schedule_after(std::chrono::nanoseconds delay, Callback fn)
      REQUIRES_NOT(mutex_);

  /// Timers scheduled but not yet fired.
  std::size_t pending() const REQUIRES_NOT(mutex_);
  /// Timers fired so far (including any fired early at shutdown).
  std::uint64_t fired() const { return fired_.load(); }

 private:
  struct Entry {
    Clock::time_point deadline;
    std::uint64_t seq = 0;  // FIFO among equal deadlines
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void run() REQUIRES_NOT(mutex_);

  mutable Mutex mutex_{LockRank::kTimerWheel, "net.timer_wheel"};
  CondVar wake_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_
      GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> fired_{0};
  std::thread thread_;  // last member: started after, joined before the rest
};

}  // namespace sinclave::net
