// Deadline scheduler for the event-driven serving path.
//
// One background thread fires callbacks when their deadline passes; the
// canonical use is parking a request's simulated backend-I/O stall here so
// no worker thread sleeps through it — hundreds of requests can be "waiting
// on the backend" while the worker pool keeps draining CPU work.
//
// Not actually a hashed wheel: pending entries live in a min-heap, which at
// the fan-out this repo simulates (hundreds of concurrent stalls) is both
// simpler and cache-friendlier than bucketed spokes. The name keeps the
// io_uring/kernel-timer mental model the serving layer is written against.
//
// Shutdown semantics: the destructor fires every still-pending (and not
// cancelled) callback immediately (early, not never). Callbacks are
// completion tokens for in-flight requests — dropping them would deadlock
// whoever waits on the response, while firing early merely shortens a
// simulated stall.
//
// Cancellation: schedule_after returns a TimerId; cancel(id) guarantees
// exactly-once resolution among {cancel, fire, shutdown-drain} — it
// returns true iff the callback will never run (the wheel destroys it
// without invoking it; a callback holding a network Completion then
// delivers its dropped-request error, so cancellation is observable, never
// silent). Returning false means the callback fired, is firing right now,
// or the id was never pending.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"

namespace sinclave::net {

class TimerWheel {
 public:
  using Callback = std::function<void()>;
  using Clock = std::chrono::steady_clock;
  using TimerId = std::uint64_t;

  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Run `fn` once `delay` has elapsed (non-positive delays fire as soon
  /// as the timer thread gets to them — never inline on the caller).
  /// Throws Error after shutdown began. Callbacks run on the timer thread
  /// and must not block on it (scheduling further timers is fine).
  /// Returns an id for cancel().
  TimerId schedule_after(std::chrono::nanoseconds delay, Callback fn)
      REQUIRES_NOT(mutex_);

  /// Prevent a scheduled callback from ever running. True iff this call
  /// won the race — the callback will be destroyed unfired (even by the
  /// shutdown drain). False: it already fired / is firing / was unknown.
  bool cancel(TimerId id) REQUIRES_NOT(mutex_);

  /// Timers scheduled but not yet fired or cancelled.
  std::size_t pending() const REQUIRES_NOT(mutex_);
  /// Timers fired so far (including any fired early at shutdown).
  std::uint64_t fired() const { return fired_.load(); }
  /// Timers resolved by cancel() — never fired.
  std::uint64_t cancelled() const { return cancelled_count_.load(); }

 private:
  struct Entry {
    Clock::time_point deadline;
    std::uint64_t seq = 0;  // FIFO among equal deadlines; doubles as id
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void run() REQUIRES_NOT(mutex_);

  mutable Mutex mutex_{LockRank::kTimerWheel, "net.timer_wheel"};
  CondVar wake_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_
      GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
  /// Ids scheduled and not yet resolved (fire/cancel/drain). Membership
  /// here is what cancel() races for; the heap entry itself may lag.
  std::unordered_set<TimerId> pending_ids_ GUARDED_BY(mutex_);
  /// Cancelled ids whose heap entries have not been reaped yet; the run
  /// loop skips (and destroys) them without firing.
  std::unordered_set<TimerId> cancelled_ GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> cancelled_count_{0};
  std::thread thread_;  // last member: started after, joined before the rest
};

}  // namespace sinclave::net
