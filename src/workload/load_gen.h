// Multi-client load generator for the CAS serving layer.
//
// Models a fleet of starters racing to bring up singleton enclaves, in two
// load modes:
//
//   * closed loop (kClosed) — N client threads each issue back-to-back
//     synchronous retrievals; concurrency is capped at N. This is the
//     classic benchmark shape, and what a thread-per-request frontend is
//     judged on.
//   * open loop (kOpen) — M logical clients, multiplexed over a few
//     issuing threads, fire requests on a precomputed arrival schedule via
//     Connection::async_call and never wait for responses before issuing
//     the next arrival. Offered load is independent of service latency, so
//     the in-flight count is free to climb far past the thread counts on
//     either side — exactly the regime an event-driven frontend exists
//     for.
//
// Both modes speak the wire through cas::CasClient (no hand-rolled
// frames); closed loop uses the sync path, open loop the completion-token
// async path.
//
// Reproducibility: every random decision (session choice, exponential
// inter-arrival gaps, closed-loop think gaps) is drawn from a
// per-logical-client RNG seeded from one base seed + the client index, and
// the whole arrival schedule is a pure function of the config —
// make_schedule(config) twice is bytewise identical
// (tests/test_workload.cpp asserts it).
//
// Latencies land in a shared wait-free histogram; the result carries
// aggregate requests/sec, tail percentiles, and (open loop) the sustained
// and maximum in-flight request counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/sim_network.h"
#include "obs/trace.h"
#include "server/metrics.h"
#include "sgx/sigstruct.h"

namespace sinclave::workload {

enum class LoadMode {
  kClosed,  // one synchronous request chain per client thread
  kOpen,    // scheduled async arrivals; in-flight not capped by threads
};

/// How each request picks its session.
enum class SessionDist {
  kUniform,  // every session equally likely
  kZipfian,  // session i drawn with weight 1/(i+1)^theta — hot-session
             // skew that stresses the SigStructCache's LRU eviction
};

/// Closed-loop think-time model: how long a client "thinks" before issuing
/// each request (the interactive-user component of classic closed-loop
/// models; without it, N clients degenerate to a saturation benchmark).
enum class ThinkTime {
  kNone,         // back-to-back (the saturating seed behavior)
  kConstant,     // exactly mean_think before every request
  kExponential,  // exponential with mean mean_think, per-client seeded
};

struct LoadGenConfig {
  LoadMode mode = LoadMode::kClosed;
  /// Issuing threads. Closed loop: one logical client per thread. Open
  /// loop: `logical_clients` arrival streams are multiplexed over these.
  std::size_t clients = 8;
  /// Requests each logical client issues.
  std::size_t requests_per_client = 100;
  /// Base service address; clients call `address + ".instance"`.
  std::string address;
  /// Session names; each request picks one from its client RNG according
  /// to `session_dist` (sessions[0] is the hottest under kZipfian).
  std::vector<std::string> sessions;
  SessionDist session_dist = SessionDist::kUniform;
  /// Zipf skew exponent (kZipfian only). 0 degenerates to uniform; ~0.99
  /// is the classic web-workload fit; higher is hotter.
  double zipf_theta = 0.99;
  /// Base seed: logical client c draws from rng(base_seed, c), so runs
  /// are reproducible and clients are decorrelated.
  std::uint64_t base_seed = 1;
  /// Open loop only: independent arrival streams (the "fleet size").
  std::size_t logical_clients = 64;
  /// Open loop only: mean of the exponential inter-arrival gap per
  /// logical client.
  std::chrono::microseconds mean_interarrival{1000};
  /// Closed loop only: think-time model, sampled into the schedule (so a
  /// run's gaps are as deterministic as its session choices).
  ThinkTime think_time = ThinkTime::kNone;
  /// Mean think gap (kConstant: the exact gap; kExponential: the mean).
  std::chrono::microseconds mean_think{0};
};

/// One planned request of a logical client.
struct ScheduledRequest {
  std::size_t session_index = 0;
  /// Arrival time, relative to load start (always 0 in closed loop).
  std::chrono::nanoseconds at{0};
  /// Closed loop: think gap slept before issuing this request (0 under
  /// ThinkTime::kNone and in open loop).
  std::chrono::nanoseconds think{0};
};

/// The full deterministic arrival plan: one vector per logical client
/// (closed loop: per thread). Pure function of the config.
std::vector<std::vector<ScheduledRequest>> make_schedule(
    const LoadGenConfig& config);

struct LoadGenResult {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  /// First error string observed (diagnosis aid when failed > 0).
  std::string first_error;
  std::chrono::nanoseconds wall{0};
  server::LatencyHistogram::Snapshot latency;
  /// Tokens returned by successful retrievals (tests assert uniqueness);
  /// hex-encoded.
  std::vector<std::string> tokens;
  /// Peak concurrent requests in flight (client-side view).
  std::uint64_t max_in_flight = 0;
  /// Mean in-flight count sampled at each completion — the "sustained"
  /// concurrency the serving layer actually held.
  double sustained_in_flight = 0.0;
  /// Per-phase latency attribution of this load window (run_instance_load
  /// resets the tracer's phase histograms at load start, so the rows cover
  /// exactly this run): client_attempt, queue_wait, serve_frame,
  /// policy_load, verify_common, credential, respond, the request_* roots,
  /// ... — every phase that recorded at least one span.
  std::vector<obs::Tracer::PhaseSummary> phases;

  double requests_per_sec() const {
    if (wall.count() == 0) return 0.0;
    return static_cast<double>(ok + failed) * 1e9 /
           static_cast<double>(wall.count());
  }
};

/// Run the load: every request sends `common_sigstruct` for its session and
/// expects a singleton credential back.
LoadGenResult run_instance_load(net::SimNetwork& net,
                                const sgx::SigStruct& common_sigstruct,
                                const LoadGenConfig& config);

}  // namespace sinclave::workload
