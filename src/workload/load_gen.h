// Multi-client load generator for the CAS serving layer.
//
// Models a fleet of starters racing to bring up singleton enclaves: N
// client threads each open a connection to the instance endpoint and issue
// back-to-back retrieval requests (round-robin across the configured
// sessions). Latencies land in a shared wait-free histogram; the result
// carries aggregate requests/sec and the tail percentiles the serving
// layer is judged on.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/sim_network.h"
#include "server/metrics.h"
#include "sgx/sigstruct.h"

namespace sinclave::workload {

struct LoadGenConfig {
  /// Concurrent client threads.
  std::size_t clients = 8;
  /// Requests each client issues (total = clients * requests_per_client).
  std::size_t requests_per_client = 100;
  /// Base service address; clients call `address + ".instance"`.
  std::string address;
  /// Session names, assigned to requests round-robin.
  std::vector<std::string> sessions;
};

struct LoadGenResult {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  /// First error string observed (diagnosis aid when failed > 0).
  std::string first_error;
  std::chrono::nanoseconds wall{0};
  server::LatencyHistogram::Snapshot latency;
  /// Tokens returned by successful retrievals (tests assert uniqueness);
  /// hex-encoded.
  std::vector<std::string> tokens;

  double requests_per_sec() const {
    if (wall.count() == 0) return 0.0;
    return static_cast<double>(ok + failed) * 1e9 /
           static_cast<double>(wall.count());
  }
};

/// Run the load: every request sends `common_sigstruct` for its session and
/// expects a singleton credential back.
LoadGenResult run_instance_load(net::SimNetwork& net,
                                const sgx::SigStruct& common_sigstruct,
                                const LoadGenConfig& config);

}  // namespace sinclave::workload
