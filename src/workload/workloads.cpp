#include "workload/workloads.h"

#include "core/signer.h"
#include "crypto/sha256_fast.h"
#include "runtime/starter.h"

namespace sinclave::workload {

namespace {

constexpr const char* kWorkloadProgram = "workload_app";
constexpr std::size_t kComputeUnitBytes = 256 << 10;

std::string mode_suffix(runtime::RuntimeMode mode) {
  return mode == runtime::RuntimeMode::kBaseline ? "baseline" : "sinclave";
}

}  // namespace

WorkloadSpec python_workload() {
  WorkloadSpec s;
  s.name = "python";
  s.code_bytes = 2 << 20;   // interpreter + stdlib
  s.heap_bytes = 16u << 20;
  s.process_count = 1;
  s.file_count = 16;        // scripts + data on the encrypted volume
  s.file_bytes = 64 << 10;
  s.compute_units = 10000;
  return s;
}

WorkloadSpec openvino_workload() {
  WorkloadSpec s;
  s.name = "openvino";
  s.code_bytes = 4 << 20;   // inference engine
  s.heap_bytes = 32u << 20;
  s.process_count = 2;      // pipeline: decoder + classifier
  s.file_count = 8;         // model + labels + images
  s.file_bytes = 128 << 10;
  s.compute_units = 4300;
  return s;
}

WorkloadSpec pytorch_workload() {
  WorkloadSpec s;
  s.name = "pytorch";
  s.code_bytes = 8 << 20;   // framework + native kernels
  s.heap_bytes = 16u << 20;
  s.process_count = 8;      // trainer + dataloader workers
  s.file_count = 6;         // dataset shards (workers stream lazily;
                            // only a slice is read at startup)
  s.file_bytes = 64 << 10;
  s.compute_units = 240;
  return s;
}

void register_workload_programs(runtime::ProgramRegistry& registry) {
  registry.register_program(kWorkloadProgram, [](runtime::AppContext& ctx) {
    if (ctx.config == nullptr || ctx.config->args.empty()) return 1;
    const std::uint64_t units = std::stoull(ctx.config->args[0]);

    // Startup phase: consume the (already integrity-verified) volume.
    std::uint64_t bytes_read = 0;
    if (ctx.volume != nullptr) {
      for (const auto& name : ctx.volume->list_files()) {
        const auto content = ctx.volume->read_file(name);
        if (!content.has_value()) return 2;
        bytes_read += content->size();
      }
    }

    // Compute phase: a deterministic CPU-bound kernel.
    Bytes buffer(kComputeUnitBytes);
    for (std::size_t i = 0; i < buffer.size(); ++i)
      buffer[i] = static_cast<std::uint8_t>(i * 131 + 17);
    std::uint8_t accumulator = 0;
    for (std::uint64_t u = 0; u < units; ++u) {
      buffer[0] = static_cast<std::uint8_t>(u);
      accumulator ^= crypto::sha256_fast(buffer).data[0];
    }

    ctx.output = "read=" + std::to_string(bytes_read) +
                 " units=" + std::to_string(units) +
                 " acc=" + std::to_string(accumulator);
    return 0;
  });
}

WorkloadResult run_workload(Testbed& bed, const WorkloadSpec& spec,
                            runtime::RuntimeMode mode) {
  WorkloadResult result;
  if (bed.programs().find(kWorkloadProgram) == nullptr)
    register_workload_programs(bed.programs());

  // --- Deployment preparation (not timed: build/provisioning time) ---
  const core::EnclaveImage image = core::EnclaveImage::synthetic(
      "img-" + spec.name, spec.code_bytes, spec.heap_bytes);
  const core::Signer signer(&bed.user_signer());

  crypto::Drbg fs_rng = bed.child_rng("workload-fs-" + spec.name);
  const Bytes fs_key = fs_rng.generate(32);
  fs::EncryptedVolume volume(fs_key, bed.child_rng("volume-" + spec.name));
  for (std::size_t f = 0; f < spec.file_count; ++f) {
    Bytes content = fs_rng.generate(spec.file_bytes);
    volume.write_file("data/shard-" + std::to_string(f), content);
  }

  const std::string session = spec.name + "." + mode_suffix(mode);
  const std::uint64_t units_per_process =
      spec.compute_units / static_cast<std::uint64_t>(spec.process_count);

  cas::Policy policy;
  policy.session_name = session;
  policy.expected_signer =
      crypto::sha256(bed.user_signer().public_key().modulus_be());
  policy.config.program = kWorkloadProgram;
  policy.config.args = {std::to_string(units_per_process)};
  policy.config.fs_key = fs_key;
  policy.config.fs_manifest_root = volume.manifest_root();
  policy.config.secrets["api-key"] = to_bytes("secret-" + session);

  sgx::SigStruct sigstruct;
  if (mode == runtime::RuntimeMode::kBaseline) {
    const core::SignedImage si = signer.sign_baseline(image);
    sigstruct = si.sigstruct;
    policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  } else {
    const core::SinclaveSignedImage si = signer.sign_sinclave(image);
    sigstruct = si.sigstruct;
    policy.require_singleton = true;
    policy.base_hash = si.base_hash;
  }
  bed.cas().install_policy(policy);

  runtime::EnclaveRuntime rt = bed.make_runtime(mode);
  runtime::RunOptions options;
  options.cas_address = bed.cas_address();
  options.cas_identity = bed.cas().identity();
  options.session_name = session;
  options.volume_blobs = volume.host_export();

  // --- The measured run: every process start pays the full path ---
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < spec.process_count; ++p) {
    runtime::RunResult run;
    if (mode == runtime::RuntimeMode::kBaseline) {
      const runtime::StartedEnclave enclave =
          runtime::start_enclave(bed.cpu(), image, sigstruct);
      run = rt.run(enclave, options);
      bed.cpu().eremove(enclave.id);
    } else {
      const runtime::SingletonStart s = runtime::start_singleton_enclave(
          bed.cpu(), bed.network(), bed.cas_address(), image, sigstruct,
          session);
      if (!s.ok()) {
        result.error = "process " + std::to_string(p) + ": " + s.error;
        return result;
      }
      run = rt.run(s.enclave, options);
      bed.cpu().eremove(s.enclave.id);
    }
    if (!run.ok) {
      result.error = "process " + std::to_string(p) + ": " + run.error;
      return result;
    }
    ++result.enclaves_started;
  }
  result.total = std::chrono::steady_clock::now() - start;
  result.ok = true;
  return result;
}

}  // namespace sinclave::workload
