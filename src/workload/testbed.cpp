#include "workload/testbed.h"

namespace sinclave::workload {

Testbed::Testbed(const TestbedConfig& config)
    : config_(config),
      rng_(crypto::Drbg::from_seed(config.seed, "testbed")),
      cpu_(sgx::SgxCpu::Config{config.seed, {}, true}),
      net_(config.latency),
      user_signer_(crypto::RsaKeyPair::generate(rng_, config.rsa_bits)) {
  crypto::Drbg qe_rng = child_rng("qe");
  qe_ = std::make_unique<quote::QuotingEnclave>(cpu_, qe_rng,
                                                config.rsa_bits);
  attestation_.register_platform(qe_->attestation_key());

  crypto::Drbg cas_rng = child_rng("cas");
  cas_ = std::make_unique<cas::CasService>(
      &attestation_,
      crypto::RsaKeyPair::generate(cas_rng, config.rsa_bits),
      child_rng("cas-service"));
  cas_->add_signer_key(user_signer_);
  cas_->bind(net_, config.cas_address);
}

crypto::Drbg Testbed::child_rng(std::string_view label) {
  return crypto::Drbg(rng_.generate(16), label);
}

runtime::EnclaveRuntime Testbed::make_runtime(runtime::RuntimeMode mode) {
  return runtime::EnclaveRuntime(&cpu_, qe_.get(), &net_, &programs_, mode,
                                 child_rng("runtime"));
}

cas::CasClient Testbed::make_cas_client(cas::RetryPolicy retry) {
  return cas::CasClient(
      &net_, cas::CasClientConfig{.address = config_.cas_address,
                                  .retry = retry});
}

}  // namespace sinclave::workload
