// ClusterBed — the N-node replicated-CAS fixture shared by
// tests/test_cluster.cpp and bench/bench_cluster.cpp.
//
// One simulated platform (CPU, quoting enclave, attestation service,
// network, user signer) hosting N server::ClusterNode replicas that share
// a single CAS identity key — to clients the cluster *is* one verifier
// behind several addresses. The bed owns the fixture session: a signed
// synthetic image plus the singleton policy for it, installed through
// whichever node wins the first election.
//
// The interesting helper is attested_spend(): the full client-side
// SinClave flow (credential retrieval through the cluster-aware CasClient,
// enclave construction, a quote bound to a fresh channel key, then the
// secure handshake that spends the one-time token) with leader re-routing
// between phases — the handshake chases the leader the same way the SDK
// does for retrieval, so a leader killed mid-flow surfaces as a typed
// retry, never a hang. Callers count per-token acceptances; the bed's
// audit_spends() then closes the ledger cluster-wide: every *running*
// replica must converge to the same spent count.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cas/client.h"
#include "cas/replication.h"
#include "cas/service.h"
#include "common/mutex.h"
#include "common/status.h"
#include "core/image.h"
#include "core/signer.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "net/sim_network.h"
#include "quote/attestation_service.h"
#include "quote/quoting_enclave.h"
#include "runtime/starter.h"
#include "server/cluster_node.h"
#include "sgx/cpu.h"

namespace sinclave::workload {

struct ClusterBedConfig {
  std::uint64_t seed = 1;
  /// Replica count (node ids 1..nodes, addresses address_prefix + id).
  std::size_t nodes = 3;
  /// RSA size for signer/identity/attestation keys (1024 keeps tests fast).
  std::size_t rsa_bits = 1024;
  std::string address_prefix = "cas-node";
  /// The fixture session default_policy() pins.
  std::string session_name = "cluster";
  /// Forwarded to every node (0 = sessions never expire).
  std::chrono::nanoseconds session_idle_ttl{0};
  /// Raft template: node_id/peers/seed are overwritten per node, the
  /// timing knobs (election window, heartbeat, propose_timeout,
  /// snapshot_threshold) pass through — tests tighten propose_timeout so
  /// partition scenarios fail fast instead of waiting out the default.
  cas::RaftConfig raft;
};

class ClusterBed {
 public:
  explicit ClusterBed(ClusterBedConfig config = {});
  ~ClusterBed();

  ClusterBed(const ClusterBed&) = delete;
  ClusterBed& operator=(const ClusterBed&) = delete;

  const ClusterBedConfig& config() const { return config_; }
  net::SimNetwork& network() { return net_; }
  sgx::SgxCpu& cpu() { return cpu_; }
  quote::QuotingEnclave& qe() { return *qe_; }
  const crypto::RsaKeyPair& identity() const { return identity_; }
  const core::EnclaveImage& image() const { return image_; }
  const core::SinclaveSignedImage& signed_image() const {
    return signed_image_;
  }

  std::size_t size() const { return nodes_.size(); }
  server::ClusterNode& node(std::size_t index) { return *nodes_.at(index); }
  std::string address(std::size_t index) const;
  std::vector<std::string> addresses() const;

  /// The singleton policy for the fixture session (pinned to the bed's
  /// signer and signed image).
  cas::Policy default_policy() const;

  /// Poll the *running* nodes for a leader; on a tie (a deposed leader
  /// that has not yet heard the new term) the highest term wins. nullopt
  /// when no node claims leadership within `timeout`.
  std::optional<std::size_t> wait_for_leader(
      std::chrono::milliseconds timeout);

  /// Replicate `policy` through whichever node currently leads, retrying
  /// kNotLeader / kUnavailable while the election converges.
  Status install_policy(const cas::Policy& policy,
                        std::chrono::milliseconds timeout);

  /// wait_for_leader + install default_policy — returns the leader index.
  /// Throws Error when the cluster cannot elect or replicate in time.
  std::size_t bootstrap(std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(2000));

  /// Cluster-aware SDK client: primary = node `primary_index`, cluster
  /// list = every node, so kNotLeader hints re-route and dead peers
  /// rotate.
  cas::CasClient make_client(std::size_t primary_index = 0,
                             cas::RetryPolicy retry = {});

  /// Phase 1 of a spend: retrieve a credential through the cluster-aware
  /// client and construct the enclave it names. `instance.status` carries
  /// the typed failure when !ok().
  struct PreparedToken {
    cas::InstanceResult instance;
    runtime::StartedEnclave enclave;
    std::string error;  // non-retrieval preparation failure

    bool ok() const { return instance.ok() && enclave.ok() && error.empty(); }
  };
  PreparedToken prepare_token(cas::CasClient& client);

  /// Outcome of a spend attempt (phase 2).
  struct AttestedSpend {
    /// The secure handshake accepted — the token was spent *here*.
    bool attested = false;
    /// Typed handshake rejection when !attested (kOk when the failure was
    /// transport-level).
    StatusCode reject = StatusCode::kOk;
    /// Human-readable transport failure, empty otherwise.
    std::string error;
  };

  /// One handshake against `target`, no retries — the raw primitive storm
  /// tests race. `nonce` seeds the channel key stream; every call quotes a
  /// fresh channel. Thread-safe: the simulated CPU and quoting enclave are
  /// not internally synchronized, so the quoting phase serializes on the
  /// bed's platform mutex; the handshake itself runs concurrently.
  AttestedSpend spend_once(const PreparedToken& prepared, std::uint64_t nonce,
                           const std::string& target);

  /// The failover-chasing spend: transport failures and kNotLeader /
  /// kUnavailable rejections re-resolve the leader and retry with a fresh
  /// channel (bounded attempts). The token is constant across attempts —
  /// that is the exactly-once property under test. A token ghost-spent by
  /// a killed leader surfaces as a rejection on retry: the server
  /// deliberately answers reuse with the *generic* kAttestationRejected
  /// (no token-state oracle for probing clients), so the bed's racers are
  /// always well-formed and any non-routing rejection means "already
  /// spent" — the ledger audit below is the authority either way.
  AttestedSpend spend_with_retry(const PreparedToken& prepared,
                                 std::uint64_t nonce,
                                 const std::string& initial_target);

  /// Convenience: prepare_token + spend_with_retry from the client's
  /// current (leader) address. `spent` is true when the token left the
  /// ledger on *some* node: accepted here, or spent by an earlier racer /
  /// a dying leader's committed proposal and refused as a reuse on retry.
  struct SpendOutcome {
    PreparedToken prepared;
    AttestedSpend spend;

    bool spent() const {
      return spend.attested || spend.reject == StatusCode::kTokenReused ||
             spend.reject == StatusCode::kAttestationRejected;
    }
  };
  SpendOutcome attested_spend(cas::CasClient& client, std::uint64_t nonce);

  /// Cluster-wide exactly-once audit: every running node must report the
  /// same tokens_used() == expected within `timeout` (replication lag is
  /// polled away, divergence is not).
  struct SpendAudit {
    bool converged = false;
    std::vector<std::size_t> used;  // per running node, node order
    std::string detail;             // filled when !converged
  };
  SpendAudit audit_spends(std::size_t expected,
                          std::chrono::milliseconds timeout);

 private:
  ClusterBedConfig config_;
  /// Serializes every touch of the unsynchronized simulated platform
  /// (enclave construction, EREPORT, quote signing) so harness calls are
  /// safe from racing threads. Never held across a network call.
  mutable Mutex platform_mutex_{LockRank::kWorkloadPlatform,
                                "workload.cluster_platform"};
  crypto::Drbg rng_;
  sgx::SgxCpu cpu_;
  net::SimNetwork net_;
  quote::AttestationService attestation_;
  std::unique_ptr<quote::QuotingEnclave> qe_;
  crypto::RsaKeyPair user_signer_;
  crypto::RsaKeyPair identity_;
  core::EnclaveImage image_;
  core::Signer signer_;
  core::SinclaveSignedImage signed_image_;
  std::vector<std::unique_ptr<server::ClusterNode>> nodes_;
};

}  // namespace sinclave::workload
