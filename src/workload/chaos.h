// Named chaos scenarios: the robustness counterpart of the load generator.
//
// Each scenario assembles a full Testbed, installs a deterministic
// net::FaultPlan (and, where the scenario calls for it, an overloaded
// server::CasServer or a live adversary from src/attack), drives real
// client traffic through the fault field, and then checks *explicit pass
// criteria* — not "it didn't crash" but the invariants the system claims
// to keep under exactly this abuse:
//
//   * every failure the client observes is a typed Status (untyped
//     exceptions escaping the SDK fail the scenario),
//   * every one-time token is spent at most once, and the spend ledger
//     closes against client-observed successes,
//   * the server's graceful-degradation metrics (requests_shed,
//     deadline_exceeded) plus ok responses account for every request the
//     fault plan let through — nothing vanishes,
//   * after the plan heals, clean traffic succeeds (no poisoned state).
//
// The scenarios (chaos_scenario_names() returns exactly these):
//
//   connection-churn       resets + request drops against per-op fresh
//                          clients; tokens stay unique; heals clean
//   mid-handshake-drops    secure-channel handshakes under request and
//                          response drops; tokens spend at most once even
//                          when the client never learns of success
//   replay-storm           racing handshakes replaying each one-time
//                          token under injected delay jitter; exactly one
//                          winner per token
//   byzantine-impersonator the §3 TEE impersonator attacking mid-chaos;
//                          zero steals while honest traffic survives
//   backend-brownout       30% request drops into a shedding, deadlined
//                          CasServer; full accounting closure (the PR's
//                          acceptance gate)
//   partition-and-heal     a scripted total partition trips the client
//                          circuit breaker; the partition lifts and the
//                          breaker closes after its cooldown
//
// Determinism: the fault schedule is a pure function of (config.seed,
// dispatch order). Thread interleavings still vary, so scenario *criteria*
// are written as order-independent invariants, never exact latencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sinclave::workload {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Shrink op counts for sanitizer CI runs (same scenarios, same
  /// criteria, ~10x less traffic).
  bool smoke = false;
};

struct ChaosScenarioResult {
  std::string name;
  bool passed = false;
  /// One entry per violated pass criterion (empty iff passed).
  std::vector<std::string> failures;

  // Accounting, for the BENCH_chaos.json report and for the suite's own
  // closure checks.
  std::uint64_t ops = 0;               ///< client operations issued
  std::uint64_t ok = 0;                ///< operations that succeeded
  std::uint64_t typed_failures = 0;    ///< operations failed with a Status
  std::uint64_t untyped_failures = 0;  ///< exceptions escaping the SDK (must be 0)
  std::uint64_t attempts = 0;          ///< wire attempts across retries
  std::uint64_t requests_shed = 0;     ///< server admission-control refusals
  std::uint64_t deadline_exceeded = 0; ///< server deadline refusals
  std::uint64_t faults_injected = 0;   ///< fault-injector total_faults()
  std::uint64_t breaker_trips = 0;     ///< client circuit-breaker opens
  double wall_ms = 0.0;
};

/// The scenario registry, in suite order.
std::vector<std::string> chaos_scenario_names();

/// Run one scenario by name; throws Error for an unknown name.
ChaosScenarioResult run_chaos_scenario(const std::string& name,
                                       const ChaosConfig& config);

/// Run every scenario in registry order.
std::vector<ChaosScenarioResult> run_chaos_suite(const ChaosConfig& config);

}  // namespace sinclave::workload
