// Macro-benchmark workload models (Fig. 9).
//
// The paper runs Python-with-encrypted-volume, OpenVINO image
// classification, and PyTorch CIFAR-10 training under SCONE, with and
// without SinClave. We cannot run those applications on a simulator, so
// each is modeled by the parameters that determine SinClave's *relative*
// overhead, which is what Fig. 9 reports:
//
//   * process_count — enclave starts per run. SinClave adds a fixed cost
//     (token fetch + on-demand SigStruct + extra attestation work) per
//     start. Multi-process applications (PyTorch dataloader workers) pay
//     it repeatedly, which is why PyTorch shows the largest overhead.
//   * enclave size (code+heap) — construction/measurement time per start.
//   * file_count/file_bytes — encrypted volume content read at startup.
//   * compute_units — genuine CPU work (hash kernel) after startup.
//
// The shipped specs are calibrated so the baseline totals sit in the ratio
// the paper's applications exhibit; the overhead percentages then *emerge*
// from the mechanism rather than being hard-coded.
#pragma once

#include <chrono>
#include <string>

#include "runtime/enclave_runtime.h"
#include "workload/testbed.h"

namespace sinclave::workload {

struct WorkloadSpec {
  std::string name;
  std::size_t code_bytes = 1 << 20;
  std::uint64_t heap_bytes = 16u << 20;
  /// Enclave starts per run (main process + workers).
  int process_count = 1;
  std::size_t file_count = 4;
  std::size_t file_bytes = 64 << 10;
  /// Units of the hash kernel (one unit = 256 KiB hashed).
  std::uint64_t compute_units = 1000;
};

/// Python app with an encrypted volume [50].
WorkloadSpec python_workload();
/// OpenVINO security-barrier-camera image classification [48].
WorkloadSpec openvino_workload();
/// PyTorch CIFAR-10 training (multi-process data loading) [36].
WorkloadSpec pytorch_workload();

/// Registers the generic workload program ("workload_app") that reads the
/// whole volume and runs the compute kernel.
void register_workload_programs(runtime::ProgramRegistry& registry);

struct WorkloadResult {
  bool ok = false;
  std::string error;
  std::chrono::nanoseconds total{0};
  int enclaves_started = 0;
};

/// Run a workload end to end (per-process: start enclave [+ singleton
/// retrieval in SinClave mode], attest, configure, mount volume, compute).
WorkloadResult run_workload(Testbed& bed, const WorkloadSpec& spec,
                            runtime::RuntimeMode mode);

}  // namespace sinclave::workload
