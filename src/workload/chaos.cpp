#include "workload/chaos.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "attack/impersonator.h"
#include "attack/report_server.h"
#include "cas/client.h"
#include "common/error.h"
#include "common/mutex.h"
#include "core/instance_page.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "obs/registry.h"
#include "runtime/starter.h"
#include "server/cas_server.h"
#include "workload/testbed.h"

namespace sinclave::workload {

namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

constexpr const char* kSession = "chaos";

/// One deployed testbed with a sinclave singleton session installed —
/// the common substrate every scenario abuses.
struct Fixture {
  Testbed bed;
  core::EnclaveImage image;
  core::Signer signer;
  core::SinclaveSignedImage signed_image;

  explicit Fixture(std::uint64_t seed)
      : bed(TestbedConfig{.seed = seed, .rsa_bits = 1024}),
        image(core::EnclaveImage::synthetic("chaos", 4 * sgx::kPageSize,
                                            8 * sgx::kPageSize)),
        signer(&bed.user_signer()),
        signed_image(signer.sign_sinclave(image)) {
    cas::Policy policy;
    policy.session_name = kSession;
    policy.expected_signer =
        crypto::sha256(bed.user_signer().public_key().modulus_be());
    policy.require_singleton = true;
    policy.base_hash = signed_image.base_hash;
    policy.config.program = "noop";
    bed.cas().install_policy(policy);
  }
};

/// Thread-shared outcome sink (rank kWorkloadResult, like load_gen's
/// aggregation lock — held only for bookkeeping, never across calls).
struct Outcomes {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> typed{0};
  std::atomic<std::uint64_t> untyped{0};
  std::atomic<std::uint64_t> attempts{0};

  Mutex mutex{LockRank::kWorkloadResult, "workload.chaos_outcomes"};
  std::set<std::string> tokens GUARDED_BY(mutex);
  bool duplicate_token GUARDED_BY(mutex) = false;
  std::vector<std::string> unexpected GUARDED_BY(mutex);

  void note_token(const std::string& hex) REQUIRES_NOT(mutex) {
    MutexLock lock(mutex);
    if (!tokens.insert(hex).second) duplicate_token = true;
  }
  void note_unexpected(std::string what) REQUIRES_NOT(mutex) {
    MutexLock lock(mutex);
    if (unexpected.size() < 8) unexpected.push_back(std::move(what));
  }
  std::uint64_t token_count() REQUIRES_NOT(mutex) {
    MutexLock lock(mutex);
    return tokens.size();
  }
};

/// One synchronous retrieval through the SDK, classified. Status codes
/// outside `allowed` are recorded as criteria violations; exceptions
/// escaping the SDK (there must be none) count as untyped.
void run_op(cas::CasClient& client, const Fixture& fx, Outcomes& out,
            std::initializer_list<StatusCode> allowed) {
  try {
    const cas::InstanceResult got =
        client.get_instance(kSession, fx.signed_image.sigstruct);
    out.attempts.fetch_add(got.attempts, std::memory_order_relaxed);
    if (got.ok()) {
      out.ok.fetch_add(1, std::memory_order_relaxed);
      out.note_token(got.token.hex());
      return;
    }
    out.typed.fetch_add(1, std::memory_order_relaxed);
    if (std::find(allowed.begin(), allowed.end(), got.status.code) ==
        allowed.end())
      out.note_unexpected(std::string("unexpected status code: ") +
                          to_string(got.status.code));
  } catch (...) {
    out.untyped.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Criteria helper: a failed check appends its description; passed =
/// failures.empty() at the end.
void check(ChaosScenarioResult& r, bool ok, const std::string& what) {
  if (!ok) r.failures.push_back(what);
}

void fill_counts(ChaosScenarioResult& r, Outcomes& out) {
  r.ok = out.ok.load();
  r.typed_failures = out.typed.load();
  r.untyped_failures = out.untyped.load();
  r.attempts = out.attempts.load();
  check(r, out.untyped.load() == 0,
        "exceptions escaped the SDK (failures must be typed Status)");
  MutexLock lock(out.mutex);
  check(r, !out.duplicate_token, "a one-time token was delivered twice");
  for (const std::string& u : out.unexpected) r.failures.push_back(u);
}

// --- connection-churn -------------------------------------------------------
//
// Per-op fresh clients through resets and request drops: every connection
// is torn down and rebuilt, failures stay typed, tokens stay unique, and
// the network serves cleanly once the plan heals.
ChaosScenarioResult scenario_connection_churn(const ChaosConfig& cfg) {
  ChaosScenarioResult r;
  r.name = "connection-churn";
  Fixture fx(cfg.seed);
  const std::size_t ops = cfg.smoke ? 40 : 200;

  net::FaultPlan plan;
  plan.seed = cfg.seed;
  auto& faults = plan.per_endpoint[fx.bed.cas_address() + ".instance"];
  faults.reset = 0.25;
  faults.drop_request = 0.10;
  fx.bed.network().set_fault_plan(plan);

  Outcomes out;
  for (std::size_t i = 0; i < ops; ++i) {
    cas::RetryPolicy retry;
    retry.max_attempts = 6;
    retry.initial_backoff = 20us;
    retry.max_backoff = 200us;
    retry.jitter_seed = cfg.seed * 7919 + i + 1;
    cas::CasClient client = fx.bed.make_cas_client(retry);
    run_op(client, fx, out, {StatusCode::kUnavailable});
  }
  r.ops = ops;
  const auto stats = fx.bed.network().fault_stats();
  r.faults_injected = stats.total_faults();

  fx.bed.network().set_fault_plan({});  // heal
  cas::CasClient clean = fx.bed.make_cas_client();
  run_op(clean, fx, out, {});
  ++r.ops;

  fill_counts(r, out);
  check(r, stats.total_faults() > 0, "the fault plan never fired");
  check(r, out.ok.load() >= ops / 2, "most operations should survive churn");
  check(r, out.token_count() == out.ok.load(),
        "every success must deliver its own token");
  return r;
}

// --- mid-handshake-drops ----------------------------------------------------
//
// Secure-channel handshakes under request AND response drops. The crux:
// a response-dropped handshake spends the token server-side while the
// client sees a transport failure — the retry after healing must then be
// *rejected*, never double-attested. After one healed retry round every
// token is spent exactly once.
ChaosScenarioResult scenario_mid_handshake(const ChaosConfig& cfg) {
  ChaosScenarioResult r;
  r.name = "mid-handshake-drops";
  Fixture fx(cfg.seed + 101);
  const std::size_t n = cfg.smoke ? 4 : 8;
  const std::size_t used_before = fx.bed.cas().tokens_used();

  // Honest preparation (no faults yet): one token + booted enclave each.
  std::vector<core::AttestationToken> tokens;
  std::vector<sgx::SgxCpu::EnclaveId> enclaves;
  for (std::size_t t = 0; t < n; ++t) {
    cas::InstanceRequest req;
    req.session_name = kSession;
    req.common_sigstruct = fx.signed_image.sigstruct;
    const cas::InstanceResponse resp = fx.bed.cas().handle_instance(req);
    if (!resp.ok()) {
      r.failures.push_back("honest token preparation failed");
      return r;
    }
    core::InstancePage page;
    page.token = resp.token;
    page.verifier_id = resp.verifier_id;
    const auto enclave = runtime::start_enclave(
        fx.bed.cpu(), fx.image, resp.singleton_sigstruct, page);
    if (!enclave.ok()) {
      r.failures.push_back("enclave start failed during preparation");
      return r;
    }
    tokens.push_back(resp.token);
    enclaves.push_back(enclave.id);
  }

  Outcomes out;
  /// One handshake attempt for token `t` over a fresh channel; true iff
  /// the client observed acceptance.
  const auto try_attest = [&](std::size_t t, std::uint64_t salt) {
    net::SecureClient client(crypto::Drbg::from_seed(
        cfg.seed * 1000 + t * 16 + salt, "chaos-handshake"));
    const sgx::Report report =
        fx.bed.cpu().ereport(enclaves[t], fx.bed.qe().target_info(),
                             net::channel_binding(client.dh_public()));
    const auto quote = fx.bed.qe().generate_quote(report);
    if (!quote.has_value()) {
      out.note_unexpected("quote generation failed");
      return false;
    }
    cas::AttestPayload payload;
    payload.session_name = kSession;
    payload.quote = *quote;
    payload.token = tokens[t];
    out.attempts.fetch_add(1, std::memory_order_relaxed);
    try {
      const auto accepted =
          client.connect(fx.bed.network().connect(fx.bed.cas_address()),
                         fx.bed.cas().identity(), payload.serialize());
      if (accepted.has_value()) {
        out.ok.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      out.typed.fetch_add(1, std::memory_order_relaxed);
    } catch (const Error&) {
      out.typed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      out.untyped.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  };

  net::FaultPlan plan;
  plan.seed = cfg.seed + 101;
  auto& faults = plan.per_endpoint[fx.bed.cas_address()];
  faults.drop_request = 0.30;
  faults.drop_response = 0.25;
  fx.bed.network().set_fault_plan(plan);

  std::vector<bool> succeeded(n, false);
  for (std::size_t t = 0; t < n; ++t) succeeded[t] = try_attest(t, 0);
  const auto stats = fx.bed.network().fault_stats();
  r.faults_injected = stats.total_faults();

  // Heal, then retry every handshake the client believes failed. A token
  // ghost-spent by a dropped response must be rejected here.
  fx.bed.network().set_fault_plan({});
  for (std::size_t t = 0; t < n; ++t)
    if (!succeeded[t]) succeeded[t] = try_attest(t, 1);

  r.ops = out.attempts.load();
  fill_counts(r, out);
  const std::size_t spent = fx.bed.cas().tokens_used() - used_before;
  check(r, spent == n,
        "after healing and one retry round, every token must be spent "
        "exactly once (spent=" + std::to_string(spent) +
            " expected=" + std::to_string(n) + ")");
  check(r, out.ok.load() <= n, "more client successes than tokens");
  return r;
}

// --- replay-storm -----------------------------------------------------------
//
// Every one-time token replayed by racing channels (each with its own
// valid quote bound to its own key) under injected delay jitter: exactly
// one racer per token may win, and the spend ledger closes.
ChaosScenarioResult scenario_replay_storm(const ChaosConfig& cfg) {
  ChaosScenarioResult r;
  r.name = "replay-storm";
  Fixture fx(cfg.seed + 202);
  const std::size_t n = cfg.smoke ? 4 : 8;
  const std::size_t racers = cfg.smoke ? 2 : 3;
  const std::size_t used_before = fx.bed.cas().tokens_used();

  struct Attempt {
    std::unique_ptr<net::SecureClient> client;
    cas::AttestPayload payload;
    std::size_t token_index = 0;
  };
  std::vector<Attempt> attempts;
  for (std::size_t t = 0; t < n; ++t) {
    cas::InstanceRequest req;
    req.session_name = kSession;
    req.common_sigstruct = fx.signed_image.sigstruct;
    const cas::InstanceResponse resp = fx.bed.cas().handle_instance(req);
    if (!resp.ok()) {
      r.failures.push_back("honest token preparation failed");
      return r;
    }
    core::InstancePage page;
    page.token = resp.token;
    page.verifier_id = resp.verifier_id;
    const auto enclave = runtime::start_enclave(
        fx.bed.cpu(), fx.image, resp.singleton_sigstruct, page);
    if (!enclave.ok()) {
      r.failures.push_back("enclave start failed during preparation");
      return r;
    }
    for (std::size_t racer = 0; racer < racers; ++racer) {
      Attempt a;
      a.client = std::make_unique<net::SecureClient>(crypto::Drbg::from_seed(
          cfg.seed * 500 + t * racers + racer, "chaos-replay"));
      const sgx::Report report = fx.bed.cpu().ereport(
          enclave.id, fx.bed.qe().target_info(),
          net::channel_binding(a.client->dh_public()));
      const auto quote = fx.bed.qe().generate_quote(report);
      if (!quote.has_value()) {
        r.failures.push_back("quote generation failed");
        return r;
      }
      a.payload.session_name = kSession;
      a.payload.quote = *quote;
      a.payload.token = resp.token;
      a.token_index = t;
      attempts.push_back(std::move(a));
    }
  }

  net::FaultPlan plan;
  plan.seed = cfg.seed + 202;
  auto& faults = plan.per_endpoint[fx.bed.cas_address()];
  faults.delay = 0.5;
  faults.delay_amount = 200us;
  fx.bed.network().set_fault_plan(plan);

  Outcomes out;
  std::vector<std::atomic<int>> accepted(n);
  std::vector<std::thread> threads;
  threads.reserve(attempts.size());
  for (Attempt& a : attempts) {
    threads.emplace_back([&fx, &out, &accepted, &a] {
      out.attempts.fetch_add(1, std::memory_order_relaxed);
      try {
        const auto outcome =
            a.client->connect(fx.bed.network().connect(fx.bed.cas_address()),
                              fx.bed.cas().identity(), a.payload.serialize());
        if (outcome.has_value()) {
          out.ok.fetch_add(1, std::memory_order_relaxed);
          accepted[a.token_index].fetch_add(1, std::memory_order_relaxed);
        } else {
          out.typed.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const Error&) {
        out.typed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        out.untyped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stats = fx.bed.network().fault_stats();
  r.faults_injected = stats.total_faults();
  fx.bed.network().set_fault_plan({});

  r.ops = attempts.size();
  fill_counts(r, out);
  for (std::size_t t = 0; t < n; ++t)
    check(r, accepted[t].load() == 1,
          "token " + std::to_string(t) + " attested " +
              std::to_string(accepted[t].load()) + " times (want 1)");
  const std::size_t spent = fx.bed.cas().tokens_used() - used_before;
  check(r, spent == n, "spend ledger did not close: spent=" +
                           std::to_string(spent) + " tokens=" +
                           std::to_string(n));
  check(r, out.ok.load() == n,
        "client-observed wins must equal the token count");
  return r;
}

// --- byzantine-impersonator -------------------------------------------------
//
// The paper's §3 TEE impersonator (report server coerced out of a
// baseline-signed victim) attacking the sinclave session *while* honest
// traffic runs through light faults: zero steals, honest traffic intact.
ChaosScenarioResult scenario_byzantine(const ChaosConfig& cfg) {
  ChaosScenarioResult r;
  r.name = "byzantine-impersonator";
  Fixture fx(cfg.seed + 303);
  constexpr const char* kReportServerAddr = "chaos.report-server";
  attack::register_report_server(fx.bed.programs());

  // A token the adversary observed honestly — replay fodder.
  cas::InstanceRequest req;
  req.session_name = kSession;
  req.common_sigstruct = fx.signed_image.sigstruct;
  const cas::InstanceResponse observed = fx.bed.cas().handle_instance(req);
  if (!observed.ok()) {
    r.failures.push_back("honest token preparation failed");
    return r;
  }

  // Boot the victim as a report server the classic way: baseline-signed
  // image, attacker-operated verifier with a coerced session.
  const core::SignedImage baseline = fx.signer.sign_baseline(fx.image);
  crypto::Drbg attacker_rng = fx.bed.child_rng("chaos-attacker");
  cas::CasService attacker_cas(
      &fx.bed.attestation(),
      crypto::RsaKeyPair::generate(attacker_rng, 1024),
      fx.bed.child_rng("chaos-attacker-cas"));
  attacker_cas.add_signer_key(fx.bed.user_signer());
  attacker_cas.bind(fx.bed.network(), "cas.chaos-attacker");
  cas::Policy coerced;
  coerced.session_name = "coerced";
  coerced.expected_signer =
      crypto::sha256(fx.bed.user_signer().public_key().modulus_be());
  coerced.expected_mr_enclave = baseline.sigstruct.enclave_hash;
  coerced.config.program = attack::kReportServerProgram;
  coerced.config.args = {kReportServerAddr};
  attacker_cas.install_policy(coerced);

  const auto victim =
      runtime::start_enclave(fx.bed.cpu(), fx.image, baseline.sigstruct);
  if (!victim.ok()) {
    r.failures.push_back("victim enclave failed to start");
    return r;
  }
  auto rt = fx.bed.make_runtime(runtime::RuntimeMode::kBaseline);
  runtime::RunOptions boot;
  boot.cas_address = "cas.chaos-attacker";
  boot.cas_identity = attacker_cas.identity();
  boot.session_name = "coerced";
  if (!rt.run(victim, boot).ok) {
    r.failures.push_back("report server failed to boot");
    return r;
  }

  // Now the chaos: light faults on the user's CAS while honest clients
  // and the impersonator race.
  net::FaultPlan plan;
  plan.seed = cfg.seed + 303;
  plan.per_endpoint[fx.bed.cas_address()].drop_request = 0.08;
  plan.per_endpoint[fx.bed.cas_address()].delay = 0.3;
  plan.per_endpoint[fx.bed.cas_address()].delay_amount = 100us;
  plan.per_endpoint[fx.bed.cas_address() + ".instance"].drop_request = 0.08;
  fx.bed.network().set_fault_plan(plan);

  Outcomes out;
  const std::size_t honest_ops = cfg.smoke ? 10 : 30;
  std::vector<std::thread> honest;
  for (std::size_t c = 0; c < 2; ++c) {
    honest.emplace_back([&fx, &out, &cfg, c, honest_ops] {
      cas::RetryPolicy retry;
      retry.max_attempts = 5;
      retry.initial_backoff = 50us;
      retry.max_backoff = 1000us;
      retry.jitter_seed = cfg.seed * 31 + c + 1;
      cas::CasClient client = fx.bed.make_cas_client(retry);
      for (std::size_t i = 0; i < honest_ops; ++i)
        run_op(client, fx, out, {StatusCode::kUnavailable});
    });
  }

  std::uint64_t steals = 0;
  std::uint64_t attack_attempts = 0;
  attack::TeeImpersonator impersonator(&fx.bed.network(), &fx.bed.qe(),
                                       kReportServerAddr,
                                       fx.bed.child_rng("chaos-imp"));
  const std::size_t raids = cfg.smoke ? 4 : 8;
  for (std::size_t m = 0; m < raids; ++m) {
    ++attack_attempts;
    try {
      const auto attempt = impersonator.steal_config(
          fx.bed.cas_address(), fx.bed.cas().identity(), kSession,
          m % 2 == 0 ? std::optional<core::AttestationToken>(observed.token)
                     : std::nullopt);
      if (attempt.succeeded()) ++steals;
    } catch (const Error&) {
      // A transport failure is a failed raid, which is the point.
    } catch (...) {
      out.untyped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (std::thread& t : honest) t.join();
  const auto stats = fx.bed.network().fault_stats();
  r.faults_injected = stats.total_faults();
  fx.bed.network().set_fault_plan({});

  r.ops = 2 * honest_ops + attack_attempts;
  fill_counts(r, out);
  check(r, steals == 0,
        "the impersonator stole secrets " + std::to_string(steals) +
            " time(s) — must be zero");
  check(r, out.ok.load() >= 1, "honest traffic was wiped out");
  check(r, out.token_count() == out.ok.load(),
        "every honest success must deliver its own token");
  return r;
}

// --- backend-brownout -------------------------------------------------------
//
// The acceptance gate: 30% request drops into a shedding, deadlined
// CasServer under closed-loop retrying clients. Every failure typed,
// every token spent at most once, and the accounting closes exactly:
//
//   client attempts   == server requests + injector-dropped requests
//   client successes  == server requests - server errors
//   server errors     == requests shed + deadlines exceeded
ChaosScenarioResult scenario_backend_brownout(const ChaosConfig& cfg) {
  ChaosScenarioResult r;
  r.name = "backend-brownout";
  Fixture fx(cfg.seed + 404);

  server::CasServerConfig sc;
  sc.workers = 2;
  sc.backend_io = 2000us;
  sc.admission_limit = 6;
  sc.shed_retry_after = std::chrono::milliseconds{1};
  sc.request_deadline = 4000us;
  server::CasServer server(&fx.bed.cas(), sc);
  server.bind(fx.bed.network(), "cas.brownout");
  const std::uint64_t fault_metrics_id =
      fx.bed.network().register_fault_metrics(fx.bed.cas().metrics_registry());

  net::FaultPlan plan;
  plan.seed = cfg.seed + 404;
  plan.per_endpoint["cas.brownout.instance"].drop_request = 0.30;
  fx.bed.network().set_fault_plan(plan);

  Outcomes out;
  const std::size_t clients = 8;
  const std::size_t ops_per_client = cfg.smoke ? 15 : 50;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&fx, &out, &cfg, c, ops_per_client] {
      cas::RetryPolicy retry;
      retry.max_attempts = 4;
      retry.initial_backoff = 200us;
      retry.max_backoff = 2000us;
      retry.deadline = std::chrono::microseconds{200'000};
      retry.jitter_seed = cfg.seed * 1000 + c + 1;
      cas::CasClient client(
          &fx.bed.network(),
          cas::CasClientConfig{.address = "cas.brownout", .retry = retry});
      for (std::size_t i = 0; i < ops_per_client; ++i)
        run_op(client, fx, out,
               {StatusCode::kUnavailable, StatusCode::kDeadlineExceeded});
    });
  }
  for (std::thread& t : threads) t.join();

  // Snapshot through the unified registry BEFORE healing (set_fault_plan
  // resets the injector), proving the fault counters surface end to end.
  const obs::MetricsSnapshot snap = fx.bed.cas().metrics_registry().snapshot();
  const auto stats = fx.bed.network().fault_stats();
  r.faults_injected = stats.total_faults();
  fx.bed.network().set_fault_plan({});
  server.unbind();
  fx.bed.cas().metrics_registry().remove_collector(fault_metrics_id);

  r.ops = clients * ops_per_client;
  fill_counts(r, out);

  const server::ServerMetrics& m = server.metrics();
  const std::uint64_t requests = m.get_instance.requests.load();
  const std::uint64_t errors = m.get_instance.errors.load();
  r.requests_shed = m.requests_shed.load();
  r.deadline_exceeded = m.deadline_exceeded.load();

  check(r, out.attempts.load() == requests + stats.requests_dropped,
        "attempt accounting does not close: attempts=" +
            std::to_string(out.attempts.load()) + " server_requests=" +
            std::to_string(requests) + " dropped=" +
            std::to_string(stats.requests_dropped));
  check(r, out.ok.load() == requests - errors,
        "success accounting does not close: ok=" +
            std::to_string(out.ok.load()) + " server_ok=" +
            std::to_string(requests - errors));
  check(r, errors == r.requests_shed + r.deadline_exceeded,
        "server errors beyond shed+deadline: errors=" +
            std::to_string(errors) + " shed=" +
            std::to_string(r.requests_shed) + " deadline=" +
            std::to_string(r.deadline_exceeded));
  check(r, m.tokens_issued.load() == out.ok.load(),
        "minted tokens must equal delivered successes (no token minted "
        "for a shed or expired request): minted=" +
            std::to_string(m.tokens_issued.load()) + " ok=" +
            std::to_string(out.ok.load()));
  check(r, out.token_count() == out.ok.load(),
        "every success must deliver its own token");
  check(r, stats.requests_dropped > 0, "the fault plan never fired");
  const obs::MetricsSnapshot::Entry* dropped =
      snap.find("net_fault_requests_dropped");
  check(r, dropped != nullptr &&
               dropped->value == stats.requests_dropped,
        "injector counters missing from the unified metrics snapshot");
  check(r, server.timers().pending() == 0,
        "timer wheel still holds stalls after unbind");
  return r;
}

// --- partition-and-heal -----------------------------------------------------
//
// A scripted total partition (window on the injector's logical clock)
// trips the client circuit breaker after three straight wire failures;
// everything after fails fast without touching the wire. The partition
// window expires, the cooldown lapses, and the very next probe closes the
// breaker — clean traffic resumes.
ChaosScenarioResult scenario_partition_heal(const ChaosConfig& cfg) {
  ChaosScenarioResult r;
  r.name = "partition-and-heal";
  Fixture fx(cfg.seed + 505);

  net::FaultPlan plan;
  plan.seed = cfg.seed + 505;
  net::FaultWindow window;
  window.from_op = 0;
  window.until_op = 3;
  window.address_prefix = fx.bed.cas_address() + ".instance";
  window.faults.drop_request = 1.0;
  plan.windows.push_back(window);
  fx.bed.network().set_fault_plan(plan);

  cas::RetryPolicy retry;
  retry.max_attempts = 1;  // the breaker, not the retry loop, is on trial
  retry.breaker_threshold = 3;
  retry.breaker_cooldown = std::chrono::microseconds{50'000};
  retry.jitter_seed = cfg.seed + 1;
  cas::CasClient client = fx.bed.make_cas_client(retry);

  Outcomes out;
  std::uint64_t fast_fails_observed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    try {
      const cas::InstanceResult got =
          client.get_instance(kSession, fx.signed_image.sigstruct);
      out.attempts.fetch_add(got.attempts, std::memory_order_relaxed);
      if (got.ok()) {
        out.ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        out.typed.fetch_add(1, std::memory_order_relaxed);
        if (got.attempts == 0) {
          ++fast_fails_observed;
          if (got.status.message() != breaker_open_detail())
            out.note_unexpected("fast-fail without the breaker detail");
        }
      }
    } catch (...) {
      out.untyped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const cas::CasClient::Stats mid = client.stats();
  check(r, mid.breaker_trips == 1,
        "breaker should trip exactly once during the partition (trips=" +
            std::to_string(mid.breaker_trips) + ")");
  check(r, mid.breaker_fast_fails == 5 && fast_fails_observed == 5,
        "operations after the trip must fail fast without touching the "
        "wire (fast_fails=" + std::to_string(mid.breaker_fast_fails) + ")");
  check(r, out.ok.load() == 0, "no operation may succeed mid-partition");

  // Partition over (the window covered ops 0..2 of the logical clock);
  // wait out the cooldown, then traffic must flow — first op is the probe
  // that closes the breaker.
  std::this_thread::sleep_for(70ms);
  for (std::size_t i = 0; i < 10; ++i)
    run_op(client, fx, out, {});
  const auto stats = fx.bed.network().fault_stats();
  r.faults_injected = stats.total_faults();
  fx.bed.network().set_fault_plan({});

  r.ops = 18;
  r.breaker_trips = client.stats().breaker_trips;
  fill_counts(r, out);
  check(r, out.ok.load() == 10, "all post-heal operations must succeed");
  check(r, client.stats().breaker_trips == 1,
        "breaker must stay closed after healing");
  check(r, stats.requests_dropped == 3,
        "the partition window must drop exactly the three probe requests "
        "(dropped=" + std::to_string(stats.requests_dropped) + ")");
  return r;
}

using ScenarioFn = ChaosScenarioResult (*)(const ChaosConfig&);

struct NamedScenario {
  const char* name;
  ScenarioFn run;
};

constexpr NamedScenario kScenarios[] = {
    {"connection-churn", scenario_connection_churn},
    {"mid-handshake-drops", scenario_mid_handshake},
    {"replay-storm", scenario_replay_storm},
    {"byzantine-impersonator", scenario_byzantine},
    {"backend-brownout", scenario_backend_brownout},
    {"partition-and-heal", scenario_partition_heal},
};

}  // namespace

std::vector<std::string> chaos_scenario_names() {
  std::vector<std::string> names;
  for (const NamedScenario& s : kScenarios) names.emplace_back(s.name);
  return names;
}

ChaosScenarioResult run_chaos_scenario(const std::string& name,
                                       const ChaosConfig& config) {
  for (const NamedScenario& s : kScenarios) {
    if (name != s.name) continue;
    const auto start = Clock::now();
    ChaosScenarioResult r = s.run(config);
    r.passed = r.failures.empty();
    r.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
    return r;
  }
  throw Error("chaos: unknown scenario: " + name);
}

std::vector<ChaosScenarioResult> run_chaos_suite(const ChaosConfig& config) {
  std::vector<ChaosScenarioResult> results;
  for (const NamedScenario& s : kScenarios)
    results.push_back(run_chaos_scenario(s.name, config));
  return results;
}

}  // namespace sinclave::workload
