#include "workload/cluster.h"

#include <thread>
#include <utility>

#include "common/error.h"
#include "core/instance_page.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "runtime/starter.h"

namespace sinclave::workload {

namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

}  // namespace

ClusterBed::ClusterBed(ClusterBedConfig config)
    : config_(std::move(config)),
      rng_(crypto::Drbg::from_seed(config_.seed, "cluster-bed")),
      cpu_(sgx::SgxCpu::Config{config_.seed, {}, true}),
      user_signer_(crypto::RsaKeyPair::generate(rng_, config_.rsa_bits)),
      identity_(crypto::RsaKeyPair::generate(rng_, config_.rsa_bits)),
      image_(core::EnclaveImage::synthetic("cluster", 4 * sgx::kPageSize,
                                           8 * sgx::kPageSize)),
      signer_(&user_signer_),
      signed_image_(signer_.sign_sinclave(image_)) {
  crypto::Drbg qe_rng = crypto::Drbg(rng_.generate(16), "qe");
  qe_ = std::make_unique<quote::QuotingEnclave>(cpu_, qe_rng,
                                                config_.rsa_bits);
  attestation_.register_platform(qe_->attestation_key());

  std::vector<cas::RaftPeer> peers;
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    peers.push_back(cas::RaftPeer{
        i + 1, config_.address_prefix + std::to_string(i + 1)});
  }
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    server::ClusterNodeConfig node_config;
    node_config.raft = config_.raft;
    node_config.raft.node_id = i + 1;
    node_config.raft.peers = peers;
    node_config.raft.seed = config_.seed;
    node_config.session_idle_ttl = config_.session_idle_ttl;
    // Per-node seed: each replica seals with its own key and — more
    // importantly — mints tokens from its own DRBG stream, so successive
    // leaders can never collide on token bytes.
    auto node = std::make_unique<server::ClusterNode>(
        &net_, &attestation_, identity_,
        config_.seed * 7919 + (i + 1) * 104729, std::move(node_config));
    node->add_signer_key(user_signer_);
    nodes_.push_back(std::move(node));
  }
  for (auto& node : nodes_) node->start();
}

ClusterBed::~ClusterBed() {
  // Stop every node before the network goes away (nodes hold net_).
  for (auto& node : nodes_) node->stop();
}

std::string ClusterBed::address(std::size_t index) const {
  return config_.address_prefix + std::to_string(index + 1);
}

std::vector<std::string> ClusterBed::addresses() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) out.push_back(address(i));
  return out;
}

cas::Policy ClusterBed::default_policy() const {
  cas::Policy policy;
  policy.session_name = config_.session_name;
  policy.expected_signer =
      crypto::sha256(user_signer_.public_key().modulus_be());
  policy.require_singleton = true;
  policy.base_hash = signed_image_.base_hash;
  policy.config.program = "noop";
  return policy;
}

std::optional<std::size_t> ClusterBed::wait_for_leader(
    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  do {
    std::optional<std::size_t> best;
    std::uint64_t best_term = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i]->running()) continue;
      const cas::RaftStats stats = nodes_[i]->raft().stats();
      if (stats.is_leader && stats.term >= best_term) {
        best = i;
        best_term = stats.term;
      }
    }
    if (best.has_value()) return best;
    std::this_thread::sleep_for(2ms);
  } while (Clock::now() < deadline);
  return std::nullopt;
}

Status ClusterBed::install_policy(const cas::Policy& policy,
                                  std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  Status last(StatusCode::kUnavailable, "cluster: no node attempted");
  do {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i]->running()) continue;
      if (!nodes_[i]->raft().is_leader()) continue;
      last = nodes_[i]->install_policy(policy);
      if (last.ok()) return last;
    }
    std::this_thread::sleep_for(5ms);
  } while (Clock::now() < deadline);
  return last;
}

std::size_t ClusterBed::bootstrap(std::chrono::milliseconds timeout) {
  const std::optional<std::size_t> leader = wait_for_leader(timeout);
  if (!leader.has_value()) {
    throw Error("cluster bed: no leader elected within bootstrap timeout");
  }
  const Status installed = install_policy(default_policy(), timeout);
  if (!installed.ok()) {
    throw Error("cluster bed: policy install failed: " + installed.message());
  }
  return *leader;
}

cas::CasClient ClusterBed::make_client(std::size_t primary_index,
                                       cas::RetryPolicy retry) {
  cas::CasClientConfig client_config;
  client_config.address = address(primary_index);
  client_config.cluster = addresses();
  client_config.retry = retry;
  return cas::CasClient(&net_, std::move(client_config));
}

ClusterBed::PreparedToken ClusterBed::prepare_token(cas::CasClient& client) {
  PreparedToken out;
  out.instance =
      client.get_instance(config_.session_name, signed_image_.sigstruct);
  if (!out.instance.ok()) return out;

  core::InstancePage page;
  page.token = out.instance.token;
  page.verifier_id = out.instance.verifier_id;
  {
    MutexLock lock(platform_mutex_);
    out.enclave = runtime::start_enclave(
        cpu_, image_, out.instance.singleton_sigstruct, page);
  }
  if (!out.enclave.ok()) out.error = "enclave start failed";
  return out;
}

ClusterBed::AttestedSpend ClusterBed::spend_once(const PreparedToken& prepared,
                                                 std::uint64_t nonce,
                                                 const std::string& target) {
  AttestedSpend out;
  net::SecureClient channel(crypto::Drbg::from_seed(
      config_.seed * 1000003 + nonce, "cluster-spend"));
  std::optional<quote::Quote> quote;
  {
    // EREPORT and quote signing mutate unsynchronized platform state —
    // serialize them; the handshake below runs outside the lock.
    MutexLock lock(platform_mutex_);
    const sgx::Report report =
        cpu_.ereport(prepared.enclave.id, qe_->target_info(),
                     net::channel_binding(channel.dh_public()));
    quote = qe_->generate_quote(report);
  }
  if (!quote.has_value()) {
    out.error = "quote generation failed";
    return out;
  }
  cas::AttestPayload payload;
  payload.session_name = config_.session_name;
  payload.quote = *quote;
  payload.token = prepared.instance.token;

  StatusCode reject = StatusCode::kOk;
  try {
    const std::optional<Bytes> accepted =
        channel.connect(net_.connect(target), identity_.public_key(),
                        payload.serialize(), &reject);
    if (accepted.has_value()) {
      out.attested = true;
      return out;
    }
  } catch (const Error& e) {
    out.error = e.what();
    return out;
  }
  out.reject = reject;
  return out;
}

ClusterBed::AttestedSpend ClusterBed::spend_with_retry(
    const PreparedToken& prepared, std::uint64_t nonce,
    const std::string& initial_target) {
  std::string target = initial_target;
  AttestedSpend out;
  for (std::size_t attempt = 0; attempt < 5; ++attempt) {
    out = spend_once(prepared, nonce * 31 + attempt, target);
    if (out.attested) return out;
    const bool routing_failure =
        !out.error.empty() || out.reject == StatusCode::kNotLeader ||
        out.reject == StatusCode::kUnavailable;
    if (!routing_failure) return out;  // typed verdict (e.g. kTokenReused)
    // Dead or deposed target: find the successor and try again with a
    // fresh channel (the quote binds the channel key, so each attempt
    // re-quotes; the token is constant — that is the property under test).
    const std::optional<std::size_t> leader = wait_for_leader(500ms);
    if (!leader.has_value()) return out;
    target = address(*leader);
  }
  return out;
}

ClusterBed::SpendOutcome ClusterBed::attested_spend(cas::CasClient& client,
                                                    std::uint64_t nonce) {
  SpendOutcome out;
  out.prepared = prepare_token(client);
  if (!out.prepared.ok()) return out;
  out.spend =
      spend_with_retry(out.prepared, nonce, client.current_address());
  return out;
}

ClusterBed::SpendAudit ClusterBed::audit_spends(
    std::size_t expected, std::chrono::milliseconds timeout) {
  SpendAudit audit;
  const auto deadline = Clock::now() + timeout;
  do {
    audit.used.clear();
    bool all_match = true;
    for (auto& node : nodes_) {
      if (!node->running()) continue;
      const std::size_t used = node->cas().tokens_used();
      audit.used.push_back(used);
      if (used != expected) all_match = false;
    }
    if (all_match && !audit.used.empty()) {
      audit.converged = true;
      return audit;
    }
    std::this_thread::sleep_for(5ms);
  } while (Clock::now() < deadline);
  audit.detail = "expected " + std::to_string(expected) + " spends, got [";
  for (std::size_t i = 0; i < audit.used.size(); ++i) {
    if (i != 0) audit.detail += ", ";
    audit.detail += std::to_string(audit.used[i]);
  }
  audit.detail += "] across running nodes";
  return audit;
}

}  // namespace sinclave::workload
