// Full-stack deployment fixture: one simulated platform with everything
// the paper's system model needs (Fig. 3) — CPU, quoting enclave, TEE
// provider attestation service, the user's trusted verifier (CAS) with the
// user's signer key uploaded, a network, and a program registry.
//
// Used by integration tests, examples, and the macro benchmarks.
#pragma once

#include <memory>
#include <string>

#include "cas/client.h"
#include "cas/service.h"
#include "crypto/drbg.h"
#include "net/sim_network.h"
#include "quote/attestation_service.h"
#include "quote/quoting_enclave.h"
#include "runtime/enclave_runtime.h"
#include "sgx/cpu.h"

namespace sinclave::workload {

struct TestbedConfig {
  std::uint64_t seed = 1;
  net::LatencyModel latency{};
  /// RSA size for signer/verifier/attestation keys. 1024 keeps test setup
  /// fast; benchmarks touching signature latency use 3072 (the SGX size).
  std::size_t rsa_bits = 1024;
  /// Address the user's CAS serves on.
  std::string cas_address = "cas.user";
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  const TestbedConfig& config() const { return config_; }

  sgx::SgxCpu& cpu() { return cpu_; }
  net::SimNetwork& network() { return net_; }
  quote::QuotingEnclave& qe() { return *qe_; }
  quote::AttestationService& attestation() { return attestation_; }
  cas::CasService& cas() { return *cas_; }
  runtime::ProgramRegistry& programs() { return programs_; }
  const crypto::RsaKeyPair& user_signer() const { return user_signer_; }

  const std::string& cas_address() const { return config_.cas_address; }

  /// Fresh deterministic child RNG (domain separated by label).
  crypto::Drbg child_rng(std::string_view label);

  /// Build a runtime instance in the given mode.
  runtime::EnclaveRuntime make_runtime(runtime::RuntimeMode mode);

  /// SDK client bound to this bed's network and CAS address.
  cas::CasClient make_cas_client(cas::RetryPolicy retry = {});

 private:
  TestbedConfig config_;
  crypto::Drbg rng_;
  sgx::SgxCpu cpu_;
  net::SimNetwork net_;
  quote::AttestationService attestation_;
  std::unique_ptr<quote::QuotingEnclave> qe_;
  crypto::RsaKeyPair user_signer_;
  std::unique_ptr<cas::CasService> cas_;
  runtime::ProgramRegistry programs_;
};

}  // namespace sinclave::workload
