#include "workload/load_gen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "cas/client.h"
#include "common/error.h"
#include "common/mutex.h"

namespace sinclave::workload {

namespace {

using Clock = std::chrono::steady_clock;

// Tiny explicit PRNG (splitmix64) so schedules are bit-identical across
// standard libraries — std::exponential_distribution's output is
// implementation-defined, which would break cross-toolchain determinism.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  /// Uniform in (0, 1] — never 0, so log() below is always finite.
  double unit() {
    return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
  }
};

SplitMix64 client_rng(std::uint64_t base_seed, std::size_t client_index) {
  // Decorrelate adjacent seeds through one scramble round; splitmix's own
  // increment does the rest.
  SplitMix64 rng{base_seed ^ (0x5851f42d4c957f2dull *
                              (static_cast<std::uint64_t>(client_index) + 1))};
  rng.next();
  return rng;
}

}  // namespace

std::vector<std::vector<ScheduledRequest>> make_schedule(
    const LoadGenConfig& config) {
  if (config.sessions.empty()) throw Error("load gen: no sessions");
  const std::size_t streams = config.mode == LoadMode::kOpen
                                  ? config.logical_clients
                                  : config.clients;
  const double mean_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          config.mean_interarrival)
          .count();
  // Zipfian session choice samples the precomputed CDF by inverse
  // transform: session i (rank i+1) carries weight 1/(i+1)^theta, so
  // sessions[0] is the hottest. Same RNG stream as uniform mode — one
  // draw per request — so schedules stay a pure function of the config.
  std::vector<double> zipf_cdf;
  if (config.session_dist == SessionDist::kZipfian) {
    zipf_cdf.reserve(config.sessions.size());
    double total = 0.0;
    for (std::size_t i = 0; i < config.sessions.size(); ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), config.zipf_theta);
      zipf_cdf.push_back(total);
    }
    for (double& c : zipf_cdf) c /= total;
  }
  const auto pick_session = [&](SplitMix64& rng) -> std::size_t {
    if (zipf_cdf.empty()) return rng.below(config.sessions.size());
    const double u = rng.unit();
    const auto it = std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u);
    return std::min<std::size_t>(
        static_cast<std::size_t>(it - zipf_cdf.begin()),
        config.sessions.size() - 1);
  };

  const double think_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(config.mean_think)
          .count();

  std::vector<std::vector<ScheduledRequest>> schedule(streams);
  for (std::size_t c = 0; c < streams; ++c) {
    SplitMix64 rng = client_rng(config.base_seed, c);
    schedule[c].reserve(config.requests_per_client);
    double at_ns = 0.0;
    for (std::size_t i = 0; i < config.requests_per_client; ++i) {
      ScheduledRequest r;
      r.session_index = pick_session(rng);
      if (config.mode == LoadMode::kOpen) {
        // Exponential inter-arrival gaps via inverse CDF: a Poisson
        // arrival stream per logical client.
        at_ns += -mean_ns * std::log(rng.unit());
        r.at = std::chrono::nanoseconds(static_cast<std::int64_t>(at_ns));
      } else if (config.think_time == ThinkTime::kConstant) {
        r.think = std::chrono::nanoseconds(
            static_cast<std::int64_t>(think_ns));
      } else if (config.think_time == ThinkTime::kExponential) {
        // Drawn after the session pick, and only when enabled: schedules
        // under ThinkTime::kNone stay bit-identical with seed-era ones.
        r.think = std::chrono::nanoseconds(
            static_cast<std::int64_t>(-think_ns * std::log(rng.unit())));
      }
      schedule[c].push_back(r);
    }
  }
  return schedule;
}

namespace {

LoadGenResult run_closed_loop(net::SimNetwork& net,
                              const sgx::SigStruct& common_sigstruct,
                              const LoadGenConfig& config) {
  const auto schedule = make_schedule(config);

  LoadGenResult result;
  server::LatencyHistogram histogram;
  Mutex result_mutex{LockRank::kWorkloadResult, "workload.result"};
  // Measured, not assumed: a client that errors out early stops
  // contributing, so the observed concurrency can be below `clients`.
  std::atomic<std::uint64_t> in_flight{0}, max_in_flight{0};
  std::atomic<std::uint64_t> samples_sum{0}, samples{0};

  const auto client = [&](std::size_t client_index) {
    std::uint64_t ok = 0, failed = 0;
    std::string first_error;
    std::vector<std::string> tokens;
    tokens.reserve(config.requests_per_client);
    // The SDK, not hand-rolled frames. max_attempts = 1: a load generator
    // measures failures, it does not paper over them with retries.
    cas::CasClient client(
        &net, cas::CasClientConfig{.address = config.address,
                                   .retry = {.max_attempts = 1}});
    for (const ScheduledRequest& planned : schedule[client_index]) {
      if (planned.think.count() > 0)
        std::this_thread::sleep_for(planned.think);

      server::atomic_fetch_max(
          max_in_flight,
          in_flight.fetch_add(1, std::memory_order_relaxed) + 1);
      const auto start = Clock::now();
      const cas::InstanceResult got = client.get_instance(
          config.sessions[planned.session_index], common_sigstruct);
      histogram.record(Clock::now() - start);
      samples_sum.fetch_add(in_flight.fetch_sub(1, std::memory_order_relaxed),
                            std::memory_order_relaxed);
      samples.fetch_add(1, std::memory_order_relaxed);

      if (got.ok()) {
        ++ok;
        tokens.push_back(got.token.hex());
      } else {
        ++failed;
        if (first_error.empty()) first_error = got.status.message();
      }
    }
    MutexLock lock(result_mutex);
    result.ok += ok;
    result.failed += failed;
    if (result.first_error.empty()) result.first_error = first_error;
    result.tokens.insert(result.tokens.end(), tokens.begin(), tokens.end());
  };

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (std::size_t c = 0; c < config.clients; ++c)
    threads.emplace_back(client, c);
  for (auto& t : threads) t.join();
  result.wall = Clock::now() - start;
  result.max_in_flight = max_in_flight.load();
  result.sustained_in_flight =
      samples.load() == 0
          ? 0.0
          : static_cast<double>(samples_sum.load()) /
                static_cast<double>(samples.load());
  result.latency = histogram.snapshot();
  return result;
}

/// Completion-side shared state of one open-loop run.
struct OpenLoopState {
  server::LatencyHistogram histogram;
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> max_in_flight{0};
  std::atomic<std::uint64_t> in_flight_samples_sum{0};
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> completed{0};
  // Guards the aggregates below + completion cv.
  Mutex mutex{LockRank::kWorkloadResult, "workload.open_loop"};
  CondVar all_done;
  std::uint64_t ok GUARDED_BY(mutex) = 0;
  std::uint64_t failed GUARDED_BY(mutex) = 0;
  std::string first_error GUARDED_BY(mutex);
  std::vector<std::string> tokens GUARDED_BY(mutex);
};

LoadGenResult run_open_loop(net::SimNetwork& net,
                            const sgx::SigStruct& common_sigstruct,
                            const LoadGenConfig& config) {
  const auto schedule = make_schedule(config);
  const std::size_t threads_n = std::max<std::size_t>(1, config.clients);
  auto state = std::make_shared<OpenLoopState>();

  // Each issuing thread owns the arrival streams of logical clients
  // c % threads_n == t, merged into one time-sorted lane.
  struct Arrival {
    std::chrono::nanoseconds at;
    std::size_t session_index;
  };
  std::vector<std::vector<Arrival>> lanes(threads_n);
  for (std::size_t c = 0; c < schedule.size(); ++c)
    for (const ScheduledRequest& r : schedule[c])
      lanes[c % threads_n].push_back(Arrival{r.at, r.session_index});
  for (auto& lane : lanes)
    std::sort(lane.begin(), lane.end(),
              [](const Arrival& a, const Arrival& b) { return a.at < b.at; });

  const auto on_complete = [state](Clock::time_point issued,
                                   const cas::InstanceResult& got) {
    state->histogram.record(Clock::now() - issued);
    // Sample the in-flight level as seen by this completion — averaging
    // these gives the sustained concurrency the serving layer actually
    // held, not just a momentary peak. The SDK already decoded and typed
    // the outcome; the mutex guards only the aggregates (completions are
    // delivered by the server's single timer thread — keep this short).
    const std::uint64_t level =
        state->in_flight.fetch_sub(1, std::memory_order_relaxed);
    state->in_flight_samples_sum.fetch_add(level, std::memory_order_relaxed);
    {
      MutexLock lock(state->mutex);
      if (got.ok()) {
        ++state->ok;
        state->tokens.push_back(got.token.hex());
      } else {
        ++state->failed;
        if (state->first_error.empty())
          state->first_error = got.status.message();
      }
      state->completed.fetch_add(1, std::memory_order_relaxed);
      state->all_done.notify_all();
    }
  };

  const auto start = Clock::now();
  const auto issuer = [&, state, on_complete](std::size_t thread_index) {
    const std::vector<Arrival>& lane = lanes[thread_index];
    // One SDK client per issuing thread; no retries (offered load is the
    // experiment). The async path never throws — dispatch failures
    // (listener gone, connect refused) are delivered through the callback
    // as typed kUnavailable results, so ok + failed always equals the
    // offered load without a separate abort path.
    cas::CasClient client(
        &net, cas::CasClientConfig{.address = config.address,
                                   .retry = {.max_attempts = 1}});
    for (const Arrival& arrival : lane) {
      std::this_thread::sleep_until(start + arrival.at);

      server::atomic_fetch_max(
          state->max_in_flight,
          state->in_flight.fetch_add(1, std::memory_order_relaxed) + 1);

      const auto issued = Clock::now();
      client.get_instance_async(
          config.sessions[arrival.session_index], common_sigstruct,
          [on_complete, issued](const cas::InstanceResult& got) {
            on_complete(issued, got);
          });
      state->issued.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> issuers;
  issuers.reserve(threads_n);
  for (std::size_t t = 0; t < threads_n; ++t) issuers.emplace_back(issuer, t);
  for (auto& t : issuers) t.join();

  // Every arrival was issued (or its lane aborted); wait for the tail of
  // completions still parked server-side. `issued` is final after the
  // joins, so the predicate cannot race a growing target.
  {
    MutexLock lock(state->mutex);
    while (state->completed.load() < state->issued.load())
      state->all_done.wait(state->mutex);
  }

  LoadGenResult result;
  result.wall = Clock::now() - start;
  {
    MutexLock lock(state->mutex);
    result.ok = state->ok;
    result.failed = state->failed;
    result.first_error = state->first_error;
    result.tokens = std::move(state->tokens);
  }
  result.latency = state->histogram.snapshot();
  result.max_in_flight = state->max_in_flight.load();
  // Every issued arrival — dispatch failures included — is delivered
  // through on_complete and samples the gauge, so completions equals
  // ok + failed here; keep dividing by the count that actually sampled.
  const std::uint64_t completions = state->completed.load();
  result.sustained_in_flight =
      completions == 0 ? 0.0
                       : static_cast<double>(
                             state->in_flight_samples_sum.load()) /
                             static_cast<double>(completions);
  return result;
}

}  // namespace

LoadGenResult run_instance_load(net::SimNetwork& net,
                                const sgx::SigStruct& common_sigstruct,
                                const LoadGenConfig& config) {
  if (config.sessions.empty()) throw Error("load gen: no sessions");
  // Validated here, on the caller's thread: the workers construct
  // CasClients from this config, and a constructor throw inside a
  // std::thread lambda would terminate the process instead of failing
  // the run.
  if (config.address.empty()) throw Error("load gen: no address");
  // Scope the per-phase attribution to this load window: quantiles are
  // not delta-able, so the histograms restart from zero here and the
  // result's phase rows cover exactly this run.
  obs::Tracer::instance().reset_phases();
  LoadGenResult result = config.mode == LoadMode::kOpen
                             ? run_open_loop(net, common_sigstruct, config)
                             : run_closed_loop(net, common_sigstruct, config);
  result.phases = obs::Tracer::instance().phase_summaries();
  return result;
}

}  // namespace sinclave::workload
