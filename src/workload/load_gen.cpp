#include "workload/load_gen.h"

#include <mutex>
#include <thread>

#include "cas/protocol.h"
#include "common/error.h"

namespace sinclave::workload {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

LoadGenResult run_instance_load(net::SimNetwork& net,
                                const sgx::SigStruct& common_sigstruct,
                                const LoadGenConfig& config) {
  if (config.sessions.empty()) throw Error("load gen: no sessions");

  LoadGenResult result;
  server::LatencyHistogram histogram;
  std::mutex result_mutex;  // guards ok/failed/first_error/tokens

  const auto client = [&](std::size_t client_index) {
    std::uint64_t ok = 0, failed = 0;
    std::string first_error;
    std::vector<std::string> tokens;
    tokens.reserve(config.requests_per_client);
    try {
      auto connection = net.connect(config.address + ".instance");
      for (std::size_t i = 0; i < config.requests_per_client; ++i) {
        cas::InstanceRequest request;
        request.session_name =
            config.sessions[(client_index + i) % config.sessions.size()];
        request.common_sigstruct = common_sigstruct;

        const auto start = Clock::now();
        const Bytes raw = connection.call(request.serialize());
        histogram.record(Clock::now() - start);

        const auto resp = cas::InstanceResponse::deserialize(raw);
        if (resp.ok) {
          ++ok;
          tokens.push_back(resp.token.hex());
        } else {
          ++failed;
          if (first_error.empty()) first_error = resp.error;
        }
      }
    } catch (const Error& e) {
      ++failed;
      if (first_error.empty()) first_error = e.what();
    }
    std::lock_guard lock(result_mutex);
    result.ok += ok;
    result.failed += failed;
    if (result.first_error.empty()) result.first_error = first_error;
    result.tokens.insert(result.tokens.end(), tokens.begin(), tokens.end());
  };

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (std::size_t c = 0; c < config.clients; ++c)
    threads.emplace_back(client, c);
  for (auto& t : threads) t.join();
  result.wall = Clock::now() - start;
  result.latency = histogram.snapshot();
  return result;
}

}  // namespace sinclave::workload
