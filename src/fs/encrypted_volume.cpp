#include "fs/encrypted_volume.h"

#include "common/error.h"
#include "crypto/sha256.h"

namespace sinclave::fs {

EncryptedVolume::EncryptedVolume(ByteView key256, crypto::Drbg rng)
    : aead_(key256), rng_(std::move(rng)) {}

EncryptedVolume EncryptedVolume::adopt(ByteView key256, crypto::Drbg rng,
                                       std::map<std::string, Bytes> blobs) {
  EncryptedVolume v(key256, std::move(rng));
  v.blobs_ = std::move(blobs);
  return v;
}

void EncryptedVolume::write_file(const std::string& name, ByteView content) {
  const Bytes nonce = rng_.generate(crypto::kAeadNonceSize);
  const Bytes sealed = aead_.seal(nonce, content, to_bytes(name));
  blobs_[name] = concat({nonce, sealed});
}

std::optional<Bytes> EncryptedVolume::read_file(const std::string& name) const {
  const auto it = blobs_.find(name);
  if (it == blobs_.end()) return std::nullopt;
  const Bytes& blob = it->second;
  if (blob.size() < crypto::kAeadNonceSize) return std::nullopt;
  const ByteView nonce{blob.data(), crypto::kAeadNonceSize};
  const ByteView sealed{blob.data() + crypto::kAeadNonceSize,
                        blob.size() - crypto::kAeadNonceSize};
  return aead_.open(nonce, sealed, to_bytes(name));
}

bool EncryptedVolume::exists(const std::string& name) const {
  return blobs_.contains(name);
}

void EncryptedVolume::remove_file(const std::string& name) {
  blobs_.erase(name);
}

std::vector<std::string> EncryptedVolume::list_files() const {
  std::vector<std::string> names;
  names.reserve(blobs_.size());
  for (const auto& [name, blob] : blobs_) names.push_back(name);
  return names;  // std::map iterates in lexicographic order already
}

Hash256 EncryptedVolume::manifest_root() const {
  crypto::Sha256 h;
  h.update(to_bytes("sinclave-fs-manifest-v1"));
  for (const auto& [name, blob] : blobs_) {
    const auto content = read_file(name);
    if (!content.has_value())
      throw Error("manifest: file failed verification: " + name);
    const Hash256 file_hash = crypto::sha256(*content);
    h.update(to_bytes(name));
    const std::uint8_t sep = 0;
    h.update(ByteView{&sep, 1});
    h.update(file_hash.view());
  }
  return h.finalize();
}

std::uint64_t EncryptedVolume::total_plaintext_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, blob] : blobs_) {
    const auto content = read_file(name);
    if (content.has_value()) total += content->size();
  }
  return total;
}

Bytes& EncryptedVolume::host_blob(const std::string& name) {
  const auto it = blobs_.find(name);
  if (it == blobs_.end()) throw Error("host: no such blob: " + name);
  return it->second;
}

void EncryptedVolume::host_replace_blob(const std::string& name, Bytes blob) {
  blobs_[name] = std::move(blob);
}

}  // namespace sinclave::fs
