// Encrypted, integrity-protected volume (the SCONE protected-FS stand-in).
//
// Files are sealed per entry with AEAD (AES-256-CTR + HMAC), the file name
// bound as associated data. The *host* stores only ciphertext blobs and can
// tamper with them arbitrarily — the host_* methods model exactly that
// adversarial access, and tests verify tampering is always detected.
//
// The paper's "completeness" argument: filesystem content can change an
// application's behaviour, so the verifier must bind it. manifest_root()
// provides the binding — a deterministic hash over all (name, content-hash)
// pairs that a policy can pin and the runtime re-derives after mounting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/aead.h"
#include "crypto/drbg.h"

namespace sinclave::fs {

class EncryptedVolume {
 public:
  /// `key256` protects every file; `rng` supplies per-write nonces.
  EncryptedVolume(ByteView key256, crypto::Drbg rng);

  /// Write (create or replace) a file. Plaintext never reaches host storage.
  void write_file(const std::string& name, ByteView content);

  /// Read and verify a file. nullopt when missing or when the host blob
  /// fails authentication (tampered / truncated / swapped).
  std::optional<Bytes> read_file(const std::string& name) const;

  bool exists(const std::string& name) const;
  void remove_file(const std::string& name);
  std::vector<std::string> list_files() const;

  /// Deterministic root hash over all (name, SHA-256(content)) pairs in
  /// lexicographic name order. Throws Error if any file fails verification.
  Hash256 manifest_root() const;

  /// Total plaintext bytes across all files (workload modeling).
  std::uint64_t total_plaintext_bytes() const;

  // --- Host (adversary) surface ---

  /// Mutable access to a file's ciphertext blob, as the untrusted host has.
  Bytes& host_blob(const std::string& name);
  /// Replace a blob wholesale (e.g. with a blob copied from another file).
  void host_replace_blob(const std::string& name, Bytes blob);
  /// Export/import the whole ciphertext store (volume cloning — used by
  /// the attack: the adversary may copy volumes freely).
  std::map<std::string, Bytes> host_export() const { return blobs_; }
  void host_import(std::map<std::string, Bytes> blobs) {
    blobs_ = std::move(blobs);
  }

  /// Re-open an existing host store under a (possibly different) key.
  static EncryptedVolume adopt(ByteView key256, crypto::Drbg rng,
                               std::map<std::string, Bytes> blobs);

 private:
  crypto::Aead aead_;
  mutable crypto::Drbg rng_;
  std::map<std::string, Bytes> blobs_;  // name -> nonce || sealed
};

}  // namespace sinclave::fs
