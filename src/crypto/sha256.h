// Interruptible SHA-256 (FIPS 180-4).
//
// This is the SinClave variant of SHA-256: the hash computation can be
// suspended at any 64-byte block boundary and its complete internal state
// (8 x 32-bit chaining values + 64-bit message length) exported, transferred
// to another party, re-imported, and resumed. SGX enclave measurements are
// built exclusively from 64-byte-aligned operations, so suspending *between
// measurement operations* is always possible. The exported mid-state of an
// enclave measurement — taken just before the instance page is added and the
// hash finalized — is the paper's "base enclave hash".
//
// The implementation deliberately favours a straightforward, portable,
// auditable round function over aggressive optimization; `Sha256Fast`
// (sha256_fast.h) plays the role of the optimized baseline (Ring/OpenSSL)
// in the Fig. 6 comparison.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace sinclave::crypto {

/// Serializable internal state of an in-progress SHA-256 computation.
/// Valid only at 64-byte block boundaries (byte_count % 64 == 0 is NOT
/// required for a live hasher, but export is only allowed when it holds —
/// exactly the condition SGX measurement streams always satisfy).
struct Sha256State {
  std::uint32_t h[8];
  std::uint64_t byte_count;

  /// 44-byte canonical encoding: 8 big-endian words + 64-bit length +
  /// 4-byte magic. This is the wire format of the base enclave hash.
  Bytes encode() const;
  static Sha256State decode(ByteView data);

  friend bool operator==(const Sha256State&, const Sha256State&) = default;
};

/// Streaming, interruptible SHA-256.
class Sha256 {
 public:
  Sha256();

  /// Absorb message bytes.
  void update(ByteView data);

  /// Finish the computation (pads, appends the length, runs the final
  /// round(s)). The hasher must not be used afterwards.
  Hash256 finalize();

  /// Number of message bytes absorbed so far.
  std::uint64_t byte_count() const { return state_.byte_count; }

  /// True when the computation sits exactly on a 64-byte block boundary and
  /// can therefore be exported.
  bool exportable() const { return buffered_ == 0; }

  /// Export the internal state. Throws Error unless exportable().
  Sha256State export_state() const;

  /// Build a hasher that resumes from a previously exported state.
  static Sha256 resume(const Sha256State& state);

 private:
  void process_block(const std::uint8_t* block);

  Sha256State state_;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience using the interruptible implementation.
Hash256 sha256(ByteView data);

}  // namespace sinclave::crypto
