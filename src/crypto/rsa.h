// RSA-3072 key generation, PKCS#1 v1.5 signatures (SHA-256).
//
// SGX SigStructs are signed with 3072-bit RSA; SinClave's verifier creates
// an *on-demand* SigStruct per singleton enclave, so signing latency is a
// first-class measured quantity (Fig. 7b/7c). Signing uses the CRT;
// verification uses the public exponent 65537.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"

namespace sinclave::crypto {

inline constexpr std::size_t kRsaBits = 3072;
inline constexpr std::size_t kRsaBytes = kRsaBits / 8;
inline constexpr std::uint64_t kRsaPublicExponent = 65537;

/// Public half: modulus + fixed exponent 65537.
struct RsaPublicKey {
  BigInt n;

  Bytes modulus_be() const { return n.to_bytes_be(kRsaBytes); }

  /// Verify a PKCS#1 v1.5 SHA-256 signature. Returns false on any mismatch
  /// (wrong length, bad padding, wrong digest).
  bool verify_pkcs1_sha256(ByteView message, ByteView signature) const;

  Bytes serialize() const;
  static RsaPublicKey deserialize(ByteView data);

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

/// Full key pair with CRT acceleration parameters.
class RsaKeyPair {
 public:
  /// Generate a fresh key pair; `bits` must be even and >= 512. All entropy
  /// comes from `rng`, so seeded generators give reproducible keys.
  static RsaKeyPair generate(Drbg& rng, std::size_t bits = kRsaBits);

  const RsaPublicKey& public_key() const { return pub_; }

  /// PKCS#1 v1.5 SHA-256 signature over `message`.
  Bytes sign_pkcs1_sha256(ByteView message) const;

  /// Raw private-key operation (used by tests to cross-check CRT math).
  BigInt private_op(const BigInt& input) const;

 private:
  RsaPublicKey pub_;
  BigInt p_, q_;
  BigInt d_;
  BigInt dp_, dq_, qinv_;
  std::size_t modulus_bytes_ = kRsaBytes;
};

/// Deterministic primality test helpers, exposed for unit testing.
namespace primes {
/// Miller-Rabin with `rounds` random bases from rng. Assumes n odd, n > 3.
bool miller_rabin(const BigInt& n, int rounds, Drbg& rng);
/// Full candidate check: small-prime trial division then Miller-Rabin.
bool is_probable_prime(const BigInt& n, Drbg& rng);
/// Generate a random prime with exactly `bits` bits (top two bits set so
/// that products of two such primes have exactly 2*bits bits).
BigInt generate_prime(std::size_t bits, Drbg& rng);
}  // namespace primes

}  // namespace sinclave::crypto
