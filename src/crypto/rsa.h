// RSA-3072 key generation, PKCS#1 v1.5 signatures (SHA-256).
//
// SGX SigStructs are signed with 3072-bit RSA; SinClave's verifier creates
// an *on-demand* SigStruct per singleton enclave, so signing latency is a
// first-class measured quantity (Fig. 7b/7c). Signing uses the CRT;
// verification uses the public exponent 65537.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"

namespace sinclave::crypto {

inline constexpr std::size_t kRsaBits = 3072;
inline constexpr std::size_t kRsaBytes = kRsaBits / 8;
inline constexpr std::uint64_t kRsaPublicExponent = 65537;

/// Public half: modulus + fixed exponent 65537.
///
/// Verification caches its Montgomery context (n' and R^2 mod n are
/// recomputed only when `n` changes), so repeated verifies against the
/// same key — quote verification, the common-SigStruct check — pay just
/// the 65537 ladder: 16 squarings and one multiply. The cache is shared
/// by copies and safe to hit concurrently.
struct RsaPublicKey {
  BigInt n;

  RsaPublicKey() = default;
  RsaPublicKey(const RsaPublicKey& other) : n(other.n) {
    adopt_context(other);
  }
  /// Moves steal the context outright (vector + atomic move, no
  /// allocation) so they stay genuinely noexcept.
  // *this is under construction and unshared, so writing owned_ without
  // this->ctx_mutex_ is fine — a fact TSA cannot express.
  RsaPublicKey(RsaPublicKey&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : n(std::move(other.n)) {
    MutexLock lock(other.ctx_mutex_);
    owned_ = std::move(other.owned_);
    ctx_.store(other.ctx_.load(std::memory_order_relaxed),
               std::memory_order_release);
    other.ctx_.store(nullptr, std::memory_order_release);
  }
  RsaPublicKey& operator=(const RsaPublicKey& other) {
    if (this != &other) {
      n = other.n;
      adopt_context(other);
    }
    return *this;
  }
  RsaPublicKey& operator=(RsaPublicKey&& other) noexcept {
    if (this != &other) {
      n = std::move(other.n);
      // Two phases instead of one scoped_lock over both context mutexes:
      // ctx_mutex_ locks share one rank, so holding both at once would be
      // (and deterministically trips) a lock-order violation. Steal under
      // the source lock, then install under ours.
      std::vector<std::shared_ptr<const VerifyContext>> stolen;
      const VerifyContext* stolen_ctx = nullptr;
      {
        MutexLock lock(other.ctx_mutex_);
        stolen = std::move(other.owned_);
        stolen_ctx = other.ctx_.load(std::memory_order_relaxed);
        other.ctx_.store(nullptr, std::memory_order_release);
      }
      {
        MutexLock lock(ctx_mutex_);
        owned_ = std::move(stolen);
        ctx_.store(stolen_ctx, std::memory_order_release);
      }
    }
    return *this;
  }

  Bytes modulus_be() const { return n.to_bytes_be(kRsaBytes); }

  /// Verify a PKCS#1 v1.5 SHA-256 signature. Returns false on any mismatch
  /// (wrong length, bad padding, wrong digest, malformed modulus).
  /// Crypto-heavy: must not run under this key's context lock.
  bool verify_pkcs1_sha256(ByteView message, ByteView signature) const
      REQUIRES_NOT(ctx_mutex_);

  Bytes serialize() const;
  static RsaPublicKey deserialize(ByteView data);

  friend bool operator==(const RsaPublicKey& a, const RsaPublicKey& b) {
    return a.n == b.n;
  }

 private:
  struct VerifyContext;  // { modulus snapshot, Montgomery context }
  /// Lazily built on first verify, revalidated against `n` (the field is
  /// public and assignable), shared across copies. Concurrent verifiers —
  /// CAS workers checking quotes against one platform key, racing
  /// attested handshakes verifying the server identity — hit the atomic
  /// raw pointer on the fast path with no lock; the slow path (first
  /// build / modulus rotation) serializes on ctx_mutex_ and retires the
  /// old context into owned_ rather than freeing it, so a reference
  /// handed to an in-flight verifier can never dangle.
  const VerifyContext& verify_context() const REQUIRES_NOT(ctx_mutex_);
  /// Share `other`'s current context (if it matches our modulus) so
  /// copies of a key pay the Montgomery setup once, not once per copy.
  void adopt_context(const RsaPublicKey& other) REQUIRES_NOT(ctx_mutex_);

  // Guards owned_ and context builds.
  mutable Mutex ctx_mutex_{LockRank::kCryptoRsaCtx, "crypto.rsa_ctx"};
  mutable std::vector<std::shared_ptr<const VerifyContext>> owned_
      GUARDED_BY(ctx_mutex_);
  mutable std::atomic<const VerifyContext*> ctx_{nullptr};
};

/// Full key pair with CRT acceleration parameters. Each prime's Montgomery
/// context is built once at generation time and shared across copies, so a
/// signature costs one windowed fractional-size exponentiation per prime
/// plus a Garner recombination — no per-call context setup and no long
/// division.
///
/// Keys of >= 3072 bits divisible by three use *multi-prime* RSA (RFC 8017
/// §3.2: n = p1*p2*p3): schoolbook CRT cost scales with bits^3/primes^2,
/// so three 1024-bit exponentiations undercut two 1536-bit ones by ~2.2x.
/// The public key (n, 65537) is indistinguishable from the two-prime form;
/// verification and the wire format are unchanged.
class RsaKeyPair {
 public:
  /// Generate a fresh key pair; `bits` must be even and >= 512. All entropy
  /// comes from `rng`, so seeded generators give reproducible keys.
  static RsaKeyPair generate(Drbg& rng, std::size_t bits = kRsaBits);

  const RsaPublicKey& public_key() const { return pub_; }

  /// PKCS#1 v1.5 SHA-256 signature over `message`. The scratch overload
  /// lets batch signers reuse one arena across many signatures; the plain
  /// overload draws on a thread-local arena.
  Bytes sign_pkcs1_sha256(ByteView message) const;
  Bytes sign_pkcs1_sha256(ByteView message,
                          Montgomery::Scratch& scratch) const;

  /// Raw private-key operation (used by tests to cross-check CRT math).
  BigInt private_op(const BigInt& input) const;
  BigInt private_op(const BigInt& input, Montgomery::Scratch& scratch) const;

  /// Private exponent d (tests cross-check the CRT path against the plain
  /// mod_exp(d, n) definition).
  const BigInt& private_exponent() const { return d_; }

 private:
  /// One CRT leg: prime, reduced exponent d mod (p_i - 1), the Garner
  /// coefficient (product of all earlier primes)^-1 mod p_i, and the
  /// cached Montgomery context (immutable; shared by copies).
  struct CrtPrime {
    BigInt prime;
    BigInt exponent;
    BigInt coefficient;  // unused for the first prime
    std::shared_ptr<const Montgomery> mont;
  };

  RsaPublicKey pub_;
  BigInt d_;
  std::vector<CrtPrime> primes_;
  std::size_t modulus_bytes_ = kRsaBytes;
};

/// Deterministic primality test helpers, exposed for unit testing.
namespace primes {
/// Miller-Rabin with `rounds` random bases from rng. Assumes n odd, n > 3.
bool miller_rabin(const BigInt& n, int rounds, Drbg& rng);
/// Full candidate check: small-prime trial division then Miller-Rabin.
bool is_probable_prime(const BigInt& n, Drbg& rng);
/// Generate a random prime with exactly `bits` bits (top two bits set so
/// that products of two such primes have exactly 2*bits bits).
BigInt generate_prime(std::size_t bits, Drbg& rng);
}  // namespace primes

}  // namespace sinclave::crypto
