// Arbitrary-precision unsigned integers and modular arithmetic.
//
// Backs RSA-3072 (SigStruct signing/verification, quote signatures) and
// finite-field Diffie-Hellman (secure channel). Only non-negative values
// are representable; all protocol math is modular. Limbs are 64-bit,
// little-endian, normalized (no high zero limbs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace sinclave::crypto {

class BigInt;

/// Result of long division (declared outside BigInt because a nested struct
/// could not hold the still-incomplete class type).
struct BigIntDivMod;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte import/export (the wire format of RSA/DH values).
  static BigInt from_bytes_be(ByteView bytes);
  /// Export big-endian, left-padded with zeros to at least `min_len` bytes.
  Bytes to_bytes_be(std::size_t min_len = 0) const;

  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  /// Value of bit i (0 = least significant).
  bool bit(std::size_t i) const;
  std::size_t limb_count() const { return limbs_.size(); }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.limbs_ == b.limbs_;
  }
  static int compare(const BigInt& a, const BigInt& b);
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return compare(a, b) >= 0;
  }

  BigInt operator+(const BigInt& rhs) const;
  /// Requires *this >= rhs (values are unsigned). Throws Error otherwise.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Long division; divisor must be non-zero.
  static BigIntDivMod div_mod(const BigInt& dividend, const BigInt& divisor);
  BigInt mod(const BigInt& m) const;
  /// Fast remainder by a single 64-bit divisor (trial division in keygen).
  std::uint64_t mod_u64(std::uint64_t d) const;

  /// (base ^ exp) mod m. Uses Montgomery multiplication when m is odd,
  /// plain square-and-multiply otherwise. m must be > 1.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Multiplicative inverse of a modulo m (m > 1); throws Error when
  /// gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform random value in [0, bound) drawn from caller-supplied bytes
  /// generator (see Drbg); bound must be > 0.
  template <typename RandomBytesFn>
  static BigInt random_below(const BigInt& bound, RandomBytesFn&& fill) {
    const std::size_t n_bytes = (bound.bit_length() + 7) / 8;
    const std::size_t top_bits = bound.bit_length() % 8;
    for (;;) {
      Bytes buf(n_bytes);
      fill(buf.data(), buf.size());
      if (top_bits != 0)
        buf[0] &= static_cast<std::uint8_t>((1u << top_bits) - 1);
      BigInt candidate = from_bytes_be(buf);
      if (candidate < bound) return candidate;
    }
  }

 private:
  void trim();
  friend class Montgomery;

  std::vector<std::uint64_t> limbs_;
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt BigInt::mod(const BigInt& m) const {
  return div_mod(*this, m).remainder;
}

/// Montgomery multiplication context for a fixed odd modulus. Exposed so
/// RSA can reuse one context across CRT exponentiations.
class Montgomery {
 public:
  explicit Montgomery(const BigInt& modulus);

  BigInt exp(const BigInt& base, const BigInt& exponent) const;

 private:
  std::vector<std::uint64_t> mul(const std::vector<std::uint64_t>& a,
                                 const std::vector<std::uint64_t>& b) const;
  std::vector<std::uint64_t> to_mont(const BigInt& v) const;
  BigInt from_mont(std::vector<std::uint64_t> v) const;

  BigInt n_;
  BigInt rr_;  // R^2 mod n
  std::uint64_t n0_inv_;
  std::size_t k_;  // limb count of n
};

}  // namespace sinclave::crypto
