// Arbitrary-precision unsigned integers and modular arithmetic.
//
// Backs RSA-3072 (SigStruct signing/verification, quote signatures) and
// finite-field Diffie-Hellman (secure channel). Only non-negative values
// are representable; all protocol math is modular. Limbs are 64-bit,
// little-endian, normalized (no high zero limbs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace sinclave::crypto {

class BigInt;

/// Result of long division (declared outside BigInt because a nested struct
/// could not hold the still-incomplete class type).
struct BigIntDivMod;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte import/export (the wire format of RSA/DH values).
  static BigInt from_bytes_be(ByteView bytes);
  /// Export big-endian, left-padded with zeros to at least `min_len` bytes.
  Bytes to_bytes_be(std::size_t min_len = 0) const;

  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  /// Value of bit i (0 = least significant).
  bool bit(std::size_t i) const;
  std::size_t limb_count() const { return limbs_.size(); }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.limbs_ == b.limbs_;
  }
  static int compare(const BigInt& a, const BigInt& b);
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return compare(a, b) >= 0;
  }

  BigInt operator+(const BigInt& rhs) const;
  /// Requires *this >= rhs (values are unsigned). Throws Error otherwise.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Long division; divisor must be non-zero.
  static BigIntDivMod div_mod(const BigInt& dividend, const BigInt& divisor);
  BigInt mod(const BigInt& m) const;
  /// Fast remainder by a single 64-bit divisor (trial division in keygen).
  std::uint64_t mod_u64(std::uint64_t d) const;

  /// (base ^ exp) mod m. Uses Montgomery multiplication when m is odd,
  /// plain square-and-multiply otherwise. m must be > 1.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Multiplicative inverse of a modulo m (m > 1); throws Error when
  /// gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform random value in [0, bound) drawn from caller-supplied bytes
  /// generator (see Drbg); bound must be > 0.
  template <typename RandomBytesFn>
  static BigInt random_below(const BigInt& bound, RandomBytesFn&& fill) {
    const std::size_t n_bytes = (bound.bit_length() + 7) / 8;
    const std::size_t top_bits = bound.bit_length() % 8;
    for (;;) {
      Bytes buf(n_bytes);
      fill(buf.data(), buf.size());
      if (top_bits != 0)
        buf[0] &= static_cast<std::uint8_t>((1u << top_bits) - 1);
      BigInt candidate = from_bytes_be(buf);
      if (candidate < bound) return candidate;
    }
  }

 private:
  void trim();
  friend class Montgomery;

  std::vector<std::uint64_t> limbs_;
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt BigInt::mod(const BigInt& m) const {
  return div_mod(*this, m).remainder;
}

/// Montgomery multiplication context for a fixed odd modulus. Exposed so
/// RSA can reuse one context across CRT exponentiations (and cache it per
/// key — the constructor computes n' and R^2 mod n, which costs far more
/// than a single multiplication).
///
/// Exponentiation is fixed-window (4-5 bit for RSA/DH-sized exponents)
/// over a precomputed odd-powers table, and every intermediate lives in a
/// caller-supplied Scratch arena: the steady-state exp() path performs
/// zero heap allocations (tests/test_alloc.cpp counts them). Wide inputs
/// (up to 2k limbs, e.g. the full RSA message fed to a CRT half) are
/// folded in with a Montgomery reduction instead of long division, so no
/// bit-serial div_mod runs on the sign path at all.
///
/// Thread-safety: a context is immutable after construction; concurrent
/// exp() calls are safe as long as each thread uses its own Scratch (the
/// convenience overloads use a thread-local one).
class Montgomery {
 public:
  explicit Montgomery(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  /// Reusable workspace for the allocation-free kernels. Grows to the
  /// largest modulus it has served and then never reallocates; one
  /// instance per thread (or per batch job). Not thread-safe.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class Montgomery;
    /// The arena is carved into acc/base/square/tmp/wide/table slices per
    /// call; resize within capacity is allocation-free after warm-up.
    std::uint64_t* require(std::size_t limbs) {
      if (arena_.size() < limbs) arena_.resize(limbs);
      return arena_.data();
    }
    std::vector<std::uint64_t> arena_;
  };

  /// (base ^ exponent) mod n. The convenience overloads draw on a
  /// thread-local Scratch; the out-parameter form reuses `out`'s limb
  /// storage and is fully allocation-free at steady state. `out` must not
  /// alias `base` or `exponent`.
  BigInt exp(const BigInt& base, const BigInt& exponent) const;
  BigInt exp(const BigInt& base, const BigInt& exponent,
             Scratch& scratch) const;
  void exp(const BigInt& base, const BigInt& exponent, Scratch& scratch,
           BigInt* out) const;

  /// Fixed small-exponent ladder (the RSA verify side: e = 65537 is 16
  /// squarings + one multiplication). `out` must not alias `base`.
  BigInt exp_u64(const BigInt& base, std::uint64_t exponent) const;
  void exp_u64(const BigInt& base, std::uint64_t exponent, Scratch& scratch,
               BigInt* out) const;

  /// (a * b) mod n for standard-form inputs of any width — the CRT
  /// recombination multiply, again without long division. `out` must not
  /// alias `a` or `b`.
  BigInt mul_mod(const BigInt& a, const BigInt& b) const;
  void mul_mod(const BigInt& a, const BigInt& b, Scratch& scratch,
               BigInt* out) const;

  /// v mod n by Montgomery folding (k-limb chunks at one multiplication
  /// each) — the allocation-light replacement for BigInt::mod against this
  /// context's modulus. `out` must not alias `v`.
  BigInt reduce(const BigInt& v) const;
  void reduce(const BigInt& v, Scratch& scratch, BigInt* out) const;

 private:
  /// CIOS Montgomery multiplication over raw k-limb operands. `t` is a
  /// (k+2)-limb workspace; `out` may alias `a` or `b`.
  void mont_mul(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::uint64_t* t) const;
  /// Montgomery squaring: the off-diagonal triangle is computed once and
  /// doubled, so a squaring costs ~3/4 of a multiplication — and the
  /// square-heavy exponentiation ladder is mostly squarings. `wide` is a
  /// (2k+1)-limb workspace; `out` may alias `a`.
  void mont_sqr(const std::uint64_t* a, std::uint64_t* out,
                std::uint64_t* wide) const;
  /// Montgomery reduction of a wide value T < n*R (2k+1 limbs, clobbered):
  /// out = T * R^-1 mod n.
  void redc_wide(std::uint64_t* wide, std::uint64_t* out) const;
  /// Load `v` into `out` (k limbs), folding wider values down to v mod n
  /// chunk by chunk (each fold is one Montgomery multiplication — no
  /// division). `t` is a (k+2)-limb workspace.
  void load_standard(const BigInt& v, std::uint64_t* out,
                     std::uint64_t* t) const;
  void store(const std::uint64_t* v, BigInt* out) const;

  BigInt n_;
  BigInt rr_;  // R^2 mod n
  std::vector<std::uint64_t> rr_padded_;  // R^2 zero-padded to k limbs
  std::uint64_t n0_inv_;
  std::size_t k_;  // limb count of n
};

}  // namespace sinclave::crypto
