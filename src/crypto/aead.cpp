#include "crypto/aead.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/aes.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"

namespace sinclave::crypto {

Aead::Aead(ByteView key256) {
  if (key256.size() != 32) throw Error("aead: key must be 32 bytes");
  enc_key_ = hkdf(ByteView{}, key256, to_bytes("sinclave-aead-enc"), 32);
  mac_key_ = hkdf(ByteView{}, key256, to_bytes("sinclave-aead-mac"), 32);
}

namespace {
Hash256 compute_tag(ByteView mac_key, ByteView nonce, ByteView ad,
                    ByteView ciphertext) {
  HmacSha256 mac(mac_key);
  mac.update(nonce);
  ByteWriter lens;
  lens.u64(ad.size());
  lens.u64(ciphertext.size());
  mac.update(lens.data());
  mac.update(ad);
  mac.update(ciphertext);
  return mac.finalize();
}
}  // namespace

Bytes Aead::seal(ByteView nonce, ByteView plaintext,
                 ByteView associated_data) const {
  if (nonce.size() != kAeadNonceSize) throw Error("aead: bad nonce size");
  Bytes out(plaintext.size() + kAeadTagSize);
  const Aes cipher(enc_key_);
  aes_ctr_xor(cipher, nonce, 0, plaintext, out.data());
  const Hash256 tag = compute_tag(
      mac_key_, nonce, associated_data,
      ByteView{out.data(), plaintext.size()});
  std::copy(tag.begin(), tag.begin() + kAeadTagSize,
            out.begin() + static_cast<long>(plaintext.size()));
  return out;
}

std::optional<Bytes> Aead::open(ByteView nonce, ByteView sealed,
                                ByteView associated_data) const {
  if (nonce.size() != kAeadNonceSize) return std::nullopt;
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const std::size_t ct_len = sealed.size() - kAeadTagSize;
  const ByteView ciphertext = sealed.subspan(0, ct_len);
  const ByteView tag = sealed.subspan(ct_len);

  const Hash256 expect = compute_tag(mac_key_, nonce, associated_data, ciphertext);
  if (!ct_equal(tag, ByteView{expect.data.data(), kAeadTagSize}))
    return std::nullopt;

  Bytes plaintext(ct_len);
  const Aes cipher(enc_key_);
  aes_ctr_xor(cipher, nonce, 0, ciphertext, plaintext.data());
  return plaintext;
}

}  // namespace sinclave::crypto
