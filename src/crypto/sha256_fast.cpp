#include "crypto/sha256_fast.h"

#include <cstring>

#if defined(__x86_64__)
#include <cpuid.h>
#include <immintrin.h>
#endif

#include "common/error.h"

namespace sinclave::crypto {

namespace {

constexpr std::uint32_t K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

// One unrolled round. `w` is the rolling 16-entry schedule window.
#define SHA256_ROUND(a, b, c, d, e, f, g, h, i, wval)                        \
  do {                                                                       \
    const std::uint32_t t1 = (h) + (rotr((e), 6) ^ rotr((e), 11) ^           \
                                    rotr((e), 25)) +                         \
                             (((e) & (f)) ^ (~(e) & (g))) + K[(i)] + (wval); \
    const std::uint32_t t2 = (rotr((a), 2) ^ rotr((a), 13) ^ rotr((a), 22)) + \
                             (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));      \
    (d) += t1;                                                               \
    (h) = t1 + t2;                                                           \
  } while (0)

#define SHA256_SCHEDULE(w, i)                                          \
  ((w)[(i) & 15] += (rotr((w)[((i) - 2) & 15], 17) ^                   \
                     rotr((w)[((i) - 2) & 15], 19) ^                   \
                     ((w)[((i) - 2) & 15] >> 10)) +                    \
                    (w)[((i) - 7) & 15] +                              \
                    (rotr((w)[((i) - 15) & 15], 7) ^                   \
                     rotr((w)[((i) - 15) & 15], 18) ^                  \
                     ((w)[((i) - 15) & 15] >> 3)))

#if defined(__x86_64__)

bool cpu_has_sha_ni() {
  static const bool has = [] {
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
    return (b & (1u << 29)) != 0;  // EBX bit 29: SHA extensions
  }();
  return has;
}

// SHA-NI block processing (the same hardware path Ring/OpenSSL use —
// the reason the paper's baseline reaches ~405 MB/s while the portable
// interruptible implementation stays near ~180 MB/s).
__attribute__((target("sha,sse4.1")))
void process_blocks_shani(std::uint32_t state[8], const std::uint8_t* data,
                          std::size_t n_blocks) {
  const __m128i kShuffleMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack h0..h7 into the ABEF/CDGH register layout SHA-NI expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  alignas(16) static const std::uint32_t kK[64] = {
      0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
      0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
      0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
      0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
      0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
      0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
      0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
      0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
      0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
      0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
      0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
  };
// Lambdas do not inherit the enclosing function's target attribute, so the
// helpers must be macros.
#define SHANI_KPAIR(group) \
  _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4 * (group)]))
#define SHANI_ROUNDS(sched_plus_k)                                   \
  do {                                                               \
    state1 = _mm_sha256rnds2_epu32(state1, state0, (sched_plus_k));  \
    state0 = _mm_sha256rnds2_epu32(                                  \
        state0, state1, _mm_shuffle_epi32((sched_plus_k), 0x0E));    \
  } while (0)

  for (std::size_t blk = 0; blk < n_blocks; ++blk, data += 64) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msgs[4];
    for (int i = 0; i < 4; ++i) {
      msgs[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * i)),
          kShuffleMask);
    }

    __m128i msg;

    // Groups 0-2: raw message words; seed the schedule.
    msg = _mm_add_epi32(msgs[0], SHANI_KPAIR(0));
    SHANI_ROUNDS(msg);
    msg = _mm_add_epi32(msgs[1], SHANI_KPAIR(1));
    SHANI_ROUNDS(msg);
    msgs[0] = _mm_sha256msg1_epu32(msgs[0], msgs[1]);
    msg = _mm_add_epi32(msgs[2], SHANI_KPAIR(2));
    SHANI_ROUNDS(msg);
    msgs[1] = _mm_sha256msg1_epu32(msgs[1], msgs[2]);

    // Groups 3-12: full schedule pipeline.
    for (int g = 3; g <= 12; ++g) {
      __m128i& ma = msgs[g & 3];
      __m128i& mb = msgs[(g + 1) & 3];
      __m128i& md = msgs[(g + 3) & 3];
      msg = _mm_add_epi32(ma, SHANI_KPAIR(g));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      const __m128i t = _mm_alignr_epi8(ma, md, 4);
      mb = _mm_add_epi32(mb, t);
      mb = _mm_sha256msg2_epu32(mb, ma);
      state0 = _mm_sha256rnds2_epu32(state0, state1,
                                     _mm_shuffle_epi32(msg, 0x0E));
      md = _mm_sha256msg1_epu32(md, ma);
    }

    // Groups 13-14: finish remaining schedule words, no further msg1.
    for (int g = 13; g <= 14; ++g) {
      __m128i& ma = msgs[g & 3];
      __m128i& mb = msgs[(g + 1) & 3];
      __m128i& md = msgs[(g + 3) & 3];
      msg = _mm_add_epi32(ma, SHANI_KPAIR(g));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      const __m128i t = _mm_alignr_epi8(ma, md, 4);
      mb = _mm_add_epi32(mb, t);
      mb = _mm_sha256msg2_epu32(mb, ma);
      state0 = _mm_sha256rnds2_epu32(state0, state1,
                                     _mm_shuffle_epi32(msg, 0x0E));
    }

    // Group 15.
    msg = _mm_add_epi32(msgs[15 & 3], SHANI_KPAIR(15));
    SHANI_ROUNDS(msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Repack ABEF/CDGH back to h0..h7.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);      // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);         // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // __x86_64__

}  // namespace

Sha256Fast::Sha256Fast() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
}

void Sha256Fast::process_blocks(const std::uint8_t* data, std::size_t n_blocks) {
#if defined(__x86_64__)
  if (cpu_has_sha_ni()) {
    process_blocks_shani(h_, data, n_blocks);
    return;
  }
#endif
  std::uint32_t a, b, c, d, e, f, g, h;
  for (std::size_t blk = 0; blk < n_blocks; ++blk, data += 64) {
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);

    a = h_[0];
    b = h_[1];
    c = h_[2];
    d = h_[3];
    e = h_[4];
    f = h_[5];
    g = h_[6];
    h = h_[7];

    // Rounds 0..15 use the loaded words directly.
    SHA256_ROUND(a, b, c, d, e, f, g, h, 0, w[0]);
    SHA256_ROUND(h, a, b, c, d, e, f, g, 1, w[1]);
    SHA256_ROUND(g, h, a, b, c, d, e, f, 2, w[2]);
    SHA256_ROUND(f, g, h, a, b, c, d, e, 3, w[3]);
    SHA256_ROUND(e, f, g, h, a, b, c, d, 4, w[4]);
    SHA256_ROUND(d, e, f, g, h, a, b, c, 5, w[5]);
    SHA256_ROUND(c, d, e, f, g, h, a, b, 6, w[6]);
    SHA256_ROUND(b, c, d, e, f, g, h, a, 7, w[7]);
    SHA256_ROUND(a, b, c, d, e, f, g, h, 8, w[8]);
    SHA256_ROUND(h, a, b, c, d, e, f, g, 9, w[9]);
    SHA256_ROUND(g, h, a, b, c, d, e, f, 10, w[10]);
    SHA256_ROUND(f, g, h, a, b, c, d, e, 11, w[11]);
    SHA256_ROUND(e, f, g, h, a, b, c, d, 12, w[12]);
    SHA256_ROUND(d, e, f, g, h, a, b, c, 13, w[13]);
    SHA256_ROUND(c, d, e, f, g, h, a, b, 14, w[14]);
    SHA256_ROUND(b, c, d, e, f, g, h, a, 15, w[15]);

    // Rounds 16..63 extend the schedule in place, 16 rounds per batch.
    for (int i = 16; i < 64; i += 16) {
      SHA256_ROUND(a, b, c, d, e, f, g, h, i + 0, SHA256_SCHEDULE(w, i + 0));
      SHA256_ROUND(h, a, b, c, d, e, f, g, i + 1, SHA256_SCHEDULE(w, i + 1));
      SHA256_ROUND(g, h, a, b, c, d, e, f, i + 2, SHA256_SCHEDULE(w, i + 2));
      SHA256_ROUND(f, g, h, a, b, c, d, e, i + 3, SHA256_SCHEDULE(w, i + 3));
      SHA256_ROUND(e, f, g, h, a, b, c, d, i + 4, SHA256_SCHEDULE(w, i + 4));
      SHA256_ROUND(d, e, f, g, h, a, b, c, i + 5, SHA256_SCHEDULE(w, i + 5));
      SHA256_ROUND(c, d, e, f, g, h, a, b, i + 6, SHA256_SCHEDULE(w, i + 6));
      SHA256_ROUND(b, c, d, e, f, g, h, a, i + 7, SHA256_SCHEDULE(w, i + 7));
      SHA256_ROUND(a, b, c, d, e, f, g, h, i + 8, SHA256_SCHEDULE(w, i + 8));
      SHA256_ROUND(h, a, b, c, d, e, f, g, i + 9, SHA256_SCHEDULE(w, i + 9));
      SHA256_ROUND(g, h, a, b, c, d, e, f, i + 10, SHA256_SCHEDULE(w, i + 10));
      SHA256_ROUND(f, g, h, a, b, c, d, e, i + 11, SHA256_SCHEDULE(w, i + 11));
      SHA256_ROUND(e, f, g, h, a, b, c, d, i + 12, SHA256_SCHEDULE(w, i + 12));
      SHA256_ROUND(d, e, f, g, h, a, b, c, i + 13, SHA256_SCHEDULE(w, i + 13));
      SHA256_ROUND(c, d, e, f, g, h, a, b, i + 14, SHA256_SCHEDULE(w, i + 14));
      SHA256_ROUND(b, c, d, e, f, g, h, a, i + 15, SHA256_SCHEDULE(w, i + 15));
    }

    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
    h_[5] += f;
    h_[6] += g;
    h_[7] += h;
  }
}

void Sha256Fast::update(ByteView data) {
  std::size_t n = data.size();
  byte_count_ += n;
  if (n == 0) return;  // empty views may carry a null data() — no memcpy
  const std::uint8_t* p = data.data();

  if (buffered_ > 0) {
    const std::size_t take = std::min(n, 64 - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == 64) {
      process_blocks(buffer_, 1);
      buffered_ = 0;
    }
  }
  if (n >= 64) {
    const std::size_t blocks = n / 64;
    process_blocks(p, blocks);
    p += blocks * 64;
    n -= blocks * 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Hash256 Sha256Fast::finalize() {
  const std::uint64_t bit_count = byte_count_ * 8;
  std::uint8_t pad[72];
  std::size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  while ((byte_count_ + pad_len) % 64 != 56) pad[pad_len++] = 0;
  for (int i = 7; i >= 0; --i)
    pad[pad_len++] = static_cast<std::uint8_t>(bit_count >> (8 * i));
  update(ByteView{pad, pad_len});

  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    out.data[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    out.data[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    out.data[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    out.data[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Hash256 sha256_fast(ByteView data) {
  Sha256Fast h;
  h.update(data);
  return h.finalize();
}

}  // namespace sinclave::crypto
