// HKDF-SHA256 (RFC 5869): extract-then-expand key derivation.
//
// Used to derive secure-channel traffic keys from the DH shared secret and
// to derive the SGX simulator's key hierarchy from the fuse keys.
#pragma once

#include "common/bytes.h"

namespace sinclave::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Hash256 hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derive `length` output bytes (length <= 255*32).
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Convenience: extract + expand in one call.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace sinclave::crypto
