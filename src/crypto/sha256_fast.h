// Optimized one-shot/streaming SHA-256.
//
// Stands in for the highly optimized baseline implementations the paper
// compares against (Ring / OpenSSL with assembly and SHA extensions). The
// round function is fully unrolled and the message schedule is computed on
// a rolling 16-word window; the compiler keeps the working variables in
// registers. This implementation is NOT interruptible: its internal state
// is private and cannot be exported mid-stream, which is exactly why the
// paper had to build the interruptible variant in `Sha256`.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace sinclave::crypto {

class Sha256Fast {
 public:
  Sha256Fast();

  void update(ByteView data);
  Hash256 finalize();

 private:
  void process_blocks(const std::uint8_t* data, std::size_t n_blocks);

  std::uint32_t h_[8];
  std::uint64_t byte_count_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

/// One-shot convenience using the fast implementation.
Hash256 sha256_fast(ByteView data);

}  // namespace sinclave::crypto
