// Authenticated encryption: AES-256-CTR + HMAC-SHA256 (encrypt-then-MAC).
//
// Stand-in for AES-GCM in the encrypted filesystem and the secure channel.
// The MAC covers nonce || associated-data-length || associated-data ||
// ciphertext, so truncation and AD swaps are detected.
#pragma once

#include <optional>

#include "common/bytes.h"

namespace sinclave::crypto {

/// Nonce size used throughout (96-bit, CTR friendly).
inline constexpr std::size_t kAeadNonceSize = 12;
/// MAC tag size appended to every ciphertext (128-bit).
inline constexpr std::size_t kAeadTagSize = 16;

/// AEAD with a 256-bit key, split internally into independent encryption and
/// MAC subkeys via HKDF.
class Aead {
 public:
  explicit Aead(ByteView key256);

  /// Returns ciphertext || tag. Nonces must never repeat under one key;
  /// callers use counters or DRBG nonces.
  Bytes seal(ByteView nonce, ByteView plaintext, ByteView associated_data) const;

  /// Verifies and decrypts; nullopt on any authentication failure.
  std::optional<Bytes> open(ByteView nonce, ByteView sealed,
                            ByteView associated_data) const;

 private:
  Bytes enc_key_;
  Bytes mac_key_;
};

}  // namespace sinclave::crypto
