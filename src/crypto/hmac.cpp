#include "crypto/hmac.h"

#include <cstring>

namespace sinclave::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::uint8_t key_block[64] = {};
  if (key.size() > 64) {
    const Hash256 kh = sha256(key);
    std::memcpy(key_block, kh.data.data(), 32);
  } else if (!key.empty()) {  // empty views may carry a null data()
    std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad_key_[i] = key_block[i] ^ 0x5c;
  }
  inner_.update(ByteView{ipad, 64});
  secure_zero(key_block, sizeof(key_block));
  secure_zero(ipad, sizeof(ipad));
}

void HmacSha256::update(ByteView data) {
  inner_.update(data);
}

Hash256 HmacSha256::finalize() {
  const Hash256 inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(ByteView{opad_key_, 64});
  outer.update(inner_digest.view());
  secure_zero(opad_key_, sizeof(opad_key_));
  return outer.finalize();
}

Hash256 hmac_sha256(ByteView key, ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finalize();
}

Mac128 hmac_sha256_128(ByteView key, ByteView data) {
  const Hash256 full = hmac_sha256(key, data);
  return Mac128::from_view(full.view());
}

}  // namespace sinclave::crypto
