#include "crypto/bignum.h"

#include <algorithm>

#include "common/error.h"

namespace sinclave::crypto {

using u128 = unsigned __int128;

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::from_bytes_be(ByteView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // Byte i (from the most significant end) lands in limb/shift:
    const std::size_t bit_pos = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_pos / 64] |= std::uint64_t{bytes[i]} << (bit_pos % 64);
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  const std::size_t n_bytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(n_bytes, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < n_bytes; ++i) {
    const std::size_t bit_pos = i * 8;
    out[len - 1 - i] =
        static_cast<std::uint8_t>(limbs_[bit_pos / 64] >> (bit_pos % 64));
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(sinclave::from_hex(padded));
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = sinclave::to_hex(to_bytes_be());
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first == std::string::npos ? s.size() - 1 : first);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 64;
  std::uint64_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const std::uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sum = u128{a} + b + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) throw Error("bignum: subtraction underflow");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sub = u128{limbs_[i]} - b - borrow;
    out.limbs_[i] = static_cast<std::uint64_t>(sub);
    borrow = (sub >> 64) ? 1 : 0;  // wrapped => borrow
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const u128 cur =
          u128{limbs_[i]} * rhs.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + rhs.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return {};
  const std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.trim();
  return out;
}

BigIntDivMod BigInt::div_mod(const BigInt& dividend, const BigInt& divisor) {
  if (divisor.is_zero()) throw Error("bignum: division by zero");
  if (dividend < divisor) return {BigInt{}, dividend};

  // Limb-oriented schoolbook division with a 64-bit quotient estimate per
  // step (Knuth D without full normalization subtleties: estimates are
  // corrected by the at-most-two adjustment loop).
  const std::size_t shift = dividend.bit_length() - divisor.bit_length();
  BigInt rem = dividend;
  BigInt quot;
  quot.limbs_.assign(shift / 64 + 1, 0);
  for (std::size_t s = shift + 1; s-- > 0;) {
    const BigInt shifted = divisor << s;
    if (shifted <= rem) {
      rem = rem - shifted;
      quot.limbs_[s / 64] |= std::uint64_t{1} << (s % 64);
    }
  }
  quot.trim();
  return {quot, rem};
}

std::uint64_t BigInt::mod_u64(std::uint64_t d) const {
  if (d == 0) throw Error("bignum: mod by zero");
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % d;
  }
  return static_cast<std::uint64_t>(rem);
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || m == BigInt{1}) throw Error("bignum: modulus must be > 1");
  if (m.is_odd()) {
    const Montgomery ctx(m);
    return ctx.exp(base, exp);
  }
  // Even modulus fallback (unused by RSA/DH but kept for completeness).
  BigInt result{1};
  BigInt b = base.mod(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result).mod(m);
    if (exp.bit(i)) result = (result * b).mod(m);
  }
  return result;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with an explicitly signed Bezout coefficient.
  struct Signed {
    BigInt v;
    bool neg = false;
  };
  auto sub = [](const Signed& x, const Signed& y) -> Signed {
    // x - y
    if (x.neg == y.neg) {
      if (x.v >= y.v) return {x.v - y.v, x.neg};
      return {y.v - x.v, !x.neg};
    }
    return {x.v + y.v, x.neg};
  };

  BigInt r0 = m;
  BigInt r1 = a.mod(m);
  Signed t0{BigInt{}, false};
  Signed t1{BigInt{1}, false};
  while (!r1.is_zero()) {
    const BigIntDivMod dm = div_mod(r0, r1);
    r0 = r1;
    r1 = dm.remainder;
    const Signed t2 = sub(t0, Signed{dm.quotient * t1.v, t1.neg});
    t0 = t1;
    t1 = t2;
  }
  if (!(r0 == BigInt{1})) throw Error("bignum: not invertible");
  if (t0.neg) return m - t0.v.mod(m);
  return t0.v.mod(m);
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a.mod(b);
    a = b;
    b = r;
  }
  return a;
}

// ---------------------------------------------------------------------------
// Montgomery context
// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (!modulus.is_odd()) throw Error("montgomery: modulus must be odd");
  k_ = n_.limbs_.size();

  // n0_inv = -n^{-1} mod 2^64 via Newton iteration.
  const std::uint64_t n0 = n_.limbs_[0];
  std::uint64_t x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - n0 * x;
  n0_inv_ = ~x + 1;  // negate mod 2^64

  // R^2 mod n with R = 2^(64k): square-by-shifting.
  BigInt r{1};
  r = (r << (64 * k_)).mod(n_);
  rr_ = (r * r).mod(n_);
}

std::vector<std::uint64_t> Montgomery::mul(
    const std::vector<std::uint64_t>& a,
    const std::vector<std::uint64_t>& b) const {
  // CIOS Montgomery multiplication. a and b are k_-limb (zero padded).
  std::vector<std::uint64_t> t(k_ + 2, 0);
  const auto& n = n_.limbs_;
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = u128{a[i]} * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 cur = u128{t[k_]} + carry;
    t[k_] = static_cast<std::uint64_t>(cur);
    t[k_ + 1] += static_cast<std::uint64_t>(cur >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const std::uint64_t m = t[0] * n0_inv_;
    carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 c2 = u128{m} * n[j] + t[j] + carry;
      if (j == 0) {
        // t[0] becomes zero by construction; only the carry matters.
        carry = static_cast<std::uint64_t>(c2 >> 64);
      } else {
        t[j - 1] = static_cast<std::uint64_t>(c2);
        carry = static_cast<std::uint64_t>(c2 >> 64);
      }
    }
    cur = u128{t[k_]} + carry;
    t[k_ - 1] = static_cast<std::uint64_t>(cur);
    t[k_] = t[k_ + 1] + static_cast<std::uint64_t>(cur >> 64);
    t[k_ + 1] = 0;
  }

  // Conditional subtraction: result may be >= n.
  std::vector<std::uint64_t> result(t.begin(), t.begin() + static_cast<long>(k_));
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (result[i] != n[i]) {
        ge = result[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 sub = u128{result[i]} - n[i] - borrow;
      result[i] = static_cast<std::uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
  }
  return result;
}

std::vector<std::uint64_t> Montgomery::to_mont(const BigInt& v) const {
  BigInt reduced = v.mod(n_);
  std::vector<std::uint64_t> padded = reduced.limbs_;
  padded.resize(k_, 0);
  std::vector<std::uint64_t> rr = rr_.limbs_;
  rr.resize(k_, 0);
  return mul(padded, rr);
}

BigInt Montgomery::from_mont(std::vector<std::uint64_t> v) const {
  std::vector<std::uint64_t> one(k_, 0);
  one[0] = 1;
  BigInt out;
  out.limbs_ = mul(v, one);
  out.trim();
  return out;
}

BigInt Montgomery::exp(const BigInt& base, const BigInt& exponent) const {
  std::vector<std::uint64_t> acc = to_mont(BigInt{1});
  const std::vector<std::uint64_t> b = to_mont(base);
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = mul(acc, acc);
    if (exponent.bit(i)) acc = mul(acc, b);
  }
  return from_mont(std::move(acc));
}

}  // namespace sinclave::crypto
