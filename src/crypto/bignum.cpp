#include "crypto/bignum.h"

#include <algorithm>

#include "common/error.h"

namespace sinclave::crypto {

using u128 = unsigned __int128;

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::from_bytes_be(ByteView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // Byte i (from the most significant end) lands in limb/shift:
    const std::size_t bit_pos = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_pos / 64] |= std::uint64_t{bytes[i]} << (bit_pos % 64);
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  const std::size_t n_bytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(n_bytes, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < n_bytes; ++i) {
    const std::size_t bit_pos = i * 8;
    out[len - 1 - i] =
        static_cast<std::uint8_t>(limbs_[bit_pos / 64] >> (bit_pos % 64));
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(sinclave::from_hex(padded));
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = sinclave::to_hex(to_bytes_be());
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first == std::string::npos ? s.size() - 1 : first);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 64;
  std::uint64_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const std::uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sum = u128{a} + b + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) throw Error("bignum: subtraction underflow");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sub = u128{limbs_[i]} - b - borrow;
    out.limbs_[i] = static_cast<std::uint64_t>(sub);
    borrow = (sub >> 64) ? 1 : 0;  // wrapped => borrow
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const u128 cur =
          u128{limbs_[i]} * rhs.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + rhs.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return {};
  const std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.trim();
  return out;
}

BigIntDivMod BigInt::div_mod(const BigInt& dividend, const BigInt& divisor) {
  if (divisor.is_zero()) throw Error("bignum: division by zero");
  if (dividend < divisor) return {BigInt{}, dividend};

  // Limb-oriented schoolbook division with a 64-bit quotient estimate per
  // step (Knuth D without full normalization subtleties: estimates are
  // corrected by the at-most-two adjustment loop).
  const std::size_t shift = dividend.bit_length() - divisor.bit_length();
  BigInt rem = dividend;
  BigInt quot;
  quot.limbs_.assign(shift / 64 + 1, 0);
  for (std::size_t s = shift + 1; s-- > 0;) {
    const BigInt shifted = divisor << s;
    if (shifted <= rem) {
      rem = rem - shifted;
      quot.limbs_[s / 64] |= std::uint64_t{1} << (s % 64);
    }
  }
  quot.trim();
  return {quot, rem};
}

std::uint64_t BigInt::mod_u64(std::uint64_t d) const {
  if (d == 0) throw Error("bignum: mod by zero");
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % d;
  }
  return static_cast<std::uint64_t>(rem);
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || m == BigInt{1}) throw Error("bignum: modulus must be > 1");
  if (m.is_odd()) {
    const Montgomery ctx(m);
    return ctx.exp(base, exp);
  }
  // Even modulus fallback (unused by RSA/DH but kept for completeness).
  BigInt result{1};
  BigInt b = base.mod(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result).mod(m);
    if (exp.bit(i)) result = (result * b).mod(m);
  }
  return result;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with an explicitly signed Bezout coefficient.
  struct Signed {
    BigInt v;
    bool neg = false;
  };
  auto sub = [](const Signed& x, const Signed& y) -> Signed {
    // x - y
    if (x.neg == y.neg) {
      if (x.v >= y.v) return {x.v - y.v, x.neg};
      return {y.v - x.v, !x.neg};
    }
    return {x.v + y.v, x.neg};
  };

  BigInt r0 = m;
  BigInt r1 = a.mod(m);
  Signed t0{BigInt{}, false};
  Signed t1{BigInt{1}, false};
  while (!r1.is_zero()) {
    const BigIntDivMod dm = div_mod(r0, r1);
    r0 = r1;
    r1 = dm.remainder;
    const Signed t2 = sub(t0, Signed{dm.quotient * t1.v, t1.neg});
    t0 = t1;
    t1 = t2;
  }
  if (!(r0 == BigInt{1})) throw Error("bignum: not invertible");
  if (t0.neg) return m - t0.v.mod(m);
  return t0.v.mod(m);
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a.mod(b);
    a = b;
    b = r;
  }
  return a;
}

// ---------------------------------------------------------------------------
// Montgomery context
// ---------------------------------------------------------------------------

namespace {

/// Compare two k-limb values; -1/0/1 like memcmp.
int cmp_limbs(const std::uint64_t* a, const std::uint64_t* b, std::size_t k) {
  for (std::size_t i = k; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// In-place k-limb subtraction a -= b (caller guarantees no net underflow
/// beyond a tracked top bit).
void sub_limbs(std::uint64_t* a, const std::uint64_t* b, std::size_t k) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 sub = u128{a[i]} - b[i] - borrow;
    a[i] = static_cast<std::uint64_t>(sub);
    borrow = (sub >> 64) ? 1 : 0;
  }
}

/// Window width for a fixed-window exponentiation: balances the
/// 2^(w-1)-entry table precomputation against the bits/w multiplies.
/// RSA-3072 CRT halves (1536-bit exponents) land on w = 5.
int window_bits(std::size_t exp_bits) {
  if (exp_bits > 671) return 5;
  if (exp_bits > 239) return 4;
  if (exp_bits > 79) return 3;
  if (exp_bits > 23) return 2;
  return 1;
}

thread_local Montgomery::Scratch tls_scratch;

}  // namespace

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (!modulus.is_odd()) throw Error("montgomery: modulus must be odd");
  k_ = n_.limbs_.size();

  // n0_inv = -n^{-1} mod 2^64 via Newton iteration.
  const std::uint64_t n0 = n_.limbs_[0];
  std::uint64_t x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - n0 * x;
  n0_inv_ = ~x + 1;  // negate mod 2^64

  // R^2 mod n with R = 2^(64k): square-by-shifting.
  BigInt r{1};
  r = (r << (64 * k_)).mod(n_);
  rr_ = (r * r).mod(n_);
  rr_padded_ = rr_.limbs_;
  rr_padded_.resize(k_, 0);
}

void Montgomery::mont_mul(const std::uint64_t* a, const std::uint64_t* b,
                          std::uint64_t* out, std::uint64_t* t) const {
  // CIOS Montgomery multiplication; a and b are k_-limb (zero padded),
  // every intermediate lives in the caller's (k_+2)-limb workspace `t`, so
  // `out` may alias either input.
  const std::uint64_t* n = n_.limbs_.data();
  std::fill_n(t, k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = u128{a[i]} * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 cur = u128{t[k_]} + carry;
    t[k_] = static_cast<std::uint64_t>(cur);
    t[k_ + 1] += static_cast<std::uint64_t>(cur >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const std::uint64_t m = t[0] * n0_inv_;
    // t[0] becomes zero by construction; only the carry matters.
    carry = static_cast<std::uint64_t>((u128{m} * n[0] + t[0]) >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      const u128 c2 = u128{m} * n[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(c2);
      carry = static_cast<std::uint64_t>(c2 >> 64);
    }
    cur = u128{t[k_]} + carry;
    t[k_ - 1] = static_cast<std::uint64_t>(cur);
    t[k_] = t[k_ + 1] + static_cast<std::uint64_t>(cur >> 64);
    t[k_ + 1] = 0;
  }

  // Conditional subtraction: the result may be >= n (it is < 2n).
  if (t[k_] != 0 || cmp_limbs(t, n, k_) >= 0) sub_limbs(t, n, k_);
  std::copy_n(t, k_, out);
}

void Montgomery::mont_sqr(const std::uint64_t* a, std::uint64_t* out,
                          std::uint64_t* wide) const {
  // Schoolbook squaring into the wide buffer — off-diagonal products once,
  // doubled by a one-bit shift, diagonal added — then one Montgomery
  // reduction. ~3/4 the multiplications of mont_mul, and the windowed
  // exponentiation ladder is overwhelmingly squarings.
  std::fill_n(wide, 2 * k_ + 1, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = i + 1; j < k_; ++j) {
      const u128 cur = u128{a[i]} * a[j] + wide[i + j] + carry;
      wide[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    wide[i + k_] = carry;  // first write to this limb in the triangle
  }
  std::uint64_t shifted_out = 0;
  for (std::size_t i = 0; i < 2 * k_; ++i) {
    const std::uint64_t next = wide[i] >> 63;
    wide[i] = (wide[i] << 1) | shifted_out;
    shifted_out = next;
  }
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const u128 d = u128{a[i]} * a[i];
    u128 cur = u128{wide[2 * i]} + static_cast<std::uint64_t>(d) + carry;
    wide[2 * i] = static_cast<std::uint64_t>(cur);
    cur = u128{wide[2 * i + 1]} + static_cast<std::uint64_t>(d >> 64) +
          static_cast<std::uint64_t>(cur >> 64);
    wide[2 * i + 1] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  wide[2 * k_] = shifted_out + carry;  // a^2 < R^2, so this ends up zero
  redc_wide(wide, out);
}

void Montgomery::redc_wide(std::uint64_t* wide, std::uint64_t* out) const {
  // One Montgomery reduction of T < n * R held in wide[0..2k] (the spare
  // top limb catches the final carry): out = T * R^-1 mod n < n.
  const std::uint64_t* n = n_.limbs_.data();
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint64_t m = wide[i] * n0_inv_;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = u128{m} * n[j] + wide[i + j] + carry;
      wide[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (std::size_t idx = i + k_; carry != 0; ++idx) {
      const u128 cur = u128{wide[idx]} + carry;
      wide[idx] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
  }
  // Result is wide[k..2k] (top limb is 0 or 1), < 2n.
  if (wide[2 * k_] != 0 || cmp_limbs(wide + k_, n, k_) >= 0)
    sub_limbs(wide + k_, n, k_);
  std::copy_n(wide + k_, k_, out);
}

void Montgomery::load_standard(const BigInt& v, std::uint64_t* out,
                               std::uint64_t* t) const {
  const std::size_t s = v.limbs_.size();
  if (s <= k_) {
    // Any k-limb value works directly: a Montgomery multiply only needs
    // this operand < R; congruence mod n does the rest.
    std::copy(v.limbs_.begin(), v.limbs_.end(), out);
    std::fill_n(out + s, k_ - s, 0);
    return;
  }
  // Wider values fold down Horner-style over k-limb chunks, most
  // significant first: x = x * R + chunk, where the R-multiply is one
  // Montgomery multiplication by R^2. The chunk add can overflow R by at
  // most one n-subtraction's worth, so the result stays < R (congruent to
  // v, not fully reduced — same contract as the direct path). This is how
  // the full-width RSA message enters a half-width CRT context without a
  // single long division.
  const std::uint64_t* n = n_.limbs_.data();
  std::size_t top = s % k_;
  if (top == 0) top = k_;
  std::size_t pos = s - top;  // limbs below pos remain to be folded
  std::copy(v.limbs_.begin() + static_cast<long>(pos), v.limbs_.end(), out);
  std::fill_n(out + top, k_ - top, 0);
  while (pos > 0) {
    pos -= k_;
    // out < R, rr < n  =>  product < n: a valid left operand forever.
    mont_mul(out, rr_padded_.data(), out, t);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 cur = u128{out[i]} + v.limbs_[pos + i] + carry;
      out[i] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    // Sum < n + R: a single subtraction clears any carry past R.
    if (carry != 0) sub_limbs(out, n, k_);
  }
}

void Montgomery::store(const std::uint64_t* v, BigInt* out) const {
  out->limbs_.resize(k_);
  std::copy_n(v, k_, out->limbs_.data());
  out->trim();
}

void Montgomery::exp(const BigInt& base, const BigInt& exponent,
                     Scratch& scratch, BigInt* out) const {
  const std::size_t bits = exponent.bit_length();
  if (bits == 0) {
    out->limbs_.resize(1);
    out->limbs_[0] = 1;
    out->trim();
    return;
  }
  const int w = window_bits(bits);
  const std::size_t table_entries = std::size_t{1} << (w - 1);

  // Carve the arena: acc | b2 | t | wide | odd-powers table.
  std::uint64_t* arena =
      scratch.require(3 * k_ + 3 + (2 + table_entries) * k_);
  std::uint64_t* acc = arena;
  std::uint64_t* b2 = arena + k_;
  std::uint64_t* t = arena + 2 * k_;            // k_ + 2
  std::uint64_t* wide = arena + 3 * k_ + 2;     // 2k_ + 1
  std::uint64_t* table = arena + 5 * k_ + 3;    // table_entries * k_

  // table[j] holds base^(2j+1) in Montgomery form.
  load_standard(base, table, t);
  mont_mul(table, rr_padded_.data(), table, t);
  if (w > 1) {
    mont_sqr(table, b2, wide);
    for (std::size_t j = 1; j < table_entries; ++j)
      mont_mul(table + (j - 1) * k_, b2, table + j * k_, t);
  }

  // Fixed-window scan, MSB first. The leading window seeds `acc` directly
  // (no Montgomery-one needed); each further window is `gap` squarings
  // followed by one odd-power multiply.
  auto window = [&](std::size_t hi) {
    // Find the lowest set bit within [hi - w + 1, hi]; the digit between
    // is odd by construction.
    std::size_t lo = hi + 1 >= static_cast<std::size_t>(w) ? hi + 1 - w : 0;
    while (!exponent.bit(lo)) ++lo;
    std::uint64_t digit = 0;
    for (std::size_t b = hi + 1; b-- > lo;)
      digit = (digit << 1) | (exponent.bit(b) ? 1 : 0);
    return std::pair<std::size_t, std::uint64_t>{lo, digit};
  };

  auto [lo, digit] = window(bits - 1);
  std::copy_n(table + (digit >> 1) * k_, k_, acc);
  std::size_t i = lo;  // bits below i remain
  while (i > 0) {
    --i;
    if (!exponent.bit(i)) {
      mont_sqr(acc, acc, wide);
      continue;
    }
    const auto [wlo, wdigit] = window(i);
    for (std::size_t s = 0; s < i - wlo + 1; ++s) mont_sqr(acc, acc, wide);
    mont_mul(acc, table + (wdigit >> 1) * k_, acc, t);
    i = wlo;
  }

  // Leave Montgomery form: one reduction of the k-limb accumulator.
  std::copy_n(acc, k_, wide);
  std::fill_n(wide + k_, k_ + 1, 0);
  redc_wide(wide, acc);
  store(acc, out);
}

BigInt Montgomery::exp(const BigInt& base, const BigInt& exponent,
                       Scratch& scratch) const {
  BigInt out;
  exp(base, exponent, scratch, &out);
  return out;
}

BigInt Montgomery::exp(const BigInt& base, const BigInt& exponent) const {
  BigInt out;
  exp(base, exponent, tls_scratch, &out);
  return out;
}

void Montgomery::exp_u64(const BigInt& base, std::uint64_t exponent,
                         Scratch& scratch, BigInt* out) const {
  if (exponent == 0) {
    out->limbs_.resize(1);
    out->limbs_[0] = 1;
    out->trim();
    return;
  }
  std::uint64_t* arena = scratch.require(5 * k_ + 3);
  std::uint64_t* acc = arena;
  std::uint64_t* b = arena + k_;
  std::uint64_t* t = arena + 2 * k_;         // k_ + 2
  std::uint64_t* wide = arena + 3 * k_ + 2;  // 2k_ + 1

  load_standard(base, b, t);
  mont_mul(b, rr_padded_.data(), b, t);
  std::copy_n(b, k_, acc);
  int i = 62 - __builtin_clzll(exponent);
  for (; i >= 0; --i) {
    mont_sqr(acc, acc, wide);
    if ((exponent >> i) & 1) mont_mul(acc, b, acc, t);
  }
  std::copy_n(acc, k_, wide);
  std::fill_n(wide + k_, k_ + 1, 0);
  redc_wide(wide, acc);
  store(acc, out);
}

BigInt Montgomery::exp_u64(const BigInt& base, std::uint64_t exponent) const {
  BigInt out;
  exp_u64(base, exponent, tls_scratch, &out);
  return out;
}

void Montgomery::mul_mod(const BigInt& a, const BigInt& b, Scratch& scratch,
                         BigInt* out) const {
  std::uint64_t* arena = scratch.require(3 * k_ + 2);
  std::uint64_t* am = arena;
  std::uint64_t* bs = arena + k_;
  std::uint64_t* t = arena + 2 * k_;  // k_ + 2

  load_standard(a, am, t);
  load_standard(b, bs, t);
  // (a*R) * b * R^-1 = a*b mod n. After the first multiply am < n, which
  // keeps the product bound valid even though bs may exceed n (it is < R).
  mont_mul(am, rr_padded_.data(), am, t);
  mont_mul(am, bs, am, t);
  store(am, out);
}

BigInt Montgomery::mul_mod(const BigInt& a, const BigInt& b) const {
  BigInt out;
  mul_mod(a, b, tls_scratch, &out);
  return out;
}

void Montgomery::reduce(const BigInt& v, Scratch& scratch, BigInt* out) const {
  std::uint64_t* arena = scratch.require(4 * k_ + 3);
  std::uint64_t* x = arena;
  std::uint64_t* t = arena + k_;             // k_ + 2
  std::uint64_t* wide = arena + 2 * k_ + 2;  // 2k_ + 1

  // Fold to a congruent value < R, then an exact round trip through
  // Montgomery form (x -> x*R mod n -> x mod n) lands strictly below n.
  load_standard(v, x, t);
  mont_mul(x, rr_padded_.data(), x, t);
  std::copy_n(x, k_, wide);
  std::fill_n(wide + k_, k_ + 1, 0);
  redc_wide(wide, x);
  store(x, out);
}

BigInt Montgomery::reduce(const BigInt& v) const {
  BigInt out;
  reduce(v, tls_scratch, &out);
  return out;
}

}  // namespace sinclave::crypto
