#include "crypto/hkdf.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace sinclave::crypto {

Hash256 hkdf_extract(ByteView salt, ByteView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * 32) throw Error("hkdf: output too long");
  Bytes out;
  out.reserve(length);
  Bytes t;  // T(i-1)
  std::uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 h(prk);
    h.update(t);
    h.update(info);
    h.update(ByteView{&counter, 1});
    const Hash256 block = h.finalize();
    t = block.to_vector();
    const std::size_t take = std::min<std::size_t>(32, length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  const Hash256 prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk.view(), info, length);
}

}  // namespace sinclave::crypto
