// AES-128/AES-256 block cipher (FIPS 197) and CTR mode.
//
// Used by the encrypted filesystem (src/fs) and the secure channel AEAD.
// The implementation is a compact, portable S-box version; throughput is
// not on any measured path of the paper's figures.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace sinclave::crypto {

/// AES block cipher with a 128- or 256-bit key (encryption direction only;
/// all modes used in this repo are CTR-based and never need block decryption).
class Aes {
 public:
  /// key.size() must be 16 or 32.
  explicit Aes(ByteView key);
  ~Aes();

  Aes(const Aes&) = delete;
  Aes& operator=(const Aes&) = delete;

  /// Encrypt exactly one 16-byte block.
  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  std::uint32_t round_keys_[60];
  int rounds_;
};

/// AES-CTR keystream XOR: encryption and decryption are the same operation.
/// `nonce` is 12 bytes; the 32-bit block counter starts at `counter0`.
void aes_ctr_xor(const Aes& cipher, ByteView nonce, std::uint32_t counter0,
                 ByteView in, std::uint8_t* out);

}  // namespace sinclave::crypto
