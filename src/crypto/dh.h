// Finite-field Diffie-Hellman over the RFC 3526 2048-bit MODP group.
//
// Provides the key agreement for the attested secure channel (net/
// secure_channel.h) — the stand-in for the TLS/wireguard channels the
// paper's systems (SCONE CAS, SGX-LKL) bind to attestation reports.
#pragma once

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"

namespace sinclave::crypto {

/// The shared group parameters (RFC 3526 group 14: 2048-bit prime, g = 2).
struct DhGroup {
  BigInt p;
  BigInt g;

  static const DhGroup& modp2048();
};

/// One party's ephemeral key pair.
class DhKeyPair {
 public:
  /// Ephemeral exponent width: 384 bits (>= 192-bit security against
  /// discrete log in this group).
  static constexpr std::size_t kExponentBytes = 48;

  /// Generate an ephemeral key with a 384-bit exponent (>= 192-bit security
  /// against discrete log in this group).
  static DhKeyPair generate(Drbg& rng);

  /// Deterministic construction from kExponentBytes caller-drawn exponent
  /// bytes (top bit is forced, exactly like generate()). Lets callers hold
  /// their DRBG lock only for the draw and run the g^x exponentiation
  /// lock-free; generate(rng) == from_exponent(rng.generate(48)).
  static DhKeyPair from_exponent(ByteView exponent_bytes);

  /// Public value g^x mod p, big-endian, fixed 256-byte width.
  Bytes public_value() const;

  /// Shared secret (g^y)^x mod p from the peer's public value. Throws Error
  /// if the peer value is out of range or degenerate (<= 1 or >= p-1).
  Bytes shared_secret(ByteView peer_public) const;

 private:
  BigInt x_;
  BigInt gx_;
};

}  // namespace sinclave::crypto
