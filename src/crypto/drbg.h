// HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//
// All randomness in the repository flows through a Drbg instance so tests
// and benchmarks are reproducible: seeding with the same value yields the
// same key pairs, tokens and nonces everywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace sinclave::crypto {

class Drbg {
 public:
  /// Instantiate from entropy (any length) and an optional personalization
  /// string that domain-separates independent generators.
  explicit Drbg(ByteView entropy, std::string_view personalization = "");

  /// Convenience: seed from a 64-bit value (tests / simulations).
  static Drbg from_seed(std::uint64_t seed, std::string_view pers = "");

  /// Fill `out` with pseudo-random bytes.
  void generate(std::uint8_t* out, std::size_t len);

  Bytes generate(std::size_t len);

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Mix additional entropy into the state.
  void reseed(ByteView entropy);

 private:
  void update(ByteView provided);

  FixedBytes<32> key_;
  FixedBytes<32> v_;
};

/// A striped DRBG for concurrent hot paths. N independent children are
/// forked from one root at construction (domain separated by stripe
/// index), each behind its own mutex; lease() hands out one stripe at a
/// time, so concurrent callers draw from different generators instead of
/// serializing on a single one.
///
/// Stripe choice is round-robin (an atomic counter), which keeps
/// single-threaded use fully deterministic: with no contention the k-th
/// lease always lands on stripe k mod N, so seeded tests reproduce.
/// Under contention the try-lock scan falls through to the next free
/// stripe — output interleaving is then scheduler-dependent, exactly as a
/// mutex-guarded single DRBG's draw order already was.
class DrbgPool {
 public:
  DrbgPool(Drbg root, std::string_view label, std::size_t stripes = 8);

  /// RAII stripe lease: holds the stripe's lock for its lifetime. Keep it
  /// only while drawing bytes — do derived computation after release.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : lock_(std::move(other.lock_)), rng_(other.rng_) {
      other.rng_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    Drbg& rng() const { return *rng_; }

   private:
    friend class DrbgPool;
    Lease(std::unique_lock<std::mutex> lock, Drbg* rng)
        : lock_(std::move(lock)), rng_(rng) {}
    std::unique_lock<std::mutex> lock_;
    Drbg* rng_;
  };

  Lease lease();

  std::size_t stripes() const { return stripes_.size(); }
  /// Leases that found their round-robin home stripe locked and had to
  /// move on (contention observability).
  std::uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    std::mutex m;
    Drbg rng;
    explicit Stripe(Drbg r) : rng(std::move(r)) {}
  };

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> collisions_{0};
};

}  // namespace sinclave::crypto
