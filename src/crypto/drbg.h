// HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//
// All randomness in the repository flows through a Drbg instance so tests
// and benchmarks are reproducible: seeding with the same value yields the
// same key pairs, tokens and nonces everywhere.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace sinclave::crypto {

class Drbg {
 public:
  /// Instantiate from entropy (any length) and an optional personalization
  /// string that domain-separates independent generators.
  explicit Drbg(ByteView entropy, std::string_view personalization = "");

  /// Convenience: seed from a 64-bit value (tests / simulations).
  static Drbg from_seed(std::uint64_t seed, std::string_view pers = "");

  /// Fill `out` with pseudo-random bytes.
  void generate(std::uint8_t* out, std::size_t len);

  Bytes generate(std::size_t len);

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Mix additional entropy into the state.
  void reseed(ByteView entropy);

 private:
  void update(ByteView provided);

  FixedBytes<32> key_;
  FixedBytes<32> v_;
};

}  // namespace sinclave::crypto
