// HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//
// All randomness in the repository flows through a Drbg instance so tests
// and benchmarks are reproducible: seeding with the same value yields the
// same key pairs, tokens and nonces everywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"

namespace sinclave::crypto {

class Drbg {
 public:
  /// Instantiate from entropy (any length) and an optional personalization
  /// string that domain-separates independent generators.
  explicit Drbg(ByteView entropy, std::string_view personalization = "");

  /// Convenience: seed from a 64-bit value (tests / simulations).
  static Drbg from_seed(std::uint64_t seed, std::string_view pers = "");

  /// Fill `out` with pseudo-random bytes.
  void generate(std::uint8_t* out, std::size_t len);

  Bytes generate(std::size_t len);

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Mix additional entropy into the state.
  void reseed(ByteView entropy);

 private:
  void update(ByteView provided);

  FixedBytes<32> key_;
  FixedBytes<32> v_;
};

/// A striped DRBG for concurrent hot paths. N independent children are
/// forked from one root at construction (domain separated by stripe
/// index), each behind its own mutex; lease() hands out one stripe at a
/// time, so concurrent callers draw from different generators instead of
/// serializing on a single one.
///
/// Stripe choice is round-robin (an atomic counter), which keeps
/// single-threaded use fully deterministic: with no contention the k-th
/// lease always lands on stripe k mod N, so seeded tests reproduce.
/// Under contention the try-lock scan falls through to the next free
/// stripe — output interleaving is then scheduler-dependent, exactly as a
/// mutex-guarded single DRBG's draw order already was.
class DrbgPool {
 public:
  DrbgPool(Drbg root, std::string_view label, std::size_t stripes = 8);

  /// RAII stripe lease: holds the stripe's lock for its lifetime. Keep it
  /// only while drawing bytes — do derived computation after release.
  ///
  /// A lease is a movable lock handle over a dynamically chosen stripe, a
  /// shape Clang TSA cannot follow; the debug lock-rank detector tracks
  /// the underlying Mutex at runtime instead.
  class Lease {
   public:
    Lease(Lease&& other) noexcept : m_(other.m_), rng_(other.rng_) {
      other.m_ = nullptr;
      other.rng_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    // Dynamic stripe lease: TSA cannot see the constructor-side acquire.
    ~Lease() NO_THREAD_SAFETY_ANALYSIS {
      if (m_ != nullptr) m_->unlock();
    }

    Drbg& rng() const { return *rng_; }

   private:
    friend class DrbgPool;
    Lease(Mutex* locked_m, Drbg* rng) : m_(locked_m), rng_(rng) {}
    Mutex* m_;  // held for the lease's lifetime; null after move-from
    Drbg* rng_;
  };

  /// Callers must hold no stripe lease already (enforced at runtime by the
  /// lock-rank detector: stripes share one rank, so a second lease aborts).
  Lease lease();

  std::size_t stripes() const { return stripes_.size(); }
  /// Leases that found their round-robin home stripe locked and had to
  /// move on (contention observability).
  std::uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    Mutex m{LockRank::kCryptoDrbg, "crypto.drbg_stripe"};
    Drbg rng GUARDED_BY(m);
    explicit Stripe(Drbg r) : rng(std::move(r)) {}
  };

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> collisions_{0};
};

}  // namespace sinclave::crypto
