#include "crypto/sha256.h"

#include <cstring>

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::crypto {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

constexpr std::uint32_t kStateMagic = 0x53484132;  // "SHA2"

}  // namespace

Bytes Sha256State::encode() const {
  ByteWriter w;
  w.u32(kStateMagic);
  for (std::uint32_t v : h) w.u32(v);
  w.u64(byte_count);
  return std::move(w).take();
}

Sha256State Sha256State::decode(ByteView data) {
  ByteReader r(data);
  if (r.u32() != kStateMagic) throw ParseError("sha256 state: bad magic");
  Sha256State s{};
  for (auto& v : s.h) v = r.u32();
  s.byte_count = r.u64();
  r.expect_done();
  if (s.byte_count % 64 != 0)
    throw ParseError("sha256 state: length not block aligned");
  return s;
}

Sha256::Sha256() {
  std::memcpy(state_.h, kInit, sizeof(kInit));
  state_.byte_count = 0;
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_.h[0], b = state_.h[1], c = state_.h[2],
                d = state_.h[3], e = state_.h[4], f = state_.h[5],
                g = state_.h[6], h = state_.h[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_.h[0] += a;
  state_.h[1] += b;
  state_.h[2] += c;
  state_.h[3] += d;
  state_.h[4] += e;
  state_.h[5] += f;
  state_.h[6] += g;
  state_.h[7] += h;
}

void Sha256::update(ByteView data) {
  if (finalized_) throw Error("sha256: update after finalize");
  std::size_t n = data.size();
  state_.byte_count += n;
  if (n == 0) return;  // empty views may carry a null data() — no memcpy
  const std::uint8_t* p = data.data();

  if (buffered_ > 0) {
    const std::size_t take = std::min(n, 64 - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    process_block(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Hash256 Sha256::finalize() {
  if (finalized_) throw Error("sha256: double finalize");

  const std::uint64_t bit_count = state_.byte_count * 8;
  std::uint8_t pad[72];
  std::size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  while ((state_.byte_count + pad_len) % 64 != 56) pad[pad_len++] = 0;
  for (int i = 7; i >= 0; --i)
    pad[pad_len++] = static_cast<std::uint8_t>(bit_count >> (8 * i));

  // Route padding through the normal block machinery; the message length
  // counter is restored afterwards because padding is not message data.
  const std::uint64_t saved = state_.byte_count;
  update(ByteView{pad, pad_len});
  state_.byte_count = saved;
  finalized_ = true;

  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    out.data[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(state_.h[i] >> 24);
    out.data[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(state_.h[i] >> 16);
    out.data[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(state_.h[i] >> 8);
    out.data[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(state_.h[i]);
  }
  return out;
}

Sha256State Sha256::export_state() const {
  if (finalized_) throw Error("sha256: export after finalize");
  if (!exportable())
    throw Error("sha256: state export requires 64-byte alignment");
  return state_;
}

Sha256 Sha256::resume(const Sha256State& state) {
  if (state.byte_count % 64 != 0)
    throw Error("sha256: resume state not block aligned");
  Sha256 h;
  h.state_ = state;
  return h;
}

Hash256 sha256(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

}  // namespace sinclave::crypto
