// HMAC-SHA256 (RFC 2104).
//
// Used for: report MACs in the SGX simulator (as the stand-in for AES-CMAC,
// see DESIGN.md), the encrypt-then-MAC AEAD, HKDF, and HMAC-DRBG.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace sinclave::crypto {

/// Streaming HMAC-SHA256 for multi-part messages.
class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);
  void update(ByteView data);
  Hash256 finalize();

 private:
  Sha256 inner_;
  std::uint8_t opad_key_[64];
};

/// One-shot HMAC-SHA256 of `data` under `key`.
Hash256 hmac_sha256(ByteView key, ByteView data);

/// First 16 bytes of the HMAC — used where SGX uses a 128-bit CMAC.
Mac128 hmac_sha256_128(ByteView key, ByteView data);

}  // namespace sinclave::crypto
