#include "crypto/dh.h"

#include "common/error.h"

namespace sinclave::crypto {

namespace {
// RFC 3526 §3, 2048-bit MODP group prime.
constexpr const char* kModp2048Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF";
constexpr std::size_t kGroupBytes = 256;
}  // namespace

const DhGroup& DhGroup::modp2048() {
  static const DhGroup group{BigInt::from_hex(kModp2048Hex), BigInt{2}};
  return group;
}

namespace {
// The group is fixed, so every handshake shares one Montgomery context
// instead of recomputing R^2 mod p per exponentiation.
const Montgomery& modp2048_ctx() {
  static const Montgomery ctx(DhGroup::modp2048().p);
  return ctx;
}
}  // namespace

DhKeyPair DhKeyPair::generate(Drbg& rng) {
  return from_exponent(rng.generate(kExponentBytes));
}

DhKeyPair DhKeyPair::from_exponent(ByteView exponent_bytes) {
  if (exponent_bytes.size() != kExponentBytes)
    throw Error("dh: exponent must be exactly kExponentBytes");
  const DhGroup& grp = DhGroup::modp2048();
  DhKeyPair kp;
  Bytes exp{exponent_bytes.begin(), exponent_bytes.end()};
  exp[0] |= 0x80;  // full-width exponent
  kp.x_ = BigInt::from_bytes_be(exp);
  kp.gx_ = modp2048_ctx().exp(grp.g, kp.x_);
  return kp;
}

Bytes DhKeyPair::public_value() const {
  return gx_.to_bytes_be(kGroupBytes);
}

Bytes DhKeyPair::shared_secret(ByteView peer_public) const {
  const DhGroup& grp = DhGroup::modp2048();
  const BigInt peer = BigInt::from_bytes_be(peer_public);
  const BigInt p_minus_1 = grp.p - BigInt{1};
  if (peer <= BigInt{1} || peer >= p_minus_1)
    throw Error("dh: degenerate peer public value");
  const BigInt secret = modp2048_ctx().exp(peer, x_);
  return secret.to_bytes_be(kGroupBytes);
}

}  // namespace sinclave::crypto
