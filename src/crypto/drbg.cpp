#include "crypto/drbg.h"

#include <cstring>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hmac.h"

namespace sinclave::crypto {

Drbg::Drbg(ByteView entropy, std::string_view personalization) {
  std::memset(key_.data.data(), 0x00, 32);
  std::memset(v_.data.data(), 0x01, 32);
  const Bytes seed_material =
      concat({entropy, ByteView{reinterpret_cast<const std::uint8_t*>(
                                    personalization.data()),
                                personalization.size()}});
  update(seed_material);
}

Drbg Drbg::from_seed(std::uint64_t seed, std::string_view pers) {
  ByteWriter w;
  w.u64(seed);
  return Drbg(w.data(), pers);
}

void Drbg::update(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    HmacSha256 h(key_.view());
    h.update(v_.view());
    const std::uint8_t zero = 0x00;
    h.update(ByteView{&zero, 1});
    h.update(provided);
    key_ = h.finalize();
  }
  v_ = hmac_sha256(key_.view(), v_.view());
  if (!provided.empty()) {
    HmacSha256 h(key_.view());
    h.update(v_.view());
    const std::uint8_t one = 0x01;
    h.update(ByteView{&one, 1});
    h.update(provided);
    key_ = h.finalize();
    v_ = hmac_sha256(key_.view(), v_.view());
  }
}

void Drbg::generate(std::uint8_t* out, std::size_t len) {
  std::size_t produced = 0;
  while (produced < len) {
    v_ = hmac_sha256(key_.view(), v_.view());
    const std::size_t take = std::min<std::size_t>(32, len - produced);
    std::memcpy(out + produced, v_.data.data(), take);
    produced += take;
  }
  update({});
}

Bytes Drbg::generate(std::size_t len) {
  Bytes out(len);
  generate(out.data(), len);
  return out;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw Error("drbg: uniform bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  for (;;) {
    std::uint64_t v = 0;
    generate(reinterpret_cast<std::uint8_t*>(&v), sizeof(v));
    if (v < limit) return v % bound;
  }
}

void Drbg::reseed(ByteView entropy) {
  update(entropy);
}

}  // namespace sinclave::crypto
