#include "crypto/drbg.h"

#include <cstring>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hmac.h"

namespace sinclave::crypto {

Drbg::Drbg(ByteView entropy, std::string_view personalization) {
  std::memset(key_.data.data(), 0x00, 32);
  std::memset(v_.data.data(), 0x01, 32);
  const Bytes seed_material =
      concat({entropy, ByteView{reinterpret_cast<const std::uint8_t*>(
                                    personalization.data()),
                                personalization.size()}});
  update(seed_material);
}

Drbg Drbg::from_seed(std::uint64_t seed, std::string_view pers) {
  ByteWriter w;
  w.u64(seed);
  return Drbg(w.data(), pers);
}

void Drbg::update(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    HmacSha256 h(key_.view());
    h.update(v_.view());
    const std::uint8_t zero = 0x00;
    h.update(ByteView{&zero, 1});
    h.update(provided);
    key_ = h.finalize();
  }
  v_ = hmac_sha256(key_.view(), v_.view());
  if (!provided.empty()) {
    HmacSha256 h(key_.view());
    h.update(v_.view());
    const std::uint8_t one = 0x01;
    h.update(ByteView{&one, 1});
    h.update(provided);
    key_ = h.finalize();
    v_ = hmac_sha256(key_.view(), v_.view());
  }
}

void Drbg::generate(std::uint8_t* out, std::size_t len) {
  std::size_t produced = 0;
  while (produced < len) {
    v_ = hmac_sha256(key_.view(), v_.view());
    const std::size_t take = std::min<std::size_t>(32, len - produced);
    std::memcpy(out + produced, v_.data.data(), take);
    produced += take;
  }
  update({});
}

Bytes Drbg::generate(std::size_t len) {
  Bytes out(len);
  generate(out.data(), len);
  return out;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw Error("drbg: uniform bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  for (;;) {
    std::uint64_t v = 0;
    generate(reinterpret_cast<std::uint8_t*>(&v), sizeof(v));
    if (v < limit) return v % bound;
  }
}

void Drbg::reseed(ByteView entropy) {
  update(entropy);
}

DrbgPool::DrbgPool(Drbg root, std::string_view label, std::size_t stripes) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    // Fork each stripe from the root: 32 bytes of root output as entropy,
    // the stripe index folded into the personalization string so two
    // stripes can never be the same generator even under entropy reuse.
    const std::string pers =
        std::string(label) + "-stripe-" + std::to_string(i);
    stripes_.push_back(
        std::make_unique<Stripe>(Drbg(root.generate(32), pers)));
  }
}

// Dynamic stripe selection: the acquired Mutex escapes inside the returned
// Lease, which TSA cannot model; the lock-rank detector checks it at
// runtime.
DrbgPool::Lease DrbgPool::lease() NO_THREAD_SAFETY_ANALYSIS {
  const std::size_t n = stripes_.size();
  const std::size_t home = static_cast<std::size_t>(
      next_.fetch_add(1, std::memory_order_relaxed) % n);
  for (std::size_t i = 0; i < n; ++i) {
    Stripe& s = *stripes_[(home + i) % n];
    if (s.m.try_lock()) {
      if (i != 0) collisions_.fetch_add(1, std::memory_order_relaxed);
      return Lease(&s.m, &s.rng);
    }
  }
  // Every stripe busy: wait on the home stripe.
  collisions_.fetch_add(1, std::memory_order_relaxed);
  Stripe& s = *stripes_[home];
  s.m.lock();
  return Lease(&s.m, &s.rng);
}

}  // namespace sinclave::crypto
