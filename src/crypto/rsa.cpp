#include "crypto/rsa.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/sha256.h"

namespace sinclave::crypto {

namespace {

// PKCS#1 v1.5 DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

/// EMSA-PKCS1-v1_5 encoding of SHA-256(message) into `em_len` bytes.
Bytes pkcs1_encode(ByteView message, std::size_t em_len) {
  const Hash256 digest = sha256(message);
  const std::size_t t_len = sizeof(kSha256DigestInfo) + 32;
  if (em_len < t_len + 11) throw Error("rsa: modulus too small for pkcs1");
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo),
            em.begin() + static_cast<long>(em_len - t_len));
  std::copy(digest.begin(), digest.end(),
            em.begin() + static_cast<long>(em_len - 32));
  return em;
}

}  // namespace

bool RsaPublicKey::verify_pkcs1_sha256(ByteView message,
                                       ByteView signature) const {
  const std::size_t em_len = (n.bit_length() + 7) / 8;
  if (signature.size() != em_len) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= n) return false;
  const BigInt m = BigInt::mod_exp(s, BigInt{kRsaPublicExponent}, n);
  const Bytes em = m.to_bytes_be(em_len);
  const Bytes expected = pkcs1_encode(message, em_len);
  return ct_equal(em, expected);
}

Bytes RsaPublicKey::serialize() const {
  ByteWriter w;
  w.bytes(n.to_bytes_be());
  return std::move(w).take();
}

RsaPublicKey RsaPublicKey::deserialize(ByteView data) {
  ByteReader r(data);
  RsaPublicKey k;
  k.n = BigInt::from_bytes_be(r.bytes());
  r.expect_done();
  return k;
}

namespace primes {

namespace {
// Primes below 2000 for trial division (precomputed once).
const std::vector<std::uint64_t>& small_primes() {
  static const std::vector<std::uint64_t> primes = [] {
    std::vector<std::uint64_t> out;
    std::vector<bool> sieve(2000, true);
    for (std::uint64_t i = 2; i < 2000; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::uint64_t j = i * i; j < 2000; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}
}  // namespace

bool miller_rabin(const BigInt& n, int rounds, Drbg& rng) {
  const BigInt n_minus_1 = n - BigInt{1};
  // n - 1 = d * 2^r with d odd
  std::size_t r = 0;
  BigInt d = n_minus_1;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  const Montgomery ctx(n);
  const BigInt n_minus_3 = n - BigInt{3};
  for (int round = 0; round < rounds; ++round) {
    // base in [2, n-2]
    const BigInt a =
        BigInt::random_below(n_minus_3, [&](std::uint8_t* p, std::size_t len) {
          rng.generate(p, len);
        }) +
        BigInt{2};
    BigInt x = ctx.exp(a, d);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x).mod(n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

bool is_probable_prime(const BigInt& n, Drbg& rng) {
  if (n < BigInt{2}) return false;
  for (std::uint64_t p : small_primes()) {
    if (n == BigInt{p}) return true;
    if (n.mod_u64(p) == 0) return false;
  }
  return miller_rabin(n, 8, rng);
}

BigInt generate_prime(std::size_t bits, Drbg& rng) {
  if (bits < 16) throw Error("rsa: prime size too small");
  const std::size_t n_bytes = (bits + 7) / 8;
  for (;;) {
    Bytes buf = rng.generate(n_bytes);
    // Force exact bit length and set the second-highest bit so p*q has
    // exactly 2*bits bits; force odd.
    const std::size_t top = (bits - 1) % 8;
    buf[0] &= static_cast<std::uint8_t>((1u << (top + 1)) - 1);
    buf[0] |= static_cast<std::uint8_t>(1u << top);
    if (top == 0) {
      buf[1] |= 0x80;
    } else {
      buf[0] |= static_cast<std::uint8_t>(1u << (top - 1));
    }
    buf[n_bytes - 1] |= 1;
    BigInt candidate = BigInt::from_bytes_be(buf);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace primes

RsaKeyPair RsaKeyPair::generate(Drbg& rng, std::size_t bits) {
  if (bits < 512 || bits % 2 != 0)
    throw Error("rsa: key size must be an even number of bits >= 512");
  RsaKeyPair kp;
  kp.modulus_bytes_ = bits / 8;
  const BigInt e{kRsaPublicExponent};
  for (;;) {
    kp.p_ = primes::generate_prime(bits / 2, rng);
    kp.q_ = primes::generate_prime(bits / 2, rng);
    if (kp.p_ == kp.q_) continue;
    if (kp.q_ > kp.p_) std::swap(kp.p_, kp.q_);  // keep p > q for CRT

    const BigInt p1 = kp.p_ - BigInt{1};
    const BigInt q1 = kp.q_ - BigInt{1};
    const BigInt phi = p1 * q1;
    if (!(BigInt::gcd(e, phi) == BigInt{1})) continue;

    kp.pub_.n = kp.p_ * kp.q_;
    kp.d_ = BigInt::mod_inverse(e, phi);
    kp.dp_ = kp.d_.mod(p1);
    kp.dq_ = kp.d_.mod(q1);
    kp.qinv_ = BigInt::mod_inverse(kp.q_, kp.p_);
    return kp;
  }
}

BigInt RsaKeyPair::private_op(const BigInt& input) const {
  if (input >= pub_.n) throw Error("rsa: input out of range");
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv*(m1-m2) mod p.
  const Montgomery mp(p_);
  const Montgomery mq(q_);
  const BigInt m1 = mp.exp(input.mod(p_), dp_);
  const BigInt m2 = mq.exp(input.mod(q_), dq_);
  const BigInt diff = m1 >= m2 ? m1 - m2 : (m1 + p_) - m2.mod(p_);
  const BigInt h = (qinv_ * diff).mod(p_);
  return m2 + h * q_;
}

Bytes RsaKeyPair::sign_pkcs1_sha256(ByteView message) const {
  const Bytes em = pkcs1_encode(message, modulus_bytes_);
  const BigInt m = BigInt::from_bytes_be(em);
  const BigInt s = private_op(m);
  return s.to_bytes_be(modulus_bytes_);
}

}  // namespace sinclave::crypto
