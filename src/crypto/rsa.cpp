#include "crypto/rsa.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/sha256.h"

namespace sinclave::crypto {

namespace {

// PKCS#1 v1.5 DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

/// EMSA-PKCS1-v1_5 encoding of SHA-256(message) into `em_len` bytes.
Bytes pkcs1_encode(ByteView message, std::size_t em_len) {
  const Hash256 digest = sha256(message);
  const std::size_t t_len = sizeof(kSha256DigestInfo) + 32;
  if (em_len < t_len + 11) throw Error("rsa: modulus too small for pkcs1");
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo),
            em.begin() + static_cast<long>(em_len - t_len));
  std::copy(digest.begin(), digest.end(),
            em.begin() + static_cast<long>(em_len - 32));
  return em;
}

}  // namespace

struct RsaPublicKey::VerifyContext {
  explicit VerifyContext(const BigInt& modulus)
      : n(modulus), mont(modulus) {}
  BigInt n;  // the modulus this context was built for (staleness check)
  Montgomery mont;
};

const RsaPublicKey::VerifyContext& RsaPublicKey::verify_context() const {
  // Fast path: the current context, one atomic load. Mutating `n` while
  // other threads verify is a caller-side race on `n` itself; the
  // staleness check only has to be correct across *sequential* mutation.
  const VerifyContext* ctx = ctx_.load(std::memory_order_acquire);
  if (ctx != nullptr && ctx->n == n) return *ctx;

  MutexLock lock(ctx_mutex_);
  ctx = ctx_.load(std::memory_order_relaxed);
  if (ctx != nullptr && ctx->n == n) return *ctx;  // lost the build race
  auto fresh = std::make_shared<const VerifyContext>(n);
  ctx = fresh.get();
  // Retire, never free: a stale context may still be referenced by an
  // in-flight verifier. Growth is bounded by modulus rotations on this
  // object (reusing one key object for another modulus), not by verifies.
  owned_.push_back(std::move(fresh));
  ctx_.store(ctx, std::memory_order_release);
  return *ctx;
}

void RsaPublicKey::adopt_context(const RsaPublicKey& other) {
  std::shared_ptr<const VerifyContext> current;
  {
    MutexLock lock(other.ctx_mutex_);
    const VerifyContext* raw = other.ctx_.load(std::memory_order_relaxed);
    for (const auto& owned : other.owned_)
      if (owned.get() == raw) {
        current = owned;
        break;
      }
  }
  MutexLock lock(ctx_mutex_);
  owned_.clear();
  if (current != nullptr && current->n == n) {
    ctx_.store(current.get(), std::memory_order_release);
    owned_.push_back(std::move(current));
  } else {
    ctx_.store(nullptr, std::memory_order_release);
  }
}

bool RsaPublicKey::verify_pkcs1_sha256(ByteView message,
                                       ByteView signature) const {
  // A real RSA modulus is odd and > 1; anything else (e.g. a hostile
  // deserialized SigStruct) verifies nothing.
  if (!n.is_odd() || n <= BigInt{1}) return false;
  const std::size_t em_len = (n.bit_length() + 7) / 8;
  if (signature.size() != em_len) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= n) return false;
  // Fixed public exponent: 16 squarings + 1 multiply on the cached context.
  const BigInt m = verify_context().mont.exp_u64(s, kRsaPublicExponent);
  const Bytes em = m.to_bytes_be(em_len);
  const Bytes expected = pkcs1_encode(message, em_len);
  return ct_equal(em, expected);
}

Bytes RsaPublicKey::serialize() const {
  ByteWriter w;
  w.bytes(n.to_bytes_be());
  return std::move(w).take();
}

RsaPublicKey RsaPublicKey::deserialize(ByteView data) {
  ByteReader r(data);
  RsaPublicKey k;
  k.n = BigInt::from_bytes_be(r.bytes());
  r.expect_done();
  return k;
}

namespace primes {

namespace {
// Primes below 2000 for trial division (precomputed once).
const std::vector<std::uint64_t>& small_primes() {
  static const std::vector<std::uint64_t> primes = [] {
    std::vector<std::uint64_t> out;
    std::vector<bool> sieve(2000, true);
    for (std::uint64_t i = 2; i < 2000; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::uint64_t j = i * i; j < 2000; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}
}  // namespace

bool miller_rabin(const BigInt& n, int rounds, Drbg& rng) {
  const BigInt n_minus_1 = n - BigInt{1};
  // n - 1 = d * 2^r with d odd
  std::size_t r = 0;
  BigInt d = n_minus_1;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  const Montgomery ctx(n);
  const BigInt n_minus_3 = n - BigInt{3};
  for (int round = 0; round < rounds; ++round) {
    // base in [2, n-2]
    const BigInt a =
        BigInt::random_below(n_minus_3, [&](std::uint8_t* p, std::size_t len) {
          rng.generate(p, len);
        }) +
        BigInt{2};
    BigInt x = ctx.exp(a, d);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x).mod(n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

bool is_probable_prime(const BigInt& n, Drbg& rng) {
  if (n < BigInt{2}) return false;
  for (std::uint64_t p : small_primes()) {
    if (n == BigInt{p}) return true;
    if (n.mod_u64(p) == 0) return false;
  }
  return miller_rabin(n, 8, rng);
}

BigInt generate_prime(std::size_t bits, Drbg& rng) {
  if (bits < 16) throw Error("rsa: prime size too small");
  const std::size_t n_bytes = (bits + 7) / 8;
  for (;;) {
    Bytes buf = rng.generate(n_bytes);
    // Force exact bit length and set the second-highest bit so p*q has
    // exactly 2*bits bits; force odd.
    const std::size_t top = (bits - 1) % 8;
    buf[0] &= static_cast<std::uint8_t>((1u << (top + 1)) - 1);
    buf[0] |= static_cast<std::uint8_t>(1u << top);
    if (top == 0) {
      buf[1] |= 0x80;
    } else {
      buf[0] |= static_cast<std::uint8_t>(1u << (top - 1));
    }
    buf[n_bytes - 1] |= 1;
    BigInt candidate = BigInt::from_bytes_be(buf);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace primes

RsaKeyPair RsaKeyPair::generate(Drbg& rng, std::size_t bits) {
  if (bits < 512 || bits % 2 != 0)
    throw Error("rsa: key size must be an even number of bits >= 512");
  // Multi-prime only where the factors stay large (1024-bit at the SGX key
  // size); smaller keys keep the classic two-prime split.
  const std::size_t n_primes = (bits >= 3072 && bits % 3 == 0) ? 3 : 2;
  const std::size_t prime_bits = bits / n_primes;

  RsaKeyPair kp;
  kp.modulus_bytes_ = bits / 8;
  const BigInt e{kRsaPublicExponent};
  for (;;) {
    std::vector<BigInt> primes;
    primes.reserve(n_primes);
    for (std::size_t i = 0; i < n_primes; ++i)
      primes.push_back(primes::generate_prime(prime_bits, rng));
    bool distinct = true;
    for (std::size_t i = 0; i < n_primes && distinct; ++i)
      for (std::size_t j = i + 1; j < n_primes; ++j)
        if (primes[i] == primes[j]) distinct = false;
    if (!distinct) continue;

    BigInt n{1}, phi{1};
    for (const BigInt& p : primes) {
      n = n * p;
      phi = phi * (p - BigInt{1});
    }
    // Two top bits per prime guarantee full length for two primes; with
    // three the product can fall one bit short — retry.
    if (n.bit_length() != bits) continue;
    if (!(BigInt::gcd(e, phi) == BigInt{1})) continue;

    kp.pub_.n = n;
    kp.d_ = BigInt::mod_inverse(e, phi);
    kp.primes_.clear();
    kp.primes_.reserve(n_primes);
    BigInt product{1};  // of all earlier primes
    for (const BigInt& p : primes) {
      CrtPrime leg;
      leg.prime = p;
      leg.exponent = kp.d_.mod(p - BigInt{1});
      if (!kp.primes_.empty())
        leg.coefficient = BigInt::mod_inverse(product, p);
      // The CRT contexts live with the key: n' and R^2 are paid once per
      // key, not once per signature.
      leg.mont = std::make_shared<const Montgomery>(p);
      kp.primes_.push_back(std::move(leg));
      product = product * p;
    }
    return kp;
  }
}

BigInt RsaKeyPair::private_op(const BigInt& input,
                              Montgomery::Scratch& scratch) const {
  if (input >= pub_.n) throw Error("rsa: input out of range");
  if (primes_.empty()) throw Error("rsa: key pair not initialized");
  // CRT with Garner recombination: m_i = c^(d mod p_i-1) mod p_i, then
  //   x := m_1;  x += (prod earlier primes) * h_i,
  //   h_i = coeff_i * (m_i - x) mod p_i.
  // The full-width input folds into each fractional-size context by
  // Montgomery reduction inside exp(), and every mod-p_i step runs on the
  // cached contexts — no long division anywhere on the sign path.
  BigInt x;
  primes_[0].mont->exp(input, primes_[0].exponent, scratch, &x);
  BigInt product = primes_[0].prime;
  for (std::size_t i = 1; i < primes_.size(); ++i) {
    const CrtPrime& leg = primes_[i];
    BigInt mi;
    leg.mont->exp(input, leg.exponent, scratch, &mi);
    BigInt xi;
    leg.mont->reduce(x, scratch, &xi);
    const BigInt diff = mi >= xi ? mi - xi : (mi + leg.prime) - xi;
    BigInt h;
    leg.mont->mul_mod(leg.coefficient, diff, scratch, &h);
    x = x + product * h;
    if (i + 1 < primes_.size()) product = product * leg.prime;
  }
  return x;
}

BigInt RsaKeyPair::private_op(const BigInt& input) const {
  thread_local Montgomery::Scratch scratch;
  return private_op(input, scratch);
}

Bytes RsaKeyPair::sign_pkcs1_sha256(ByteView message,
                                    Montgomery::Scratch& scratch) const {
  const Bytes em = pkcs1_encode(message, modulus_bytes_);
  const BigInt m = BigInt::from_bytes_be(em);
  const BigInt s = private_op(m, scratch);
  return s.to_bytes_be(modulus_bytes_);
}

Bytes RsaKeyPair::sign_pkcs1_sha256(ByteView message) const {
  thread_local Montgomery::Scratch scratch;
  return sign_pkcs1_sha256(message, scratch);
}

}  // namespace sinclave::crypto
