// Serving-layer metrics: atomic counters, gauges, and latency histograms.
//
// Everything here is wait-free on the record path (relaxed atomics) so the
// hot path never serializes on observability. Quantiles are read from a
// fixed geometric bucket layout — each bucket spans x1.5 in latency, from
// 1 us to ~6.5 s — which bounds the p50/p99 estimation error to the bucket
// width, the standard tradeoff of histogram-based tail tracking.
//
// Coherence contract: record() is safe against concurrent record(),
// merge(), reset(), and snapshot(). Readers may observe a snapshot that is
// off by the in-flight samples, but never a torn or self-contradictory one:
// snapshot() derives count from the buckets themselves, clamps the sum
// non-negative, and forces p50 <= p90 <= p99 <= max, so a racing reset or
// merge can skew values, not invariants. Negative durations (clock hiccups)
// are clamped to zero before they can poison the sum.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace sinclave::server {

/// Relaxed atomic fetch-max: raise `target` to at least `value`.
template <typename T>
inline void atomic_fetch_max(std::atomic<T>& target, T value) {
  T seen = target.load(std::memory_order_relaxed);
  while (value > seen &&
         !target.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
  }
}

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::chrono::nanoseconds latency);

  struct Snapshot {
    std::uint64_t count = 0;
    std::chrono::nanoseconds sum{0};
    std::chrono::nanoseconds p50{0};
    std::chrono::nanoseconds p90{0};
    std::chrono::nanoseconds p99{0};
    std::chrono::nanoseconds max{0};

    std::chrono::nanoseconds mean() const {
      if (count == 0) return std::chrono::nanoseconds{0};
      return std::chrono::nanoseconds(
          sum.count() / static_cast<std::int64_t>(count));
    }
  };

  /// Consistent-enough snapshot: see the coherence contract above.
  Snapshot snapshot() const;

  /// Fold another histogram into this one (merging per-thread recorders).
  /// Samples recorded into `other` while merge runs may be folded in or
  /// not; the invariants above still hold for any later snapshot.
  void merge(const LatencyHistogram& other);

  void reset();

  /// Exact upper bound of the bucket a latency lands in (identity for the
  /// boundary value itself: bucket_bound(d) == bucket_bound(bucket_bound(d))).
  /// Exposed so tests can pin the boundary semantics.
  static std::chrono::nanoseconds bucket_bound(std::chrono::nanoseconds d);

 private:
  static std::size_t bucket_for(std::chrono::nanoseconds latency);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Per-wire-command counters: one block per protocol command so traffic,
/// failures, and tails are attributable to the command that caused them.
struct CommandMetrics {
  std::atomic<std::uint64_t> requests{0};
  /// Typed non-ok responses (instance endpoint; the encrypted commands
  /// count only transport-visible failures — their payload statuses are
  /// not observable at this layer).
  std::atomic<std::uint64_t> errors{0};
  /// Requests served on the legacy (v0, pre-envelope) decode path.
  /// Wired for get_instance only: the secure endpoint's frames are
  /// classified inside CasService (past the encryption boundary), so its
  /// legacy/version split is not visible to the serving layer yet.
  std::atomic<std::uint64_t> legacy_frames{0};
  LatencyHistogram latency;
};

/// All counters the CAS serving layer exports. Plain atomics — callers
/// increment directly; text rendering for logs/benches via render().
/// (Policy-store hit/miss counters live on ShardedPolicyStore itself.)
struct ServerMetrics {
  /// Instance endpoint: singleton retrieval (Command::kGetInstance).
  CommandMetrics get_instance;
  /// Attested endpoint, split by record: handshakes (kAttest)...
  CommandMetrics attest;
  /// ...and encrypted in-session commands (kGetConfig).
  CommandMetrics get_config;

  /// Protocol-level rejections on the instance endpoint: frames answered
  /// with the matching typed status instead of being dropped. (The attest
  /// endpoint's equivalents happen inside CasService's secure-channel
  /// hooks and are observable through its attest verdict, not here.)
  std::atomic<std::uint64_t> malformed_frames{0};
  std::atomic<std::uint64_t> unsupported_version_frames{0};
  std::atomic<std::uint64_t> unknown_command_frames{0};

  std::atomic<std::uint64_t> sigstruct_cache_hits{0};
  std::atomic<std::uint64_t> sigstruct_cache_misses{0};
  std::atomic<std::uint64_t> preminted_credentials{0};
  std::atomic<std::uint64_t> tokens_issued{0};
  /// Refill jobs scheduled by pool-pressure (low-watermark) events.
  std::atomic<std::uint64_t> refills_scheduled{0};
  /// Batch mint calls issued by the pooling paths — refill jobs and
  /// premint() warm-up alike (each batch signs up to
  /// CasServerConfig::mint_batch credentials in one go).
  std::atomic<std::uint64_t> mint_batches{0};

  /// Requests accepted but not yet responded to (the event-driven
  /// frontend's core gauge: how much work is parked on timers/queues
  /// rather than pinned to worker threads), plus its high-water mark.
  std::atomic<std::uint64_t> requests_in_flight{0};
  std::atomic<std::uint64_t> max_in_flight{0};

  /// Secure-channel contention observability, mirrored from the striped
  /// SecureServer session table on demand (CasServer::
  /// refresh_secure_metrics; unbind() refreshes automatically — never
  /// per record, which would bounce these lines across workers): lock
  /// acquisitions that found their stripe busy (the residual
  /// cross-session contention), sessions opened, and the most sessions
  /// ever simultaneously open.
  std::atomic<std::uint64_t> handshake_stripe_collisions{0};
  std::atomic<std::uint64_t> secure_sessions_opened{0};
  std::atomic<std::uint64_t> secure_sessions_high_water{0};

  /// Gauge helpers: enter bumps the in-flight count and its watermark.
  void enter_in_flight();
  void leave_in_flight();

  /// Human-readable dump (one "name value" pair per line).
  std::string render() const;
};

}  // namespace sinclave::server
