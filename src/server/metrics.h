// Serving-layer metrics: atomic counters, gauges, and latency histograms.
//
// The latency histogram itself now lives in the base observability layer
// (obs/histogram.h) so every layer shares one quantile tracker; the
// aliases below keep the original sinclave::server spellings working.
// Everything here is wait-free on the record path (relaxed atomics) so
// the hot path never serializes on observability.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.h"
#include "obs/registry.h"

namespace sinclave::server {

using obs::atomic_fetch_max;
using LatencyHistogram = obs::LatencyHistogram;

/// Per-wire-command counters: one block per protocol command so traffic,
/// failures, and tails are attributable to the command that caused them.
struct CommandMetrics {
  std::atomic<std::uint64_t> requests{0};
  /// Typed non-ok responses (instance endpoint; the encrypted commands
  /// count only transport-visible failures — their payload statuses are
  /// not observable at this layer).
  std::atomic<std::uint64_t> errors{0};
  /// Requests served on the legacy (v0, pre-envelope) decode path.
  /// get_instance counts these at the serving layer; the secure
  /// endpoint's frames are classified inside CasService (past the
  /// encryption boundary) and mirrored into the attest/get_config
  /// counters whenever the registry snapshots (never per record).
  std::atomic<std::uint64_t> legacy_frames{0};
  LatencyHistogram latency;
};

/// All counters the CAS serving layer exports. Plain atomics — callers
/// increment directly; export happens through the obs::MetricsRegistry
/// (collect()) or the legacy text dump (render(), now a thin wrapper
/// over the registry's text renderer).
/// (Policy-store hit/miss counters live on ShardedPolicyStore itself.)
struct ServerMetrics {
  /// Instance endpoint: singleton retrieval (Command::kGetInstance).
  CommandMetrics get_instance;
  /// Attested endpoint, split by record: handshakes (kAttest)...
  CommandMetrics attest;
  /// ...and encrypted in-session commands (kGetConfig).
  CommandMetrics get_config;

  /// Protocol-level rejections on the instance endpoint: frames answered
  /// with the matching typed status instead of being dropped. (The attest
  /// endpoint's equivalents happen inside CasService's secure-channel
  /// hooks and are observable through its attest verdict, not here.)
  std::atomic<std::uint64_t> malformed_frames{0};
  std::atomic<std::uint64_t> unsupported_version_frames{0};
  std::atomic<std::uint64_t> unknown_command_frames{0};

  std::atomic<std::uint64_t> sigstruct_cache_hits{0};
  std::atomic<std::uint64_t> sigstruct_cache_misses{0};
  std::atomic<std::uint64_t> preminted_credentials{0};
  std::atomic<std::uint64_t> tokens_issued{0};
  /// Refill jobs scheduled by pool-pressure (low-watermark) events.
  std::atomic<std::uint64_t> refills_scheduled{0};
  /// Batch mint calls issued by the pooling paths — refill jobs and
  /// premint() warm-up alike (each batch signs up to
  /// CasServerConfig::mint_batch credentials in one go).
  std::atomic<std::uint64_t> mint_batches{0};

  /// Requests accepted but not yet responded to (the event-driven
  /// frontend's core gauge: how much work is parked on timers/queues
  /// rather than pinned to worker threads), plus its high-water mark.
  /// max_in_flight doubles as the admission queue's depth high-water:
  /// with an admission_limit configured it can exceed the limit by at
  /// most the number of concurrently-shedding client threads.
  std::atomic<std::uint64_t> requests_in_flight{0};
  std::atomic<std::uint64_t> max_in_flight{0};

  /// Graceful degradation: requests answered kUnavailable+retry-after by
  /// admission control instead of being queued, and requests answered
  /// kDeadlineExceeded because their deadline could not be met (queue
  /// wait ate it, or the remaining budget cannot cover the backend
  /// stall). Both are also counted in the per-command errors — so
  /// `requests == ok_responses + errors` stays the closing equation, and
  /// these two break the errors down by overload cause.
  std::atomic<std::uint64_t> requests_shed{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};

  /// Secure-channel contention observability, mirrored from the striped
  /// SecureServer session table (CasServer's registry collector refreshes
  /// the mirror at every snapshot, and unbind() refreshes it too — never
  /// per record, which would bounce these lines across workers): lock
  /// acquisitions that found their stripe busy (the residual
  /// cross-session contention), sessions opened, and the most sessions
  /// ever simultaneously open.
  std::atomic<std::uint64_t> handshake_stripe_collisions{0};
  std::atomic<std::uint64_t> secure_sessions_opened{0};
  std::atomic<std::uint64_t> secure_sessions_high_water{0};

  /// Gauge helpers: enter bumps the in-flight count and its watermark.
  void enter_in_flight();
  void leave_in_flight();

  /// Copies every counter/gauge/histogram into a registry snapshot; the
  /// collector CasServer registers simply forwards here (after refreshing
  /// the secure mirrors above).
  void collect(obs::MetricsSnapshot& snap) const;

  /// Human-readable dump (one "name value" pair per line) — the registry
  /// text renderer over collect().
  std::string render() const;
};

}  // namespace sinclave::server
