// Serving-layer metrics: atomic counters and latency histograms.
//
// Everything here is wait-free on the record path (relaxed atomics) so the
// hot path never serializes on observability. Quantiles are read from a
// fixed geometric bucket layout — each bucket spans x1.5 in latency, from
// 1 us to ~6.5 s — which bounds the p50/p99 estimation error to the bucket
// width, the standard tradeoff of histogram-based tail tracking.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace sinclave::server {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::chrono::nanoseconds latency);

  struct Snapshot {
    std::uint64_t count = 0;
    std::chrono::nanoseconds sum{0};
    std::chrono::nanoseconds p50{0};
    std::chrono::nanoseconds p90{0};
    std::chrono::nanoseconds p99{0};
    std::chrono::nanoseconds max{0};

    std::chrono::nanoseconds mean() const {
      if (count == 0) return std::chrono::nanoseconds{0};
      return std::chrono::nanoseconds(
          sum.count() / static_cast<std::int64_t>(count));
    }
  };

  /// Consistent-enough snapshot: counts racing with record() may be off by
  /// the in-flight samples, never torn.
  Snapshot snapshot() const;

  /// Fold another histogram into this one (merging per-thread recorders).
  void merge(const LatencyHistogram& other);

  void reset();

 private:
  static std::size_t bucket_for(std::chrono::nanoseconds latency);
  static std::chrono::nanoseconds bucket_upper_bound(std::size_t index);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// All counters the CAS serving layer exports. Plain atomics — callers
/// increment directly; text rendering for logs/benches via render().
/// (Policy-store hit/miss counters live on ShardedPolicyStore itself.)
struct ServerMetrics {
  std::atomic<std::uint64_t> instance_requests{0};
  std::atomic<std::uint64_t> instance_errors{0};
  std::atomic<std::uint64_t> attest_requests{0};
  std::atomic<std::uint64_t> sigstruct_cache_hits{0};
  std::atomic<std::uint64_t> sigstruct_cache_misses{0};
  std::atomic<std::uint64_t> preminted_credentials{0};
  std::atomic<std::uint64_t> tokens_issued{0};

  LatencyHistogram instance_latency;
  LatencyHistogram attest_latency;

  /// Human-readable dump (one "name value" pair per line).
  std::string render() const;
};

}  // namespace sinclave::server
