// One member of a replicated CAS cluster: a CasService incarnation wired
// to a RaftCore (cas/replication.h) through the ReplicationGate, plus the
// durable host-side artifacts — the sealed log blob and its monotonic
// counter — that survive enclave restarts.
//
// Responsibilities:
//   * serve the usual two client endpoints (`<address>.instance`, plain;
//     `<address>`, secure) with LEADER GATING on writes: a follower
//     answers singleton retrieval with kNotLeader carrying the leader
//     hint, while introspection — and, via get_policy on an attached
//     cache, reads generally — is served by every replica;
//   * implement the ReplicationGate: token arming and token spends are
//     proposed into the replicated log and only applied (on every node,
//     in log order) once majority-committed;
//   * own the node lifecycle for failover drills: stop() kills the
//     incarnation (endpoints down, proposals failed), restart() boots a
//     FRESH CasService + RaftCore over the SAME sealed store and counter
//     — exactly the restart an adversarial host controls, which is why a
//     rolled-back blob makes restart throw instead of serve;
//   * run the per-node idle-session sweep (SecureServer TTL) on a timer.
//
// All nodes of a cluster share one verifier identity keypair (copied into
// each), so clients pin a single identity across failover.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cas/persistence.h"
#include "cas/replication.h"
#include "cas/service.h"
#include "common/mutex.h"
#include "common/status.h"
#include "crypto/rsa.h"
#include "net/sim_network.h"
#include "net/timer_wheel.h"
#include "quote/quote.h"

namespace sinclave::server {

struct ClusterNodeConfig {
  /// Raft identity, peers, timeouts, seed. peers must include node_id.
  cas::RaftConfig raft;
  /// SecureServer session idle TTL (0 = no reaping) and how often the
  /// sweep timer fires (one stripe per firing).
  std::chrono::nanoseconds session_idle_ttl{0};
  std::chrono::nanoseconds idle_sweep_interval{std::chrono::milliseconds(20)};
};

class ClusterNode : public cas::ReplicationGate {
 public:
  /// `identity` is the cluster-wide verifier keypair (pass the same one
  /// to every node); `seed` derives this node's seal key, DRBGs, and
  /// election jitter.
  ClusterNode(net::SimNetwork* net, quote::AttestationService* attestation,
              crypto::RsaKeyPair identity, std::uint64_t seed,
              ClusterNodeConfig config);
  ~ClusterNode() override;

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Signer keys are remembered and re-uploaded into every incarnation.
  void add_signer_key(const crypto::RsaKeyPair& signer);

  /// Boot an incarnation: fresh CasService + RaftCore over the sealed
  /// store, endpoints bound, election timer armed, sweep timer armed.
  /// Throws when the persisted blob fails to unseal or is rolled back.
  void start();
  /// Kill the incarnation: endpoints down, in-flight proposals failed
  /// kUnavailable. Durable state (store + counter) survives. Idempotent.
  void stop();
  /// stop() + start(): the host restarting the CAS enclave.
  void restart();
  bool running() const;

  /// Propose a policy install through the log (leader only; followers
  /// answer kNotLeader like any other write).
  Status install_policy(const cas::Policy& policy);

  /// ReplicationGate: called by this node's CasService on the serving
  /// paths, with no CAS lock held.
  Status register_token(const core::AttestationToken& token,
                        const std::string& session_name,
                        const sgx::Measurement& expected_mr) override;
  Status spend_token(const core::AttestationToken& token,
                     const std::string& session_name,
                     const sgx::Measurement& mr_enclave) override;
  /// Authoritative for negative token lookups only as a caught-up leader
  /// (RaftCore::ready()); a lagging replica's local miss must not become
  /// a verification verdict.
  bool ready() const override;

  const std::string& address() const { return address_; }
  std::uint64_t node_id() const { return config_.raft.node_id; }

  /// Current-incarnation accessors (tests/bench; valid while running —
  /// retired incarnations stay alive until the node is destroyed, so a
  /// pointer observed just before a restart never dangles).
  cas::CasService& cas();
  cas::RaftCore& raft();
  const cas::RaftCore& raft() const;

  /// Host-side durable state, exposed for rollback-attack tests: capture
  /// blob() before a spend, set_blob() it back after stop(), and start()
  /// must refuse.
  cas::SealedLogStore& store() { return store_; }
  cas::MonotonicCounter& counter() { return counter_; }

 private:
  cas::InstanceResponse handle_instance(const cas::InstanceRequest& request);
  void arm_sweep_locked() REQUIRES(lifecycle_);

  net::SimNetwork* net_;
  quote::AttestationService* attestation_;
  crypto::RsaKeyPair identity_;
  const std::uint64_t seed_;
  const ClusterNodeConfig config_;
  std::string address_;

  cas::MonotonicCounter counter_;
  cas::SealedLogStore store_;
  std::vector<crypto::RsaKeyPair> signer_keys_;

  mutable Mutex lifecycle_{LockRank::kClusterLifecycle, "server.cluster_node"};
  bool running_ GUARDED_BY(lifecycle_) = false;
  std::uint64_t incarnation_ GUARDED_BY(lifecycle_) = 0;
  std::unique_ptr<cas::CasService> cas_ GUARDED_BY(lifecycle_);
  std::unique_ptr<cas::RaftCore> raft_ GUARDED_BY(lifecycle_);
  /// Dead incarnations, kept alive until ~ClusterNode: an in-flight
  /// request that raced a restart still holds valid pointers (its
  /// proposals fail kUnavailable on the stopped core).
  std::vector<std::unique_ptr<cas::CasService>> retired_cas_
      GUARDED_BY(lifecycle_);
  std::vector<std::unique_ptr<cas::RaftCore>> retired_raft_
      GUARDED_BY(lifecycle_);
  net::TimerWheel::TimerId sweep_timer_ GUARDED_BY(lifecycle_) = 0;

  /// Last member: destroyed first, joining the sweep thread before the
  /// incarnations its callbacks touch go away.
  net::TimerWheel sweep_wheel_;
};

}  // namespace sinclave::server
