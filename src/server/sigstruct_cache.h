// LRU cache of pre-minted on-demand SigStructs.
//
// Every singleton enclave needs a unique MRENCLAVE, so an on-demand
// SigStruct can never be *reused* — a "cache hit" here means the ~5 ms
// RSA-CRT signature was already paid ahead of time: workers pre-mint
// credentials (token + predicted MRENCLAVE + signed SigStruct) into
// per-session pools during idle cycles, and a retrieval pops one instead
// of signing inline. One-time-token and singleton accounting are untouched:
// a pooled credential's token is registered with CasService only at the
// moment it is issued, and registered exactly once because the pop under
// the per-session lock hands each credential to exactly one request.
//
// Entries are keyed by (session, predicted MRENCLAVE); capacity is bounded
// across sessions, and the pool of the least-recently-served session is
// evicted first (its unsold credentials are simply discarded — their tokens
// were never registered, so nothing can spend them).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cas/service.h"

namespace sinclave::server {

class SigStructCache {
 public:
  explicit SigStructCache(std::size_t capacity = 4096);

  /// Deposit a pre-minted, not-yet-issued credential for `session`.
  /// May evict from the least-recently-used session if over capacity.
  void put(const std::string& session, cas::MintedCredential credential);

  /// Pop a pre-minted credential for `session`. Hit: the caller serves it
  /// (and must register its token). Miss: nullopt, mint inline.
  std::optional<cas::MintedCredential> take(const std::string& session);

  /// Like take(), but pops until `valid` accepts a credential. Rejected
  /// credentials are discarded and counted as evictions, not hits — this
  /// is how the serving layer drops entries a racing policy update made
  /// stale. `valid` runs under the per-session lock; keep it cheap.
  std::optional<cas::MintedCredential> take_if(
      const std::string& session,
      const std::function<bool(const cas::MintedCredential&)>& valid);

  /// Whether a credential with this predicted MRENCLAVE is pooled.
  bool contains(const std::string& session,
                const sgx::Measurement& mr_enclave) const;

  /// Discard every pooled credential of one session (policy update made
  /// them stale). Returns the number discarded.
  std::size_t flush(const std::string& session);

  /// Credentials pooled for one session / across all sessions.
  std::size_t pooled(const std::string& session) const;
  std::size_t size() const { return total_.load(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t evictions() const { return evictions_.load(); }

  /// Begin-refill guard: true at most once per session until end_refill.
  /// Lets exactly one worker top up a session's pool at a time.
  bool begin_refill(const std::string& session);
  void end_refill(const std::string& session);

 private:
  struct SessionPool {
    mutable std::mutex mutex;
    std::deque<cas::MintedCredential> credentials;
    std::atomic<bool> refilling{false};
    /// Position in the LRU list (most recently used at the front).
    std::list<std::string>::iterator lru_position;
  };

  /// Find-or-create the session pool and mark it most recently used.
  /// Caller must hold mutex_.
  SessionPool& touch(const std::string& session);
  void evict_over_capacity();  // caller must hold mutex_

  const std::size_t capacity_;
  mutable std::mutex mutex_;  // guards pools_ map + lru_ list
  std::unordered_map<std::string, std::unique_ptr<SessionPool>> pools_;
  std::list<std::string> lru_;
  std::atomic<std::size_t> total_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sinclave::server
