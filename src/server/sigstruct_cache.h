// LRU cache of pre-minted on-demand SigStructs.
//
// Every singleton enclave needs a unique MRENCLAVE, so an on-demand
// SigStruct can never be *reused* — a "cache hit" here means the ~5 ms
// RSA-CRT signature was already paid ahead of time: workers pre-mint
// credentials (token + predicted MRENCLAVE + signed SigStruct) into
// per-session pools during idle cycles, and a retrieval pops one instead
// of signing inline. One-time-token and singleton accounting are untouched:
// a pooled credential's token is registered with CasService only at the
// moment it is issued, and registered exactly once because the pop under
// the per-session lock hands each credential to exactly one request.
//
// Entries are keyed by (session, predicted MRENCLAVE); capacity is bounded
// across sessions, and the pool of the least-recently-served session is
// evicted first (its unsold credentials are simply discarded — their tokens
// were never registered, so nothing can spend them). A session pool drained
// to zero — by eviction, take, or flush — is erased outright, so the
// session map is bounded by live credentials, not by sessions ever served.
//
// Refill coordination is event-driven: the serving layer registers a
// low-watermark callback and is notified — outside every cache lock —
// whenever a pool's depth falls below the watermark (take, flush, or
// eviction), instead of probing pool depth on each request. The
// begin/end_refill guard that serializes refillers per session lives
// *outside* the evictable pool state on purpose: evicting and recreating a
// session's pool must not reset the guard of a refill still in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cas/service.h"
#include "common/mutex.h"

namespace sinclave::server {

class SigStructCache {
 public:
  explicit SigStructCache(std::size_t capacity = 4096);

  /// Pool-pressure notification: invoked with the session name whenever a
  /// pool's depth drops below `watermark` (after a take, flush, or
  /// eviction — including a take that misses outright). Runs outside all
  /// cache locks; it may re-enter the cache freely. One callback at a
  /// time; set before concurrent use begins.
  using LowWatermarkCallback = std::function<void(const std::string& session)>;
  void set_low_watermark(std::size_t watermark, LowWatermarkCallback callback)
      EXCLUDES(mutex_);

  /// Deposit a pre-minted, not-yet-issued credential for `session`.
  /// May evict from the least-recently-used session if over capacity.
  void put(const std::string& session, cas::MintedCredential credential)
      EXCLUDES(mutex_);

  /// Deposit a whole refill batch under one lock acquisition (the batched
  /// mint path). Eviction and low-watermark notification behave exactly
  /// like a sequence of put()s. Returns the number deposited.
  std::size_t put_all(const std::string& session,
                      std::vector<cas::MintedCredential> credentials)
      EXCLUDES(mutex_);

  /// Pop a pre-minted credential for `session`. Hit: the caller serves it
  /// (and must register its token). Miss: nullopt, mint inline.
  std::optional<cas::MintedCredential> take(const std::string& session)
      EXCLUDES(mutex_);

  /// Like take(), but pops until `valid` accepts a credential. Rejected
  /// credentials are discarded and counted as evictions, not hits — this
  /// is how the serving layer drops entries a racing policy update made
  /// stale. `valid` runs under the per-session lock; keep it cheap.
  std::optional<cas::MintedCredential> take_if(
      const std::string& session,
      const std::function<bool(const cas::MintedCredential&)>& valid)
      EXCLUDES(mutex_);

  /// Whether a credential with this predicted MRENCLAVE is pooled.
  bool contains(const std::string& session,
                const sgx::Measurement& mr_enclave) const EXCLUDES(mutex_);

  /// Discard every pooled credential of one session (policy update made
  /// them stale). Returns the number discarded.
  std::size_t flush(const std::string& session) EXCLUDES(mutex_);

  /// Credentials pooled for one session / across all sessions.
  std::size_t pooled(const std::string& session) const EXCLUDES(mutex_);
  std::size_t size() const { return total_.load(); }
  std::size_t capacity() const { return capacity_; }
  /// Distinct sessions currently holding a pool (bounded by eviction).
  std::size_t sessions() const EXCLUDES(mutex_);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t evictions() const { return evictions_.load(); }

  /// Begin-refill guard: true at most once per session until end_refill.
  /// Lets exactly one worker top up a session's pool at a time. The guard
  /// survives eviction of the session's pool (see header comment).
  bool begin_refill(const std::string& session) EXCLUDES(mutex_);
  void end_refill(const std::string& session) EXCLUDES(mutex_);

 private:
  struct SessionPool {
    mutable Mutex mutex{LockRank::kSigstructPool, "server.sigstruct_pool"};
    std::deque<cas::MintedCredential> credentials GUARDED_BY(mutex);
    /// Position in the LRU list (most recently used at the front).
    /// Guarded by the *cache* mutex_, not the pool mutex — it indexes
    /// cache-level state (a cross-object guard TSA cannot spell).
    std::list<std::string>::iterator lru_position;
  };

  /// Find-or-create the session pool and mark it most recently used.
  SessionPool& touch(const std::string& session) REQUIRES(mutex_);
  /// Sessions whose pools dropped below the watermark are appended to
  /// `starved` for the caller to notify after releasing the locks.
  void evict_over_capacity(std::vector<std::string>* starved)
      REQUIRES(mutex_);
  /// Fire the low-watermark callback for each starved session, outside
  /// all cache locks.
  void notify_starved(const std::vector<std::string>& starved)
      REQUIRES_NOT(mutex_);
  /// Erase `session`'s pool if it holds no credentials (keeps the session
  /// map bounded; the refill guard is elsewhere and unaffected).
  void erase_if_drained(const std::string& session) REQUIRES_NOT(mutex_);

  const std::size_t capacity_;
  // Guards pools_ map + lru_ list + refilling_ + the watermark pair.
  mutable Mutex mutex_{LockRank::kSigstructCache, "server.sigstruct_cache"};
  // shared_ptr (not unique_ptr): take_if works on the pool outside mutex_,
  // and eviction may erase the map entry meanwhile.
  std::unordered_map<std::string, std::shared_ptr<SessionPool>> pools_
      GUARDED_BY(mutex_);
  std::list<std::string> lru_ GUARDED_BY(mutex_);
  /// Sessions with a refill in flight — deliberately not part of the
  /// evictable SessionPool (end_refill must find it after eviction).
  std::unordered_set<std::string> refilling_ GUARDED_BY(mutex_);
  std::size_t watermark_ GUARDED_BY(mutex_) = 0;
  LowWatermarkCallback low_watermark_ GUARDED_BY(mutex_);
  std::atomic<std::size_t> total_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sinclave::server
