#include "server/policy_store.h"

namespace sinclave::server {

ShardedPolicyStore::ShardedPolicyStore(std::size_t n_shards) {
  if (n_shards == 0) n_shards = 1;
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ShardedPolicyStore::Shard& ShardedPolicyStore::shard_for(
    const std::string& session_name) const {
  const std::size_t h = std::hash<std::string>{}(session_name);
  return *shards_[h % shards_.size()];
}

std::optional<cas::Policy> ShardedPolicyStore::get(
    const std::string& session_name) {
  Shard& shard = shard_for(session_name);
  MutexLock lock(shard.mutex);
  const auto it = shard.policies.find(session_name);
  if (it == shard.policies.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ShardedPolicyStore::put(const std::string& session_name,
                             const cas::Policy& policy) {
  Shard& shard = shard_for(session_name);
  MutexLock lock(shard.mutex);
  shard.policies[session_name] = policy;
}

void ShardedPolicyStore::erase(const std::string& session_name) {
  Shard& shard = shard_for(session_name);
  MutexLock lock(shard.mutex);
  shard.policies.erase(session_name);
}

std::size_t ShardedPolicyStore::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    n += shard->policies.size();
  }
  return n;
}

}  // namespace sinclave::server
