// Sharded in-memory store of decrypted, parsed session policies.
//
// The per-request EncryptedVolume decrypt+parse is the "CAS misc" cost that
// dominates Fig. 7c; this store keeps hot policies decrypted behind
// per-shard mutexes so concurrent workers only contend when their sessions
// hash to the same shard. CasService writes through it on install_policy,
// so a cached policy is never staler than the encrypted DB.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cas/service.h"
#include "common/mutex.h"

namespace sinclave::server {

class ShardedPolicyStore : public cas::PolicyCache {
 public:
  explicit ShardedPolicyStore(std::size_t n_shards = 16);

  std::optional<cas::Policy> get(const std::string& session_name) override;
  void put(const std::string& session_name,
           const cas::Policy& policy) override;
  void erase(const std::string& session_name) override;

  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

 private:
  struct Shard {
    mutable Mutex mutex{LockRank::kPolicyShard, "server.policy_shard"};
    std::unordered_map<std::string, cas::Policy> policies GUARDED_BY(mutex);
  };

  Shard& shard_for(const std::string& session_name) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace sinclave::server
