#include "server/cas_server.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "core/predictor.h"

namespace sinclave::server {

namespace {
using Clock = std::chrono::steady_clock;

/// Answer a frame with a blanket refusal (shed / deadline-exceeded) in
/// whatever wire flavor it arrived in: serve_instance_frame handles
/// envelope, legacy, and introspect frames alike and never throws on
/// malformed input — so overload answers are as typed and parseable as
/// served ones, at frame-decode cost only.
Bytes refusal_frame(const Bytes& raw, const Status& status,
                    cas::FrameInfo* frame) {
  return cas::serve_instance_frame(
      raw,
      [&](const cas::InstanceRequest&) {
        cas::InstanceResponse resp;
        resp.status = status;
        return resp;
      },
      [&](const cas::IntrospectRequest&) {
        cas::IntrospectResponse resp;
        resp.status = status;
        return resp;
      },
      frame);
}

}  // namespace

CasServer::CasServer(cas::CasService* cas, CasServerConfig config)
    : cas_(cas),
      config_(config),
      policy_store_(config.policy_shards),
      sigstruct_cache_(config.sigstruct_cache_capacity),
      pool_(config.workers) {
  if (cas_ == nullptr) throw Error("server: cas service required");
  cas_->set_policy_cache(&policy_store_);
  // Every registry snapshot pulls this frontend's counters — and first
  // refreshes the secure-channel mirrors and the legacy-frame split that
  // only CasService (past the encryption boundary) can classify, so an
  // export is never stale no matter how long ago anyone last called
  // refresh_secure_metrics() by hand.
  collector_id_ = cas_->metrics_registry().add_collector(
      [this](obs::MetricsSnapshot& snap) {
        refresh_secure_metrics();
        const auto frames = cas_->secure_frame_stats();
        atomic_fetch_max(metrics_.attest.legacy_frames, frames.attest_legacy);
        atomic_fetch_max(metrics_.get_config.legacy_frames,
                         frames.config_legacy);
        metrics_.collect(snap);
        snap.counter("policy_cache_hits", policy_store_.hits());
        snap.counter("policy_cache_misses", policy_store_.misses());
      });
  if (config_.premint_depth > 0 || config_.refill_watermark > 0) {
    // Refills are driven by pool pressure: the cache tells us when a
    // session dropped below the watermark; nobody probes depth per
    // request anymore.
    const std::size_t watermark = config_.refill_watermark != 0
                                      ? config_.refill_watermark
                                      : config_.premint_depth;
    sigstruct_cache_.set_low_watermark(
        watermark, [this](const std::string& session) {
          schedule_refill(session);
        });
  }
  if (config_.session_idle_ttl.count() > 0) {
    net::SecureServerOptions options;
    options.idle_ttl = config_.session_idle_ttl;
    cas_->set_secure_server_options(options);
    arm_idle_sweep();
  }
}

void CasServer::arm_idle_sweep() {
  try {
    timer_.schedule_after(config_.idle_sweep_interval, [this] {
      // cas_ is borrowed and outlives this server, so the tick fired by
      // the wheel destructor is still safe.
      cas_->sweep_idle_sessions();
      arm_idle_sweep();
    });
  } catch (const Error&) {
    // Timer wheel shutting down: the server is being destroyed.
  }
}

CasServer::~CasServer() {
  // Unregister before anything else dies: remove_collector returns only
  // once no in-flight snapshot is inside our callback.
  cas_->metrics_registry().remove_collector(collector_id_);
  unbind();
  // Detach the store: it dies with this server, and CasService must not
  // keep a pointer into it. Still-draining refill jobs fall back to the
  // encrypted DB, which stays correct.
  cas_->set_policy_cache(nullptr);
  // ThreadPool's destructor drains in-flight and queued jobs (which may
  // park stalls on timer_; the wheel outlives the pool) before the caches
  // above go away.
}

void CasServer::bind(net::SimNetwork& net, const std::string& address) {
  net.listen_async(address + ".instance",
                   [this](ByteView raw, net::SimNetwork::Completion done) {
                     accept_instance(Bytes(raw.begin(), raw.end()),
                                     std::move(done));
                   });
  try {
    net.listen_async(address,
                     [this](ByteView raw, net::SimNetwork::Completion done) {
                       accept_attest(Bytes(raw.begin(), raw.end()),
                                     std::move(done));
                     });
  } catch (...) {
    // Half-bound server: tear down the instance listener (its handler
    // captures `this`) before reporting the failure.
    net.shutdown(address + ".instance");
    throw;
  }
  net_ = &net;
  address_ = address;
}

void CasServer::unbind() {
  if (net_ == nullptr) return;
  // shutdown() waits for every accepted request to *complete* — including
  // ones parked on the timer wheel — so after this returns no state
  // machine references the listeners.
  net_->shutdown(address_ + ".instance");
  net_->shutdown(address_);
  net_ = nullptr;
  refresh_secure_metrics();
}

void CasServer::refresh_secure_metrics() {
  // On demand, never per record: mirroring three shared atomics on the
  // fast path would reintroduce exactly the cross-core line bouncing the
  // striped design removed. The SecureServer atomics are the source of
  // truth and all monotone; fetch-max keeps the mirror monotone too even
  // when two refreshes race out of order.
  const auto secure = cas_->secure_channel_stats();
  atomic_fetch_max(metrics_.handshake_stripe_collisions,
                   secure.stripe_collisions);
  atomic_fetch_max(metrics_.secure_sessions_opened,
                   secure.sessions_opened);
  atomic_fetch_max(metrics_.secure_sessions_high_water,
                   secure.sessions_high_water);
}

void CasServer::respond(Clock::time_point accepted,
                        LatencyHistogram* histogram, Bytes response,
                        const net::SimNetwork::Completion& done,
                        const obs::TraceContext& ctx, obs::Phase* root,
                        std::int64_t accepted_ns) {
  // Metrics (and the trace's root span) land before the completion fires
  // so a caller that observed the response always observes its own
  // request in the counters — and its own trace via introspection.
  static obs::Phase& p_respond = obs::Tracer::instance().phase("respond");
  const std::int64_t respond_start = obs::Tracer::now_ns();
  histogram->record(Clock::now() - accepted);
  metrics_.leave_in_flight();
  if (root != nullptr && ctx.active()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.record_phase_span(p_respond, ctx, respond_start,
                             obs::Tracer::now_ns(), 1);
    tracer.record_phase_root(*root, ctx, accepted_ns, obs::Tracer::now_ns());
  }
  done(std::move(response));
}

void CasServer::note_frame(CommandMetrics& command,
                           const cas::FrameInfo& frame) {
  if (frame.legacy) ++command.legacy_frames;
  switch (frame.status) {
    case StatusCode::kMalformedRequest:
      ++metrics_.malformed_frames;
      break;
    case StatusCode::kUnsupportedVersion:
      ++metrics_.unsupported_version_frames;
      break;
    case StatusCode::kUnknownCommand:
      ++metrics_.unknown_command_frames;
      break;
    default:
      break;
  }
  if (frame.status != StatusCode::kOk) ++command.errors;
}

void CasServer::accept_instance(Bytes raw, net::SimNetwork::Completion done) {
  // Stage 1 — accept, on the client's thread: account, open the trace
  // (the request_id is peekable from the cleartext envelope header), and
  // enqueue. The client thread is never borrowed for serving work.
  static obs::Phase& p_queue = obs::Tracer::instance().phase("queue_wait");
  static obs::Phase& p_serve = obs::Tracer::instance().phase("serve_frame");
  static obs::Phase& p_stall =
      obs::Tracer::instance().phase("backend_stall");
  static obs::Phase& p_root =
      obs::Tracer::instance().phase("request_get_instance");
  static obs::Phase& p_root_introspect =
      obs::Tracer::instance().phase("request_introspect");
  const auto accepted = Clock::now();
  obs::TraceContext ctx;
  ctx.trace_id = obs::Tracer::instance().new_trace_id();
  ctx.request_id = cas::Envelope::peek_request_id(raw).value_or(0);
  const std::int64_t accepted_ns = obs::Tracer::now_ns();
  ++metrics_.get_instance.requests;
  metrics_.enter_in_flight();
  // Admission control, on the accept thread: past the limit the request
  // is shed — answered right now with a typed kUnavailable carrying a
  // retry-after hint, never queued and never silently dropped. The gauge
  // includes this request, so the test is `> limit`: at most the number
  // of concurrently-accepting client threads can overshoot the limit.
  if (config_.admission_limit != 0 &&
      metrics_.requests_in_flight.load(std::memory_order_relaxed) >
          config_.admission_limit) {
    ++metrics_.requests_shed;
    const Status shed(StatusCode::kUnavailable,
                      retry_after_detail(config_.shed_retry_after));
    cas::FrameInfo frame;
    Bytes out = refusal_frame(raw, shed, &frame);
    note_frame(metrics_.get_instance, frame);
    respond(accepted, &metrics_.get_instance.latency, std::move(out), done,
            ctx, &p_root, accepted_ns);
    return;
  }
  const auto deadline = accepted + config_.request_deadline;
  auto job = [this, raw = std::move(raw), done, accepted, deadline, ctx,
              accepted_ns]() mutable {
    // Stage 2 — serve, on a worker: decode (envelope or legacy) + policy
    // + verify + credential. serve_instance_frame contains deserializer
    // failures — a malformed or truncated frame answers a typed
    // kMalformedRequest, it can never escape this worker as an exception.
    if (ctx.active()) {
      obs::Tracer::instance().record_phase_span(p_queue, ctx, accepted_ns,
                                                obs::Tracer::now_ns(), 1);
    }
    obs::TraceScope scope(ctx);
    // Deadline check before any work: a request is doomed when queue wait
    // already ate its budget, or when what remains cannot cover the
    // backend stall. Answering kDeadlineExceeded *here* means no
    // credential is ever minted for a doomed request (exactly-once
    // accounting stays exact: tokens issued == ok responses delivered)
    // and no timer slot is occupied by one.
    if (config_.request_deadline.count() > 0) {
      const auto now = Clock::now();
      if (now + config_.backend_io > deadline) {
        ++metrics_.deadline_exceeded;
        const char* phase =
            now > deadline ? "queue-wait" : "backend-stall";
        const Status expired(StatusCode::kDeadlineExceeded,
                             deadline_phase_detail(phase));
        cas::FrameInfo frame;
        Bytes out = refusal_frame(raw, expired, &frame);
        note_frame(metrics_.get_instance, frame);
        respond(accepted, &metrics_.get_instance.latency, std::move(out),
                done, ctx, &p_root, accepted_ns);
        return;
      }
    }
    Bytes out;
    obs::Phase* root = &p_root;
    try {
      cas::FrameInfo frame;
      {
        obs::Span span(p_serve);
        out = cas::serve_instance_frame(
            raw,
            [this](const cas::InstanceRequest& req) {
              return serve_instance(req);
            },
            [this](const cas::IntrospectRequest& req) {
              return cas_->handle_introspect(req);
            },
            &frame);
      }
      if (frame.command == cas::Command::kIntrospect)
        root = &p_root_introspect;
      note_frame(metrics_.get_instance, frame);
    } catch (...) {
      metrics_.leave_in_flight();
      done.fail(std::current_exception());
      return;
    }
    // Stage 3 — stall: the backend round trip parks on the timer wheel,
    // freeing this worker; stage 4 (respond) runs when it expires.
    // Respond is deliberately inline on the timer thread: it is
    // non-blocking (histogram + gauge + completion), and a hop back
    // through the pool would add queueing just to deliver bytes. If
    // client callbacks ever grow heavy, re-enqueue here instead.
    if (config_.backend_io.count() > 0) {
      // The payload rides in a shared_ptr so the fallback below can still
      // deliver it: the lambda argument is constructed (consuming the
      // capture) before schedule_after can throw, so a plain move would
      // leave the catch path holding a moved-from response.
      auto payload = std::make_shared<Bytes>(std::move(out));
      const std::int64_t stall_start = obs::Tracer::now_ns();
      try {
        timer_.schedule_after(
            config_.backend_io,
            [this, payload, done, accepted, ctx, root, accepted_ns,
             stall_start]() {
              if (ctx.active()) {
                obs::Tracer::instance().record_phase_span(
                    p_stall, ctx, stall_start, obs::Tracer::now_ns(), 1);
              }
              respond(accepted, &metrics_.get_instance.latency,
                      std::move(*payload), done, ctx, root, accepted_ns);
            });
        return;
      } catch (const Error&) {
        // Wheel shutting down: respond inline rather than dropping.
        respond(accepted, &metrics_.get_instance.latency, std::move(*payload),
                done, ctx, root, accepted_ns);
        return;
      }
    }
    respond(accepted, &metrics_.get_instance.latency, std::move(out), done,
            ctx, root, accepted_ns);
  };
  try {
    pool_.submit(std::move(job));
  } catch (const Error&) {
    // Pool shutting down; the dropped Completion would deliver an error
    // anyway, but do it crisply and keep the gauge honest.
    metrics_.leave_in_flight();
    done.fail(std::make_exception_ptr(Error("server: shutting down")));
  }
}

void CasServer::accept_attest(Bytes raw, net::SimNetwork::Completion done) {
  // Counted and clocked at accept, exactly like the instance endpoint, so
  // the histograms are comparable (all include queue wait) and a request
  // rejected at submit is still a counted request. The secure endpoint's
  // counters split per command on the cleartext record type: handshakes
  // are kAttest, in-session records are kGetConfig.
  static obs::Phase& p_queue = obs::Tracer::instance().phase("queue_wait");
  static obs::Phase& p_root_attest =
      obs::Tracer::instance().phase("request_attest");
  static obs::Phase& p_root_config =
      obs::Tracer::instance().phase("request_get_config");
  const auto accepted = Clock::now();
  const bool is_data = net::classify_record(raw) == net::RecordType::kData;
  CommandMetrics& command = is_data ? metrics_.get_config : metrics_.attest;
  obs::Phase* root = is_data ? &p_root_config : &p_root_attest;
  obs::TraceContext ctx;
  ctx.trace_id = obs::Tracer::instance().new_trace_id();
  // Data records carry their session id as cleartext framing; handshakes
  // get theirs late-bound (TraceScope::set_session) when the SecureServer
  // allocates it. The envelope's request_id only decrypts in-session, so
  // it stays 0 at this layer.
  ctx.session_id = net::peek_session_id(raw).value_or(0);
  const std::int64_t accepted_ns = obs::Tracer::now_ns();
  ++command.requests;
  metrics_.enter_in_flight();
  // Admission control mirrors the instance endpoint. The secure wire has
  // no cleartext response frame to put a Status in before a session
  // exists, so the shed is a typed transport failure carrying the
  // canonical retry-after detail — clients surface it as kUnavailable.
  if (config_.admission_limit != 0 &&
      metrics_.requests_in_flight.load(std::memory_order_relaxed) >
          config_.admission_limit) {
    ++metrics_.requests_shed;
    ++command.errors;
    metrics_.leave_in_flight();
    done.fail(std::make_exception_ptr(
        Error(retry_after_detail(config_.shed_retry_after))));
    return;
  }
  auto job = [this, raw = std::move(raw), done, accepted, ctx, accepted_ns,
              root, command = &command]() mutable {
    if (ctx.active()) {
      obs::Tracer::instance().record_phase_span(p_queue, ctx, accepted_ns,
                                                obs::Tracer::now_ns(), 1);
    }
    // This frontend owns the trace: CasService::handle_secure sees the
    // active scope and records its phases into it instead of opening a
    // second root.
    obs::TraceScope scope(ctx);
    Bytes out;
    try {
      out = cas_->handle_secure(raw);
    } catch (...) {
      // SecureServer answers malformed records itself; anything escaping
      // here is an internal fault, counted against the command.
      ++command->errors;
      metrics_.leave_in_flight();
      done.fail(std::current_exception());
      return;
    }
    // The handshake may have late-bound the session id into our scope.
    respond(accepted, &command->latency, std::move(out), done,
            obs::TraceScope::current(), root, accepted_ns);
  };
  try {
    pool_.submit(std::move(job));
  } catch (const Error&) {
    metrics_.leave_in_flight();
    done.fail(std::make_exception_ptr(Error("server: shutting down")));
  }
}

cas::InstanceResponse CasServer::handle_instance(
    const cas::InstanceRequest& request) {
  static obs::Phase& p_root =
      obs::Tracer::instance().phase("request_get_instance");
  static obs::Phase& p_stall =
      obs::Tracer::instance().phase("backend_stall");
  const auto start = Clock::now();
  obs::TraceContext ctx;
  ctx.trace_id = obs::Tracer::instance().new_trace_id();
  const std::int64_t start_ns = obs::Tracer::now_ns();
  obs::TraceScope scope(ctx);
  ++metrics_.get_instance.requests;

  // Direct synchronous callers pay the stall inline; only the network
  // path gets the event-driven deferral.
  if (config_.backend_io.count() > 0) {
    obs::Span span(p_stall);
    std::this_thread::sleep_for(config_.backend_io);
  }

  cas::InstanceResponse resp = serve_instance(request);

  if (!resp.ok()) ++metrics_.get_instance.errors;
  metrics_.get_instance.latency.record(Clock::now() - start);
  if (ctx.active()) {
    obs::Tracer::instance().record_phase_root(p_root, ctx, start_ns,
                                              obs::Tracer::now_ns());
  }
  return resp;
}

bool CasServer::check_common(const cas::Policy& policy,
                             const cas::InstanceRequest& request,
                             Status* status) {
  bool flush_stale_pool = false;
  bool verified = false;
  {
    MutexLock lock(verified_mutex_);
    const auto it = verified_common_.find(policy.session_name);
    if (it != verified_common_.end()) {
      if (it->second.base_hash != *policy.base_hash ||
          it->second.expected_signer != policy.expected_signer) {
        // The policy rotated under the memo (new base hash, or a new
        // signer pin — the memoized SigStruct may be signed by a now
        // de-pinned signer): everything derived from the old memo — the
        // memo itself and any pooled pre-minted credentials — is stale.
        verified_common_.erase(it);
        flush_stale_pool = true;
      } else if (it->second.sigstruct == request.common_sigstruct) {
        verified = true;  // repeat retrieval: skip the RSA verification
      }
      // Same base hash + signer but a different SigStruct (re-signed
      // image, e.g. bumped SVN): pooled credentials copied their metadata
      // from the old one — flushed once the new SigStruct verifies below.
    }
  }
  if (flush_stale_pool) sigstruct_cache_.flush(policy.session_name);
  if (verified) return true;

  if (!request.common_sigstruct.signature_valid()) {
    *status = Status(StatusCode::kBadSignature);
    return false;
  }
  if (request.common_sigstruct.mr_signer() != policy.expected_signer) {
    *status = Status(StatusCode::kWrongSigner);
    return false;
  }
  const sgx::Measurement expected_common =
      core::MeasurementPredictor::predict_common(*policy.base_hash);
  if (request.common_sigstruct.enclave_hash != expected_common) {
    *status = Status(StatusCode::kBaseHashMismatch);
    return false;
  }
  bool replaced_same_base = false;
  {
    MutexLock lock(verified_mutex_);
    auto& entry = verified_common_[policy.session_name];
    replaced_same_base = entry.base_hash == *policy.base_hash &&
                         !(entry.sigstruct == request.common_sigstruct);
    entry = VerifiedCommon{*policy.base_hash, policy.expected_signer,
                           request.common_sigstruct};
  }
  if (replaced_same_base) sigstruct_cache_.flush(policy.session_name);
  return true;
}

cas::InstanceResponse CasServer::serve_instance(
    const cas::InstanceRequest& request) {
  static obs::Phase& p_verify =
      obs::Tracer::instance().phase("verify_common");
  static obs::Phase& p_cred = obs::Tracer::instance().phase("credential");
  cas::InstanceResponse resp;

  const auto policy = cas_->get_policy(request.session_name);
  if (!policy.has_value()) {
    resp.status = Status(StatusCode::kUnknownSession);
    return resp;
  }
  if (const auto refused = cas_->check_retrieval_preconditions(*policy)) {
    resp.status = Status(*refused);
    return resp;
  }
  {
    obs::Span span(p_verify);
    if (!check_common(*policy, request, &resp.status)) return resp;
  }
  obs::Span cred_span(p_cred);

  // Pooled credentials self-validate at pop time: a refill racing a
  // policy update could deposit stale entries after the stale-pool flush.
  // A credential is served only if (a) its MRENCLAVE re-predicts under
  // the *current* base hash (~the 32 us predict cost; the ~5 ms signature
  // stays skipped) and (b) its SigStruct carries exactly the metadata of
  // the just-verified common one — which catches even a re-signed image
  // with unchanged base hash and signer.
  const auto valid = [&](const cas::MintedCredential& c) {
    core::InstancePage page;
    page.token = c.token;
    page.verifier_id = cas_->verifier_id();
    const auto& common = request.common_sigstruct;
    return core::MeasurementPredictor::predict(*policy->base_hash, page) ==
               c.mr_enclave &&
           c.sigstruct.signer_key == common.signer_key &&
           c.sigstruct.attributes == common.attributes &&
           c.sigstruct.attribute_mask == common.attribute_mask &&
           c.sigstruct.isv_prod_id == common.isv_prod_id &&
           c.sigstruct.isv_svn == common.isv_svn &&
           c.sigstruct.date == common.date &&
           c.sigstruct.debug_allowed == common.debug_allowed;
  };
  cas::MintedCredential cred;
  auto pooled = sigstruct_cache_.take_if(request.session_name, valid);
  if (pooled.has_value()) {
    ++metrics_.sigstruct_cache_hits;
    cred = std::move(*pooled);
  } else {
    ++metrics_.sigstruct_cache_misses;
    cred = cas_->mint_credential(*policy, request.common_sigstruct);
  }

  // Arm the one-time token. Pre-minted or not, a credential reaches this
  // line exactly once (the pool pop is exclusive), so each token is
  // registered exactly once.
  cas_->register_token(cred.token, request.session_name, cred.mr_enclave);
  ++metrics_.tokens_issued;

  resp.status = Status();
  resp.token = cred.token;
  resp.verifier_id = cas_->verifier_id();
  resp.singleton_sigstruct = cred.sigstruct;
  return resp;
}

void CasServer::schedule_refill(const std::string& session) {
  const std::size_t target = refill_target();
  if (target == 0) return;
  if (!sigstruct_cache_.begin_refill(session)) return;  // refill in flight
  ++metrics_.refills_scheduled;

  const auto refill = [this, session, target] {
    try {
      const auto policy = cas_->get_policy(session);
      std::optional<VerifiedCommon> common;
      if (policy.has_value() && policy->base_hash.has_value()) {
        MutexLock lock(verified_mutex_);
        const auto it = verified_common_.find(session);
        if (it != verified_common_.end() &&
            it->second.base_hash == *policy->base_hash &&
            it->second.expected_signer == policy->expected_signer)
          common = it->second;
      }
      if (common.has_value()) {
        // Bounded top-up in batches: each round coalesces the current
        // deficit (capped by the batch size and by cache capacity — a
        // refill whose puts only evict someone else's pool, firing their
        // low-watermark callback and minting forever round-robin, is pure
        // churn) into one mint_batch call, so the per-batch costs — the
        // common-SigStruct verification, the RNG lock, the signature
        // scratch arena — are paid once per k credentials, not per one.
        // The deficit is measured once at job entry, like the old
        // per-credential loop: a hot session draining the pool as fast as
        // we fill it must not pin this worker (and the refill guard) in
        // here forever — it gets a fresh job from the next low-watermark
        // event instead. Each chunk re-checks cache capacity (and re-runs
        // the ~20us cached-context verify inside mint_batch — noise next
        // to the chunk's signatures) so a refill never overshoots a cache
        // that filled up meanwhile.
        const std::size_t batch_cap =
            std::max<std::size_t>(1, config_.mint_batch);
        const std::size_t have = sigstruct_cache_.pooled(session);
        std::size_t deficit = have < target ? target - have : 0;
        while (deficit > 0) {
          const std::size_t size_now = sigstruct_cache_.size();
          const std::size_t capacity = sigstruct_cache_.capacity();
          if (size_now >= capacity) break;
          const std::size_t want =
              std::min({deficit, batch_cap, capacity - size_now});
          auto batch = cas_->mint_batch(*policy, common->sigstruct, want);
          ++metrics_.mint_batches;
          metrics_.preminted_credentials += batch.size();
          deficit -= batch.size();
          sigstruct_cache_.put_all(session, std::move(batch));
        }
      }
    } catch (...) {
      // Refill is best-effort; the serving path mints inline on a miss.
      // Catch-all, not catch(Error): any escape past end_refill would
      // leak the guard and starve this session's refills forever.
    }
    sigstruct_cache_.end_refill(session);
  };
  try {
    pool_.submit(refill);
  } catch (const Error&) {
    sigstruct_cache_.end_refill(session);  // pool shutting down
  }
}

std::size_t CasServer::premint(const std::string& session,
                               const sgx::SigStruct& common_sigstruct,
                               std::size_t n) {
  const auto policy = cas_->get_policy(session);
  if (!policy.has_value() ||
      cas_->check_retrieval_preconditions(*policy).has_value())
    return 0;
  cas::InstanceRequest probe;
  probe.session_name = session;
  probe.common_sigstruct = common_sigstruct;
  Status status;
  if (!check_common(*policy, probe, &status)) return 0;

  // Warm-up minting is batched too, chunked so one premint call cannot
  // monopolize the RNG lock for an unbounded stretch.
  const std::size_t batch_cap = std::max<std::size_t>(1, config_.mint_batch);
  for (std::size_t minted = 0; minted < n;) {
    const std::size_t want = std::min(batch_cap, n - minted);
    auto batch = cas_->mint_batch(*policy, common_sigstruct, want);
    ++metrics_.mint_batches;
    metrics_.preminted_credentials += batch.size();
    minted += batch.size();
    sigstruct_cache_.put_all(session, std::move(batch));
  }
  return n;
}

}  // namespace sinclave::server
