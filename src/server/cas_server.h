// Concurrent CAS serving layer: a thread-pooled frontend for CasService.
//
// The seed's CasService serves one request at a time and re-does three
// expensive steps on every singleton retrieval (Fig. 7c): decrypt+parse the
// session policy ("CAS misc"), RSA-verify the received common SigStruct,
// and RSA-CRT-sign the on-demand SigStruct (~5 ms at 3072 bit). CasServer
// turns that into a fleet-capable service:
//
//   * a fixed-size worker pool drains requests from both endpoints (the
//     plain instance endpoint and the secure attestation endpoint), so
//     independent requests overlap instead of serializing,
//   * a sharded policy store (server/policy_store.h) keeps hot policies
//     decrypted — attached to CasService as its PolicyCache, write-through
//     on install_policy,
//   * a verify-once memo per session skips the repeat RSA verification of
//     an already-seen common SigStruct (invalidated when the session's
//     base hash changes),
//   * an LRU SigStruct cache (server/sigstruct_cache.h) serves pre-minted
//     credentials so the hot path skips the RSA-CRT signature; workers
//     refill per-session pools in the background,
//   * metrics (server/metrics.h): atomic counters and latency histograms
//     with p50/p99, exposed via metrics().
//
// Security invariants are inherited, not relaxed: every issued token is
// registered exactly once with CasService's mutex-guarded token table, so
// one-time-token and singleton guarantees hold under any interleaving
// (tests/test_server.cpp races them).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cas/service.h"
#include "core/base_hash.h"
#include "net/sim_network.h"
#include "server/metrics.h"
#include "server/policy_store.h"
#include "server/sigstruct_cache.h"
#include "server/thread_pool.h"

namespace sinclave::server {

struct CasServerConfig {
  /// Worker threads draining the request queue.
  std::size_t workers = 4;
  /// Shards of the decrypted-policy store.
  std::size_t policy_shards = 16;
  /// Total pre-minted credentials held across sessions (LRU-evicted).
  std::size_t sigstruct_cache_capacity = 4096;
  /// Keep this many credentials pre-minted per hot session (0 = no
  /// background pre-minting; pools can still be warmed via premint()).
  std::size_t premint_depth = 0;
  /// Simulated per-request backend I/O stall (the storage / attestation-
  /// provider round trips a production CAS pays per request). Always a
  /// real sleep; benchmarks use it to model the latency-bound regime in
  /// which a thread pool earns its keep.
  std::chrono::microseconds backend_io{0};
};

class CasServer {
 public:
  /// `cas` is borrowed and must outlive the server. The constructor
  /// attaches the sharded policy store to it as its PolicyCache.
  CasServer(cas::CasService* cas, CasServerConfig config = {});
  ~CasServer();

  CasServer(const CasServer&) = delete;
  CasServer& operator=(const CasServer&) = delete;

  /// Serve `address` (secure attestation) and `address + ".instance"`
  /// (plain starter endpoint) — same wire protocol as CasService::bind,
  /// but every request is dispatched through the worker pool.
  void bind(net::SimNetwork& net, const std::string& address);
  /// Stop accepting new requests (idempotent; also runs on destruction).
  void unbind();

  /// The pooled fast path; also callable directly (benchmarks).
  cas::InstanceResponse handle_instance(const cas::InstanceRequest& request);

  /// Warm the SigStruct pool: verify `common_sigstruct` for `session`
  /// once, then mint `n` credentials into the cache. Returns the number
  /// actually minted (0 when the session/sigstruct does not check out).
  std::size_t premint(const std::string& session,
                      const sgx::SigStruct& common_sigstruct, std::size_t n);

  const CasServerConfig& config() const { return config_; }
  ServerMetrics& metrics() { return metrics_; }
  ShardedPolicyStore& policy_store() { return policy_store_; }
  SigStructCache& sigstruct_cache() { return sigstruct_cache_; }
  ThreadPool& pool() { return pool_; }

 private:
  /// A session's verified common SigStruct + the policy facts it was
  /// checked against (skips repeat RSA verification; feeds background
  /// refills). Structural comparisons only — no per-request serialization.
  struct VerifiedCommon {
    core::BaseHash base_hash;
    Hash256 expected_signer;
    sgx::SigStruct sigstruct;
  };

  cas::InstanceResponse serve_instance(const cas::InstanceRequest& request);
  /// Checks the request's common SigStruct (memoized). Returns false and
  /// fills `error` on rejection.
  bool check_common(const cas::Policy& policy,
                    const cas::InstanceRequest& request, std::string* error);
  void maybe_refill(const std::string& session);
  Bytes dispatch(std::function<Bytes()> work);

  cas::CasService* cas_;
  CasServerConfig config_;
  ServerMetrics metrics_;
  ShardedPolicyStore policy_store_;
  SigStructCache sigstruct_cache_;

  std::mutex verified_mutex_;
  std::unordered_map<std::string, VerifiedCommon> verified_common_;

  net::SimNetwork* net_ = nullptr;
  std::string address_;

  // Last member: destroyed first, so draining workers can still touch the
  // caches and metrics above.
  ThreadPool pool_;
};

}  // namespace sinclave::server
