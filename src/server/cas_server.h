// Event-driven CAS serving layer: a completion-based frontend for
// CasService.
//
// The seed's CasService serves one request at a time and re-does three
// expensive steps on every singleton retrieval (Fig. 7c): decrypt+parse the
// session policy ("CAS misc"), RSA-verify the received common SigStruct,
// and RSA-CRT-sign the on-demand SigStruct (~5 ms at 3072 bit). PR 1's
// CasServer pooled the CPU work but still parked one thread per request on
// a future — concurrency was capped by thread count even when every worker
// was stalled on backend I/O. This version makes a request a small state
// machine that never pins a worker while waiting:
//
//     accept (client thread)      — count it, raise the in-flight gauge,
//                                   enqueue to the worker pool
//     serve  (worker thread)      — parse -> policy lookup -> verify-once
//                                   memo -> pooled credential | inline sign
//     stall  (timer wheel)        — the simulated backend-I/O round trip
//                                   parks on net::TimerWheel, freeing the
//                                   worker for the next request
//     respond (timer/worker)      — record latency, drop the gauge, fire
//                                   the network Completion
//
// so 8 workers sustain hundreds of concurrent in-flight requests in the
// latency-bound regime instead of 8. Supporting cast:
//
//   * a sharded policy store (server/policy_store.h) keeps hot policies
//     decrypted — attached to CasService as its PolicyCache, write-through
//     on install_policy,
//   * a verify-once memo per session skips the repeat RSA verification of
//     an already-seen common SigStruct (invalidated when the session's
//     base hash changes),
//   * an LRU SigStruct cache (server/sigstruct_cache.h) serves pre-minted
//     credentials so the hot path skips the RSA-CRT signature; refills are
//     scheduled by pool pressure — the cache's low-watermark callback
//     wakes a refiller when a pool runs dry, replacing the per-request
//     depth probe,
//   * metrics (server/metrics.h): atomic counters, the in-flight gauge +
//     high-water mark, and latency histograms with p50/p99.
//
// Security invariants are inherited, not relaxed: every issued token is
// registered exactly once with CasService's mutex-guarded token table, so
// one-time-token and singleton guarantees hold under any interleaving
// (tests/test_server.cpp races them).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "cas/service.h"
#include "common/mutex.h"
#include "core/base_hash.h"
#include "net/sim_network.h"
#include "net/timer_wheel.h"
#include "obs/trace.h"
#include "server/metrics.h"
#include "server/policy_store.h"
#include "server/sigstruct_cache.h"
#include "server/thread_pool.h"

namespace sinclave::server {

struct CasServerConfig {
  /// Worker threads draining the request queue.
  std::size_t workers = 4;
  /// Shards of the decrypted-policy store.
  std::size_t policy_shards = 16;
  /// Total pre-minted credentials held across sessions (LRU-evicted).
  std::size_t sigstruct_cache_capacity = 4096;
  /// Keep this many credentials pre-minted per hot session (0 = no
  /// background pre-minting; pools can still be warmed via premint()).
  std::size_t premint_depth = 0;
  /// Schedule a refill when a session's pool drops below this depth
  /// (0 = premint_depth, i.e. top up whenever the pool is not full).
  std::size_t refill_watermark = 0;
  /// Credentials signed per refill batch: one worker wakeup coalesces up
  /// to this much pool deficit into a single CasService::mint_batch call
  /// (one common-SigStruct verification, one RNG critical section, one
  /// scratch arena) and deposits the result under one cache lock.
  std::size_t mint_batch = 8;
  /// Simulated per-request backend I/O stall (the storage / attestation-
  /// provider round trips a production CAS pays per request). On the
  /// network path the stall parks on the timer wheel — it costs latency,
  /// never a worker; the direct handle_instance() path sleeps inline.
  std::chrono::microseconds backend_io{0};
  /// Admission cap on accepted-but-unanswered requests (queued + serving
  /// + stalled), 0 = unbounded. Arrivals beyond it are *shed*: answered
  /// immediately on the accept thread with a typed kUnavailable carrying
  /// a retry-after hint — never queued, never a silent drop, and never a
  /// worker's time.
  std::size_t admission_limit = 0;
  /// The retry-after hint attached to shed responses (clients pace their
  /// next retry by it; see RetryPolicy).
  std::chrono::milliseconds shed_retry_after{5};
  /// Per-request deadline covering the whole server-side life of a
  /// request — queue wait through backend stall (0 = none). A request
  /// whose remaining budget, after queue wait, cannot cover the backend
  /// stall is answered kDeadlineExceeded *before* serving: no credential
  /// is minted for a doomed request, and no timer slot is occupied by
  /// one.
  std::chrono::microseconds request_deadline{0};
  /// Reap secure-channel sessions idle at least this long (0 = never; the
  /// pre-TTL behavior). Abandoned sessions — clients that attested and
  /// vanished — otherwise hold keys forever; see SecureServerOptions.
  std::chrono::microseconds session_idle_ttl{0};
  /// How often the idle sweep fires on the timer wheel. Each firing scans
  /// ONE session-table stripe (round-robin), so a full table pass takes
  /// session_stripes firings and no single sweep stalls serving.
  std::chrono::microseconds idle_sweep_interval{10'000};
};

class CasServer {
 public:
  /// `cas` is borrowed and must outlive the server. The constructor
  /// attaches the sharded policy store to it as its PolicyCache.
  CasServer(cas::CasService* cas, CasServerConfig config = {});
  ~CasServer();

  CasServer(const CasServer&) = delete;
  CasServer& operator=(const CasServer&) = delete;

  /// Serve `address` (secure attestation) and `address + ".instance"`
  /// (plain starter endpoint) — same wire protocol as CasService::bind,
  /// but every request runs through the event-driven state machine above.
  void bind(net::SimNetwork& net, const std::string& address);
  /// Stop accepting new requests and wait for in-flight ones to complete
  /// (idempotent; also runs on destruction).
  void unbind();

  /// Synchronous fast path for direct callers (benchmarks, tests); the
  /// backend-I/O stall, if configured, is slept inline here.
  cas::InstanceResponse handle_instance(const cas::InstanceRequest& request);

  /// Warm the SigStruct pool: verify `common_sigstruct` for `session`
  /// once, then mint `n` credentials into the cache. Returns the number
  /// actually minted (0 when the session/sigstruct does not check out).
  std::size_t premint(const std::string& session,
                      const sgx::SigStruct& common_sigstruct, std::size_t n);

  /// Fold the SecureServer's contention stats (stripe collisions,
  /// sessions high-water) into metrics(). Every registry snapshot (and
  /// unbind()) refreshes automatically; call directly only when reading
  /// the raw metrics() fields mid-run without snapshotting.
  void refresh_secure_metrics();

  const CasServerConfig& config() const { return config_; }
  ServerMetrics& metrics() { return metrics_; }
  ShardedPolicyStore& policy_store() { return policy_store_; }
  SigStructCache& sigstruct_cache() { return sigstruct_cache_; }
  ThreadPool& pool() { return pool_; }
  net::TimerWheel& timers() { return timer_; }

 private:
  /// A session's verified common SigStruct + the policy facts it was
  /// checked against (skips repeat RSA verification; feeds background
  /// refills). Structural comparisons only — no per-request serialization.
  struct VerifiedCommon {
    core::BaseHash base_hash;
    Hash256 expected_signer;
    sgx::SigStruct sigstruct;
  };

  cas::InstanceResponse serve_instance(const cas::InstanceRequest& request);
  /// Checks the request's common SigStruct (memoized). Returns false and
  /// fills `status` with the typed refusal on rejection.
  bool check_common(const cas::Policy& policy,
                    const cas::InstanceRequest& request, Status* status);
  /// Fold one decoded frame's facts into the per-command counters.
  void note_frame(CommandMetrics& command, const cas::FrameInfo& frame);

  // --- the request state machine (network path) ---
  void accept_instance(Bytes raw, net::SimNetwork::Completion done);
  void accept_attest(Bytes raw, net::SimNetwork::Completion done);
  /// Final stage: record latency, drop the gauge, close the trace (the
  /// respond phase plus the depth-0 root spanning accept→respond — this
  /// runs on whatever thread the timer or worker hands us, so both are
  /// recorded explicitly against `ctx` rather than via TraceScope), and
  /// deliver the response.
  void respond(std::chrono::steady_clock::time_point accepted,
               LatencyHistogram* histogram, Bytes response,
               const net::SimNetwork::Completion& done,
               const obs::TraceContext& ctx, obs::Phase* root,
               std::int64_t accepted_ns);

  /// Pool-pressure refill scheduler (the SigStructCache low-watermark
  /// callback lands here).
  void schedule_refill(const std::string& session);
  /// Self-rescheduling idle-session sweep tick (session_idle_ttl > 0).
  void arm_idle_sweep();
  std::size_t refill_target() const {
    return config_.refill_watermark != 0 &&
                   config_.refill_watermark > config_.premint_depth
               ? config_.refill_watermark
               : config_.premint_depth;
  }

  cas::CasService* cas_;
  CasServerConfig config_;
  /// This server's collector in cas_->metrics_registry() (unregistered
  /// first thing in the destructor — remove_collector returning guarantees
  /// no snapshot is still inside the callback touching our members).
  std::uint64_t collector_id_ = 0;
  ServerMetrics metrics_;
  ShardedPolicyStore policy_store_;
  SigStructCache sigstruct_cache_;

  Mutex verified_mutex_{LockRank::kServerVerified, "server.verified_common"};
  std::unordered_map<std::string, VerifiedCommon> verified_common_
      GUARDED_BY(verified_mutex_);

  net::SimNetwork* net_ = nullptr;
  std::string address_;

  // Declaration order is destruction order in reverse: pool_ (last) is
  // destroyed first, draining worker jobs that may still schedule stalls
  // on timer_ — so the wheel must still be alive, and is. The wheel's
  // destructor then fires any leftover stalls immediately (completions are
  // never lost), and only afterwards do the caches and metrics above go
  // away, which both workers and timer callbacks touch.
  net::TimerWheel timer_;
  ThreadPool pool_;
};

}  // namespace sinclave::server
