// Fixed-size worker thread pool for the CAS serving layer.
//
// Deliberately minimal: a bounded set of workers draining an unbounded FIFO
// of type-erased jobs. Request/response plumbing (futures) lives in the
// caller (cas_server.cpp) — the pool itself only knows "run this".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sinclave::server {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  /// Spawns `n_workers` threads (at least 1).
  explicit ThreadPool(std::size_t n_workers);

  /// Drains the queue, then joins all workers. Jobs submitted during
  /// destruction are rejected.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Throws Error after shutdown began. A job must not
  /// block on the completion of a job it submits itself (the classic pool
  /// deadlock) — submit-and-forget is fine.
  void submit(Job job);

  /// Block until the queue is empty and every worker is idle.
  void drain();

  std::size_t size() const { return workers_.size(); }
  std::size_t queued() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;       // workers wait for jobs
  std::condition_variable idle_;       // drain() waits for quiescence
  std::deque<Job> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sinclave::server
