// Fixed-size worker thread pool for the CAS serving layer.
//
// Deliberately minimal: a bounded set of workers draining an unbounded FIFO
// of type-erased jobs. Request/response plumbing (futures) lives in the
// caller (cas_server.cpp) — the pool itself only knows "run this".
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace sinclave::server {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  /// Spawns `n_workers` threads (at least 1).
  explicit ThreadPool(std::size_t n_workers);

  /// Drains the queue, then joins all workers. Jobs submitted during
  /// destruction are rejected.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Throws Error after shutdown began. A job must not
  /// block on the completion of a job it submits itself (the classic pool
  /// deadlock) — submit-and-forget is fine.
  void submit(Job job) REQUIRES_NOT(mutex_);

  /// Block until the queue is empty and every worker is idle.
  void drain() REQUIRES_NOT(mutex_);

  std::size_t size() const { return workers_.size(); }
  std::size_t queued() const REQUIRES_NOT(mutex_);

 private:
  void worker_loop() REQUIRES_NOT(mutex_);

  mutable Mutex mutex_{LockRank::kThreadPool, "server.thread_pool"};
  CondVar wake_;                       // workers wait for jobs
  CondVar idle_;                       // drain() waits for quiescence
  std::deque<Job> queue_ GUARDED_BY(mutex_);
  std::size_t active_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace sinclave::server
