#include "server/thread_pool.h"

#include "common/error.h"

namespace sinclave::server {

ThreadPool::ThreadPool(std::size_t n_workers) {
  if (n_workers == 0) n_workers = 1;
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Job job) {
  if (!job) throw Error("thread pool: null job");
  {
    MutexLock lock(mutex_);
    if (stopping_) throw Error("thread pool: shutting down");
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::drain() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) idle_.wait(mutex_);
}

std::size_t ThreadPool::queued() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(mutex_);
      while (!(stopping_ || !queue_.empty())) wake_.wait(mutex_);
      // Keep draining queued work during shutdown so submitted jobs (and
      // the futures blocked on them) always complete.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      job();
    } catch (...) {
      // A job must not take down the server; errors are reported through
      // each job's own response channel.
    }
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sinclave::server
