#include "server/thread_pool.h"

#include "common/error.h"

namespace sinclave::server {

ThreadPool::ThreadPool(std::size_t n_workers) {
  if (n_workers == 0) n_workers = 1;
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Job job) {
  if (!job) throw Error("thread pool: null job");
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw Error("thread pool: shutting down");
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::queued() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Keep draining queued work during shutdown so submitted jobs (and
      // the futures blocked on them) always complete.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      job();
    } catch (...) {
      // A job must not take down the server; errors are reported through
      // each job's own response channel.
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sinclave::server
