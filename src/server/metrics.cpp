#include "server/metrics.h"

#include <algorithm>
#include <cstdio>

namespace sinclave::server {

namespace {

// Geometric bucket boundaries: bound(i) = 1us * 1.5^i, precomputed in
// integer nanoseconds so bucket_for stays a simple scan (kBuckets is 40;
// a linear scan of a 40-entry table is cheaper than the log it replaces).
constexpr std::array<std::int64_t, LatencyHistogram::kBuckets> kBoundsNs = [] {
  std::array<std::int64_t, LatencyHistogram::kBuckets> b{};
  double bound = 1000.0;  // 1 us
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::int64_t>(bound);
    bound *= 1.5;
  }
  return b;
}();

}  // namespace

std::size_t LatencyHistogram::bucket_for(std::chrono::nanoseconds latency) {
  const std::int64_t ns = latency.count();
  for (std::size_t i = 0; i < kBuckets; ++i)
    if (ns <= kBoundsNs[i]) return i;
  return kBuckets - 1;
}

std::chrono::nanoseconds LatencyHistogram::bucket_upper_bound(
    std::size_t index) {
  return std::chrono::nanoseconds(kBoundsNs[index]);
}

void LatencyHistogram::record(std::chrono::nanoseconds latency) {
  buckets_[bucket_for(latency)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(latency.count(), std::memory_order_relaxed);
  std::int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (latency.count() > seen &&
         !max_ns_.compare_exchange_weak(seen, latency.count(),
                                        std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  std::array<std::uint64_t, kBuckets> counts;
  for (std::size_t i = 0; i < kBuckets; ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  for (auto c : counts) s.count += c;
  s.sum = std::chrono::nanoseconds(sum_ns_.load(std::memory_order_relaxed));
  s.max = std::chrono::nanoseconds(max_ns_.load(std::memory_order_relaxed));
  if (s.count == 0) return s;

  const auto quantile = [&](double q) {
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(s.count - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      // The bucket's upper bound, clamped: the observed max is a tighter
      // bound than the top bucket boundary.
      if (seen >= target) return std::min(bucket_upper_bound(i), s.max);
    }
    return s.max;
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i)
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const std::int64_t other_max = other.max_ns_.load(std::memory_order_relaxed);
  std::int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_ns_.compare_exchange_weak(seen, other_max,
                                        std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

std::string ServerMetrics::render() const {
  const auto line = [](const char* name, std::uint64_t v) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%-26s %llu\n", name,
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  const auto latency_lines = [](const char* name,
                                const LatencyHistogram& h) {
    const auto s = h.snapshot();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-26s count=%llu mean=%.1fus p50=%.1fus p90=%.1fus "
                  "p99=%.1fus max=%.1fus\n",
                  name, static_cast<unsigned long long>(s.count),
                  s.mean().count() / 1e3, s.p50.count() / 1e3,
                  s.p90.count() / 1e3, s.p99.count() / 1e3,
                  s.max.count() / 1e3);
    return std::string(buf);
  };

  std::string out;
  out += line("instance_requests", instance_requests.load());
  out += line("instance_errors", instance_errors.load());
  out += line("attest_requests", attest_requests.load());
  out += line("sigstruct_cache_hits", sigstruct_cache_hits.load());
  out += line("sigstruct_cache_misses", sigstruct_cache_misses.load());
  out += line("preminted_credentials", preminted_credentials.load());
  out += line("tokens_issued", tokens_issued.load());
  out += latency_lines("instance_latency", instance_latency);
  out += latency_lines("attest_latency", attest_latency);
  return out;
}

}  // namespace sinclave::server
