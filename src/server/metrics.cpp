#include "server/metrics.h"

namespace sinclave::server {

void ServerMetrics::enter_in_flight() {
  atomic_fetch_max(
      max_in_flight,
      requests_in_flight.fetch_add(1, std::memory_order_relaxed) + 1);
}

void ServerMetrics::leave_in_flight() {
  requests_in_flight.fetch_sub(1, std::memory_order_relaxed);
}

void ServerMetrics::collect(obs::MetricsSnapshot& snap) const {
  const auto command = [&](const char* name, const CommandMetrics& cmd) {
    const std::string base(name);
    snap.counter(base + "_requests", cmd.requests.load());
    snap.counter(base + "_errors", cmd.errors.load());
    snap.counter(base + "_legacy_frames", cmd.legacy_frames.load());
    snap.histogram(base + "_latency", cmd.latency);
  };
  command("get_instance", get_instance);
  command("attest", attest);
  command("get_config", get_config);
  snap.counter("malformed_frames", malformed_frames.load());
  snap.counter("unsupported_version_frames", unsupported_version_frames.load());
  snap.counter("unknown_command_frames", unknown_command_frames.load());
  snap.counter("sigstruct_cache_hits", sigstruct_cache_hits.load());
  snap.counter("sigstruct_cache_misses", sigstruct_cache_misses.load());
  snap.counter("preminted_credentials", preminted_credentials.load());
  snap.counter("tokens_issued", tokens_issued.load());
  snap.counter("refills_scheduled", refills_scheduled.load());
  snap.counter("mint_batches", mint_batches.load());
  snap.gauge("requests_in_flight", requests_in_flight.load());
  snap.gauge("max_in_flight", max_in_flight.load());
  snap.counter("requests_shed", requests_shed.load());
  snap.counter("deadline_exceeded", deadline_exceeded.load());
  snap.counter("handshake_stripe_collisions",
               handshake_stripe_collisions.load());
  snap.counter("secure_sessions_opened", secure_sessions_opened.load());
  snap.gauge("secure_sessions_high_water", secure_sessions_high_water.load());
}

std::string ServerMetrics::render() const {
  obs::MetricsSnapshot snap;
  collect(snap);
  return snap.to_text();
}

}  // namespace sinclave::server
