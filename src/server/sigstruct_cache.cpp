#include "server/sigstruct_cache.h"

namespace sinclave::server {

SigStructCache::SigStructCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

SigStructCache::SessionPool& SigStructCache::touch(
    const std::string& session) {
  auto it = pools_.find(session);
  if (it == pools_.end()) {
    it = pools_.emplace(session, std::make_unique<SessionPool>()).first;
    lru_.push_front(session);
    it->second->lru_position = lru_.begin();
  } else {
    lru_.splice(lru_.begin(), lru_, it->second->lru_position);
  }
  return *it->second;
}

void SigStructCache::evict_over_capacity() {
  // Walk sessions from least recently used, discarding their oldest
  // pre-minted credentials. Unissued tokens were never registered, so a
  // discarded credential is dead weight, not a dangling capability.
  auto victim = lru_.rbegin();
  while (total_.load() > capacity_ && victim != lru_.rend()) {
    SessionPool& pool = *pools_.at(*victim);
    std::lock_guard pool_lock(pool.mutex);
    while (total_.load() > capacity_ && !pool.credentials.empty()) {
      pool.credentials.pop_front();
      --total_;
      ++evictions_;
    }
    ++victim;
  }
}

void SigStructCache::put(const std::string& session,
                         cas::MintedCredential credential) {
  std::lock_guard lock(mutex_);
  SessionPool& pool = touch(session);
  {
    std::lock_guard pool_lock(pool.mutex);
    pool.credentials.push_back(std::move(credential));
    ++total_;
  }
  if (total_.load() > capacity_) evict_over_capacity();
}

std::optional<cas::MintedCredential> SigStructCache::take(
    const std::string& session) {
  return take_if(session, nullptr);
}

std::optional<cas::MintedCredential> SigStructCache::take_if(
    const std::string& session,
    const std::function<bool(const cas::MintedCredential&)>& valid) {
  SessionPool* pool = nullptr;
  {
    std::lock_guard lock(mutex_);
    const auto it = pools_.find(session);
    if (it != pools_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second->lru_position);
      pool = it->second.get();
    }
  }
  if (pool != nullptr) {
    std::lock_guard pool_lock(pool->mutex);
    while (!pool->credentials.empty()) {
      cas::MintedCredential cred = std::move(pool->credentials.front());
      pool->credentials.pop_front();
      --total_;
      if (!valid || valid(cred)) {
        ++hits_;
        return cred;
      }
      ++evictions_;  // stale: discarded, not served
    }
  }
  ++misses_;
  return std::nullopt;
}

bool SigStructCache::contains(const std::string& session,
                              const sgx::Measurement& mr_enclave) const {
  std::lock_guard lock(mutex_);
  const auto it = pools_.find(session);
  if (it == pools_.end()) return false;
  std::lock_guard pool_lock(it->second->mutex);
  for (const auto& cred : it->second->credentials)
    if (cred.mr_enclave == mr_enclave) return true;
  return false;
}

std::size_t SigStructCache::flush(const std::string& session) {
  std::lock_guard lock(mutex_);
  const auto it = pools_.find(session);
  if (it == pools_.end()) return 0;
  std::lock_guard pool_lock(it->second->mutex);
  const std::size_t n = it->second->credentials.size();
  it->second->credentials.clear();
  total_ -= n;
  evictions_ += n;
  return n;
}

std::size_t SigStructCache::pooled(const std::string& session) const {
  std::lock_guard lock(mutex_);
  const auto it = pools_.find(session);
  if (it == pools_.end()) return 0;
  std::lock_guard pool_lock(it->second->mutex);
  return it->second->credentials.size();
}

bool SigStructCache::begin_refill(const std::string& session) {
  std::lock_guard lock(mutex_);
  SessionPool& pool = touch(session);
  bool expected = false;
  return pool.refilling.compare_exchange_strong(expected, true);
}

void SigStructCache::end_refill(const std::string& session) {
  std::lock_guard lock(mutex_);
  const auto it = pools_.find(session);
  if (it != pools_.end()) it->second->refilling.store(false);
}

}  // namespace sinclave::server
