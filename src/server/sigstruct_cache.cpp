#include "server/sigstruct_cache.h"

namespace sinclave::server {

SigStructCache::SigStructCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SigStructCache::set_low_watermark(std::size_t watermark,
                                       LowWatermarkCallback callback) {
  MutexLock lock(mutex_);
  watermark_ = watermark;
  low_watermark_ = std::move(callback);
}

SigStructCache::SessionPool& SigStructCache::touch(
    const std::string& session) {
  auto it = pools_.find(session);
  if (it == pools_.end()) {
    it = pools_.emplace(session, std::make_shared<SessionPool>()).first;
    lru_.push_front(session);
    it->second->lru_position = lru_.begin();
  } else {
    lru_.splice(lru_.begin(), lru_, it->second->lru_position);
  }
  return *it->second;
}

void SigStructCache::evict_over_capacity(std::vector<std::string>* starved) {
  // Walk sessions from least recently used, discarding their oldest
  // pre-minted credentials. Unissued tokens were never registered, so a
  // discarded credential is dead weight, not a dangling capability. Pools
  // drained to zero are erased entirely (concurrent holders keep the pool
  // alive through their shared_ptr and simply miss).
  auto it = lru_.end();
  while (total_.load() > capacity_ && it != lru_.begin()) {
    --it;
    const std::string victim = *it;
    const std::shared_ptr<SessionPool> pool = pools_.at(victim);
    bool empty;
    std::size_t remaining;
    {
      MutexLock pool_lock(pool->mutex);
      while (total_.load() > capacity_ && !pool->credentials.empty()) {
        pool->credentials.pop_front();
        --total_;
        ++evictions_;
      }
      remaining = pool->credentials.size();
      empty = remaining == 0;
    }
    if (watermark_ > 0 && remaining < watermark_ && low_watermark_)
      starved->push_back(victim);
    if (empty) {
      pools_.erase(victim);
      it = lru_.erase(it);
    }
  }
}

void SigStructCache::erase_if_drained(const std::string& session) {
  // Takes and flushes erase the pools they drained, same as eviction
  // does, so the session map stays bounded by live credentials — not by
  // every session ever served. The local shared_ptr keeps the pool (and
  // the mutex inside it) alive until after the lock is released.
  std::shared_ptr<SessionPool> pool;
  MutexLock lock(mutex_);
  const auto it = pools_.find(session);
  if (it == pools_.end()) return;
  pool = it->second;
  {
    MutexLock pool_lock(pool->mutex);
    if (!pool->credentials.empty()) return;  // repopulated meanwhile
    lru_.erase(pool->lru_position);
    pools_.erase(it);
  }
}

void SigStructCache::notify_starved(const std::vector<std::string>& starved) {
  // Copy of the callback not needed: set_low_watermark is a setup-time
  // call (documented), so reading low_watermark_ unlocked here would still
  // be safe — but take the cheap lock to keep TSAN and future callers
  // honest. The callback itself runs outside every cache lock.
  LowWatermarkCallback callback;
  {
    MutexLock lock(mutex_);
    callback = low_watermark_;
  }
  if (!callback) return;
  for (const auto& session : starved) callback(session);
}

void SigStructCache::put(const std::string& session,
                         cas::MintedCredential credential) {
  std::vector<std::string> starved;
  {
    MutexLock lock(mutex_);
    SessionPool& pool = touch(session);
    {
      MutexLock pool_lock(pool.mutex);
      pool.credentials.push_back(std::move(credential));
      ++total_;
    }
    if (total_.load() > capacity_) evict_over_capacity(&starved);
  }
  notify_starved(starved);
}

std::size_t SigStructCache::put_all(
    const std::string& session,
    std::vector<cas::MintedCredential> credentials) {
  if (credentials.empty()) return 0;
  const std::size_t n = credentials.size();
  std::vector<std::string> starved;
  {
    MutexLock lock(mutex_);
    SessionPool& pool = touch(session);
    {
      MutexLock pool_lock(pool.mutex);
      for (cas::MintedCredential& credential : credentials)
        pool.credentials.push_back(std::move(credential));
      total_ += n;
    }
    if (total_.load() > capacity_) evict_over_capacity(&starved);
  }
  notify_starved(starved);
  return n;
}

std::optional<cas::MintedCredential> SigStructCache::take(
    const std::string& session) {
  return take_if(session, nullptr);
}

std::optional<cas::MintedCredential> SigStructCache::take_if(
    const std::string& session,
    const std::function<bool(const cas::MintedCredential&)>& valid) {
  std::shared_ptr<SessionPool> pool;
  std::size_t watermark = 0;
  {
    MutexLock lock(mutex_);
    watermark = watermark_;
    const auto it = pools_.find(session);
    if (it != pools_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second->lru_position);
      pool = it->second;
    }
  }
  std::optional<cas::MintedCredential> result;
  std::size_t remaining = 0;
  if (pool != nullptr) {
    MutexLock pool_lock(pool->mutex);
    while (!pool->credentials.empty()) {
      cas::MintedCredential cred = std::move(pool->credentials.front());
      pool->credentials.pop_front();
      --total_;
      if (!valid || valid(cred)) {
        ++hits_;
        result = std::move(cred);
        break;
      }
      ++evictions_;  // stale: discarded, not served
    }
    remaining = pool->credentials.size();
  }
  if (!result.has_value()) ++misses_;
  if (pool != nullptr && remaining == 0) erase_if_drained(session);
  // Pool pressure is signalled on the way *down* — a take (hit or miss)
  // that leaves the session under the watermark wakes the refiller, so no
  // request path ever has to probe pool depth.
  if (watermark > 0 && remaining < watermark)
    notify_starved({session});
  return result;
}

bool SigStructCache::contains(const std::string& session,
                              const sgx::Measurement& mr_enclave) const {
  std::shared_ptr<SessionPool> pool;
  {
    MutexLock lock(mutex_);
    const auto it = pools_.find(session);
    if (it == pools_.end()) return false;
    pool = it->second;
  }
  MutexLock pool_lock(pool->mutex);
  for (const auto& cred : pool->credentials)
    if (cred.mr_enclave == mr_enclave) return true;
  return false;
}

std::size_t SigStructCache::flush(const std::string& session) {
  std::size_t n = 0;
  std::size_t watermark = 0;
  {
    MutexLock lock(mutex_);
    watermark = watermark_;
    const auto it = pools_.find(session);
    if (it == pools_.end()) return 0;
    // Local shared_ptr keeps the pool (and its locked mutex) alive past
    // the map erase below.
    const std::shared_ptr<SessionPool> pool = it->second;
    {
      MutexLock pool_lock(pool->mutex);
      n = pool->credentials.size();
      pool->credentials.clear();
      total_ -= n;
      evictions_ += n;
    }
    // Drained by definition — erase inline rather than re-acquiring the
    // locks through erase_if_drained.
    lru_.erase(pool->lru_position);
    pools_.erase(it);
  }
  if (watermark > 0) notify_starved({session});
  return n;
}

std::size_t SigStructCache::pooled(const std::string& session) const {
  std::shared_ptr<SessionPool> pool;
  {
    MutexLock lock(mutex_);
    const auto it = pools_.find(session);
    if (it == pools_.end()) return 0;
    pool = it->second;
  }
  MutexLock pool_lock(pool->mutex);
  return pool->credentials.size();
}

std::size_t SigStructCache::sessions() const {
  MutexLock lock(mutex_);
  return pools_.size();
}

bool SigStructCache::begin_refill(const std::string& session) {
  MutexLock lock(mutex_);
  return refilling_.insert(session).second;
}

void SigStructCache::end_refill(const std::string& session) {
  MutexLock lock(mutex_);
  refilling_.erase(session);
}

}  // namespace sinclave::server
