#include "server/cluster_node.h"

#include <utility>

#include "common/error.h"
#include "obs/registry.h"

namespace sinclave::server {

ClusterNode::ClusterNode(net::SimNetwork* net,
                         quote::AttestationService* attestation,
                         crypto::RsaKeyPair identity, std::uint64_t seed,
                         ClusterNodeConfig config)
    : net_(net),
      attestation_(attestation),
      identity_(std::move(identity)),
      seed_(seed),
      config_(std::move(config)),
      store_(crypto::Drbg::from_seed(seed, "cluster-seal-key").generate(32),
             &counter_, crypto::Drbg::from_seed(seed, "cluster-seal-rng")) {
  for (const cas::RaftPeer& p : config_.raft.peers) {
    if (p.id == config_.raft.node_id) address_ = p.address;
  }
  if (address_.empty()) {
    throw Error("cluster node: node_id missing from peer list");
  }
}

ClusterNode::~ClusterNode() { stop(); }

void ClusterNode::add_signer_key(const crypto::RsaKeyPair& signer) {
  MutexLock lock(lifecycle_);
  signer_keys_.push_back(signer);
  if (cas_ != nullptr) cas_->add_signer_key(signer);
}

cas::CasService& ClusterNode::cas() {
  MutexLock lock(lifecycle_);
  if (cas_ == nullptr) throw Error("cluster node: not started");
  return *cas_;
}

cas::RaftCore& ClusterNode::raft() {
  MutexLock lock(lifecycle_);
  if (raft_ == nullptr) throw Error("cluster node: not started");
  return *raft_;
}

const cas::RaftCore& ClusterNode::raft() const {
  MutexLock lock(lifecycle_);
  if (raft_ == nullptr) throw Error("cluster node: not started");
  return *raft_;
}

bool ClusterNode::running() const {
  MutexLock lock(lifecycle_);
  return running_;
}

void ClusterNode::start() {
  MutexLock lock(lifecycle_);
  if (running_) return;
  // Retire (never destroy) any previous incarnation: requests that raced
  // the shutdown may still hold its pointers.
  if (cas_ != nullptr) retired_cas_.push_back(std::move(cas_));
  if (raft_ != nullptr) retired_raft_.push_back(std::move(raft_));
  ++incarnation_;

  cas_ = std::make_unique<cas::CasService>(
      attestation_, identity_,
      crypto::Drbg::from_seed(seed_ + incarnation_, "cluster-cas"));
  for (const crypto::RsaKeyPair& k : signer_keys_) cas_->add_signer_key(k);
  if (config_.session_idle_ttl.count() > 0) {
    net::SecureServerOptions options;
    options.idle_ttl = config_.session_idle_ttl;
    cas_->set_secure_server_options(options);
  }
  cas_->set_replication_gate(this);

  cas::RaftConfig rc = config_.raft;
  // Different incarnations must draw different election jitter, or a
  // restarted node replays its old timeout sequence against peers that
  // have moved on.
  rc.seed = rc.seed ^ seed_ ^ (incarnation_ * 0x9e3779b97f4a7c15ULL);
  cas::CasService* cas_raw = cas_.get();
  raft_ = std::make_unique<cas::RaftCore>(
      net_, std::move(rc), &store_,
      [cas_raw](const cas::LogEntry& entry) -> Status {
        switch (entry.command) {
          case cas::LogCommand::kNoop:
            return Status();
          case cas::LogCommand::kInstallPolicy:
            cas_raw->install_policy(cas::Policy::deserialize(entry.payload));
            return Status();
          case cas::LogCommand::kRegisterToken: {
            const cas::TokenCommand c =
                cas::TokenCommand::deserialize(entry.payload);
            cas_raw->register_token(c.token, c.session_name, c.mr_enclave);
            return Status();
          }
          case cas::LogCommand::kSpendToken: {
            const cas::TokenCommand c =
                cas::TokenCommand::deserialize(entry.payload);
            return cas_raw->apply_replicated_spend(c.token, c.session_name,
                                                   c.mr_enclave);
          }
        }
        return Status(StatusCode::kInternal, "raft: unknown log command");
      },
      [cas_raw] { return cas_raw->export_state(); },
      [cas_raw](ByteView state) { cas_raw->import_state(state); });

  // Replication observability rides the incarnation's own registry (the
  // collector holds the matching RaftCore, which outlives it via the
  // retired list).
  cas::RaftCore* raft_raw = raft_.get();
  cas_->metrics_registry().add_collector([raft_raw](obs::MetricsSnapshot& s) {
    const cas::RaftStats r = raft_raw->stats();
    s.gauge("cluster_term", r.term);
    s.gauge("cluster_commit_index", r.commit_index);
    s.gauge("cluster_last_applied", r.last_applied);
    s.gauge("cluster_log_entries", r.log_entries);
    s.gauge("cluster_is_leader", r.is_leader ? 1 : 0);
    s.gauge("cluster_follower_lag", r.max_follower_lag);
    s.counter("cluster_elections_started", r.elections_started);
    s.counter("cluster_elections_won", r.elections_won);
    s.counter("cluster_proposals", r.proposals);
    s.counter("cluster_proposals_failed", r.proposals_failed);
    s.counter("cluster_snapshots_taken", r.snapshots_taken);
    s.counter("cluster_snapshots_installed", r.snapshots_installed);
  });

  try {
    raft_->start();  // throws on rolled-back / tampered persisted state
  } catch (...) {
    // Failed boot: nothing is bound; drop the half-built incarnation.
    raft_.reset();
    cas_.reset();
    throw;
  }

  net_->listen(address_ + ".instance", [this](ByteView raw) {
    return cas::serve_instance_frame(
        raw,
        [this](const cas::InstanceRequest& req) {
          return handle_instance(req);
        },
        [this](const cas::IntrospectRequest& req) {
          cas::CasService* cas;
          {
            MutexLock l(lifecycle_);
            cas = cas_.get();
          }
          return cas->handle_introspect(req);
        });
  });
  net_->listen(address_, [this](ByteView raw) {
    cas::CasService* cas;
    {
      MutexLock l(lifecycle_);
      cas = cas_.get();
    }
    return cas->handle_secure(raw);
  });

  running_ = true;
  if (config_.session_idle_ttl.count() > 0) arm_sweep_locked();
}

void ClusterNode::stop() {
  cas::RaftCore* raft;
  {
    MutexLock lock(lifecycle_);
    if (!running_) return;
    running_ = false;
    sweep_wheel_.cancel(sweep_timer_);
    raft = raft_.get();
  }
  // Fail in-flight proposals first: handlers blocked in propose() wake
  // with kUnavailable, so the endpoint drains below cannot deadlock.
  raft->stop();
  try {
    net_->shutdown(address_ + ".instance");
  } catch (const Error&) {
  }
  try {
    net_->shutdown(address_);
  } catch (const Error&) {
  }
}

void ClusterNode::restart() {
  stop();
  start();
}

void ClusterNode::arm_sweep_locked() {
  try {
    sweep_timer_ =
        sweep_wheel_.schedule_after(config_.idle_sweep_interval, [this] {
          MutexLock lock(lifecycle_);
          if (!running_) return;
          cas_->sweep_idle_sessions();
          arm_sweep_locked();
        });
  } catch (const Error&) {
    // Sweep wheel shutting down (node being destroyed).
  }
}

Status ClusterNode::install_policy(const cas::Policy& policy) {
  cas::RaftCore* raft;
  {
    MutexLock lock(lifecycle_);
    if (!running_) return Status(StatusCode::kUnavailable, "cluster: stopped");
    raft = raft_.get();
  }
  return raft->propose(cas::LogCommand::kInstallPolicy, policy.serialize());
}

Status ClusterNode::register_token(const core::AttestationToken& token,
                                   const std::string& session_name,
                                   const sgx::Measurement& expected_mr) {
  cas::RaftCore* raft;
  {
    MutexLock lock(lifecycle_);
    if (raft_ == nullptr) {
      return Status(StatusCode::kUnavailable, "cluster: stopped");
    }
    raft = raft_.get();
  }
  const cas::TokenCommand cmd{token, session_name, expected_mr};
  return raft->propose(cas::LogCommand::kRegisterToken, cmd.serialize());
}

Status ClusterNode::spend_token(const core::AttestationToken& token,
                                const std::string& session_name,
                                const sgx::Measurement& mr_enclave) {
  cas::RaftCore* raft;
  {
    MutexLock lock(lifecycle_);
    if (raft_ == nullptr) {
      return Status(StatusCode::kUnavailable, "cluster: stopped");
    }
    raft = raft_.get();
  }
  const cas::TokenCommand cmd{token, session_name, mr_enclave};
  return raft->propose(cas::LogCommand::kSpendToken, cmd.serialize());
}

bool ClusterNode::ready() const {
  cas::RaftCore* raft;
  {
    MutexLock lock(lifecycle_);
    if (raft_ == nullptr) return false;
    raft = raft_.get();
  }
  return raft->ready();
}

cas::InstanceResponse ClusterNode::handle_instance(
    const cas::InstanceRequest& request) {
  cas::CasService* cas;
  cas::RaftCore* raft;
  {
    MutexLock lock(lifecycle_);
    cas = cas_.get();
    raft = raft_.get();
  }
  if (!raft->is_leader()) {
    // Writes need the log: bounce with the best-known leader address so
    // the client re-routes instead of backing off.
    cas::InstanceResponse resp;
    resp.status =
        Status(StatusCode::kNotLeader, not_leader_detail(raft->leader_hint()));
    return resp;
  }
  return cas->handle_instance(request);
}

}  // namespace sinclave::server
