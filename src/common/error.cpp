#include "common/error.h"

namespace sinclave {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kBadSignature:
      return "bad-signature";
    case Verdict::kBadMac:
      return "bad-mac";
    case Verdict::kMeasurementMismatch:
      return "measurement-mismatch";
    case Verdict::kSignerMismatch:
      return "signer-mismatch";
    case Verdict::kAttributesMismatch:
      return "attributes-mismatch";
    case Verdict::kTokenUnknown:
      return "token-unknown";
    case Verdict::kTokenReused:
      return "token-reused";
    case Verdict::kPolicyViolation:
      return "policy-violation";
    case Verdict::kStale:
      return "stale";
    case Verdict::kMalformed:
      return "malformed";
  }
  return "unknown";
}

}  // namespace sinclave
