// Typed operation results for the client-facing API.
//
// Every wire response in the CAS protocol carries a StatusCode instead of
// the seed-era `bool ok + std::string error`: machine-readable outcomes are
// what retry logic, replication, and metrics key on — string matching is
// not an error model. The canonical human-readable message for each code
// lives in ONE table here (status_message), so the two serving frontends
// (cas::CasService and server::CasServer) and the client SDK can never
// drift apart in what they call the same failure.
//
// Status  = code + optional detail message (empty -> canonical message).
// Result<T> = Status or a value; the small expected<> stand-in used by the
// client SDK where an operation either yields a payload or a typed error.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/error.h"

namespace sinclave {

/// Wire-stable outcome codes (serialized as u8 — append only, never
/// renumber; unknown codes decode as kInternal on old peers).
enum class StatusCode : std::uint8_t {
  kOk = 0,
  // Instance-endpoint (singleton retrieval) outcomes.
  kUnknownSession = 1,
  kNotSingleton = 2,
  kNoSignerKey = 3,
  kBadSignature = 4,
  kWrongSigner = 5,
  kBaseHashMismatch = 6,
  // Attested-endpoint outcomes.
  kTokenUnknown = 7,
  kTokenReused = 8,
  kSessionNotAttested = 9,
  kAttestationRejected = 10,
  // Protocol-level outcomes (any endpoint).
  kMalformedRequest = 11,
  kUnsupportedVersion = 12,
  kUnknownCommand = 13,
  kInternal = 14,
  /// Transient: the service exists but cannot answer right now (shutting
  /// down, overloaded, backend briefly gone). The only retryable code.
  kUnavailable = 15,
  /// The request's deadline expired before the server could finish it
  /// (queue wait, or too little budget left to cover the backend stall).
  /// Deliberately NOT retryable: an expired deadline means the caller's
  /// time budget is gone — retrying the same doomed request is exactly
  /// the storm deadlines exist to stop. Re-issue with a fresh budget.
  kDeadlineExceeded = 16,
  /// Replicated-cluster routing: this node is a follower and the request
  /// needs the leader (writes: singleton retrieval, token spend, policy
  /// install). Deliberately NOT retryable by blind repetition — the
  /// detail carries a leader hint ("leader=ADDR") and CasClient re-routes
  /// to it immediately, with no backoff sleep. Reads (get_policy,
  /// introspect) are served by any replica and never see this code.
  kNotLeader = 17,
};

/// Stable kebab-case identifier (logs, JSON, tests).
const char* to_string(StatusCode code);

/// Map a wire status byte onto the enum. Bytes beyond the last code this
/// build knows decode as kInternal — the documented contract for old
/// peers meeting codes appended later. Decoders must route every wire
/// status byte through this (never a bare static_cast): an
/// out-of-enum value would otherwise flow into switch statements that
/// assume the enum is exhaustive.
StatusCode status_code_from_wire(std::uint8_t code);

/// Canonical human-readable message for a code — the single source the
/// serving frontends and the legacy (v0) wire encoding draw from.
const char* status_message(StatusCode code);

/// Canonical detail composers for statuses that carry a structured hint.
/// Clients parse these back out, so the format fragments are part of the
/// wire contract: they are composed and parsed HERE only —
/// tools/lint_invariants.py confines the format literals to status.cpp the
/// same way it confines the canonical message table.
///
/// Detail for a load-shed kUnavailable: "service unavailable
/// (retry-after-ms=N)". Clients that find the hint pace their next retry
/// by it instead of their own backoff.
std::string retry_after_detail(std::chrono::milliseconds retry_after);
/// Extract the retry-after hint from a detail string; nullopt when absent.
std::optional<std::chrono::milliseconds> parse_retry_after(
    std::string_view detail);
/// Detail for kDeadlineExceeded naming the phase that overran
/// ("queue-wait", "backend-stall", "client-budget").
std::string deadline_phase_detail(const char* phase);
/// Detail for a client-side circuit-breaker fast-fail (kUnavailable
/// without any wire attempt).
std::string breaker_open_detail();
/// Detail for kNotLeader carrying the current leader's address:
/// "not the cluster leader (leader=ADDR)". An empty address (election in
/// progress, leader unknown) omits the hint entirely.
std::string not_leader_detail(const std::string& leader_address);
/// Extract the leader address from a kNotLeader detail; nullopt when the
/// hint is absent or empty.
std::optional<std::string> parse_leader_hint(std::string_view detail);

/// True for codes a client may retry without changing the request.
constexpr bool is_retryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// True for codes that describe the protocol exchange itself rather than
/// a verification outcome. These are the only codes a handshake rejection
/// record may carry to an unauthenticated peer (SecureServer sends them,
/// SecureClient whitelists them — one predicate so the two cannot drift);
/// everything else stays the generic rejection, keeping the handshake
/// oracle-free. kNotLeader qualifies: "wrong replica, go to the leader"
/// is routing topology (public), not a verification outcome — and a
/// follower must be able to bounce an attested handshake before spending
/// the one-time token it carries. kUnavailable qualifies for the same
/// reason: "could not commit your spend, retry" (a deposed/stopping
/// leader, a cluster without quorum) says nothing about the token —
/// and WITHOUT it a liveness refusal would ride the generic rejection,
/// which a client must treat as terminal, turning every failover blip
/// into a lost credential. It reveals no token state: a reused token
/// still answers the same generic rejection as any verification failure.
constexpr bool is_protocol_level(StatusCode code) {
  return code == StatusCode::kMalformedRequest ||
         code == StatusCode::kUnsupportedVersion ||
         code == StatusCode::kUnknownCommand ||
         code == StatusCode::kNotLeader ||
         code == StatusCode::kUnavailable;
}

/// A typed outcome: code plus an optional detail message. `message()`
/// falls back to the canonical text so callers always have something to
/// print, and the wire never has to carry the common case.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string detail;  // optional; empty -> status_message(code)

  Status() = default;
  explicit Status(StatusCode c) : code(c) {}
  Status(StatusCode c, std::string d) : code(c), detail(std::move(d)) {}

  bool ok() const { return code == StatusCode::kOk; }
  bool retryable() const { return is_retryable(code); }
  std::string message() const {
    return detail.empty() ? status_message(code) : detail;
  }

  friend bool operator==(const Status&, const Status&) = default;
};

/// Either a value or a non-ok Status. The invariant "ok implies value" is
/// enforced at construction: an ok() Result can only be built from a value,
/// and value() on an error Result throws (programming error, not a wire
/// condition).
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    if (status_.ok())
      throw Error("result: ok status requires a value");
  }
  Result(StatusCode code) : Result(Status(code)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    require();
    return *value_;
  }
  T& value() & {
    require();
    return *value_;
  }
  T&& value() && {
    require();
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  void require() const {
    if (!value_.has_value())
      throw Error("result: value() on error status (" +
                  std::string(to_string(status_.code)) + ")");
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace sinclave
