#pragma once

// Annotated mutex wrappers + the debug lock-rank deadlock detector.
//
// Every mutex in src/ is a `sinclave::Mutex` or `sinclave::SharedMutex`
// (tools/lint_invariants.py fails the build on raw std::mutex outside this
// header and its .cpp). That buys two layers of enforcement:
//
//  1. Compile time — the wrappers carry Clang Thread Safety Analysis
//     attributes (common/thread_annotations.h), so GUARDED_BY members,
//     REQUIRES/REQUIRES_NOT contracts and scoped guards are checked by the
//     clang `-Wthread-safety -Werror` CI build.
//
//  2. Debug runtime — every mutex carries a static LockRank. A
//     thread-local held-rank stack asserts that acquisition order is
//     strictly rank-decreasing and never recursive, which deterministically
//     catches *potential* deadlocks (any cycle in the lock graph implies a
//     rank inversion on some thread) that TSAN can only catch when the
//     losing interleaving actually runs. This subsumes the old ad-hoc
//     `tls_secure_server_locks_held` counter in net/secure_channel.cpp.
//
// The detector is compiled in always and gated by a relaxed atomic flag:
// on by default in debug builds (!NDEBUG), off in release, overridable
// either way with SINCLAVE_LOCK_RANK=0/1 in the environment or
// lockrank::set_enabled() (used by tests/test_lockrank.cpp to exercise the
// detector in release builds).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace sinclave {

/// Global lock ordering, one rank per lock role. Higher rank = outer lock:
/// while holding a lock, a thread may only acquire locks of *strictly
/// lower* rank. The table mirrors the real call graph (see README "Static
/// analysis & invariants" for the prose version):
///
///   - workload/client aggregates sit on top: they are entered from user
///     threads holding nothing and call down into the SDK;
///   - the server frontend (verified-common memo, SigStruct cache -> pool)
///     sits above the metrics registry, whose collectors reach into
///     service shards;
///   - a net secure-channel *session* lock is held while the service-level
///     request handler runs (`SecureServer::handle_data` dispatches
///     `on_request_` under it), so it ranks above every cas/ lock; the
///     stripe lock ranks just below the session lock because
///     `close_session` (stripe) is callable from inside a request handler
///     (session held);
///   - cas/ service locks: signer map above the RSA context lock (moving a
///     keypair into the map locks the source key's context), policy DB
///     above the policy-store shards (write-through fill), token stripes
///     above the observe hook;
///   - leaves (trace registration, DRBG stripes, sim-network core) are
///     acquired with callbacks and crypto already outside all locks.
enum class LockRank : std::uint16_t {
  kWorkloadPlatform = 112,  // ClusterBed's simulated-CPU/QE serialization
                            // (SgxCpu and QuotingEnclave are not internally
                            // synchronized; held across enclave construction
                            // and quoting, never across network calls)
  kWorkloadResult = 110,    // load_gen result aggregation / open-loop state
  kClientConnection = 100,  // cas::CasClient connection cache
  kClientBreaker = 98,      // cas::CasClient circuit-breaker state
  kServerVerified = 92,     // server::CasServer verified-common memo
  kSigstructCache = 90,     // server::SigStructCache map + LRU
  kSigstructPool = 88,      // server::SigStructCache per-session pool
  kThreadPool = 86,         // server::ThreadPool queue
  kMetricsRegistry = 80,    // obs::MetricsRegistry collector list
  kClusterLifecycle = 76,   // server::ClusterNode incarnation swap (held
                            // across the idle sweep's stripe lock and a
                            // restart's RaftCore start, both lower)
  kSecureSession = 70,      // net::SecureServer per-session record state
  kSecureStripe = 68,       // net::SecureServer session-table stripe
  kClusterRaft = 64,        // cas::RaftCore consensus state (above the CAS
                            // ranks: the leader applies committed entries
                            // into the policy db / token stripes while
                            // holding it; below the secure-channel ranks,
                            // which are never held across a proposal)
  kCasSigner = 60,          // cas::CasService signer key map
  kCasRng = 58,             // cas::CasService root RNG / lazy secure server
  kCasPolicyDb = 56,        // cas::CasService policy database (shared)
  kCasTokenStripe = 54,     // cas::CasService token-spend stripe
  kCasSessionStripe = 52,   // cas::CasService attested-session stripe
  kPolicyShard = 50,        // server::ShardedPolicyStore shard
  kCasObserve = 48,         // cas::CasService attestation observer hook
  kCryptoRsaCtx = 40,       // crypto::RsaPublicKey verify-context build
  kCryptoDrbg = 38,         // crypto::DrbgPool stripe
  kNetCore = 30,            // net::SimNetwork listener/in-flight core
  kNetFault = 29,           // net::FaultInjector trace log
  kNetWaiter = 28,          // net::SimNetwork synchronous-call waiter
  kTimerWheel = 26,         // net::TimerWheel heap
  kObsTrace = 10,           // obs::Tracer cold-path state (phase registry)
};

namespace lockrank {

/// True when the lock-rank detector is active. Resolved once from the
/// build type (!NDEBUG => on) and the SINCLAVE_LOCK_RANK env override;
/// set_enabled() changes it afterwards. One relaxed load on the fast path.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Number of ranked locks the calling thread currently holds.
std::size_t held_count() noexcept;

/// Aborts (when enabled) if the calling thread holds any ranked lock.
/// This is the runtime form of REQUIRES_NOT(<everything>): it guards the
/// crypto-heavy paths ("handshake crypto outside locks") where the set of
/// locks that must be free is every lock in the process.
void assert_none_held(const char* what) noexcept;

namespace internal {
void check_acquire(const void* mutex, LockRank rank, const char* name,
                   const char* mode) noexcept;
void note_acquired(const void* mutex, LockRank rank, const char* name,
                   const char* mode) noexcept;
void note_released(const void* mutex) noexcept;
}  // namespace internal

}  // namespace lockrank

/// std::mutex with TSA annotations and a static lock rank.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE();
  void unlock() RELEASE();
  bool try_lock() TRY_ACQUIRE(true);

  /// lock(), but counts a failed first try_lock into `collisions`
  /// (relaxed). Replaces the old SecureServer::lock_stripe contention
  /// accounting.
  void lock_contended(std::atomic<std::uint64_t>& collisions) ACQUIRE();

  /// Dynamic "I know this is held" assertion for paths the static
  /// analysis cannot follow (no-op at runtime; informs TSA only).
  void assert_held() const ASSERT_CAPABILITY(this) {}

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::mutex m_;
  const LockRank rank_;
  const char* const name_;
};

/// std::shared_mutex with TSA annotations and a static lock rank.
/// Shared (reader) acquisition follows the same rank rules as exclusive:
/// a reader still participates in deadlock cycles via queued writers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE();
  void unlock() RELEASE();
  void lock_shared() ACQUIRE_SHARED();
  void unlock_shared() RELEASE_SHARED();

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex m_;
  const LockRank rank_;
  const char* const name_;
};

/// Scoped exclusive lock (abseil-style MutexLock). The only way most code
/// should take a Mutex: the scoped form is what TSA tracks through block
/// structure.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock that counts contended acquisitions.
class SCOPED_CAPABILITY ContendedMutexLock {
 public:
  ContendedMutexLock(Mutex& mu, std::atomic<std::uint64_t>& collisions)
      ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock_contended(collisions);
  }
  ~ContendedMutexLock() RELEASE() { mu_.unlock(); }
  ContendedMutexLock(const ContendedMutexLock&) = delete;
  ContendedMutexLock& operator=(const ContendedMutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with sinclave::Mutex. Waiting releases and
/// reacquires through Mutex::unlock()/lock(), so the lock-rank stack stays
/// correct across the wait (popped while blocked, re-checked on wake).
///
/// TSA note: prefer explicit `while (!cond) cv.wait(mu);` loops at call
/// sites over the predicate overload — the analysis sees guarded-member
/// reads inline in the calling function, but cannot see through a
/// predicate lambda.
class CondVar {
 public:
  void wait(Mutex& mu) REQUIRES(mu);
  std::cv_status wait_until(Mutex& mu,
                            std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu);
  std::cv_status wait_for(Mutex& mu, std::chrono::nanoseconds rel)
      REQUIRES(mu);

  /// Predicate form, for test helpers; see the TSA note above.
  template <class Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sinclave
