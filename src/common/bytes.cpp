#include "common/bytes.h"

#include "common/error.h"

namespace sinclave {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw Error("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) throw Error("from_hex: invalid hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void secure_zero(std::uint8_t* data, std::size_t len) {
  volatile std::uint8_t* p = data;
  for (std::size_t i = 0; i < len; ++i) p[i] = 0;
}

Bytes to_bytes(std::string_view s) {
  return Bytes{s.begin(), s.end()};
}

std::string to_string(ByteView data) {
  return std::string{reinterpret_cast<const char*>(data.data()), data.size()};
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace sinclave
