// Error handling conventions.
//
// Programming errors and unrecoverable conditions throw `Error` (or a
// subclass). Expected protocol outcomes — e.g. "this quote does not verify"
// — are reported as status enums on the relevant API instead of exceptions,
// because a failed verification is a normal result for a verifier, not an
// exceptional condition.
#pragma once

#include <stdexcept>
#include <string>

namespace sinclave {

/// Base exception for the whole library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when deserialization encounters malformed input.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse: " + what) {}
};

/// Thrown on misuse of the simulated SGX instruction set (e.g. EADD after
/// EINIT). Mirrors the #GP/#PF faults real hardware raises.
class SgxFault : public Error {
 public:
  explicit SgxFault(const std::string& what) : Error("sgx fault: " + what) {}
};

/// Verification verdicts used across attestation components.
enum class Verdict {
  kOk,
  kBadSignature,
  kBadMac,
  kMeasurementMismatch,
  kSignerMismatch,
  kAttributesMismatch,
  kTokenUnknown,
  kTokenReused,
  kPolicyViolation,
  kStale,
  kMalformed,
};

/// Human-readable verdict name (stable, used in logs and tests).
const char* to_string(Verdict v);

}  // namespace sinclave
