// Little-endian binary serialization helpers.
//
// All wire formats in this repository (SGX structures, RPC messages, the
// base-hash encoding) are defined in terms of these primitives so that the
// byte layout is explicit and platform independent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace sinclave {

/// Appends little-endian encoded values to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(ByteView data);
  /// Length-prefixed (u32) byte string.
  void bytes(ByteView data);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Pad with `n` zero bytes.
  void zeros(std::size_t n);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads little-endian values from a byte view. Throws ParseError on
/// truncated input; callers need no manual bounds checks.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}
  /// A reader holds only a view; constructing it from an rvalue buffer
  /// would dangle as soon as the statement ends. Bind the buffer first.
  explicit ByteReader(Bytes&&) = delete;

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Read exactly n raw bytes.
  Bytes raw(std::size_t n);
  /// Read a u32-length-prefixed byte string.
  Bytes bytes();
  /// Read a u32-length-prefixed UTF-8 string.
  std::string str();
  /// Read a u32 element count and validate it against the bytes left:
  /// every element of the upcoming sequence costs at least
  /// `min_element_bytes` on the wire, so any count exceeding
  /// remaining()/min_element_bytes is a forgery, not a short read.
  /// Rejecting it HERE (typed ParseError) keeps hostile counts from
  /// reaching reserve()/resize() — a u32 of 0xFFFFFFFF must never turn
  /// into a multi-gigabyte allocation attempt whose bad_alloc escapes the
  /// ParseError contract every decoder promises.
  std::uint32_t count(std::size_t min_element_bytes);
  /// Skip n bytes.
  void skip(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  /// Throw ParseError unless the whole input was consumed.
  void expect_done() const;

  template <std::size_t N>
  FixedBytes<N> fixed() {
    return FixedBytes<N>::from_view(raw_view(N));
  }

 private:
  ByteView raw_view(std::size_t n);

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace sinclave
