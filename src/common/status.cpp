#include "common/status.h"

namespace sinclave {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kUnknownSession:
      return "unknown-session";
    case StatusCode::kNotSingleton:
      return "not-singleton";
    case StatusCode::kNoSignerKey:
      return "no-signer-key";
    case StatusCode::kBadSignature:
      return "bad-signature";
    case StatusCode::kWrongSigner:
      return "wrong-signer";
    case StatusCode::kBaseHashMismatch:
      return "base-hash-mismatch";
    case StatusCode::kTokenUnknown:
      return "token-unknown";
    case StatusCode::kTokenReused:
      return "token-reused";
    case StatusCode::kSessionNotAttested:
      return "session-not-attested";
    case StatusCode::kAttestationRejected:
      return "attestation-rejected";
    case StatusCode::kMalformedRequest:
      return "malformed-request";
    case StatusCode::kUnsupportedVersion:
      return "unsupported-version";
    case StatusCode::kUnknownCommand:
      return "unknown-command";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kNotLeader:
      return "not-leader";
  }
  return "unknown";
}

StatusCode status_code_from_wire(std::uint8_t code) {
  return code <= static_cast<std::uint8_t>(StatusCode::kNotLeader)
             ? static_cast<StatusCode>(code)
             : StatusCode::kInternal;
}

const char* status_message(StatusCode code) {
  // The texts for the retrieval outcomes are the seed-era `cas::errors`
  // strings verbatim: legacy (v0) peers receive them unchanged, and the
  // legacy decode path reverse-maps them back to codes.
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kUnknownSession:
      return "unknown session";
    case StatusCode::kNotSingleton:
      return "session is not configured for singleton enclaves";
    case StatusCode::kNoSignerKey:
      return "no signer key uploaded for this session";
    case StatusCode::kBadSignature:
      return "common sigstruct signature invalid";
    case StatusCode::kWrongSigner:
      return "common sigstruct from unexpected signer";
    case StatusCode::kBaseHashMismatch:
      return "common sigstruct does not match session base hash";
    case StatusCode::kTokenUnknown:
      return "token unknown";
    case StatusCode::kTokenReused:
      return "token already spent";
    case StatusCode::kSessionNotAttested:
      return "session not attested";
    case StatusCode::kAttestationRejected:
      return "attestation rejected";
    case StatusCode::kMalformedRequest:
      return "malformed request";
    case StatusCode::kUnsupportedVersion:
      return "unsupported protocol version";
    case StatusCode::kUnknownCommand:
      return "unknown command";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kUnavailable:
      return "service unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kNotLeader:
      return "not the cluster leader";
  }
  return "internal error";
}

std::string retry_after_detail(std::chrono::milliseconds retry_after) {
  return std::string(status_message(StatusCode::kUnavailable)) +
         " (retry-after-ms=" + std::to_string(retry_after.count()) + ")";
}

std::optional<std::chrono::milliseconds> parse_retry_after(
    std::string_view detail) {
  constexpr std::string_view kKey = "retry-after-ms=";
  const auto pos = detail.find(kKey);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = detail.substr(pos + kKey.size());
  std::int64_t value = 0;
  std::size_t digits = 0;
  while (digits < rest.size() && rest[digits] >= '0' && rest[digits] <= '9') {
    value = value * 10 + (rest[digits] - '0');
    ++digits;
    if (value > 86'400'000) return std::nullopt;  // cap: one day is absurd
  }
  if (digits == 0) return std::nullopt;
  return std::chrono::milliseconds(value);
}

std::string deadline_phase_detail(const char* phase) {
  return std::string(status_message(StatusCode::kDeadlineExceeded)) + " in " +
         phase;
}

std::string breaker_open_detail() {
  return std::string(status_message(StatusCode::kUnavailable)) +
         " (circuit breaker open)";
}

std::string not_leader_detail(const std::string& leader_address) {
  std::string detail = status_message(StatusCode::kNotLeader);
  if (!leader_address.empty())
    detail += " (leader=" + leader_address + ")";
  return detail;
}

std::optional<std::string> parse_leader_hint(std::string_view detail) {
  constexpr std::string_view kKey = "leader=";
  const auto pos = detail.find(kKey);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = detail.substr(pos + kKey.size());
  const auto end = rest.find(')');
  if (end != std::string_view::npos) rest = rest.substr(0, end);
  // An address is a short printable endpoint name; anything else (empty,
  // absurdly long, control bytes) is a hostile or corrupt detail — no hint.
  if (rest.empty() || rest.size() > 256) return std::nullopt;
  for (const char c : rest)
    if (c < 0x21 || c > 0x7e) return std::nullopt;
  return std::string(rest);
}

}  // namespace sinclave
