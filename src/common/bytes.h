// Byte-buffer utilities shared by every module.
//
// The whole code base passes binary data as `Bytes` (owning) or
// `std::span<const std::uint8_t>` (non-owning view), following the Core
// Guidelines advice to prefer span parameters over pointer+length pairs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sinclave {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Lower-case hex encoding of a byte range.
std::string to_hex(ByteView data);

/// Parse a hex string (upper or lower case). Throws Error on malformed input.
Bytes from_hex(std::string_view hex);

/// Constant-time equality; returns false for length mismatch without leaking
/// position information. Used for MAC and token comparisons.
bool ct_equal(ByteView a, ByteView b);

/// Overwrite a buffer with zeros in a way the optimizer must not elide.
/// Used to scrub key material.
void secure_zero(std::uint8_t* data, std::size_t len);

/// Convenience: copy a string's bytes into a Bytes buffer.
Bytes to_bytes(std::string_view s);

/// Convenience: interpret bytes as a string (for config payloads in tests).
std::string to_string(ByteView data);

/// Concatenate any number of byte ranges.
Bytes concat(std::initializer_list<ByteView> parts);

/// Fixed-size byte array with value semantics (hashes, MACs, keys, tokens).
template <std::size_t N>
struct FixedBytes {
  std::array<std::uint8_t, N> data{};

  static constexpr std::size_t size() { return N; }
  std::uint8_t* begin() { return data.data(); }
  const std::uint8_t* begin() const { return data.data(); }
  std::uint8_t* end() { return data.data() + N; }
  const std::uint8_t* end() const { return data.data() + N; }

  ByteView view() const { return ByteView{data.data(), N}; }
  Bytes to_vector() const { return Bytes{data.begin(), data.end()}; }
  std::string hex() const { return to_hex(view()); }

  bool is_zero() const {
    for (auto b : data)
      if (b != 0) return false;
    return true;
  }

  friend bool operator==(const FixedBytes& a, const FixedBytes& b) {
    return a.data == b.data;
  }
  friend auto operator<=>(const FixedBytes& a, const FixedBytes& b) {
    return a.data <=> b.data;
  }

  static FixedBytes from_view(ByteView v);
};

template <std::size_t N>
FixedBytes<N> FixedBytes<N>::from_view(ByteView v) {
  FixedBytes<N> out;
  const std::size_t n = v.size() < N ? v.size() : N;
  for (std::size_t i = 0; i < n; ++i) out.data[i] = v[i];
  return out;
}

using Hash256 = FixedBytes<32>;
using Mac128 = FixedBytes<16>;

}  // namespace sinclave
