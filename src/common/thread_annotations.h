#pragma once

// Clang Thread Safety Analysis attribute macros.
//
// These expand to clang's `capability` attribute family when the compiler
// supports it (clang with -Wthread-safety) and to nothing elsewhere (GCC
// builds them out), so annotated code stays portable while the dedicated
// clang CI job proves the locking discipline at compile time.
//
// Usage contract for this repo:
//   - every mutex is a `sinclave::Mutex` / `sinclave::SharedMutex`
//     (tools/lint_invariants.py rejects raw std::mutex outside
//     common/mutex.h), so every lock participates in the analysis;
//   - data owned by a lock is annotated GUARDED_BY(lock);
//   - functions that take a lock internally are annotated
//     REQUIRES_NOT(lock) so self-deadlock is a compile error;
//   - functions that must run with a lock held are annotated
//     REQUIRES(lock).

#if defined(__clang__) && !defined(SINCLAVE_NO_THREAD_SAFETY_ANALYSIS)
#define SINCLAVE_TSA(x) __attribute__((x))
#else
#define SINCLAVE_TSA(x)  // no-op: GCC and MSVC do not implement the analysis
#endif

#define CAPABILITY(x) SINCLAVE_TSA(capability(x))
#define SCOPED_CAPABILITY SINCLAVE_TSA(scoped_lockable)

#define GUARDED_BY(x) SINCLAVE_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) SINCLAVE_TSA(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) SINCLAVE_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SINCLAVE_TSA(acquired_after(__VA_ARGS__))

#define REQUIRES(...) SINCLAVE_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SINCLAVE_TSA(requires_shared_capability(__VA_ARGS__))

// "Caller must NOT hold these locks." Mapped to clang's locks_excluded:
// without -Wthread-safety-negative this is checked wherever the analysis
// can see the caller holding the lock, which is exactly the self-deadlock
// class we care about (e.g. a MetricsRegistry collector calling
// snapshot(), or minting under signer_mutex_). The debug lock-rank
// detector in common/mutex.h covers the dynamic remainder.
#define REQUIRES_NOT(...) SINCLAVE_TSA(locks_excluded(__VA_ARGS__))
#define EXCLUDES(...) SINCLAVE_TSA(locks_excluded(__VA_ARGS__))

#define ACQUIRE(...) SINCLAVE_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) SINCLAVE_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SINCLAVE_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) SINCLAVE_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) SINCLAVE_TSA(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) SINCLAVE_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SINCLAVE_TSA(try_acquire_shared_capability(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) SINCLAVE_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) SINCLAVE_TSA(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) SINCLAVE_TSA(lock_returned(x))

// Escape hatch. Every use must carry a one-line justification comment;
// typical reasons are dynamic lock selection (per-stripe leases the
// static analysis cannot name) and objects under construction.
#define NO_THREAD_SAFETY_ANALYSIS SINCLAVE_TSA(no_thread_safety_analysis)
