#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace sinclave {

namespace lockrank {

namespace {

struct Held {
  const void* mutex;
  LockRank rank;
  const char* name;
  const char* mode;  // "exclusive" | "shared"
};

// Deepest real chain today is 3 (e.g. registry -> rng -> nothing); 32
// leaves headroom without a heap allocation in the lock path.
constexpr std::size_t kMaxHeld = 32;

thread_local Held t_held[kMaxHeld];
thread_local std::size_t t_depth = 0;

// -1 = unresolved, 0 = off, 1 = on. Resolved lazily so the env override
// works without any static-init ordering requirements.
std::atomic<int> g_enabled{-1};

int resolve_enabled() noexcept {
#ifdef NDEBUG
  bool on = false;
#else
  bool on = true;
#endif
  if (const char* env = std::getenv("SINCLAVE_LOCK_RANK"))
    on = env[0] != '0';
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

void dump_held_stack() noexcept {
  for (std::size_t i = 0; i < t_depth; ++i)
    std::fprintf(stderr, "  held[%zu]: %s (rank %u, %s, %p)\n", i,
                 t_held[i].name, static_cast<unsigned>(t_held[i].rank),
                 t_held[i].mode, t_held[i].mutex);
}

[[noreturn]] void die(const char* kind, const void* mutex, LockRank rank,
                      const char* name, const char* mode) noexcept {
  std::fprintf(stderr,
               "lock-rank violation: %s acquiring %s (rank %u, %s, %p); "
               "locks held by this thread:\n",
               kind, name, static_cast<unsigned>(rank), mode, mutex);
  dump_held_stack();
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool enabled() noexcept {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) v = resolve_enabled();
  return v == 1;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t held_count() noexcept { return t_depth; }

void assert_none_held(const char* what) noexcept {
  if (!enabled() || t_depth == 0) return;
  std::fprintf(stderr,
               "lock-rank violation: %s must run with no locks held; "
               "locks held by this thread:\n",
               what);
  dump_held_stack();
  std::fflush(stderr);
  std::abort();
}

namespace internal {

void check_acquire(const void* mutex, LockRank rank, const char* name,
                   const char* mode) noexcept {
  if (!enabled() || t_depth == 0) return;
  for (std::size_t i = 0; i < t_depth; ++i)
    if (t_held[i].mutex == mutex)
      die("recursive acquisition", mutex, rank, name, mode);
  const Held& top = t_held[t_depth - 1];
  if (rank >= top.rank)
    die("rank inversion (acquisition order must be strictly "
        "rank-decreasing)",
        mutex, rank, name, mode);
}

void note_acquired(const void* mutex, LockRank rank, const char* name,
                   const char* mode) noexcept {
  if (!enabled()) return;
  if (t_depth == kMaxHeld)
    die("held-lock stack overflow", mutex, rank, name, mode);
  t_held[t_depth++] = Held{mutex, rank, name, mode};
}

void note_released(const void* mutex) noexcept {
  if (!enabled() || t_depth == 0) return;
  // Search from the top: releases are LIFO in practice, but a lock taken
  // while the detector was disabled (or before set_enabled(true)) may be
  // absent — that release is silently ignored.
  for (std::size_t i = t_depth; i-- > 0;) {
    if (t_held[i].mutex != mutex) continue;
    for (std::size_t j = i + 1; j < t_depth; ++j) t_held[j - 1] = t_held[j];
    --t_depth;
    return;
  }
}

}  // namespace internal

}  // namespace lockrank

void Mutex::lock() {
  lockrank::internal::check_acquire(this, rank_, name_, "exclusive");
  m_.lock();
  lockrank::internal::note_acquired(this, rank_, name_, "exclusive");
}

void Mutex::unlock() {
  m_.unlock();
  lockrank::internal::note_released(this);
}

bool Mutex::try_lock() {
  if (!m_.try_lock()) return false;
  // A successful out-of-order try_lock is a real ordering violation: the
  // thread now holds locks in an order that can deadlock against the
  // blocking path, so it is checked as strictly as lock().
  lockrank::internal::check_acquire(this, rank_, name_, "exclusive");
  lockrank::internal::note_acquired(this, rank_, name_, "exclusive");
  return true;
}

void Mutex::lock_contended(std::atomic<std::uint64_t>& collisions) {
  lockrank::internal::check_acquire(this, rank_, name_, "exclusive");
  if (!m_.try_lock()) {
    collisions.fetch_add(1, std::memory_order_relaxed);
    m_.lock();
  }
  lockrank::internal::note_acquired(this, rank_, name_, "exclusive");
}

void SharedMutex::lock() {
  lockrank::internal::check_acquire(this, rank_, name_, "exclusive");
  m_.lock();
  lockrank::internal::note_acquired(this, rank_, name_, "exclusive");
}

void SharedMutex::unlock() {
  m_.unlock();
  lockrank::internal::note_released(this);
}

void SharedMutex::lock_shared() {
  // Same-thread shared reacquisition is forbidden too (check_acquire's
  // recursion scan): it deadlocks against a writer queued between the two
  // reader acquisitions.
  lockrank::internal::check_acquire(this, rank_, name_, "shared");
  m_.lock_shared();
  lockrank::internal::note_acquired(this, rank_, name_, "shared");
}

void SharedMutex::unlock_shared() {
  m_.unlock_shared();
  lockrank::internal::note_released(this);
}

void CondVar::wait(Mutex& mu) {
  // condition_variable_any drives mu.unlock()/mu.lock(), so the rank
  // stack is popped while blocked and re-checked on reacquisition.
  cv_.wait(mu);
}

std::cv_status CondVar::wait_until(
    Mutex& mu, std::chrono::steady_clock::time_point deadline) {
  return cv_.wait_until(mu, deadline);
}

std::cv_status CondVar::wait_for(Mutex& mu, std::chrono::nanoseconds rel) {
  return cv_.wait_for(mu, rel);
}

}  // namespace sinclave
