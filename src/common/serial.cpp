#include "common/serial.h"

#include "common/error.h"

namespace sinclave {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::raw(ByteView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::bytes(ByteView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::zeros(std::size_t n) {
  buf_.insert(buf_.end(), n, 0);
}

ByteView ByteReader::raw_view(std::size_t n) {
  if (remaining() < n) throw ParseError("truncated input");
  ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t ByteReader::u8() {
  return raw_view(1)[0];
}

std::uint16_t ByteReader::u16() {
  auto v = raw_view(2);
  return static_cast<std::uint16_t>(v[0] | (v[1] << 8));
}

std::uint32_t ByteReader::u32() {
  auto v = raw_view(4);
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) out = (out << 8) | v[static_cast<std::size_t>(i)];
  return out;
}

std::uint64_t ByteReader::u64() {
  auto v = raw_view(8);
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | v[static_cast<std::size_t>(i)];
  return out;
}

Bytes ByteReader::raw(std::size_t n) {
  auto v = raw_view(n);
  return Bytes{v.begin(), v.end()};
}

Bytes ByteReader::bytes() {
  const std::uint32_t n = u32();
  if (remaining() < n) throw ParseError("truncated byte string");
  return raw(n);
}

std::uint32_t ByteReader::count(std::size_t min_element_bytes) {
  const std::uint32_t n = u32();
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (n > remaining() / min_element_bytes)
    throw ParseError("element count exceeds remaining input");
  return n;
}

std::string ByteReader::str() {
  const Bytes b = bytes();
  return std::string{b.begin(), b.end()};
}

void ByteReader::skip(std::size_t n) {
  (void)raw_view(n);
}

void ByteReader::expect_done() const {
  if (!done()) throw ParseError("trailing bytes after message");
}

}  // namespace sinclave
