#include "sgx/cpu.h"

#include <cstring>

#include "common/serial.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"

namespace sinclave::sgx {

namespace {

Bytes derive_fuse(std::uint64_t platform_seed, std::string_view label) {
  ByteWriter seed;
  seed.u64(platform_seed);
  return crypto::hkdf(/*salt=*/{}, seed.data(),
                      to_bytes(std::string("sgx-fuse-") + std::string(label)),
                      32);
}

// All-zero page used as the shared backing of unmaterialized pages.
const std::array<std::uint8_t, kPageSize>& zero_page() {
  static const std::array<std::uint8_t, kPageSize> z{};
  return z;
}

}  // namespace

SgxCpu::SgxCpu(const Config& config)
    : config_(config),
      report_fuse_(derive_fuse(config.platform_seed, "report")),
      seal_fuse_(derive_fuse(config.platform_seed, "seal")),
      launch_fuse_(derive_fuse(config.platform_seed, "launch")),
      key_id_rng_(crypto::Drbg::from_seed(config.platform_seed, "key-id")) {}

SgxCpu::Enclave& SgxCpu::get(EnclaveId id) {
  const auto it = enclaves_.find(id);
  if (it == enclaves_.end()) throw SgxFault("no such enclave");
  return it->second;
}

const SgxCpu::Enclave& SgxCpu::get(EnclaveId id) const {
  const auto it = enclaves_.find(id);
  if (it == enclaves_.end()) throw SgxFault("no such enclave");
  return it->second;
}

SgxCpu::Enclave& SgxCpu::get_initialized(EnclaveId id) {
  Enclave& e = get(id);
  if (!e.initialized) throw SgxFault("enclave not initialized");
  return e;
}

const SgxCpu::Enclave& SgxCpu::get_initialized(EnclaveId id) const {
  const Enclave& e = get(id);
  if (!e.initialized) throw SgxFault("enclave not initialized");
  return e;
}

SgxCpu::EnclaveId SgxCpu::ecreate(std::uint64_t size,
                                  const Attributes& attributes,
                                  std::uint32_t ssa_frame_size) {
  if (size == 0 || size % kPageSize != 0)
    throw SgxFault("ECREATE: size must be a positive page multiple");
  if (attributes.flags & Attributes::kInit)
    throw SgxFault("ECREATE: INIT attribute is set by hardware only");
  const EnclaveId id = next_id_++;
  Enclave& e = enclaves_[id];
  e.size = size;
  e.attributes = attributes;
  e.ssa_frame_size = ssa_frame_size;
  e.log.ecreate(ssa_frame_size, size);
  return id;
}

void SgxCpu::eadd(EnclaveId id, std::uint64_t page_offset, ByteView page,
                  const SecInfo& secinfo) {
  Enclave& e = get(id);
  if (e.initialized) throw SgxFault("EADD: enclave already initialized");
  if (page_offset % kPageSize != 0)
    throw SgxFault("EADD: offset not page aligned");
  if (page_offset + kPageSize > e.size)
    throw SgxFault("EADD: page outside enclave range");
  if (e.pages.contains(page_offset)) throw SgxFault("EADD: page already mapped");
  if (!page.empty() && page.size() != kPageSize)
    throw SgxFault("EADD: page must be 4096 bytes (or empty for zeros)");

  Page p;
  p.secinfo = secinfo;
  if (!page.empty()) {
    bool all_zero = true;
    for (std::uint8_t b : page) {
      if (b != 0) {
        all_zero = false;
        break;
      }
    }
    if (!all_zero) {
      p.data = std::make_unique<std::array<std::uint8_t, kPageSize>>();
      std::memcpy(p.data->data(), page.data(), kPageSize);
    }
  }
  e.pages.emplace(page_offset, std::move(p));
  e.log.eadd(page_offset, secinfo);
}

void SgxCpu::eextend(EnclaveId id, std::uint64_t chunk_offset) {
  Enclave& e = get(id);
  if (e.initialized) throw SgxFault("EEXTEND: enclave already initialized");
  const std::uint64_t page_offset = chunk_offset & ~(kPageSize - 1);
  const auto it = e.pages.find(page_offset);
  if (it == e.pages.end()) throw SgxFault("EEXTEND: page not mapped");
  const auto& storage = it->second.data ? *it->second.data : zero_page();
  const std::size_t in_page = chunk_offset % kPageSize;
  e.log.eextend(chunk_offset,
                ByteView{storage.data() + in_page, kExtendChunkSize});
}

void SgxCpu::add_measured_page(EnclaveId id, std::uint64_t page_offset,
                               ByteView page, const SecInfo& secinfo) {
  eadd(id, page_offset, page, secinfo);
  for (std::size_t c = 0; c < kChunksPerPage; ++c)
    eextend(id, page_offset + c * kExtendChunkSize);
}

Verdict SgxCpu::einit(EnclaveId id, const SigStruct& sigstruct,
                      const std::optional<EinitToken>& token) {
  Enclave& e = get(id);
  if (e.initialized) throw SgxFault("EINIT: already initialized");

  if (!sigstruct.signature_valid()) return Verdict::kBadSignature;

  const Measurement mr_enclave = e.log.finalize();
  if (mr_enclave != sigstruct.enclave_hash)
    return Verdict::kMeasurementMismatch;

  if (!e.attributes.matches_masked(sigstruct.attributes,
                                   sigstruct.attribute_mask))
    return Verdict::kAttributesMismatch;

  if (e.attributes.debug() && !sigstruct.debug_allowed)
    return Verdict::kPolicyViolation;

  const SignerId mr_signer = sigstruct.mr_signer();

  if (!config_.flexible_launch_control && !e.attributes.debug()) {
    // Pre-FLC: production enclaves need a valid EINITTOKEN.
    if (!token.has_value()) return Verdict::kPolicyViolation;
    const Mac128 expect =
        crypto::hmac_sha256_128(launch_fuse_, token->mac_message());
    if (!ct_equal(token->mac.view(), expect.view())) return Verdict::kBadMac;
    if (token->mr_enclave != mr_enclave || token->mr_signer != mr_signer ||
        !(token->attributes == e.attributes))
      return Verdict::kPolicyViolation;
  }

  e.identity.mr_enclave = mr_enclave;
  e.identity.mr_signer = mr_signer;
  e.identity.attributes = e.attributes;
  e.identity.attributes.flags |= Attributes::kInit;
  e.identity.isv_prod_id = sigstruct.isv_prod_id;
  e.identity.isv_svn = sigstruct.isv_svn;
  e.initialized = true;
  return Verdict::kOk;
}

bool SgxCpu::initialized(EnclaveId id) const {
  return get(id).initialized;
}

const EnclaveIdentity& SgxCpu::identity(EnclaveId id) const {
  return get_initialized(id).identity;
}

std::uint64_t SgxCpu::enclave_size(EnclaveId id) const {
  return get(id).size;
}

Bytes SgxCpu::derive_report_key(const Measurement& target_mr,
                                const Attributes& target_attributes) const {
  ByteWriter msg;
  msg.str("REPORT_KEY");
  msg.raw(target_mr.view());
  msg.u64(target_attributes.flags);
  msg.u64(target_attributes.xfrm);
  msg.raw(config_.cpu_svn.view());
  return crypto::hmac_sha256(report_fuse_, msg.data()).to_vector();
}

Report SgxCpu::ereport(EnclaveId id, const TargetInfo& target,
                       const ReportData& report_data) {
  const Enclave& e = get_initialized(id);
  Report report;
  report.cpu_svn = config_.cpu_svn;
  report.identity = e.identity;
  report.report_data = report_data;
  key_id_rng_.generate(report.key_id.data.data(), report.key_id.size());
  const Bytes key = derive_report_key(target.mr_enclave, target.attributes);
  report.mac = crypto::hmac_sha256_128(key, report.mac_message());
  return report;
}

Bytes SgxCpu::egetkey_report(EnclaveId id) const {
  const Enclave& e = get_initialized(id);
  return derive_report_key(e.identity.mr_enclave, e.identity.attributes);
}

bool SgxCpu::verify_report(EnclaveId id, const Report& report) const {
  const Bytes key = egetkey_report(id);
  const Mac128 expect = crypto::hmac_sha256_128(key, report.mac_message());
  return ct_equal(report.mac.view(), expect.view());
}

Bytes SgxCpu::egetkey_seal(EnclaveId id, SealPolicy policy) const {
  const Enclave& e = get_initialized(id);
  ByteWriter msg;
  msg.str("SEAL_KEY");
  switch (policy) {
    case SealPolicy::kMrEnclave:
      msg.u8(0);
      msg.raw(e.identity.mr_enclave.view());
      break;
    case SealPolicy::kMrSigner:
      msg.u8(1);
      msg.raw(e.identity.mr_signer.view());
      break;
  }
  msg.u16(e.identity.isv_prod_id);
  msg.u16(e.identity.isv_svn);
  return crypto::hmac_sha256(seal_fuse_, msg.data()).to_vector();
}

Bytes SgxCpu::egetkey_launch(EnclaveId id) const {
  const Enclave& e = get_initialized(id);
  if (!(e.identity.attributes.flags & Attributes::kEinitTokenKey))
    throw SgxFault("EGETKEY: launch key requires EINITTOKEN_KEY attribute");
  return launch_fuse_;
}

Bytes SgxCpu::read_page(EnclaveId id, std::uint64_t page_offset) const {
  const Enclave& e = get(id);
  const auto it = e.pages.find(page_offset);
  if (it == e.pages.end()) throw SgxFault("read: page not mapped");
  const auto& storage = it->second.data ? *it->second.data : zero_page();
  return Bytes{storage.begin(), storage.end()};
}

void SgxCpu::eremove(EnclaveId id) {
  if (enclaves_.erase(id) == 0) throw SgxFault("EREMOVE: no such enclave");
}

Measurement SgxCpu::current_measurement(EnclaveId id) const {
  return get(id).log.finalize();
}

Bytes SgxCpu::platform_launch_key() const {
  return launch_fuse_;
}

}  // namespace sinclave::sgx
