// The simulated SGX CPU: enclave lifecycle instructions and key hierarchy.
//
// Models the hardware half of the paper's trust argument:
//  * ECREATE/EADD/EEXTEND build an enclave and extend its measurement log
//    (exact block format in sgx/measurement.h).
//  * EINIT verifies the SigStruct and freezes the enclave; afterwards no
//    construction is possible and MRENCLAVE is fixed.
//  * EREPORT emits reports MACed with a key derived from per-platform fuse
//    keys and the *target* enclave's identity.
//  * EGETKEY derives report/seal/launch keys for a running enclave.
//
// Trust-boundary note (simulation): methods documented as "in-enclave" are
// the ones real hardware only exposes to code executing inside the enclave;
// all components live in one process here, so the boundary is enforced by
// convention and checked in tests, not by hardware.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/drbg.h"
#include "sgx/launch.h"
#include "sgx/measurement.h"
#include "sgx/report.h"
#include "sgx/sigstruct.h"
#include "sgx/types.h"

namespace sinclave::sgx {

/// Key derivation policy for EGETKEY(SEAL_KEY).
enum class SealPolicy { kMrEnclave, kMrSigner };

class SgxCpu {
 public:
  using EnclaveId = std::uint64_t;

  struct Config {
    /// Root of the simulated fuse keys; two CPUs with the same seed are
    /// "the same physical processor".
    std::uint64_t platform_seed = 0;
    /// Simulated microcode/TCB version, bound into reports.
    FixedBytes<16> cpu_svn;
    /// Flexible Launch Control: when true (modern default), production
    /// enclaves launch without an EINITTOKEN.
    bool flexible_launch_control = true;
  };

  explicit SgxCpu(const Config& config);

  // --- Enclave construction (executed by the untrusted starter) ---

  /// ECREATE: allocate an enclave of `size` bytes (page multiple, power of
  /// two not required in the simulator) with the given attributes.
  EnclaveId ecreate(std::uint64_t size, const Attributes& attributes,
                    std::uint32_t ssa_frame_size = 1);

  /// EADD: add one page at `page_offset`. `page` is kPageSize bytes, or
  /// empty for an all-zero page (zero pages share storage, so multi-GB
  /// heaps are cheap to simulate). Extends the measurement with the EADD
  /// block only; use eextend()/add_measured_page() to measure content.
  void eadd(EnclaveId id, std::uint64_t page_offset, ByteView page,
            const SecInfo& secinfo);

  /// EEXTEND: measure the 256-byte chunk at `chunk_offset` of a page
  /// previously added with eadd.
  void eextend(EnclaveId id, std::uint64_t chunk_offset);

  /// EADD + 16x EEXTEND.
  void add_measured_page(EnclaveId id, std::uint64_t page_offset,
                         ByteView page, const SecInfo& secinfo);

  /// EINIT: verify the SigStruct (and launch token when FLC is off) and
  /// lock the enclave. On success the enclave's identity becomes readable
  /// and EREPORT/EGETKEY become available.
  Verdict einit(EnclaveId id, const SigStruct& sigstruct,
                const std::optional<EinitToken>& token = std::nullopt);

  // --- Post-initialization ---

  bool initialized(EnclaveId id) const;
  const EnclaveIdentity& identity(EnclaveId id) const;
  std::uint64_t enclave_size(EnclaveId id) const;

  /// EREPORT (in-enclave): produce a report for `target` carrying
  /// caller-chosen REPORTDATA.
  Report ereport(EnclaveId id, const TargetInfo& target,
                 const ReportData& report_data);

  /// EGETKEY(REPORT_KEY) (in-enclave): the key verifying reports that were
  /// targeted at this enclave.
  Bytes egetkey_report(EnclaveId id) const;

  /// Convenience built on egetkey_report: verify a report targeted at
  /// enclave `id`.
  bool verify_report(EnclaveId id, const Report& report) const;

  /// EGETKEY(SEAL_KEY) (in-enclave).
  Bytes egetkey_seal(EnclaveId id, SealPolicy policy) const;

  /// EGETKEY(LAUNCH_KEY): only available to enclaves with the
  /// EINITTOKEN_KEY attribute (the launch enclave). The LaunchEnclave
  /// helper in sgx/launch.h wraps this.
  Bytes egetkey_launch(EnclaveId id) const;

  /// Read a page of enclave memory (in-enclave; used by the runtime to
  /// read its instance page). Returns kPageSize bytes.
  Bytes read_page(EnclaveId id, std::uint64_t page_offset) const;

  /// Destroy an enclave (EREMOVE of all pages).
  void eremove(EnclaveId id);

  /// Current (not yet finalized) measurement — a debugging/test aid; real
  /// hardware exposes the final MRENCLAVE only.
  Measurement current_measurement(EnclaveId id) const;

  /// Platform launch key — models the launch enclave's EGETKEY result
  /// without constructing an actual launch enclave. Used by LaunchAuthority.
  Bytes platform_launch_key() const;

  const Config& config() const { return config_; }

 private:
  struct Page {
    SecInfo secinfo;
    /// Null means an all-zero page (shared representation).
    std::unique_ptr<std::array<std::uint8_t, kPageSize>> data;
  };

  struct Enclave {
    std::uint64_t size = 0;
    Attributes attributes;
    std::uint32_t ssa_frame_size = 1;
    FastMeasurementLog log;
    std::map<std::uint64_t, Page> pages;
    bool initialized = false;
    EnclaveIdentity identity;
  };

  Enclave& get(EnclaveId id);
  const Enclave& get(EnclaveId id) const;
  Enclave& get_initialized(EnclaveId id);
  const Enclave& get_initialized(EnclaveId id) const;

  /// Report-MAC key for reports aimed at the given target identity.
  Bytes derive_report_key(const Measurement& target_mr,
                          const Attributes& target_attributes) const;

  Config config_;
  Bytes report_fuse_;
  Bytes seal_fuse_;
  Bytes launch_fuse_;
  crypto::Drbg key_id_rng_;
  std::map<EnclaveId, Enclave> enclaves_;
  EnclaveId next_id_ = 1;
};

}  // namespace sinclave::sgx
