// SGX reports (EREPORT output) and report targeting.
//
// A report binds the producing enclave's identity (MRENCLAVE, MRSIGNER,
// attributes, ISV ids) together with 64 bytes of caller-chosen REPORTDATA,
// MACed with a key only the *target* enclave (and the CPU) can derive.
// The REPORTDATA field is exactly what the paper's attack abuses: a report
// server produces reports with arbitrary attacker-chosen REPORTDATA.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "sgx/types.h"

namespace sinclave::sgx {

/// 64-byte user data bound into a report (e.g. a channel public key hash).
using ReportData = FixedBytes<64>;

/// Identifies the enclave a report is destined for; the MAC key is derived
/// from these fields so only that enclave can verify the report.
struct TargetInfo {
  Measurement mr_enclave;
  Attributes attributes;

  Bytes serialize() const;
  static TargetInfo deserialize(ByteView data);

  friend bool operator==(const TargetInfo&, const TargetInfo&) = default;
};

struct Report {
  /// CPU security version (simulated platform TCB level).
  FixedBytes<16> cpu_svn;
  EnclaveIdentity identity;
  ReportData report_data;
  FixedBytes<32> key_id;  // freshness of the MAC key derivation
  Mac128 mac;

  /// Serialization of everything covered by the MAC.
  Bytes mac_message() const;

  Bytes serialize() const;
  static Report deserialize(ByteView data);

  friend bool operator==(const Report&, const Report&) = default;
};

}  // namespace sinclave::sgx
