// EINIT tokens and the launch authority (pre-FLC launch control).
//
// Before Flexible Launch Control, a production enclave could only be
// initialized with an EINITTOKEN minted by the Intel-signed launch enclave.
// The token authorizes a specific (MRENCLAVE, MRSIGNER, attributes) triple
// and is MACed with the platform launch key. The simulator reproduces this
// path so tests can cover both launch-control regimes the paper describes
// (§2.2.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "sgx/types.h"

namespace sinclave::sgx {

struct EinitToken {
  Measurement mr_enclave;
  SignerId mr_signer;
  Attributes attributes;
  bool debug = false;
  Mac128 mac;

  /// Serialization of the MACed fields.
  Bytes mac_message() const;

  Bytes serialize() const;
  static EinitToken deserialize(ByteView data);

  friend bool operator==(const EinitToken&, const EinitToken&) = default;
};

class SgxCpu;

/// Models the launch enclave: mints EINITTOKENs under a simple signer
/// whitelist policy. Holds the platform launch key obtained from the CPU.
class LaunchAuthority {
 public:
  explicit LaunchAuthority(const SgxCpu& cpu);

  /// Allow enclaves from this signer to launch in production mode.
  void whitelist_signer(const SignerId& signer);

  /// Mint a token, or nullopt when policy denies (production enclave from
  /// a non-whitelisted signer). Debug enclaves are always allowed.
  std::optional<EinitToken> request_token(const Measurement& mr_enclave,
                                          const SignerId& mr_signer,
                                          const Attributes& attributes) const;

 private:
  Bytes launch_key_;
  std::vector<SignerId> whitelist_;
};

}  // namespace sinclave::sgx
