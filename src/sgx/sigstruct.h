// The Enclave Signature Structure (SigStruct).
//
// Created by the enclave signer, consumed by EINIT: it pins the expected
// MRENCLAVE, the allowed attributes (with a mask), product id and security
// version, all under an RSA-3072 signature. MRSIGNER is defined as
// SHA-256(modulus). SinClave's verifier creates *on-demand* SigStructs —
// one per singleton enclave — by swapping the enclave_hash and re-signing
// (src/core/on_demand.h); the signer key itself never leaves the verifier.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/rsa.h"
#include "sgx/types.h"

namespace sinclave::sgx {

struct SigStruct {
  /// Signed fields.
  Measurement enclave_hash;     // expected MRENCLAVE
  Attributes attributes;        // expected attribute values
  Attributes attribute_mask;    // which attribute bits EINIT enforces
  std::uint16_t isv_prod_id = 0;
  std::uint16_t isv_svn = 0;
  std::uint32_t date = 0;       // yyyymmdd, informational
  bool debug_allowed = false;   // signer permits debug launch

  /// Signer public key and signature over the signed fields.
  crypto::RsaPublicKey signer_key;
  Bytes signature;

  /// Canonical serialization of the signed fields (the RSA message).
  Bytes signing_message() const;

  /// Sign with the enclave signer's private key; fills signer_key+signature.
  /// The scratch overload lets batch signers (on-demand SigStruct minting)
  /// reuse one arena across many signatures.
  void sign(const crypto::RsaKeyPair& signer);
  void sign(const crypto::RsaKeyPair& signer,
            crypto::Montgomery::Scratch& scratch);

  /// Check the RSA signature against the embedded public key.
  bool signature_valid() const;

  /// MRSIGNER := SHA-256 over the signer's modulus.
  SignerId mr_signer() const;

  /// Full wire encoding (for embedding into enclave binaries and RPC).
  Bytes serialize() const;
  static SigStruct deserialize(ByteView data);

  friend bool operator==(const SigStruct&, const SigStruct&) = default;
};

}  // namespace sinclave::sgx
