#include "sgx/sigstruct.h"

#include "common/serial.h"
#include "crypto/sha256.h"

namespace sinclave::sgx {

namespace {
constexpr std::uint32_t kSigStructMagic = 0x53494753;  // "SIGS"
}

Bytes SigStruct::signing_message() const {
  ByteWriter w;
  w.u32(kSigStructMagic);
  w.raw(enclave_hash.view());
  w.u64(attributes.flags);
  w.u64(attributes.xfrm);
  w.u64(attribute_mask.flags);
  w.u64(attribute_mask.xfrm);
  w.u16(isv_prod_id);
  w.u16(isv_svn);
  w.u32(date);
  w.u8(debug_allowed ? 1 : 0);
  return std::move(w).take();
}

void SigStruct::sign(const crypto::RsaKeyPair& signer) {
  signer_key = signer.public_key();
  signature = signer.sign_pkcs1_sha256(signing_message());
}

void SigStruct::sign(const crypto::RsaKeyPair& signer,
                     crypto::Montgomery::Scratch& scratch) {
  signer_key = signer.public_key();
  signature = signer.sign_pkcs1_sha256(signing_message(), scratch);
}

bool SigStruct::signature_valid() const {
  if (signature.empty()) return false;
  return signer_key.verify_pkcs1_sha256(signing_message(), signature);
}

SignerId SigStruct::mr_signer() const {
  return crypto::sha256(signer_key.modulus_be());
}

Bytes SigStruct::serialize() const {
  ByteWriter w;
  w.raw(signing_message());
  w.bytes(signer_key.serialize());
  w.bytes(signature);
  return std::move(w).take();
}

SigStruct SigStruct::deserialize(ByteView data) {
  ByteReader r(data);
  if (r.u32() != kSigStructMagic) throw ParseError("sigstruct: bad magic");
  SigStruct s;
  s.enclave_hash = r.fixed<32>();
  s.attributes.flags = r.u64();
  s.attributes.xfrm = r.u64();
  s.attribute_mask.flags = r.u64();
  s.attribute_mask.xfrm = r.u64();
  s.isv_prod_id = r.u16();
  s.isv_svn = r.u16();
  s.date = r.u32();
  s.debug_allowed = r.u8() != 0;
  s.signer_key = crypto::RsaPublicKey::deserialize(r.bytes());
  s.signature = r.bytes();
  r.expect_done();
  return s;
}

}  // namespace sinclave::sgx
