#include "sgx/launch.h"

#include <algorithm>

#include "common/serial.h"
#include "crypto/hmac.h"
#include "sgx/cpu.h"

namespace sinclave::sgx {

Bytes EinitToken::mac_message() const {
  ByteWriter w;
  w.raw(mr_enclave.view());
  w.raw(mr_signer.view());
  w.u64(attributes.flags);
  w.u64(attributes.xfrm);
  w.u8(debug ? 1 : 0);
  return std::move(w).take();
}

Bytes EinitToken::serialize() const {
  ByteWriter w;
  w.raw(mac_message());
  w.raw(mac.view());
  return std::move(w).take();
}

EinitToken EinitToken::deserialize(ByteView data) {
  ByteReader r(data);
  EinitToken t;
  t.mr_enclave = r.fixed<32>();
  t.mr_signer = r.fixed<32>();
  t.attributes.flags = r.u64();
  t.attributes.xfrm = r.u64();
  t.debug = r.u8() != 0;
  t.mac = r.fixed<16>();
  r.expect_done();
  return t;
}

LaunchAuthority::LaunchAuthority(const SgxCpu& cpu)
    : launch_key_(cpu.platform_launch_key()) {}

void LaunchAuthority::whitelist_signer(const SignerId& signer) {
  if (std::find(whitelist_.begin(), whitelist_.end(), signer) ==
      whitelist_.end())
    whitelist_.push_back(signer);
}

std::optional<EinitToken> LaunchAuthority::request_token(
    const Measurement& mr_enclave, const SignerId& mr_signer,
    const Attributes& attributes) const {
  const bool debug = attributes.debug();
  if (!debug && std::find(whitelist_.begin(), whitelist_.end(), mr_signer) ==
                    whitelist_.end()) {
    return std::nullopt;  // production launch requires a whitelisted signer
  }
  EinitToken token;
  token.mr_enclave = mr_enclave;
  token.mr_signer = mr_signer;
  token.attributes = attributes;
  token.debug = debug;
  token.mac = crypto::hmac_sha256_128(launch_key_, token.mac_message());
  return token;
}

}  // namespace sinclave::sgx
