// Core SGX data types shared across the simulator: enclave attributes,
// page security info, measurement values. Field layouts follow the Intel
// SDM (vol. 3D) closely enough that every structure the measurement hash
// consumes is a multiple of 64 bytes — the property SinClave's base-hash
// mechanism depends on.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace sinclave::sgx {

inline constexpr std::size_t kPageSize = 4096;
/// EEXTEND measures 256-byte chunks; 16 chunks per page.
inline constexpr std::size_t kExtendChunkSize = 256;
inline constexpr std::size_t kChunksPerPage = kPageSize / kExtendChunkSize;

/// Enclave measurement (MRENCLAVE) and signer identity (MRSIGNER).
using Measurement = Hash256;
using SignerId = Hash256;

/// SECS.ATTRIBUTES: execution-environment flags bound into measurement,
/// reports and key derivations. Bit positions mirror the SDM.
struct Attributes {
  static constexpr std::uint64_t kInit = 1u << 0;   // set by hardware at EINIT
  static constexpr std::uint64_t kDebug = 1u << 1;
  static constexpr std::uint64_t kMode64 = 1u << 2;
  static constexpr std::uint64_t kProvisionKey = 1u << 4;
  static constexpr std::uint64_t kEinitTokenKey = 1u << 5;

  std::uint64_t flags = kMode64;
  std::uint64_t xfrm = 0x3;  // X87|SSE always required

  bool debug() const { return flags & kDebug; }

  /// True when `this` is allowed under a signer-specified mask pair:
  /// every bit the mask selects must match the expected attributes.
  bool matches_masked(const Attributes& expected, const Attributes& mask) const {
    return (flags & mask.flags) == (expected.flags & mask.flags) &&
           (xfrm & mask.xfrm) == (expected.xfrm & mask.xfrm);
  }

  friend bool operator==(const Attributes&, const Attributes&) = default;
};

/// Page permissions and type (SECINFO.FLAGS); the first 8 bytes of the
/// 48-byte SECINFO block hashed by EADD.
struct SecInfo {
  static constexpr std::uint64_t kRead = 1u << 0;
  static constexpr std::uint64_t kWrite = 1u << 1;
  static constexpr std::uint64_t kExecute = 1u << 2;

  enum class PageType : std::uint8_t { kSecs = 0, kTcs = 1, kReg = 2 };

  std::uint64_t permissions = kRead | kWrite;
  PageType page_type = PageType::kReg;

  std::uint64_t packed_flags() const {
    return permissions | (std::uint64_t{static_cast<std::uint8_t>(page_type)} << 8);
  }

  static SecInfo reg_rw() { return SecInfo{}; }
  static SecInfo reg_rx() {
    return SecInfo{kRead | kExecute, PageType::kReg};
  }
  static SecInfo tcs() { return SecInfo{kRead | kWrite, PageType::kTcs}; }

  friend bool operator==(const SecInfo&, const SecInfo&) = default;
};

/// Identity of an enclave as seen by verifiers: everything a report binds.
struct EnclaveIdentity {
  Measurement mr_enclave;
  SignerId mr_signer;
  Attributes attributes;
  std::uint16_t isv_prod_id = 0;
  std::uint16_t isv_svn = 0;

  friend bool operator==(const EnclaveIdentity&, const EnclaveIdentity&) = default;
};

}  // namespace sinclave::sgx
