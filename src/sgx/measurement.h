// The SGX enclave measurement log.
//
// MRENCLAVE is the SHA-256 over a log of enclave-construction operations.
// Each operation contributes whole 64-byte blocks (SDM vol. 3D):
//
//   ECREATE : "ECREATE\0" | u32 ssa_frame_size | u64 enclave_size | 44 zeros
//   EADD    : "EADD\0\0\0\0" | u64 page_offset | 48-byte SECINFO prefix
//   EEXTEND : "EEXTEND\0" | u64 chunk_offset | 48 zeros, then the 256 data
//             bytes of the chunk (4 further blocks)
//
// Because every operation is 64-byte aligned, the running SHA-256 state
// between operations is exportable/resumable — the foundation of the
// SinClave base enclave hash (src/core/base_hash.h).
//
// Two log flavours share the block format via the templates below:
//  * MeasurementLog      — interruptible SHA-256; state export/resume.
//    Used by the SinClave signer and the verifier-side predictor.
//  * FastMeasurementLog  — optimized SHA-256, no export. Used by the
//    simulated CPU (hardware measures at full speed and its hash state is
//    not externally observable) and by the baseline signer.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/sha256.h"
#include "crypto/sha256_fast.h"
#include "sgx/types.h"

namespace sinclave::sgx {

namespace measurement_ops {

/// Append the ECREATE block to any SHA-256-like hasher.
template <typename Hasher>
void absorb_ecreate(Hasher& h, std::uint32_t ssa_frame_size,
                    std::uint64_t enclave_size) {
  std::uint8_t block[64] = {};
  std::memcpy(block, "ECREATE\0", 8);
  std::memcpy(block + 8, &ssa_frame_size, 4);
  std::memcpy(block + 12, &enclave_size, 8);
  h.update(ByteView{block, 64});
}

template <typename Hasher>
void absorb_eadd(Hasher& h, std::uint64_t page_offset, const SecInfo& secinfo) {
  std::uint8_t block[64] = {};
  std::memcpy(block, "EADD\0\0\0\0", 8);
  std::memcpy(block + 8, &page_offset, 8);
  const std::uint64_t flags = secinfo.packed_flags();
  std::memcpy(block + 16, &flags, 8);
  h.update(ByteView{block, 64});
}

template <typename Hasher>
void absorb_eextend(Hasher& h, std::uint64_t chunk_offset, ByteView chunk256) {
  std::uint8_t block[64] = {};
  std::memcpy(block, "EEXTEND\0", 8);
  std::memcpy(block + 8, &chunk_offset, 8);
  h.update(ByteView{block, 64});
  h.update(chunk256);
}

}  // namespace measurement_ops

/// Common log behaviour over a hasher type.
template <typename Hasher>
class BasicMeasurementLog {
 public:
  /// Record enclave creation. Must be the first operation.
  void ecreate(std::uint32_t ssa_frame_size, std::uint64_t enclave_size) {
    if (operations_ != 0)
      throw SgxFault("measurement: ECREATE must be the first operation");
    measurement_ops::absorb_ecreate(hash_, ssa_frame_size, enclave_size);
    ++operations_;
  }

  /// Record addition of a page at `page_offset` (page aligned).
  void eadd(std::uint64_t page_offset, const SecInfo& secinfo) {
    if (operations_ == 0) throw SgxFault("measurement: EADD before ECREATE");
    if (page_offset % kPageSize != 0)
      throw SgxFault("measurement: EADD offset not page aligned");
    measurement_ops::absorb_eadd(hash_, page_offset, secinfo);
    ++operations_;
  }

  /// Record measurement of one 256-byte chunk at `chunk_offset`.
  void eextend(std::uint64_t chunk_offset, ByteView chunk256) {
    if (operations_ == 0)
      throw SgxFault("measurement: EEXTEND before ECREATE");
    if (chunk256.size() != kExtendChunkSize)
      throw SgxFault("measurement: EEXTEND requires a 256-byte chunk");
    if (chunk_offset % kExtendChunkSize != 0)
      throw SgxFault("measurement: EEXTEND offset not 256-byte aligned");
    measurement_ops::absorb_eextend(hash_, chunk_offset, chunk256);
    ++operations_;
  }

  /// Convenience: eadd followed by eextend over all 16 chunks of the page.
  void add_measured_page(std::uint64_t page_offset, const SecInfo& secinfo,
                         ByteView page) {
    if (page.size() != kPageSize)
      throw SgxFault("measurement: page must be 4096 bytes");
    eadd(page_offset, secinfo);
    for (std::size_t c = 0; c < kChunksPerPage; ++c)
      eextend(page_offset + c * kExtendChunkSize,
              page.subspan(c * kExtendChunkSize, kExtendChunkSize));
  }

  /// Number of construction operations recorded so far.
  std::uint64_t operation_count() const { return operations_; }

  /// Finalize into MRENCLAVE. Works on a copy so the log stays usable —
  /// a verifier measures several candidate extensions from one prefix.
  Measurement finalize() const {
    Hasher copy = hash_;
    return copy.finalize();
  }

 protected:
  Hasher hash_;
  std::uint64_t operations_ = 0;
};

/// Interruptible log: supports base-hash export and resume.
class MeasurementLog : public BasicMeasurementLog<crypto::Sha256> {
 public:
  /// Export the resumable mid-state (the base enclave hash payload).
  crypto::Sha256State export_state() const { return hash_.export_state(); }

  /// Resume from a previously exported state, e.g. on the verifier side.
  /// The operation counter restarts relative to the resume point.
  static MeasurementLog resume(const crypto::Sha256State& state) {
    MeasurementLog log;
    log.hash_ = crypto::Sha256::resume(state);
    log.operations_ = state.byte_count / 64;  // block count: >0 iff non-empty
    return log;
  }
};

/// Hardware-speed log without export (the simulated CPU's internal state,
/// like real silicon, is not observable mid-construction).
class FastMeasurementLog : public BasicMeasurementLog<crypto::Sha256Fast> {};

}  // namespace sinclave::sgx
