#include "sgx/report.h"

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::sgx {

Bytes TargetInfo::serialize() const {
  ByteWriter w;
  w.raw(mr_enclave.view());
  w.u64(attributes.flags);
  w.u64(attributes.xfrm);
  return std::move(w).take();
}

TargetInfo TargetInfo::deserialize(ByteView data) {
  ByteReader r(data);
  TargetInfo t;
  t.mr_enclave = r.fixed<32>();
  t.attributes.flags = r.u64();
  t.attributes.xfrm = r.u64();
  r.expect_done();
  return t;
}

Bytes Report::mac_message() const {
  ByteWriter w;
  w.raw(cpu_svn.view());
  w.raw(identity.mr_enclave.view());
  w.raw(identity.mr_signer.view());
  w.u64(identity.attributes.flags);
  w.u64(identity.attributes.xfrm);
  w.u16(identity.isv_prod_id);
  w.u16(identity.isv_svn);
  w.raw(report_data.view());
  w.raw(key_id.view());
  return std::move(w).take();
}

Bytes Report::serialize() const {
  ByteWriter w;
  w.raw(mac_message());
  w.raw(mac.view());
  return std::move(w).take();
}

Report Report::deserialize(ByteView data) {
  ByteReader r(data);
  Report rep;
  rep.cpu_svn = r.fixed<16>();
  rep.identity.mr_enclave = r.fixed<32>();
  rep.identity.mr_signer = r.fixed<32>();
  rep.identity.attributes.flags = r.u64();
  rep.identity.attributes.xfrm = r.u64();
  rep.identity.isv_prod_id = r.u16();
  rep.identity.isv_svn = r.u16();
  rep.report_data = r.fixed<64>();
  rep.key_id = r.fixed<32>();
  rep.mac = r.fixed<16>();
  r.expect_done();
  return rep;
}

}  // namespace sinclave::sgx
