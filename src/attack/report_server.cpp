#include "attack/report_server.h"

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::attack {

void register_report_server(runtime::ProgramRegistry& registry) {
  registry.register_program(
      kReportServerProgram, [](runtime::AppContext& ctx) -> int {
        if (ctx.config == nullptr || ctx.config->args.empty()) return 1;
        if (!ctx.make_report || ctx.network == nullptr) return 1;
        const std::string address = ctx.config->args[0];

        // The "server loop": in the simulator, registering the handler is
        // the loop — each incoming request invokes it synchronously.
        auto make_report = ctx.make_report;
        ctx.network->listen(address, [make_report](ByteView raw) {
          ByteReader r(raw);
          const sgx::TargetInfo target =
              sgx::TargetInfo::deserialize(r.bytes());
          const sgx::ReportData data = r.fixed<64>();
          r.expect_done();
          return make_report(target, data).serialize();
        });
        ctx.output = "report server listening on " + address;
        return 0;
      });
}

sgx::Report request_report(net::SimNetwork& net, const std::string& address,
                           const sgx::TargetInfo& target,
                           const sgx::ReportData& report_data) {
  ByteWriter w;
  w.bytes(target.serialize());
  w.raw(report_data.view());
  auto conn = net.connect(address);
  return sgx::Report::deserialize(conn.call(w.data()));
}

}  // namespace sinclave::attack
