#include "attack/impersonator.h"

#include "attack/report_server.h"
#include "common/serial.h"
#include "net/secure_channel.h"

namespace sinclave::attack {

TeeImpersonator::TeeImpersonator(net::SimNetwork* net,
                                 quote::QuotingEnclave* qe,
                                 std::string report_server_address,
                                 crypto::Drbg rng)
    : net_(net), qe_(qe),
      report_server_address_(std::move(report_server_address)),
      rng_(std::move(rng)) {
  if (!net_ || !qe_) throw Error("impersonator: network and QE required");
}

ImpersonationAttempt TeeImpersonator::steal_config(
    const std::string& cas_address, const crypto::RsaPublicKey& cas_identity,
    const std::string& session_name,
    const std::optional<core::AttestationToken>& token) {
  ImpersonationAttempt attempt;

  // 1. Own channel key; the binding the verifier will check.
  net::SecureClient client(crypto::Drbg(rng_.generate(16), "impersonator"));
  const sgx::ReportData binding = net::channel_binding(client.dh_public());

  // 2. Have the victim enclave vouch for *our* channel key.
  sgx::Report report;
  try {
    report = request_report(*net_, report_server_address_, qe_->target_info(),
                            binding);
  } catch (const Error&) {
    attempt.failure = "report-server-unreachable";
    return attempt;
  }

  // 3. Standard platform quoting — available to any local software.
  const auto q = qe_->generate_quote(report);
  if (!q.has_value()) {
    attempt.failure = "quoting-failed";
    return attempt;
  }

  // 4. Attest exactly like a genuine enclave runtime would.
  cas::AttestPayload payload;
  payload.session_name = session_name;
  payload.quote = *q;
  payload.token = token;

  std::optional<Bytes> accepted;
  try {
    accepted = client.connect(net_->connect(cas_address), cas_identity,
                              payload.serialize());
  } catch (const Error&) {
    attempt.failure = "connect-failed";
    return attempt;
  }
  if (!accepted.has_value()) {
    attempt.failure = "handshake-rejected";
    return attempt;
  }

  // 5. Collect the spoils.
  ByteWriter cmd;
  cmd.u8(static_cast<std::uint8_t>(cas::Command::kGetConfig));
  const cas::ConfigResponse cfg =
      cas::ConfigResponse::deserialize(client.call(cmd.data()));
  if (!cfg.ok) {
    attempt.failure = "config-denied";
    return attempt;
  }
  attempt.stolen_config = cfg.config;
  return attempt;
}

}  // namespace sinclave::attack
