#include "attack/impersonator.h"

#include "attack/report_server.h"
#include "cas/client.h"
#include "net/secure_channel.h"

namespace sinclave::attack {

TeeImpersonator::TeeImpersonator(net::SimNetwork* net,
                                 quote::QuotingEnclave* qe,
                                 std::string report_server_address,
                                 crypto::Drbg rng)
    : net_(net), qe_(qe),
      report_server_address_(std::move(report_server_address)),
      rng_(std::move(rng)) {
  if (!net_ || !qe_) throw Error("impersonator: network and QE required");
}

ImpersonationAttempt TeeImpersonator::steal_config(
    const std::string& cas_address, const crypto::RsaPublicKey& cas_identity,
    const std::string& session_name,
    const std::optional<core::AttestationToken>& token) {
  ImpersonationAttempt attempt;

  // 1. Own channel key; the binding the verifier will check. The attack
  // rides the legitimate client SDK — exactly the paper's point: a CAS
  // client is ~75 lines of adaptation, nothing enclave-specific.
  cas::AttestedChannel channel(net_, cas_address,
                               crypto::Drbg(rng_.generate(16),
                                            "impersonator"));
  const sgx::ReportData binding = net::channel_binding(channel.dh_public());

  // 2. Have the victim enclave vouch for *our* channel key.
  sgx::Report report;
  try {
    report = request_report(*net_, report_server_address_, qe_->target_info(),
                            binding);
  } catch (const Error&) {
    attempt.failure = "report-server-unreachable";
    return attempt;
  }

  // 3. Standard platform quoting — available to any local software.
  const auto q = qe_->generate_quote(report);
  if (!q.has_value()) {
    attempt.failure = "quoting-failed";
    return attempt;
  }

  // 4. Attest exactly like a genuine enclave runtime would.
  cas::AttestPayload payload;
  payload.session_name = session_name;
  payload.quote = *q;
  payload.token = token;

  Status attest_status;
  try {
    attest_status = channel.attest(cas_identity, payload);
  } catch (const Error&) {
    attempt.failure = "connect-failed";
    return attempt;
  }
  if (attest_status.code == StatusCode::kAttestationRejected) {
    attempt.failure = "handshake-rejected";
    return attempt;
  }
  if (!attest_status.ok()) {
    attempt.failure = "connect-failed";
    return attempt;
  }

  // 5. Collect the spoils.
  const Result<cas::AppConfig> cfg = channel.get_config();
  if (!cfg.ok()) {
    attempt.failure = "config-denied";
    return attempt;
  }
  attempt.stolen_config = cfg.value();
  return attempt;
}

}  // namespace sinclave::attack
