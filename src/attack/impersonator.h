// The TEE impersonator (§3.2/§3.3).
//
// Speaks the verifier's attestation protocol *without running in any
// enclave* (the paper's 75-line CAS-client adaptation). The only genuinely
// enclave-backed step — producing a report whose REPORTDATA commits to the
// impersonator's channel key — is outsourced to the report server running
// inside the victim enclave. The quote the verifier then sees is valid,
// names the expected MRENCLAVE/MRSIGNER, and binds the *impersonator's*
// channel: against the baseline flow the verifier cannot tell the
// difference and hands over the user's secrets.
#pragma once

#include <optional>
#include <string>

#include "cas/protocol.h"
#include "crypto/drbg.h"
#include "net/sim_network.h"
#include "quote/quoting_enclave.h"

namespace sinclave::attack {

struct ImpersonationAttempt {
  /// Secrets obtained from the verifier; set iff the attack succeeded.
  std::optional<cas::AppConfig> stolen_config;
  /// Failure stage, for tests ("handshake-rejected", "config-denied", ...).
  std::string failure;

  bool succeeded() const { return stolen_config.has_value(); }
};

class TeeImpersonator {
 public:
  /// `report_server_address`: where the coerced victim enclave serves
  /// reports. The quoting enclave is a platform service the (local)
  /// adversary can invoke like any other software.
  TeeImpersonator(net::SimNetwork* net, quote::QuotingEnclave* qe,
                  std::string report_server_address, crypto::Drbg rng);

  /// Run the attack against a verifier: obtain the configuration of
  /// `session_name` without ever executing the attested code path.
  /// `token`: in SinClave mode the adversary may replay a token they
  /// observed or requested themselves.
  ImpersonationAttempt steal_config(
      const std::string& cas_address,
      const crypto::RsaPublicKey& cas_identity,
      const std::string& session_name,
      const std::optional<core::AttestationToken>& token = std::nullopt);

 private:
  net::SimNetwork* net_;
  quote::QuotingEnclave* qe_;
  std::string report_server_address_;
  crypto::Drbg rng_;
};

}  // namespace sinclave::attack
