// The report server (§3.2, "Creating a Report Server").
//
// A report server is a victim enclave coerced — purely through unmeasured
// configuration — into producing SGX reports with adversary-chosen
// REPORTDATA. It is implemented here as an ordinary runtime Program (like
// the paper's 33-line Python socket server): it listens on a network
// address taken from its (attacker-supplied) arguments and answers
//
//     request : serialized TargetInfo || 64-byte REPORTDATA
//     response: serialized Report (hardware-MACed by the genuine enclave)
//
// via the framework's report API. Nothing about running it is reflected in
// the enclave's measurement — which is the vulnerability.
#pragma once

#include <string>

#include "runtime/program.h"

namespace sinclave::attack {

/// Program name the attacker's configuration selects.
inline constexpr const char* kReportServerProgram = "report_server";

/// Registers the report server under kReportServerProgram. The listen
/// address comes from config.args[0].
void register_report_server(runtime::ProgramRegistry& registry);

/// Client helper: ask a running report server for a report.
sgx::Report request_report(net::SimNetwork& net, const std::string& address,
                           const sgx::TargetInfo& target,
                           const sgx::ReportData& report_data);

}  // namespace sinclave::attack
