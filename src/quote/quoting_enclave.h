// The platform quoting enclave.
//
// Runs as a genuine (simulated) enclave on the SGX CPU: application enclaves
// EREPORT towards its TargetInfo, it locally attests the report by checking
// the hardware MAC with its EGETKEY(REPORT_KEY), and converts valid reports
// into remotely verifiable quotes signed with its attestation key.
#pragma once

#include <optional>

#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "quote/quote.h"
#include "sgx/cpu.h"

namespace sinclave::quote {

class QuotingEnclave {
 public:
  /// Builds and initializes the QE enclave on `cpu`. `attestation_key_bits`
  /// is configurable because RSA keygen dominates setup time in tests
  /// (production DCAP uses ECDSA-P256; the signature scheme is not on any
  /// measured path of the paper).
  QuotingEnclave(sgx::SgxCpu& cpu, crypto::Drbg& rng,
                 std::size_t attestation_key_bits = 1024);

  /// Where application enclaves aim their EREPORT.
  sgx::TargetInfo target_info() const;

  /// Local attestation + quote generation. Returns nullopt when the report
  /// MAC does not verify (report not produced by this platform's hardware
  /// for this QE).
  std::optional<Quote> generate_quote(const sgx::Report& report) const;

  /// The attestation key's public half, registered with the attestation
  /// service out of band.
  const crypto::RsaPublicKey& attestation_key() const {
    return attestation_key_.public_key();
  }

  /// Identifier derived from the attestation key.
  Hash256 qe_id() const;

 private:
  sgx::SgxCpu& cpu_;
  sgx::SgxCpu::EnclaveId enclave_id_;
  crypto::RsaKeyPair attestation_key_;
};

}  // namespace sinclave::quote
