#include "quote/attestation_service.h"

#include "crypto/sha256.h"

namespace sinclave::quote {

void AttestationService::register_platform(const crypto::RsaPublicKey& qe_key) {
  platforms_[crypto::sha256(qe_key.modulus_be())] = qe_key;
}

void AttestationService::revoke_platform(const Hash256& qe_id) {
  platforms_.erase(qe_id);
}

QuoteVerification AttestationService::verify(const Quote& quote) const {
  QuoteVerification out;
  const auto it = platforms_.find(quote.qe_id);
  if (it == platforms_.end()) {
    out.verdict = Verdict::kSignerMismatch;  // unknown platform
    return out;
  }
  if (!it->second.verify_pkcs1_sha256(quote.signed_message(),
                                      quote.signature)) {
    out.verdict = Verdict::kBadSignature;
    return out;
  }
  out.verdict = Verdict::kOk;
  out.identity = quote.report.identity;
  out.report_data = quote.report.report_data;
  return out;
}

}  // namespace sinclave::quote
