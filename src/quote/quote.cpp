#include "quote/quote.h"

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::quote {

Bytes Quote::signed_message() const {
  ByteWriter w;
  w.raw(report.mac_message());
  w.raw(qe_id.view());
  return std::move(w).take();
}

Bytes Quote::serialize() const {
  ByteWriter w;
  w.bytes(report.serialize());
  w.raw(qe_id.view());
  w.bytes(signature);
  return std::move(w).take();
}

Quote Quote::deserialize(ByteView data) {
  ByteReader r(data);
  Quote q;
  q.report = sgx::Report::deserialize(r.bytes());
  q.qe_id = r.fixed<32>();
  q.signature = r.bytes();
  r.expect_done();
  return q;
}

}  // namespace sinclave::quote
