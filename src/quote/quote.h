// Remotely verifiable quotes.
//
// A quote is a report whose hardware MAC has been checked by the platform's
// quoting enclave (local attestation) and replaced by a signature from the
// quoting enclave's attestation key, which a remote attestation service can
// verify (steps (2)-(4) of the paper's Fig. 3 protocol).
#pragma once

#include "common/bytes.h"
#include "crypto/rsa.h"
#include "sgx/report.h"

namespace sinclave::quote {

struct Quote {
  /// The attested enclave's report body (the embedded MAC field is zeroed;
  /// it is platform-local and meaningless to remote parties).
  sgx::Report report;
  /// Identifies the quoting enclave / platform attestation key.
  Hash256 qe_id;
  /// Attestation-key signature over the report body.
  Bytes signature;

  /// The byte string the signature covers.
  Bytes signed_message() const;

  Bytes serialize() const;
  static Quote deserialize(ByteView data);

  friend bool operator==(const Quote&, const Quote&) = default;
};

}  // namespace sinclave::quote
