#include "quote/quoting_enclave.h"

#include "common/error.h"
#include "crypto/sha256.h"

namespace sinclave::quote {

QuotingEnclave::QuotingEnclave(sgx::SgxCpu& cpu, crypto::Drbg& rng,
                               std::size_t attestation_key_bits)
    : cpu_(cpu),
      attestation_key_(crypto::RsaKeyPair::generate(rng, attestation_key_bits)) {
  // Construct the QE as a one-page enclave whose content commits to the
  // attestation public key, then initialize it with a self-created signer.
  sgx::Attributes attrs;
  attrs.flags |= sgx::Attributes::kProvisionKey;
  enclave_id_ = cpu_.ecreate(sgx::kPageSize, attrs);

  Bytes page(sgx::kPageSize, 0);
  const Hash256 key_commitment =
      crypto::sha256(attestation_key_.public_key().modulus_be());
  std::copy(key_commitment.begin(), key_commitment.end(), page.begin());
  cpu_.add_measured_page(enclave_id_, 0, page, sgx::SecInfo::reg_rx());

  sgx::SigStruct sig;
  sig.enclave_hash = cpu_.current_measurement(enclave_id_);
  sig.attributes = attrs;
  sig.attribute_mask = sgx::Attributes{~std::uint64_t{0}, ~std::uint64_t{0}};
  sig.sign(attestation_key_);  // QE signs itself with the attestation key

  const Verdict v = cpu_.einit(enclave_id_, sig);
  if (v != Verdict::kOk)
    throw Error(std::string("quoting enclave failed to initialize: ") +
                to_string(v));
}

sgx::TargetInfo QuotingEnclave::target_info() const {
  const sgx::EnclaveIdentity& id = cpu_.identity(enclave_id_);
  return sgx::TargetInfo{id.mr_enclave, id.attributes};
}

std::optional<Quote> QuotingEnclave::generate_quote(
    const sgx::Report& report) const {
  // Local attestation: only reports MACed by this platform's hardware for
  // this QE verify here.
  if (!cpu_.verify_report(enclave_id_, report)) return std::nullopt;

  Quote q;
  q.report = report;
  q.report.mac = Mac128{};  // platform-local, not part of the quote
  q.qe_id = qe_id();
  q.signature = attestation_key_.sign_pkcs1_sha256(q.signed_message());
  return q;
}

Hash256 QuotingEnclave::qe_id() const {
  return crypto::sha256(attestation_key_.public_key().modulus_be());
}

}  // namespace sinclave::quote
