// The TEE provider's attestation service (IAS/DCAP stand-in).
//
// Holds the set of trusted platform attestation keys and answers "is this
// quote genuine?" (steps (5)-(6) in the paper's Fig. 3). It checks only
// *authenticity* — whether genuine hardware produced the quote. Deciding
// whether the attested identity is the *expected* one is the verifier's
// job (the CAS policy layer, src/cas).
#pragma once

#include <map>
#include <optional>

#include "common/error.h"
#include "crypto/rsa.h"
#include "quote/quote.h"

namespace sinclave::quote {

/// Outcome of quote verification.
struct QuoteVerification {
  Verdict verdict = Verdict::kMalformed;
  /// Set iff verdict == kOk.
  std::optional<sgx::EnclaveIdentity> identity;
  std::optional<sgx::ReportData> report_data;

  bool ok() const { return verdict == Verdict::kOk; }
};

class AttestationService {
 public:
  /// Register a platform's quoting-enclave attestation key (models Intel's
  /// provisioning database).
  void register_platform(const crypto::RsaPublicKey& qe_key);

  /// Drop a platform (e.g. TCB recovery / key revocation).
  void revoke_platform(const Hash256& qe_id);

  QuoteVerification verify(const Quote& quote) const;

  std::size_t platform_count() const { return platforms_.size(); }

 private:
  std::map<Hash256, crypto::RsaPublicKey> platforms_;
};

}  // namespace sinclave::quote
