// Singleton confidential VMs — the paper's §4.4 extension.
//
// AMD SEV-SNP / Intel TDX measure a confidential VM only while it boots;
// afterwards the launch digest is frozen, exactly like MRENCLAVE at EINIT.
// The paper notes the same reuse consequence: "an attacker can just boot
// the VM from a victim" — a byte-identical clone produces the same launch
// digest and attests successfully, e.g. to mount side-channel analysis in
// a lab, or to replay a previously-attested VM.
//
// The fix transfers unchanged: the launch flow appends an *ID block*
// (token + verifier identity) as the final measured item, the launch-digest
// computation is built from 64-byte-aligned records so its SHA-256 state is
// suspendable right before the ID block (a VM-level base hash), and the
// verifier predicts the unique expected digest per issued token.
//
// Substrate note: the secure processor (AMD-SP / TDX module analogue) is
// simulated like the SGX CPU — a per-platform key signs VM attestation
// reports; only VMs actually launched on the platform can be attested.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "core/instance_page.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace sinclave::cvm {

/// A confidential VM image: everything the host supplies at launch and the
/// secure processor measures.
struct VmImage {
  std::string name;
  Bytes firmware;
  Bytes kernel;
  Bytes initrd;
  std::string cmdline;

  /// Deterministic synthetic image for tests/benchmarks.
  static VmImage synthetic(const std::string& name, std::size_t kernel_size);
};

/// The VM launch digest computation. Every record is padded to a 64-byte
/// multiple, so — like the SGX measurement log — the running SHA-256 state
/// between records is exportable ("VM base digest") and resumable.
class LaunchMeasurement {
 public:
  void record(std::string_view kind, ByteView content);
  void measure_image(const VmImage& image);
  /// The ID block must be the final record of a singleton VM.
  void measure_id_block(ByteView id_block);

  Hash256 finalize() const;
  crypto::Sha256State export_state() const { return hash_.export_state(); }
  static LaunchMeasurement resume(const crypto::Sha256State& state);

 private:
  crypto::Sha256 hash_;
};

/// Token + verifier identity appended to a singleton VM's launch log; the
/// VM-level analogue of the SGX instance page.
struct VmIdBlock {
  core::AttestationToken token;
  Hash256 verifier_id;

  Bytes render() const;
  static std::optional<VmIdBlock> parse(ByteView data);

  friend bool operator==(const VmIdBlock&, const VmIdBlock&) = default;
};

/// VM attestation report signed by the platform's secure processor.
struct VmReport {
  Hash256 launch_digest;
  FixedBytes<64> report_data;
  Hash256 platform_id;
  Bytes signature;

  Bytes signed_message() const;
  Bytes serialize() const;
  static VmReport deserialize(ByteView data);

  friend bool operator==(const VmReport&, const VmReport&) = default;
};

/// The platform security co-processor (AMD-SP / TDX module analogue):
/// launches VMs, owns the attestation key, signs reports for running VMs.
class SecureProcessor {
 public:
  using VmId = std::uint64_t;

  explicit SecureProcessor(crypto::Drbg rng, std::size_t key_bits = 1024);

  /// Launch a VM: measures the image (and ID block, when given) into the
  /// launch digest and starts the VM.
  VmId launch(const VmImage& image, ByteView id_block = {});

  /// Report for a *running* VM with caller-chosen report data. Throws
  /// Error for unknown VMs — reports cannot be fabricated off-platform.
  VmReport attest(VmId vm, const FixedBytes<64>& report_data) const;

  Hash256 launch_digest(VmId vm) const;
  void terminate(VmId vm);

  const crypto::RsaPublicKey& platform_key() const {
    return key_.public_key();
  }
  Hash256 platform_id() const;

 private:
  crypto::RsaKeyPair key_;
  std::map<VmId, Hash256> running_;
  VmId next_id_ = 1;
};

/// The user's VM verifier. Baseline mode pins a static launch digest
/// (vulnerable to clone/reuse); singleton mode issues one-time tokens and
/// predicts per-instance digests from the VM base digest.
class VmVerifier {
 public:
  explicit VmVerifier(crypto::Drbg rng);

  Hash256 verifier_id() const;

  /// Baseline registration: pin the digest of the plain image.
  void register_baseline(const std::string& session, const Hash256& digest);

  /// Singleton registration: pin the suspended pre-ID-block state.
  void register_singleton(const std::string& session,
                          const crypto::Sha256State& base_digest);

  /// Trust a platform's attestation key.
  void trust_platform(const crypto::RsaPublicKey& key);

  /// Singleton flow step 1: mint a token; returns the ID block the host
  /// must append at launch. nullopt for unknown/baseline sessions.
  std::optional<VmIdBlock> issue_id_block(const std::string& session);

  /// Verify an attestation. Baseline sessions accept any report with the
  /// pinned digest (arbitrarily often — the vulnerability). Singleton
  /// sessions require the token and consume it.
  Verdict verify(const std::string& session, const VmReport& report,
                 const std::optional<core::AttestationToken>& token);

  std::size_t tokens_outstanding() const;

 private:
  struct Session {
    bool singleton = false;
    Hash256 pinned_digest;                       // baseline
    std::optional<crypto::Sha256State> base;     // singleton
  };
  struct PendingToken {
    std::string session;
    Hash256 expected_digest;
    bool used = false;
  };

  crypto::Drbg rng_;
  Hash256 identity_;
  std::map<std::string, Session> sessions_;
  std::map<core::AttestationToken, PendingToken> tokens_;
  std::map<Hash256, crypto::RsaPublicKey> platforms_;
};

}  // namespace sinclave::cvm
