#include "cvm/confidential_vm.h"

#include "common/error.h"
#include "common/serial.h"

namespace sinclave::cvm {

namespace {
constexpr std::uint64_t kIdBlockMagic = 0x53494e434c564d31;  // "SINCLVM1"
}

VmImage VmImage::synthetic(const std::string& name, std::size_t kernel_size) {
  crypto::Drbg rng(to_bytes(name), "synthetic-vm");
  VmImage img;
  img.name = name;
  img.firmware = rng.generate(64 << 10);
  img.kernel = rng.generate(kernel_size);
  img.initrd = rng.generate(kernel_size / 4 + 64);
  img.cmdline = "console=ttyS0 root=/dev/vda1 app=" + name;
  return img;
}

void LaunchMeasurement::record(std::string_view kind, ByteView content) {
  // Record header: kind + content length, padded to 64 bytes; then the
  // content, zero padded to a 64-byte multiple. Alignment keeps the hash
  // state exportable between records.
  ByteWriter header;
  header.str(kind);
  header.u64(content.size());
  ByteWriter block;
  block.bytes(header.data());
  if (block.size() % 64 != 0) block.zeros(64 - block.size() % 64);
  hash_.update(block.data());

  hash_.update(content);
  if (content.size() % 64 != 0) {
    ByteWriter pad;
    pad.zeros(64 - content.size() % 64);
    hash_.update(pad.data());
  }
}

void LaunchMeasurement::measure_image(const VmImage& image) {
  record("firmware", image.firmware);
  record("kernel", image.kernel);
  record("initrd", image.initrd);
  record("cmdline", to_bytes(image.cmdline));
}

void LaunchMeasurement::measure_id_block(ByteView id_block) {
  record("id-block", id_block);
}

Hash256 LaunchMeasurement::finalize() const {
  crypto::Sha256 copy = hash_;
  return copy.finalize();
}

LaunchMeasurement LaunchMeasurement::resume(const crypto::Sha256State& state) {
  LaunchMeasurement m;
  m.hash_ = crypto::Sha256::resume(state);
  return m;
}

Bytes VmIdBlock::render() const {
  ByteWriter w;
  w.u64(kIdBlockMagic);
  w.raw(token.view());
  w.raw(verifier_id.view());
  return std::move(w).take();
}

std::optional<VmIdBlock> VmIdBlock::parse(ByteView data) {
  if (data.empty()) return std::nullopt;
  ByteReader r(data);
  if (r.u64() != kIdBlockMagic) throw ParseError("vm id block: bad magic");
  VmIdBlock out;
  out.token = r.fixed<32>();
  out.verifier_id = r.fixed<32>();
  r.expect_done();
  return out;
}

Bytes VmReport::signed_message() const {
  ByteWriter w;
  w.raw(launch_digest.view());
  w.raw(report_data.view());
  w.raw(platform_id.view());
  return std::move(w).take();
}

Bytes VmReport::serialize() const {
  ByteWriter w;
  w.raw(signed_message());
  w.bytes(signature);
  return std::move(w).take();
}

VmReport VmReport::deserialize(ByteView data) {
  ByteReader r(data);
  VmReport rep;
  rep.launch_digest = r.fixed<32>();
  rep.report_data = r.fixed<64>();
  rep.platform_id = r.fixed<32>();
  rep.signature = r.bytes();
  r.expect_done();
  return rep;
}

SecureProcessor::SecureProcessor(crypto::Drbg rng, std::size_t key_bits)
    : key_(crypto::RsaKeyPair::generate(rng, key_bits)) {}

SecureProcessor::VmId SecureProcessor::launch(const VmImage& image,
                                              ByteView id_block) {
  LaunchMeasurement m;
  m.measure_image(image);
  if (!id_block.empty()) m.measure_id_block(id_block);
  const VmId id = next_id_++;
  running_[id] = m.finalize();
  return id;
}

VmReport SecureProcessor::attest(VmId vm,
                                 const FixedBytes<64>& report_data) const {
  const auto it = running_.find(vm);
  if (it == running_.end()) throw Error("secure processor: no such VM");
  VmReport report;
  report.launch_digest = it->second;
  report.report_data = report_data;
  report.platform_id = platform_id();
  report.signature = key_.sign_pkcs1_sha256(report.signed_message());
  return report;
}

Hash256 SecureProcessor::launch_digest(VmId vm) const {
  const auto it = running_.find(vm);
  if (it == running_.end()) throw Error("secure processor: no such VM");
  return it->second;
}

void SecureProcessor::terminate(VmId vm) {
  if (running_.erase(vm) == 0) throw Error("secure processor: no such VM");
}

Hash256 SecureProcessor::platform_id() const {
  return crypto::sha256(key_.public_key().modulus_be());
}

VmVerifier::VmVerifier(crypto::Drbg rng) : rng_(std::move(rng)) {
  // The verifier's public identity, drawn once from its seed (stands in
  // for the hash of an identity public key).
  rng_.generate(identity_.data.data(), identity_.size());
}

Hash256 VmVerifier::verifier_id() const {
  return identity_;
}

void VmVerifier::register_baseline(const std::string& session,
                                   const Hash256& digest) {
  sessions_[session] = Session{false, digest, std::nullopt};
}

void VmVerifier::register_singleton(const std::string& session,
                                    const crypto::Sha256State& base_digest) {
  sessions_[session] = Session{true, Hash256{}, base_digest};
}

void VmVerifier::trust_platform(const crypto::RsaPublicKey& key) {
  platforms_[crypto::sha256(key.modulus_be())] = key;
}

std::optional<VmIdBlock> VmVerifier::issue_id_block(
    const std::string& session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.singleton) return std::nullopt;

  VmIdBlock block;
  rng_.generate(block.token.data.data(), block.token.size());
  block.verifier_id = verifier_id();

  LaunchMeasurement m = LaunchMeasurement::resume(*it->second.base);
  m.measure_id_block(block.render());
  tokens_[block.token] = PendingToken{session, m.finalize(), false};
  return block;
}

Verdict VmVerifier::verify(const std::string& session, const VmReport& report,
                           const std::optional<core::AttestationToken>& token) {
  const auto sess = sessions_.find(session);
  if (sess == sessions_.end()) return Verdict::kPolicyViolation;

  const auto platform = platforms_.find(report.platform_id);
  if (platform == platforms_.end()) return Verdict::kSignerMismatch;
  if (!platform->second.verify_pkcs1_sha256(report.signed_message(),
                                            report.signature))
    return Verdict::kBadSignature;

  if (!sess->second.singleton) {
    // Baseline: any VM with the pinned digest, any number of times. This
    // acceptance of clones/replays is the documented vulnerability.
    return report.launch_digest == sess->second.pinned_digest
               ? Verdict::kOk
               : Verdict::kMeasurementMismatch;
  }

  if (!token.has_value()) return Verdict::kTokenUnknown;
  const auto pending = tokens_.find(*token);
  if (pending == tokens_.end() || pending->second.session != session)
    return Verdict::kTokenUnknown;
  if (pending->second.used) return Verdict::kTokenReused;
  if (report.launch_digest != pending->second.expected_digest)
    return Verdict::kMeasurementMismatch;
  pending->second.used = true;
  return Verdict::kOk;
}

std::size_t VmVerifier::tokens_outstanding() const {
  std::size_t n = 0;
  for (const auto& [token, pending] : tokens_)
    if (!pending.used) ++n;
  return n;
}

}  // namespace sinclave::cvm
