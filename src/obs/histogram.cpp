#include "obs/histogram.h"

#include <algorithm>

namespace sinclave::obs {

namespace {

// Geometric bucket boundaries: bound(i) = 1us * 1.5^i, precomputed in
// integer nanoseconds so bucket_for stays a simple scan (kBuckets is 40;
// a linear scan of a 40-entry table is cheaper than the log it replaces).
// Rounded to nearest, not truncated: truncation shaved one nanosecond off
// boundaries whose exact value is not double-representable, so a sample
// exactly at the published bound of bucket i landed in bucket i+1.
constexpr std::array<std::int64_t, LatencyHistogram::kBuckets> kBoundsNs = [] {
  std::array<std::int64_t, LatencyHistogram::kBuckets> b{};
  double bound = 1000.0;  // 1 us
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::int64_t>(bound + 0.5);
    bound *= 1.5;
  }
  return b;
}();

}  // namespace

const std::array<std::int64_t, LatencyHistogram::kBuckets>&
LatencyHistogram::bucket_bounds_ns() {
  return kBoundsNs;
}

std::size_t LatencyHistogram::bucket_for(std::chrono::nanoseconds latency) {
  const std::int64_t ns = latency.count();
  for (std::size_t i = 0; i < kBuckets; ++i)
    if (ns <= kBoundsNs[i]) return i;
  return kBuckets - 1;
}

std::chrono::nanoseconds LatencyHistogram::bucket_bound(
    std::chrono::nanoseconds d) {
  return std::chrono::nanoseconds(
      kBoundsNs[bucket_for(d.count() < 0 ? std::chrono::nanoseconds{0} : d)]);
}

void LatencyHistogram::record(std::chrono::nanoseconds latency) {
  // Clock hiccups (non-monotonic sources, merged snapshots) can hand us a
  // negative duration; clamp so the sum and quantiles stay meaningful.
  if (latency.count() < 0) latency = std::chrono::nanoseconds{0};
  buckets_[bucket_for(latency)].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(latency.count(), std::memory_order_relaxed);
  atomic_fetch_max(max_ns_, latency.count());
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::bucket_counts() const {
  std::array<std::uint64_t, kBuckets> counts;
  for (std::size_t i = 0; i < kBuckets; ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  const std::array<std::uint64_t, kBuckets> counts = bucket_counts();
  // Count is derived from the buckets themselves (not a separate counter),
  // so the quantile scan below always walks exactly the samples it counted
  // — a racing record() can add a sample, never desynchronize the two.
  for (auto c : counts) s.count += c;
  s.sum = std::chrono::nanoseconds(
      std::max<std::int64_t>(0, sum_ns_.load(std::memory_order_relaxed)));
  s.max = std::chrono::nanoseconds(
      std::max<std::int64_t>(0, max_ns_.load(std::memory_order_relaxed)));
  if (s.count == 0) return s;

  const auto quantile = [&](double q) {
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(s.count - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= target)
        return std::chrono::nanoseconds(kBoundsNs[i]);
    }
    return s.max;
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  // Coherence clamps: the observed max is a tighter bound than any bucket
  // boundary, and a reset/merge racing record() must not be able to
  // produce p99 > max or unordered quantiles.
  s.p50 = std::min(s.p50, s.max);
  s.p90 = std::clamp(s.p90, s.p50, s.max);
  s.p99 = std::clamp(s.p99, s.p90, s.max);
  return s;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i)
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  sum_ns_.fetch_add(
      std::max<std::int64_t>(0, other.sum_ns_.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
  atomic_fetch_max(max_ns_, other.max_ns_.load(std::memory_order_relaxed));
}

void LatencyHistogram::reset() {
  // Zero the max and sum *before* the buckets: a snapshot racing this
  // reset may then under-report the tail, but can never pair surviving
  // bucket counts with an already-cleared population and report p99 > max
  // (snapshot clamps against max, which goes first).
  max_ns_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

}  // namespace sinclave::obs
