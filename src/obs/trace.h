// Request tracing: named phases recorded into lock-free per-thread rings.
//
// Model. A request is identified by a TraceContext — a process-unique
// trace_id allocated when the frontend accepts the frame, plus the two
// wire-visible correlators: the envelope's request_id (peeked from the
// cleartext header when there is one; 0 for encrypted frames whose
// envelope only decrypts inside the session) and the secure-channel
// session_id (0 until the handshake allocates one). Phases are recorded
// as Spans: RAII on a single thread (Span), or explicit start/end records
// for phases that cross threads (CasServer's accept→serve→stall→respond
// machine parks work on timers, so its root and stall phases are recorded
// with record_phase_span / record_phase_root when the request completes).
//
// Hot-path discipline (same as metrics.h): recording a span acquires no
// lock and performs no heap allocation. Every span lands twice:
//   1. in its Phase's LatencyHistogram (wait-free relaxed atomics) — this
//      is what the per-phase p50/p99 bench attribution reads, and
//   2. in the recording thread's fixed-capacity ring buffer (single
//      writer, overwrite-oldest) — this is what trace assembly reads.
// Ring slots are relaxed atomics guarded by a per-slot seqlock (odd while
// the writer is mid-slot, +2 per write), so the cold-path collector can
// snapshot a live ring without locks, torn reads, or TSAN reports: a slot
// whose sequence changed or is odd is simply discarded as overwritten.
//
// The first span a thread ever records registers its ring with the Tracer
// (one mutex acquisition per thread lifetime, not per span). Rings of dead
// threads are adopted by new threads instead of leaking, so thread churn
// does not grow memory without bound.
//
// Collection is on demand: collect() drains every ring, groups records by
// trace_id, and returns completed traces (those whose root — depth 0 —
// span was recorded), most recent first. Traces whose root exceeds the
// configurable slow threshold are additionally copied into a small
// bounded slow-request log so a burst of fast traffic cannot overwrite
// the evidence of a slow request before anyone looks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace sinclave::obs {

class Tracer;
class Ring;

/// Identity of one request's trace. Copyable, 24 bytes, no ownership.
struct TraceContext {
  std::uint64_t trace_id = 0;   // process-unique; 0 = "not traced"
  std::uint64_t request_id = 0; // envelope request id (0 if not peekable)
  std::uint64_t session_id = 0; // secure-channel session (0 = none yet)

  bool active() const { return trace_id != 0; }
};

/// A named phase: the unit of latency attribution. Phases are interned by
/// Tracer::phase(name) and live forever (the tracer is a leaky singleton),
/// so instrumentation sites hold `static Phase&` references and pay zero
/// lookup per span. The name must outlive the process (string literal).
class Phase {
 public:
  const char* name() const { return name_; }
  LatencyHistogram& latency() { return latency_; }
  const LatencyHistogram& latency() const { return latency_; }

 private:
  friend class Tracer;
  explicit Phase(const char* name) : name_(name) {}
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

  const char* name_;
  LatencyHistogram latency_;
};

/// Installs a TraceContext for the current thread for its lifetime (RAII,
/// nests by save/restore). Spans recorded on this thread while the scope
/// is active carry the context into the thread's ring; without an active
/// scope a Span still feeds its Phase histogram but writes no ring record.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// True if some scope is active on the calling thread.
  static bool active();

  /// Current thread's context (inactive context if no scope).
  static TraceContext current();

  /// Late-binds the session id into the active scope (the handshake
  /// allocates the id mid-request, after the scope opened). No-op when no
  /// scope is active. Spans recorded after this carry the session id;
  /// trace assembly propagates it to the whole trace.
  static void set_session(std::uint64_t session_id);

 private:
  TraceContext saved_ctx_;
  std::uint32_t saved_depth_;
};

/// RAII span: records `now - construction time` into the phase histogram
/// and (under an active TraceScope) the thread's ring at destruction.
/// No lock, no allocation, two clock reads.
class Span {
 public:
  explicit Span(Phase& phase);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Phase* phase_;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool armed_ = false;
};

/// One span as drained from a ring.
struct CollectedSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  const char* name = "";
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t depth = 0;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// A completed request: the root span plus every phase recorded under the
/// same trace_id, ordered by start time (root first on ties of depth).
struct Trace {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::vector<CollectedSpan> spans;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Process-wide tracer. Leaky singleton: instance() never destructs, so
/// Spans in static-destruction order and exiting threads stay safe.
class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 2048;
  static constexpr std::size_t kSlowLogCapacity = 16;

  static Tracer& instance();

  /// Tracing is on by default (the <3% throughput budget is the bench
  /// gate). Disabling stops new ring writes and trace-id allocation;
  /// phase histograms also stop (Spans disarm entirely).
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock nanoseconds (process-relative; all span timestamps).
  static std::int64_t now_ns();

  /// Allocates a fresh trace id (0 is never returned). Returns 0 when
  /// tracing is disabled, so `ctx.active()` stays the single gate.
  std::uint64_t new_trace_id();

  /// Interns a phase by name (pointer-stable forever). Cold: call once
  /// per site via `static Phase& p = Tracer::instance().phase("x");`.
  Phase& phase(const char* name);

  /// Snapshot of every interned phase, in interning order.
  std::vector<const Phase*> phases() const;

  /// Zeroes every phase histogram (bench sweeps re-measure from scratch;
  /// quantiles are not delta-able so reset is the only way to attribute
  /// a window).
  void reset_phases();

  /// Explicit (non-RAII) record for phases that cross threads: feeds the
  /// phase histogram and writes a ring record on the *calling* thread
  /// using the given context (no TraceScope needed).
  void record_phase_span(Phase& phase, const TraceContext& ctx,
                         std::int64_t start_ns, std::int64_t end_ns,
                         std::uint32_t depth);

  /// Records the depth-0 root span, completing the trace, and feeds the
  /// slow-request accounting (threshold check is one compare; the slow
  /// log itself is populated at collect time, never on the hot path).
  void record_phase_root(Phase& phase, const TraceContext& ctx,
                         std::int64_t start_ns, std::int64_t end_ns);

  /// Root spans whose duration met the slow threshold (hot-path counter;
  /// exact even when the ring has since overwritten the trace).
  std::uint64_t slow_count() const {
    return slow_total_.load(std::memory_order_relaxed);
  }

  /// Slow-request threshold; <= 0 disables slow tracking. Default 50 ms.
  void set_slow_threshold(std::chrono::nanoseconds t);
  std::chrono::nanoseconds slow_threshold() const;

  /// Drain all rings and assemble completed traces, most recent first,
  /// at most `max_traces`. Also harvests new slow traces into the slow
  /// log. Cold path: takes the collection mutex, allocates freely.
  std::vector<Trace> collect(std::size_t max_traces);

  /// One row of phase_summaries(): a phase that recorded >= 1 span.
  struct PhaseSummary {
    const char* name = "";
    LatencyHistogram::Snapshot stats;
  };
  /// Latency summary of every phase with a nonzero count, in interning
  /// order — what benches print/emit as the per-phase p50/p99 attribution
  /// (pair with reset_phases() to scope the attribution to a window).
  std::vector<PhaseSummary> phase_summaries() const;

  /// The retained slow-request log, oldest first (harvests pending rings
  /// first, so it is current as of the call).
  std::vector<Trace> slow_traces();

  /// Human-readable span tree (indent by depth, offsets from root start).
  static std::string render(const Trace& trace);

  /// Test isolation: hide everything recorded so far from future
  /// collect()/slow_traces() calls and clear the slow log. Does not touch
  /// rings (live writers own them) or phase histograms (reset_phases).
  void reset_traces();

  // Internals for Span/TraceScope (logically private; public so the
  // thread-local machinery in trace.cpp can reach them).
  std::uint32_t enter_span();
  void exit_span(Phase& phase, std::int64_t start_ns, std::uint32_t depth);

 private:
  Tracer();
  ~Tracer() = delete;  // leaky

  Ring& thread_ring();
  void write_record(const TraceContext& ctx, const char* name,
                    std::int64_t start_ns, std::int64_t end_ns,
                    std::uint32_t depth);
  std::vector<Trace> assemble_locked(std::size_t max_traces);

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::int64_t> slow_threshold_ns_;
  std::atomic<std::uint64_t> slow_total_{0};

  struct State;
  State* state_;  // never freed
};

}  // namespace sinclave::obs
