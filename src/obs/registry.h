// Unified metrics registry: one place every subsystem's counters surface.
//
// The registry does not own any counter — that would force every layer to
// route its hot path through a central object. Instead it follows the
// collector model: each subsystem keeps its wait-free atomics exactly where
// they live today (ServerMetrics, SecureServer::Stats, DrbgPool,
// ShardedPolicyStore, ...) and registers a *collector* callback that copies
// them into a MetricsSnapshot on demand. Snapshots are cold-path only; the
// record path never touches the registry.
//
// A snapshot renders three ways:
//   to_prometheus() — Prometheus text exposition format (TYPE lines,
//     cumulative _bucket{le=...} series in seconds, _sum/_count),
//   to_json()       — one JSON object for tooling and the benches,
//   to_text()       — the human "name value" dump ServerMetrics::render()
//     used to hand-roll; render() now delegates here.
//
// Collectors run under the registry mutex, which makes teardown exact:
// remove_collector() returning guarantees no snapshot is still inside the
// removed callback, so an object may unregister in its destructor and then
// die.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/histogram.h"

namespace sinclave::obs {

/// A point-in-time copy of every registered metric, in collection order.
struct MetricsSnapshot {
  struct Entry {
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
    Kind kind = Kind::kCounter;
    std::string name;
    std::uint64_t value = 0;  // counters and gauges
    LatencyHistogram::Snapshot stats;  // histograms
    std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
  };

  std::vector<Entry> entries;

  /// Builder API used by collectors. Names are bare (no "sinclave_"
  /// prefix; the Prometheus renderer adds it) and must be unique across
  /// all collectors — exporters render duplicates as-is, garbling the
  /// Prometheus output, so collisions are the registrant's bug.
  void counter(std::string name, std::uint64_t value);
  void gauge(std::string name, std::uint64_t value);
  void histogram(std::string name, const LatencyHistogram& h);

  const Entry* find(const std::string& name) const;

  std::string to_prometheus() const;
  std::string to_json() const;
  std::string to_text() const;
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(MetricsSnapshot&)>;

  /// Register a collector; returns a handle for remove_collector.
  /// Collectors run in registration order at every snapshot(), under the
  /// registry mutex — keep them cheap and never call back into the
  /// registry from inside one (self-deadlock).
  std::uint64_t add_collector(Collector fn) REQUIRES_NOT(mutex_);

  /// Blocks until no snapshot is running the collector, then removes it.
  void remove_collector(std::uint64_t id) REQUIRES_NOT(mutex_);

  MetricsSnapshot snapshot() const REQUIRES_NOT(mutex_);

 private:
  mutable Mutex mutex_{LockRank::kMetricsRegistry, "obs.metrics_registry"};
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  std::vector<std::pair<std::uint64_t, Collector>> collectors_
      GUARDED_BY(mutex_);
};

}  // namespace sinclave::obs
