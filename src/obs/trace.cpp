#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/mutex.h"

namespace sinclave::obs {

// ---------------------------------------------------------------------------
// Ring: fixed-capacity, single-writer, overwrite-oldest span buffer.
//
// Every field is a relaxed atomic: there is never a data race, only the
// possibility of reading a half-overwritten slot — which the per-slot
// sequence counter detects (odd while the writer is inside the slot, +2
// per completed write; Boehm's fence-based seqlock). The writer role
// migrates between threads only under the tracer mutex (ring adoption),
// so writer-side fields need no ordering of their own.
// ---------------------------------------------------------------------------

class Ring {
 public:
  static constexpr std::size_t kCapacity = Tracer::kRingCapacity;
  static_assert((kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");

  void write(const TraceContext& ctx, const char* name, std::int64_t start_ns,
             std::int64_t end_ns, std::uint32_t depth) {
    Slot& s = slots_[head_ & (kCapacity - 1)];
    ++head_;
    const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq + 1, std::memory_order_relaxed);  // odd: writer inside
    std::atomic_thread_fence(std::memory_order_release);
    s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
    s.request_id.store(ctx.request_id, std::memory_order_relaxed);
    s.session_id.store(ctx.session_id, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.end_ns.store(end_ns, std::memory_order_relaxed);
    s.depth.store(depth, std::memory_order_relaxed);
    s.seq.store(seq + 2, std::memory_order_release);  // even: complete
  }

  void drain(std::vector<CollectedSpan>& out) const {
    for (const Slot& s : slots_) {
      const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 & 1) continue;  // writer mid-slot: treat as overwritten
      CollectedSpan c;
      c.trace_id = s.trace_id.load(std::memory_order_relaxed);
      c.request_id = s.request_id.load(std::memory_order_relaxed);
      c.session_id = s.session_id.load(std::memory_order_relaxed);
      c.name = s.name.load(std::memory_order_relaxed);
      c.start_ns = s.start_ns.load(std::memory_order_relaxed);
      c.end_ns = s.end_ns.load(std::memory_order_relaxed);
      c.depth = s.depth.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq1) continue;
      if (c.trace_id == 0) continue;  // never written
      out.push_back(c);
    }
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> request_id{0};
    std::atomic<std::uint64_t> session_id{0};
    std::atomic<const char*> name{""};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> end_ns{0};
    std::atomic<std::uint32_t> depth{0};
  };

  std::array<Slot, kCapacity> slots_{};
  std::uint64_t head_ = 0;  // writer-only; adoption hands it off under mutex
};

// ---------------------------------------------------------------------------
// Thread-local recording state.
// ---------------------------------------------------------------------------

namespace {

struct TlsState {
  TraceContext ctx{};
  std::uint32_t depth = 1;  // depth 0 is reserved for the root span
};

TlsState& tls() {
  thread_local TlsState state;
  return state;
}

}  // namespace

struct Tracer::State {
  Mutex mutex{LockRank::kObsTrace, "obs.trace_state"};
  std::vector<std::shared_ptr<Ring>> rings GUARDED_BY(mutex);
  std::vector<std::unique_ptr<Phase>> phases GUARDED_BY(mutex);
  // Collection floor: records whose end is at or before this are invisible
  // to collect() — how reset_traces() isolates without touching live rings.
  std::int64_t floor_ns GUARDED_BY(mutex) = 0;
  // High-water mark of root ends already examined for slowness, so a trace
  // still sitting in a ring is not re-appended to the slow log every
  // collection.
  std::int64_t slow_watermark_ns GUARDED_BY(mutex) = 0;
  std::deque<Trace> slow_log GUARDED_BY(mutex);
};

Tracer& Tracer::instance() {
  // Leaky: destructors of static Spans / exiting threads may still record.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer()
    : slow_threshold_ns_(50'000'000 /* 50 ms */), state_(new State()) {}

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Tracer::new_trace_id() {
  if (!enabled()) return 0;
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

Phase& Tracer::phase(const char* name) {
  MutexLock lock(state_->mutex);
  for (const auto& p : state_->phases)
    if (std::strcmp(p->name(), name) == 0) return *p;
  state_->phases.emplace_back(new Phase(name));
  return *state_->phases.back();
}

std::vector<const Phase*> Tracer::phases() const {
  MutexLock lock(state_->mutex);
  std::vector<const Phase*> out;
  out.reserve(state_->phases.size());
  for (const auto& p : state_->phases) out.push_back(p.get());
  return out;
}

std::vector<Tracer::PhaseSummary> Tracer::phase_summaries() const {
  std::vector<PhaseSummary> out;
  for (const Phase* p : phases()) {
    PhaseSummary row;
    row.name = p->name();
    row.stats = p->latency().snapshot();
    if (row.stats.count > 0) out.push_back(row);
  }
  return out;
}

void Tracer::reset_phases() {
  MutexLock lock(state_->mutex);
  for (const auto& p : state_->phases) p->latency().reset();
}

Ring& Tracer::thread_ring() {
  thread_local std::shared_ptr<Ring> ring;
  if (!ring) {
    MutexLock lock(state_->mutex);
    // Adopt the ring of a dead thread (only the registry still holds it)
    // before allocating a new one: thread churn must not grow memory.
    for (const auto& r : state_->rings) {
      if (r.use_count() == 1) {
        ring = r;
        break;
      }
    }
    if (!ring) {
      ring = std::make_shared<Ring>();
      state_->rings.push_back(ring);
    }
  }
  return *ring;
}

void Tracer::write_record(const TraceContext& ctx, const char* name,
                          std::int64_t start_ns, std::int64_t end_ns,
                          std::uint32_t depth) {
  if (ctx.trace_id == 0) return;
  thread_ring().write(ctx, name, start_ns, end_ns, depth);
}

std::uint32_t Tracer::enter_span() { return tls().depth++; }

void Tracer::exit_span(Phase& phase, std::int64_t start_ns,
                       std::uint32_t depth) {
  const std::int64_t end_ns = now_ns();
  phase.latency().record(std::chrono::nanoseconds(end_ns - start_ns));
  TlsState& t = tls();
  if (t.ctx.active())
    write_record(t.ctx, phase.name(), start_ns, end_ns, depth);
  t.depth--;
}

void Tracer::record_phase_span(Phase& phase, const TraceContext& ctx,
                               std::int64_t start_ns, std::int64_t end_ns,
                               std::uint32_t depth) {
  phase.latency().record(std::chrono::nanoseconds(end_ns - start_ns));
  write_record(ctx, phase.name(), start_ns, end_ns, depth);
}

void Tracer::record_phase_root(Phase& phase, const TraceContext& ctx,
                               std::int64_t start_ns, std::int64_t end_ns) {
  phase.latency().record(std::chrono::nanoseconds(end_ns - start_ns));
  write_record(ctx, phase.name(), start_ns, end_ns, 0);
  const std::int64_t threshold =
      slow_threshold_ns_.load(std::memory_order_relaxed);
  if (threshold > 0 && end_ns - start_ns >= threshold)
    slow_total_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::set_slow_threshold(std::chrono::nanoseconds t) {
  slow_threshold_ns_.store(t.count(), std::memory_order_relaxed);
}

std::chrono::nanoseconds Tracer::slow_threshold() const {
  return std::chrono::nanoseconds(
      slow_threshold_ns_.load(std::memory_order_relaxed));
}

std::vector<Trace> Tracer::assemble_locked(std::size_t max_traces) {
  // Every caller holds state_->mutex; State is opaque in the header, so
  // the contract is asserted here instead of spelled as REQUIRES there.
  state_->mutex.assert_held();
  std::vector<CollectedSpan> all;
  for (const auto& ring : state_->rings) ring->drain(all);

  // Group by trace id; a trace is complete once its depth-0 root landed.
  std::unordered_map<std::uint64_t, std::vector<CollectedSpan>> by_trace;
  for (const CollectedSpan& c : all) by_trace[c.trace_id].push_back(c);

  std::vector<Trace> traces;
  for (auto& [trace_id, spans] : by_trace) {
    const CollectedSpan* root = nullptr;
    for (const CollectedSpan& c : spans)
      if (c.depth == 0 && (root == nullptr || c.end_ns > root->end_ns))
        root = &c;
    if (root == nullptr) continue;          // still in flight
    if (root->end_ns <= state_->floor_ns) continue;  // hidden by reset

    Trace t;
    t.trace_id = trace_id;
    t.start_ns = root->start_ns;
    t.end_ns = root->end_ns;
    for (const CollectedSpan& c : spans) {
      // The correlators arrive asymmetrically (request_id is known at
      // accept, session_id only once the handshake allocates one), so the
      // trace takes the first nonzero value any of its spans carries.
      if (t.request_id == 0) t.request_id = c.request_id;
      if (t.session_id == 0) t.session_id = c.session_id;
    }
    t.spans = std::move(spans);
    std::sort(t.spans.begin(), t.spans.end(),
              [](const CollectedSpan& a, const CollectedSpan& b) {
                if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                return a.depth < b.depth;
              });
    traces.push_back(std::move(t));
  }

  // Newest first; deterministic tie-break on trace id.
  std::sort(traces.begin(), traces.end(), [](const Trace& a, const Trace& b) {
    if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;
    return a.trace_id > b.trace_id;
  });

  // Harvest new slow traces (oldest first, so the log reads forward in
  // time) before truncating the return list.
  const std::int64_t threshold =
      slow_threshold_ns_.load(std::memory_order_relaxed);
  std::int64_t watermark = state_->slow_watermark_ns;
  for (auto it = traces.rbegin(); it != traces.rend(); ++it) {
    if (it->end_ns <= state_->slow_watermark_ns) continue;
    watermark = std::max(watermark, it->end_ns);
    if (threshold > 0 && it->duration_ns() >= threshold) {
      state_->slow_log.push_back(*it);
      while (state_->slow_log.size() > kSlowLogCapacity)
        state_->slow_log.pop_front();
    }
  }
  state_->slow_watermark_ns = watermark;

  if (traces.size() > max_traces) traces.resize(max_traces);
  return traces;
}

std::vector<Trace> Tracer::collect(std::size_t max_traces) {
  MutexLock lock(state_->mutex);
  return assemble_locked(max_traces);
}

std::vector<Trace> Tracer::slow_traces() {
  MutexLock lock(state_->mutex);
  assemble_locked(0);  // harvest anything new first
  return std::vector<Trace>(state_->slow_log.begin(), state_->slow_log.end());
}

void Tracer::reset_traces() {
  MutexLock lock(state_->mutex);
  const std::int64_t now = now_ns();
  state_->floor_ns = now;
  state_->slow_watermark_ns = now;
  state_->slow_log.clear();
}

std::string Tracer::render(const Trace& trace) {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "trace=%llu request=%llu session=%llu duration=%.3fms "
                "spans=%zu\n",
                static_cast<unsigned long long>(trace.trace_id),
                static_cast<unsigned long long>(trace.request_id),
                static_cast<unsigned long long>(trace.session_id),
                static_cast<double>(trace.duration_ns()) / 1e6,
                trace.spans.size());
  out += buf;
  for (const CollectedSpan& c : trace.spans) {
    std::snprintf(buf, sizeof(buf), "%*s%-24s %9.3f ms  @ +%.3f ms\n",
                  static_cast<int>(2 * (c.depth + 1)), "", c.name,
                  static_cast<double>(c.duration_ns()) / 1e6,
                  static_cast<double>(c.start_ns - trace.start_ns) / 1e6);
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceScope / Span.
// ---------------------------------------------------------------------------

TraceScope::TraceScope(const TraceContext& ctx) {
  TlsState& t = tls();
  saved_ctx_ = t.ctx;
  saved_depth_ = t.depth;
  t.ctx = ctx;
  t.depth = 1;
}

TraceScope::~TraceScope() {
  TlsState& t = tls();
  t.ctx = saved_ctx_;
  t.depth = saved_depth_;
}

bool TraceScope::active() { return tls().ctx.active(); }

TraceContext TraceScope::current() { return tls().ctx; }

void TraceScope::set_session(std::uint64_t session_id) {
  TlsState& t = tls();
  if (t.ctx.active()) t.ctx.session_id = session_id;
}

Span::Span(Phase& phase) : phase_(&phase) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  armed_ = true;
  depth_ = tracer.enter_span();
  start_ns_ = Tracer::now_ns();
}

Span::~Span() {
  if (!armed_) return;
  Tracer::instance().exit_span(*phase_, start_ns_, depth_);
}

}  // namespace sinclave::obs
