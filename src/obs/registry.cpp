#include "obs/registry.h"

#include <cstdio>

namespace sinclave::obs {

namespace {

// Shortest round-trip double formatting (%.17g is lossless but noisy;
// %.9g is exact for every bucket bound we emit and keeps the golden
// format readable).
std::string format_seconds(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(ns) / 1e9);
  return std::string(buf);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::string i64(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return std::string(buf);
}

}  // namespace

void MetricsSnapshot::counter(std::string name, std::uint64_t value) {
  Entry e;
  e.kind = Entry::Kind::kCounter;
  e.name = std::move(name);
  e.value = value;
  entries.push_back(std::move(e));
}

void MetricsSnapshot::gauge(std::string name, std::uint64_t value) {
  Entry e;
  e.kind = Entry::Kind::kGauge;
  e.name = std::move(name);
  e.value = value;
  entries.push_back(std::move(e));
}

void MetricsSnapshot::histogram(std::string name, const LatencyHistogram& h) {
  Entry e;
  e.kind = Entry::Kind::kHistogram;
  e.name = std::move(name);
  // Buckets first, stats second: a sample recorded in between then shows
  // up in the stats but not the buckets, and the renderers derive the
  // histogram _count from the buckets — so _count can trail stats.count,
  // never exceed what the bucket series accounts for.
  e.buckets = h.bucket_counts();
  e.stats = h.snapshot();
  entries.push_back(std::move(e));
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

std::string MetricsSnapshot::to_prometheus() const {
  const auto& bounds = LatencyHistogram::bucket_bounds_ns();
  std::string out;
  for (const Entry& e : entries) {
    const std::string full = "sinclave_" + e.name;
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + full + " counter\n";
        out += full + " " + u64(e.value) + "\n";
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + full + " gauge\n";
        out += full + " " + u64(e.value) + "\n";
        break;
      case Entry::Kind::kHistogram: {
        // Prometheus histograms are cumulative and conventionally in
        // seconds; the final +Inf bucket equals _count.
        const std::string base = full + "_seconds";
        out += "# TYPE " + base + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
          cumulative += e.buckets[i];
          out += base + "_bucket{le=\"" + format_seconds(bounds[i]) + "\"} " +
                 u64(cumulative) + "\n";
        }
        out += base + "_bucket{le=\"+Inf\"} " + u64(cumulative) + "\n";
        out += base + "_sum " + format_seconds(e.stats.sum.count()) + "\n";
        out += base + "_count " + u64(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  const auto& bounds = LatencyHistogram::bucket_bounds_ns();
  std::string counters, gauges, histograms;
  for (const Entry& e : entries) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
      case Entry::Kind::kGauge: {
        std::string& dst =
            e.kind == Entry::Kind::kCounter ? counters : gauges;
        if (!dst.empty()) dst += ", ";
        append_json_string(dst, e.name);
        dst += ": " + u64(e.value);
        break;
      }
      case Entry::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ", ";
        append_json_string(histograms, e.name);
        histograms += ": {\"count\": " + u64(e.stats.count) +
                      ", \"sum_ns\": " + i64(e.stats.sum.count()) +
                      ", \"mean_ns\": " + i64(e.stats.mean().count()) +
                      ", \"p50_ns\": " + i64(e.stats.p50.count()) +
                      ", \"p90_ns\": " + i64(e.stats.p90.count()) +
                      ", \"p99_ns\": " + i64(e.stats.p99.count()) +
                      ", \"max_ns\": " + i64(e.stats.max.count()) +
                      ", \"buckets\": [";
        // Only occupied buckets: 40 mostly-zero pairs per histogram would
        // dominate the payload for no information.
        bool first = true;
        for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
          if (e.buckets[i] == 0) continue;
          if (!first) histograms += ", ";
          first = false;
          histograms += "{\"le_ns\": " + i64(bounds[i]) +
                        ", \"count\": " + u64(e.buckets[i]) + "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char buf[192];
  for (const Entry& e : entries) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
      case Entry::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%-26s %llu\n", e.name.c_str(),
                      static_cast<unsigned long long>(e.value));
        out += buf;
        break;
      case Entry::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf),
                      "%-26s count=%llu mean=%.1fus p50=%.1fus p90=%.1fus "
                      "p99=%.1fus max=%.1fus\n",
                      e.name.c_str(),
                      static_cast<unsigned long long>(e.stats.count),
                      e.stats.mean().count() / 1e3, e.stats.p50.count() / 1e3,
                      e.stats.p90.count() / 1e3, e.stats.p99.count() / 1e3,
                      e.stats.max.count() / 1e3);
        out += buf;
        break;
    }
  }
  return out;
}

std::uint64_t MetricsRegistry::add_collector(Collector fn) {
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(std::uint64_t id) {
  MutexLock lock(mutex_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Collectors run under the mutex on purpose: remove_collector()
  // returning then proves the callback is not mid-flight, which is what
  // lets registrants unregister from their destructors.
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [id, fn] : collectors_) fn(snap);
  return snap;
}

}  // namespace sinclave::obs
