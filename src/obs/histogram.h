// Wait-free latency histogram — the one quantile tracker every layer
// shares (moved here from server/metrics.h so the observability layer is
// the base: server/, net/, cas/ and obs:: itself all record into it).
//
// Everything here is wait-free on the record path (relaxed atomics) so the
// hot path never serializes on observability. Quantiles are read from a
// fixed geometric bucket layout — each bucket spans x1.5 in latency, from
// 1 us to ~6.5 s — which bounds the p50/p99 estimation error to the bucket
// width, the standard tradeoff of histogram-based tail tracking.
//
// Coherence contract: record() is safe against concurrent record(),
// merge(), reset(), and snapshot(). Readers may observe a snapshot that is
// off by the in-flight samples, but never a torn or self-contradictory one:
// snapshot() derives count from the buckets themselves, clamps the sum
// non-negative, and forces p50 <= p90 <= p99 <= max, so a racing reset or
// merge can skew values, not invariants. Negative durations (clock hiccups)
// are clamped to zero before they can poison the sum.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace sinclave::obs {

/// Relaxed atomic fetch-max: raise `target` to at least `value`.
template <typename T>
inline void atomic_fetch_max(std::atomic<T>& target, T value) {
  T seen = target.load(std::memory_order_relaxed);
  while (value > seen &&
         !target.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
  }
}

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::chrono::nanoseconds latency);

  struct Snapshot {
    std::uint64_t count = 0;
    std::chrono::nanoseconds sum{0};
    std::chrono::nanoseconds p50{0};
    std::chrono::nanoseconds p90{0};
    std::chrono::nanoseconds p99{0};
    std::chrono::nanoseconds max{0};

    std::chrono::nanoseconds mean() const {
      if (count == 0) return std::chrono::nanoseconds{0};
      return std::chrono::nanoseconds(
          sum.count() / static_cast<std::int64_t>(count));
    }
  };

  /// Consistent-enough snapshot: see the coherence contract above.
  Snapshot snapshot() const;

  /// Raw per-bucket counts (same coherence as snapshot) — what the
  /// Prometheus/JSON exporters render as the full bucket series.
  std::array<std::uint64_t, kBuckets> bucket_counts() const;

  /// The fixed geometric bucket upper bounds, in integer nanoseconds.
  static const std::array<std::int64_t, kBuckets>& bucket_bounds_ns();

  /// Fold another histogram into this one (merging per-thread recorders).
  /// Samples recorded into `other` while merge runs may be folded in or
  /// not; the invariants above still hold for any later snapshot.
  void merge(const LatencyHistogram& other);

  void reset();

  /// Exact upper bound of the bucket a latency lands in (identity for the
  /// boundary value itself: bucket_bound(d) == bucket_bound(bucket_bound(d))).
  /// Exposed so tests can pin the boundary semantics.
  static std::chrono::nanoseconds bucket_bound(std::chrono::nanoseconds d);

 private:
  static std::size_t bucket_for(std::chrono::nanoseconds latency);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

}  // namespace sinclave::obs
