#include "runtime/program.h"

#include "common/error.h"

namespace sinclave::runtime {

void ProgramRegistry::register_program(const std::string& name,
                                       Program program) {
  if (!program) throw Error("program registry: null program");
  programs_[name] = std::move(program);
}

const Program* ProgramRegistry::find(const std::string& name) const {
  const auto it = programs_.find(name);
  return it == programs_.end() ? nullptr : &it->second;
}

}  // namespace sinclave::runtime
