#include "runtime/starter.h"

#include "cas/client.h"

namespace sinclave::runtime {

StartedEnclave start_enclave(
    sgx::SgxCpu& cpu, const core::EnclaveImage& image,
    const sgx::SigStruct& sigstruct,
    const std::optional<core::InstancePage>& instance_page,
    const std::optional<sgx::EinitToken>& launch_token) {
  StartedEnclave out;
  out.id = cpu.ecreate(image.total_size(), image.attributes,
                       image.ssa_frame_size);
  out.instance_page_offset = image.instance_page_offset();

  // Code segment: measured content pages, read-execute.
  for (std::uint64_t p = 0; p < image.code_pages(); ++p) {
    cpu.add_measured_page(out.id, p * sgx::kPageSize, image.code_page(p),
                          sgx::SecInfo::reg_rx());
  }

  // Heap: measured zero pages, read-write. Empty views share the CPU's
  // zero-page storage, so large heaps cost hash time but no memory.
  const std::uint64_t heap_base = image.code_bytes_padded();
  for (std::uint64_t p = 0; p < image.heap_pages(); ++p) {
    cpu.add_measured_page(out.id, heap_base + p * sgx::kPageSize, ByteView{},
                          sgx::SecInfo::reg_rw());
  }

  // Instance page: token+verifier identity for singletons, zeros otherwise.
  if (instance_page.has_value()) {
    cpu.add_measured_page(out.id, out.instance_page_offset,
                          instance_page->render(), sgx::SecInfo::reg_rw());
  } else {
    cpu.add_measured_page(out.id, out.instance_page_offset, ByteView{},
                          sgx::SecInfo::reg_rw());
  }

  out.einit_verdict = cpu.einit(out.id, sigstruct, launch_token);
  return out;
}

SingletonStart start_singleton_enclave(sgx::SgxCpu& cpu,
                                       net::SimNetwork& net,
                                       const std::string& cas_address,
                                       const core::EnclaveImage& image,
                                       const sgx::SigStruct& common_sigstruct,
                                       const std::string& session_name) {
  SingletonStart out;

  cas::CasClient client(
      &net, cas::CasClientConfig{.address = cas_address, .retry = {}});
  const cas::InstanceResult got =
      client.get_instance(session_name, common_sigstruct);
  out.status = got.status;
  if (!got.ok()) {
    // Transport-level failures keep the seed-era wording; typed verifier
    // refusals carry the canonical status message.
    out.error = got.status.code == StatusCode::kUnavailable
                    ? "instance request failed: " + got.status.message()
                    : "verifier refused instance: " + got.status.message();
    return out;
  }

  core::InstancePage page;
  page.token = got.token;
  page.verifier_id = got.verifier_id;

  out.token = got.token;
  out.verifier_id = got.verifier_id;
  out.enclave = start_enclave(cpu, image, got.singleton_sigstruct, page);
  if (!out.enclave.ok())
    out.error = std::string("einit failed: ") +
                to_string(out.enclave.einit_verdict);
  return out;
}

}  // namespace sinclave::runtime
