// The application/program model (the "interpreter" abstraction).
//
// The paper's attack hinges on the fact that WHICH program an enclave runs
// is decided by unmeasured configuration: the same Python interpreter
// enclave runs whatever the config points it at. We model programs as
// registered callables selected *by name from the attested configuration*
// — exactly the indirection the attack exploits. The AppContext handed to a
// program mirrors what SGX frameworks expose to user code: configuration,
// secrets, the mounted encrypted filesystem, networking, and — crucially —
// report generation with caller-chosen REPORTDATA (SCONE C functions,
// Occlum ioctls, Gramine /dev/attestation; §3.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "cas/protocol.h"
#include "fs/encrypted_volume.h"
#include "net/sim_network.h"
#include "sgx/report.h"

namespace sinclave::runtime {

/// Execution context a program receives from the runtime.
struct AppContext {
  const cas::AppConfig* config = nullptr;
  /// Mounted volume (set iff the config carried a filesystem key).
  fs::EncryptedVolume* volume = nullptr;
  net::SimNetwork* network = nullptr;
  /// EREPORT with arbitrary REPORTDATA — the framework attestation API.
  std::function<sgx::Report(const sgx::TargetInfo&, const sgx::ReportData&)>
      make_report;
  /// Accumulates program output (observable by tests/examples).
  std::string output;
};

/// A program returns an exit code; nonzero is failure.
using Program = std::function<int(AppContext&)>;

/// Name -> program table (the "binaries on the filesystem").
class ProgramRegistry {
 public:
  void register_program(const std::string& name, Program program);
  const Program* find(const std::string& name) const;
  std::size_t size() const { return programs_.size(); }

 private:
  std::map<std::string, Program> programs_;
};

}  // namespace sinclave::runtime
