// The in-enclave runtime (the SCONE runtime stand-in).
//
// After EINIT the runtime takes control inside the enclave:
//   1. reads the instance page,
//   2. attests to the verifier over a channel bound to the quote,
//   3. receives the configuration (program, args, env, secrets, FS key),
//   4. mounts and verifies the encrypted volume against the configured
//      manifest root ("completeness"),
//   5. loads and runs the configured program.
//
// Two builds exist:
//   * kBaseline  — today's behaviour: the runtime trusts whatever verifier
//     address/identity the (untrusted!) host passed on the command line.
//     This is the flaw §3 exploits: the adversary points the enclave at
//     their own verifier and configures it into a report server.
//   * kSinclave  — the paper's fix: a singleton enclave only speaks to the
//     verifier whose identity is measured into its instance page, presents
//     its one-time token, and refuses configuration in every other case.
//     A common (zero-page) enclave cannot obtain configuration at all.
//
// Each enclave instance is configured at most once (re-configuration of a
// running enclave would reintroduce the reuse attack).
#pragma once

#include <set>

#include "cas/protocol.h"
#include "crypto/drbg.h"
#include "net/secure_channel.h"
#include "quote/quoting_enclave.h"
#include "runtime/program.h"
#include "runtime/starter.h"

namespace sinclave::runtime {

enum class RuntimeMode { kBaseline, kSinclave };

struct RunOptions {
  /// Where the host says the verifier lives (attacker controlled).
  std::string cas_address;
  /// Who the host says the verifier is (attacker controlled; in SinClave
  /// mode the runtime cross-checks it against the instance page).
  crypto::RsaPublicKey cas_identity;
  std::string session_name;
  /// Host-provided encrypted volume (ciphertext blobs; attacker can swap
  /// or tamper — the manifest check must catch it).
  std::map<std::string, Bytes> volume_blobs;
};

struct RunResult {
  bool ok = false;
  /// Failure stage description (stable prefixes asserted by tests).
  std::string error;
  int exit_code = -1;
  std::string program_output;
  /// The configuration that was applied (empty when !ok).
  cas::AppConfig config;
};

class EnclaveRuntime {
 public:
  EnclaveRuntime(sgx::SgxCpu* cpu, quote::QuotingEnclave* qe,
                 net::SimNetwork* net, const ProgramRegistry* programs,
                 RuntimeMode mode, crypto::Drbg rng);

  /// Full startup sequence for an initialized enclave.
  RunResult run(const StartedEnclave& enclave, const RunOptions& options);

  RuntimeMode mode() const { return mode_; }

 private:
  sgx::SgxCpu* cpu_;
  quote::QuotingEnclave* qe_;
  net::SimNetwork* net_;
  const ProgramRegistry* programs_;
  RuntimeMode mode_;
  crypto::Drbg rng_;
  std::set<sgx::SgxCpu::EnclaveId> configured_;
};

}  // namespace sinclave::runtime
