#include "runtime/enclave_runtime.h"

#include "cas/client.h"
#include "crypto/sha256.h"

namespace sinclave::runtime {

EnclaveRuntime::EnclaveRuntime(sgx::SgxCpu* cpu, quote::QuotingEnclave* qe,
                               net::SimNetwork* net,
                               const ProgramRegistry* programs,
                               RuntimeMode mode, crypto::Drbg rng)
    : cpu_(cpu), qe_(qe), net_(net), programs_(programs), mode_(mode),
      rng_(std::move(rng)) {
  if (!cpu_ || !qe_ || !net_ || !programs_)
    throw Error("runtime: all components required");
}

RunResult EnclaveRuntime::run(const StartedEnclave& enclave,
                              const RunOptions& options) {
  RunResult result;
  if (!enclave.ok()) {
    result.error = "start: enclave failed to initialize";
    return result;
  }
  if (configured_.contains(enclave.id)) {
    result.error = "start: enclave instance was already configured";
    return result;
  }

  // 1. Read and interpret the instance page.
  std::optional<core::InstancePage> page;
  try {
    page = core::InstancePage::parse(
        cpu_->read_page(enclave.id, enclave.instance_page_offset));
  } catch (const ParseError& e) {
    result.error = std::string("instance-page: ") + e.what();
    return result;
  }

  std::optional<core::AttestationToken> token;
  if (mode_ == RuntimeMode::kSinclave) {
    if (!page.has_value()) {
      // Common enclave: may compute, but never receives configuration.
      result.error =
          "singleton: common enclave cannot obtain configuration";
      return result;
    }
    // Only the verifier measured into this very enclave is acceptable.
    const Hash256 claimed_id =
        crypto::sha256(options.cas_identity.modulus_be());
    if (claimed_id != page->verifier_id) {
      result.error = "singleton: refusing to talk to unexpected verifier";
      return result;
    }
    token = page->token;
  }

  // 2. Channel-bound attestation through the client SDK.
  cas::AttestedChannel channel(
      net_, options.cas_address,
      crypto::Drbg(rng_.generate(16), "runtime-channel"));
  const sgx::ReportData binding =
      net::channel_binding(channel.dh_public());
  const sgx::Report report =
      cpu_->ereport(enclave.id, qe_->target_info(), binding);
  const auto q = qe_->generate_quote(report);
  if (!q.has_value()) {
    result.error = "attest: quoting enclave rejected the report";
    return result;
  }

  cas::AttestPayload payload;
  payload.session_name = options.session_name;
  payload.quote = *q;
  payload.token = token;

  Status attest_status;
  try {
    attest_status = channel.attest(options.cas_identity, payload);
  } catch (const Error& e) {
    result.error = std::string("attest: ") + e.what();
    return result;
  }
  if (!attest_status.ok()) {
    result.error =
        attest_status.code == StatusCode::kAttestationRejected
            ? "attest: verifier rejected attestation"
            : "attest: " + attest_status.message();
    return result;
  }

  // 3. Fetch configuration over the attested channel.
  const Result<cas::AppConfig> cfg = channel.get_config();
  if (!cfg.ok()) {
    result.error = "config: " + cfg.status().message();
    return result;
  }
  configured_.insert(enclave.id);
  result.config = cfg.value();

  // 4. Mount + verify the encrypted volume (completeness of FS state).
  std::optional<fs::EncryptedVolume> volume;
  if (!result.config.fs_key.empty()) {
    volume = fs::EncryptedVolume::adopt(
        result.config.fs_key, crypto::Drbg(rng_.generate(16), "runtime-fs"),
        options.volume_blobs);
    Hash256 root;
    try {
      root = volume->manifest_root();
    } catch (const Error&) {
      result.error = "volume: file integrity verification failed";
      return result;
    }
    if (root != result.config.fs_manifest_root) {
      result.error = "volume: manifest does not match configuration";
      return result;
    }
  }

  // 5. Load and run the configured program.
  const Program* program = programs_->find(result.config.program);
  if (program == nullptr) {
    result.error = "program: not found: " + result.config.program;
    return result;
  }

  AppContext ctx;
  ctx.config = &result.config;
  ctx.volume = volume.has_value() ? &*volume : nullptr;
  ctx.network = net_;
  // Capture the CPU (which outlives any runtime instance), not `this`:
  // programs may stash the report API in long-lived handlers (the report
  // server does exactly that).
  ctx.make_report = [cpu = cpu_, id = enclave.id](
                        const sgx::TargetInfo& target,
                        const sgx::ReportData& data) {
    return cpu->ereport(id, target, data);
  };

  result.exit_code = (*program)(ctx);
  result.program_output = std::move(ctx.output);
  result.ok = result.exit_code == 0;
  if (!result.ok) result.error = "program: nonzero exit";
  return result;
}

}  // namespace sinclave::runtime
