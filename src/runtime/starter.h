// The starter: untrusted system software that constructs enclaves.
//
// Loads an EnclaveImage onto the simulated CPU page by page (measured),
// optionally materializes an instance page (SinClave path), and runs EINIT
// with the supplied SigStruct. The starter is *outside* the TCB — in the
// attack scenarios the adversary plays this role, constructing victim
// enclaves with configurations of their choosing.
#pragma once

#include <optional>
#include <string>

#include "cas/protocol.h"
#include "core/image.h"
#include "core/instance_page.h"
#include "net/sim_network.h"
#include "sgx/cpu.h"

namespace sinclave::runtime {

/// Handle to a constructed (and, on success, initialized) enclave.
struct StartedEnclave {
  sgx::SgxCpu::EnclaveId id = 0;
  Verdict einit_verdict = Verdict::kMalformed;
  std::uint64_t instance_page_offset = 0;

  bool ok() const { return einit_verdict == Verdict::kOk; }
};

/// Construct and initialize an enclave from an image.
/// `instance_page`: nullopt -> common enclave (zeroed instance page).
StartedEnclave start_enclave(
    sgx::SgxCpu& cpu, const core::EnclaveImage& image,
    const sgx::SigStruct& sigstruct,
    const std::optional<core::InstancePage>& instance_page = std::nullopt,
    const std::optional<sgx::EinitToken>& launch_token = std::nullopt);

/// Full SinClave starter flow ("Singleton Page Retrieval", Fig. 7c):
/// request token + on-demand SigStruct from the verifier's instance
/// endpoint, materialize the instance page, construct, EINIT.
struct SingletonStart {
  StartedEnclave enclave;
  core::AttestationToken token;
  Hash256 verifier_id;
  /// Typed outcome of the retrieval (the CasClient status) — what retry
  /// logic and tests should branch on.
  Status status;
  std::string error;  // human-readable; set when !ok()

  bool ok() const { return error.empty() && enclave.ok(); }
};

SingletonStart start_singleton_enclave(sgx::SgxCpu& cpu,
                                       net::SimNetwork& net,
                                       const std::string& cas_address,
                                       const core::EnclaveImage& image,
                                       const sgx::SigStruct& common_sigstruct,
                                       const std::string& session_name);

}  // namespace sinclave::runtime
