// Tests for the concurrent CAS serving layer (src/server/):
//  * thread pool and metrics primitives,
//  * sharded policy store and LRU SigStruct cache semantics,
//  * concurrent instance retrievals across sessions (token uniqueness),
//  * cached (pre-minted) credentials remain fully usable end to end,
//  * one-time-token / singleton guarantees under racing replays,
//  * metrics sanity after serving real traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cas/client.h"
#include "core/predictor.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "runtime/starter.h"
#include "server/cas_server.h"
#include "server/metrics.h"
#include "server/policy_store.h"
#include "server/sigstruct_cache.h"
#include "server/thread_pool.h"
#include "workload/load_gen.h"
#include "workload/testbed.h"

namespace sinclave::server {
namespace {

// --- primitives ------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.submit([&done] { ++done; });
  pool.drain();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&done] { ++done; });
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, JobExceptionsDoNotKillWorkers) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  pool.submit([] { throw Error("boom"); });
  pool.submit([&done] { ++done; });
  pool.drain();
  EXPECT_EQ(done.load(), 1);
}

TEST(Metrics, HistogramQuantilesAreOrderedAndBracketed) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(std::chrono::microseconds(i * 10));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_LE(s.p50.count(), s.p90.count());
  EXPECT_LE(s.p90.count(), s.p99.count());
  EXPECT_LE(s.p99.count(), s.max.count());
  // p50 of 10..1000us must land in the same order of magnitude as 500us
  // (bucketed estimate, x1.5 resolution).
  EXPECT_GE(s.p50, std::chrono::microseconds(300));
  EXPECT_LE(s.p50, std::chrono::microseconds(800));
  EXPECT_EQ(s.max, std::chrono::microseconds(1000));
}

TEST(Metrics, HistogramIsThreadSafe) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i)
        h.record(std::chrono::microseconds(100));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, 4000u);
}

TEST(Metrics, NegativeAndZeroDurationsAreClamped) {
  LatencyHistogram h;
  h.record(std::chrono::nanoseconds(-5000));
  h.record(std::chrono::nanoseconds(0));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.sum.count(), 0);  // the negative sample cannot poison the sum
  EXPECT_EQ(s.max.count(), 0);
  EXPECT_EQ(s.mean().count(), 0);
  EXPECT_LE(s.p50, s.max);
}

TEST(Metrics, BucketUpperBoundsAreInclusive) {
  // Regression: truncated boundary precomputation shaved 1 ns off bounds
  // that are not double-representable, pushing a sample sitting exactly
  // on a bucket's upper bound into the next bucket.
  using std::chrono::nanoseconds;
  const nanoseconds bound =
      LatencyHistogram::bucket_bound(std::chrono::microseconds(2));
  // The boundary value belongs to its own bucket...
  EXPECT_EQ(LatencyHistogram::bucket_bound(bound), bound);
  LatencyHistogram at;
  at.record(bound);
  EXPECT_EQ(at.snapshot().p50, bound);
  // ...and one nanosecond past it belongs to the next.
  LatencyHistogram past;
  past.record(bound + nanoseconds(1));
  EXPECT_GT(past.snapshot().p50, bound);
}

TEST(Metrics, MergeAndResetRacingRecordKeepInvariants) {
  LatencyHistogram h, other;
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    std::uint64_t i = 0;
    while (!stop)
      h.record(std::chrono::microseconds(1 + (i++ % 3000)));
  });
  std::thread churner([&] {
    for (int i = 0; i < 200; ++i) {
      other.record(std::chrono::microseconds(50));
      h.merge(other);
      h.reset();
    }
    stop = true;
  });
  for (int i = 0; i < 50; ++i) {
    const auto s = h.snapshot();
    EXPECT_GE(s.sum.count(), 0);
    EXPECT_GE(s.mean().count(), 0);
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
    EXPECT_LE(s.p99, s.max);
  }
  recorder.join();
  churner.join();
}

TEST(Metrics, InFlightGaugeTracksHighWaterMark) {
  ServerMetrics m;
  m.enter_in_flight();
  m.enter_in_flight();
  m.enter_in_flight();
  m.leave_in_flight();
  EXPECT_EQ(m.requests_in_flight.load(), 2u);
  EXPECT_EQ(m.max_in_flight.load(), 3u);
  m.leave_in_flight();
  m.leave_in_flight();
  EXPECT_EQ(m.requests_in_flight.load(), 0u);
  EXPECT_EQ(m.max_in_flight.load(), 3u);  // watermark survives
}

TEST(PolicyStore, ShardedGetPutEraseAndCounters) {
  ShardedPolicyStore store(8);
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.misses(), 1u);

  cas::Policy p;
  p.session_name = "a";
  p.config.program = "prog";
  store.put("a", p);
  const auto got = store.get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->config.program, "prog");
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.size(), 1u);

  store.erase("a");
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.size(), 0u);
}

TEST(PolicyStore, ConcurrentMixedAccess) {
  ShardedPolicyStore store(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string name = "s" + std::to_string((t * 7 + i) % 20);
        cas::Policy p;
        p.session_name = name;
        store.put(name, p);
        store.get(name);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(), 20u);
}

TEST(SigStructCacheTest, TakeFromEmptyIsMiss) {
  SigStructCache cache(8);
  EXPECT_FALSE(cache.take("s").has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(SigStructCacheTest, PutTakeRoundTripIsHit) {
  SigStructCache cache(8);
  cas::MintedCredential cred;
  cred.token.data[0] = 7;
  cred.mr_enclave.data[0] = 9;
  cache.put("s", cred);
  EXPECT_EQ(cache.pooled("s"), 1u);
  EXPECT_TRUE(cache.contains("s", cred.mr_enclave));

  const auto taken = cache.take("s");
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->token, cred.token);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.pooled("s"), 0u);
  // Pool drained: next take is a miss.
  EXPECT_FALSE(cache.take("s").has_value());
}

TEST(SigStructCacheTest, LruEvictsLeastRecentlyUsedSession) {
  SigStructCache cache(4);
  cas::MintedCredential cred;
  for (int i = 0; i < 2; ++i) cache.put("old", cred);
  for (int i = 0; i < 2; ++i) cache.put("hot", cred);
  // Touch "old"→"hot" order: make "hot" most recent, then overflow.
  (void)cache.take("hot");
  cache.put("hot", cred);  // back to 2+2 with "hot" most recent
  cache.put("hot", cred);  // 5 > capacity 4: evict from "old"
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_LT(cache.pooled("old"), 2u);
  EXPECT_EQ(cache.pooled("hot"), 3u);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(SigStructCacheTest, PutAllDepositsBatchInOrder) {
  SigStructCache cache(8);
  std::vector<cas::MintedCredential> batch(3);
  for (int i = 0; i < 3; ++i) batch[i].token.data[0] = static_cast<std::uint8_t>(i + 1);
  EXPECT_EQ(cache.put_all("s", std::move(batch)), 3u);
  EXPECT_EQ(cache.pooled("s"), 3u);
  // FIFO like repeated put()s.
  for (int i = 0; i < 3; ++i) {
    const auto taken = cache.take("s");
    ASSERT_TRUE(taken.has_value());
    EXPECT_EQ(taken->token.data[0], i + 1);
  }
  EXPECT_EQ(cache.put_all("s", {}), 0u);
  EXPECT_EQ(cache.pooled("s"), 0u);
}

TEST(SigStructCacheTest, PutAllEvictsOverCapacityLikePuts) {
  SigStructCache cache(4);
  cas::MintedCredential cred;
  for (int i = 0; i < 3; ++i) cache.put("old", cred);
  std::vector<cas::MintedCredential> batch(3);
  cache.put_all("hot", std::move(batch));  // 6 > 4: evict from "old" first
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.pooled("hot"), 3u);
  EXPECT_EQ(cache.pooled("old"), 1u);
  EXPECT_GE(cache.evictions(), 2u);
}

TEST(SigStructCacheTest, FlushDiscardsSessionPool) {
  SigStructCache cache(8);
  cas::MintedCredential cred;
  cache.put("s", cred);
  cache.put("s", cred);
  EXPECT_EQ(cache.flush("s"), 2u);
  EXPECT_EQ(cache.pooled("s"), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SigStructCacheTest, RefillGuardAdmitsOneWorker) {
  SigStructCache cache(8);
  EXPECT_TRUE(cache.begin_refill("s"));
  EXPECT_FALSE(cache.begin_refill("s"));
  cache.end_refill("s");
  EXPECT_TRUE(cache.begin_refill("s"));
}

TEST(SigStructCacheTest, EvictionErasesDrainedSessionPools) {
  SigStructCache cache(2);
  cas::MintedCredential cred;
  cache.put("old", cred);
  cache.put("hot", cred);
  EXPECT_EQ(cache.sessions(), 2u);
  cache.put("hot", cred);  // 3 > capacity 2: "old" drained to zero
  EXPECT_EQ(cache.pooled("old"), 0u);
  EXPECT_EQ(cache.sessions(), 1u);  // the empty pool is gone, not leaked
}

TEST(SigStructCacheTest, RefillGuardSurvivesPoolEviction) {
  // Regression: the refilling flag used to live inside the evictable
  // SessionPool, so evicting a session mid-refill recreated the pool with
  // refilling=false — admitting a second concurrent refiller whose
  // end_refill then clobbered the first's guard.
  SigStructCache cache(2);
  ASSERT_TRUE(cache.begin_refill("s"));
  cas::MintedCredential cred;
  cache.put("s", cred);
  cache.put("a", cred);
  cache.put("a", cred);  // overflow: LRU "s" drains to zero and is erased
  EXPECT_EQ(cache.pooled("s"), 0u);
  EXPECT_EQ(cache.sessions(), 1u);
  EXPECT_FALSE(cache.begin_refill("s"));  // guard held across the eviction
  cache.end_refill("s");
  EXPECT_TRUE(cache.begin_refill("s"));
  cache.end_refill("s");
}

TEST(SigStructCacheTest, RefillGuardRacingEvictionStaysCoherent) {
  SigStructCache cache(4);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> cycles{0};
  std::thread refiller([&] {
    cas::MintedCredential cred;
    while (!stop) {
      if (cache.begin_refill("s")) {
        cache.put("s", cred);
        cache.end_refill("s");
        ++cycles;
      }
    }
  });
  std::thread evictor([&] {
    cas::MintedCredential cred;
    for (int i = 0; i < 2000; ++i)
      cache.put("x" + std::to_string(i % 8), cred);
    stop = true;
  });
  refiller.join();
  evictor.join();
  EXPECT_GT(cycles.load(), 0u);
  // Whatever interleaving happened, the guard ends released exactly once.
  EXPECT_TRUE(cache.begin_refill("s"));
  EXPECT_FALSE(cache.begin_refill("s"));
  cache.end_refill("s");
}

TEST(SigStructCacheTest, LowWatermarkFiresOnTakeFlushAndEviction) {
  SigStructCache cache(4);
  std::vector<std::string> fired;
  cache.set_low_watermark(
      2, [&](const std::string& session) { fired.push_back(session); });
  cas::MintedCredential cred;
  cache.put("s", cred);
  cache.put("s", cred);
  cache.put("s", cred);
  EXPECT_TRUE(fired.empty());  // puts never signal pressure
  (void)cache.take("s");       // 2 left: at the watermark, not below
  EXPECT_TRUE(fired.empty());
  (void)cache.take("s");  // 1 left: below
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "s");
  cache.put("s", cred);
  cache.flush("s");  // flushed to zero: below
  ASSERT_EQ(fired.size(), 2u);
  // Eviction starving a session fires for the *victim*.
  cache.put("cold", cred);
  cache.put("cold", cred);
  cache.put("hot", cred);
  cache.put("hot", cred);
  cache.put("hot", cred);  // 5 > 4: evict from "cold"
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.back(), "cold");
  // A miss on an empty pool is the deepest pressure of all.
  fired.clear();
  EXPECT_FALSE(cache.take("nothing").has_value());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "nothing");
}

// --- serving layer on a full testbed ---------------------------------------

class CasServerTest : public ::testing::Test {
 protected:
  static constexpr const char* kServerAddress = "cas.fleet";

  CasServerTest()
      : bed_(workload::TestbedConfig{.seed = 71}),
        image_(core::EnclaveImage::synthetic("srv", sgx::kPageSize,
                                             4 * sgx::kPageSize)),
        signer_(&bed_.user_signer()),
        signed_(signer_.sign_sinclave(image_)) {}

  cas::Policy singleton_policy(const std::string& name) {
    cas::Policy p;
    p.session_name = name;
    p.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    p.require_singleton = true;
    p.base_hash = signed_.base_hash;
    p.config.program = "noop";
    return p;
  }

  cas::InstanceRequest request(const std::string& name) {
    cas::InstanceRequest r;
    r.session_name = name;
    r.common_sigstruct = signed_.sigstruct;
    return r;
  }

  workload::Testbed bed_;
  core::EnclaveImage image_;
  core::Signer signer_;
  core::SinclaveSignedImage signed_;
};

TEST_F(CasServerTest, ServesInstanceRequestsOverTheNetwork) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 2});
  server.bind(bed_.network(), kServerAddress);

  cas::CasClient client(&bed_.network(),
                        cas::CasClientConfig{.address = kServerAddress, .retry = {}});
  const auto resp = client.get_instance("s", signed_.sigstruct);
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_FALSE(resp.token.is_zero());
  EXPECT_EQ(resp.verifier_id, bed_.cas().verifier_id());
  EXPECT_TRUE(resp.singleton_sigstruct.signature_valid());
  core::InstancePage page;
  page.token = resp.token;
  page.verifier_id = resp.verifier_id;
  EXPECT_EQ(resp.singleton_sigstruct.enclave_hash,
            core::MeasurementPredictor::predict(signed_.base_hash, page));

  EXPECT_EQ(server.metrics().get_instance.requests.load(), 1u);
  EXPECT_EQ(server.metrics().get_instance.errors.load(), 0u);
  EXPECT_EQ(server.metrics().get_instance.legacy_frames.load(), 0u);
  EXPECT_EQ(server.metrics().tokens_issued.load(), 1u);
  EXPECT_EQ(server.metrics().get_instance.latency.snapshot().count, 1u);
}

TEST_F(CasServerTest, LegacyV0FramesStillServedAndCounted) {
  // A seed-era peer sends the raw InstanceRequest (no envelope) and
  // expects the seed-era response layout back — answered in kind.
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 1});
  server.bind(bed_.network(), kServerAddress);

  auto conn =
      bed_.network().connect(std::string(kServerAddress) + ".instance");
  const auto resp = cas::InstanceResponse::deserialize_v0(
      conn.call(request("s").serialize()));
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_TRUE(resp.singleton_sigstruct.signature_valid());
  EXPECT_EQ(server.metrics().get_instance.legacy_frames.load(), 1u);
}

TEST_F(CasServerTest, ErrorPathsMatchDirectService) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 1});

  EXPECT_EQ(server.handle_instance(request("nope")).status.code,
            StatusCode::kUnknownSession);

  auto tampered = request("s");
  tampered.common_sigstruct.signature[3] ^= 1;
  EXPECT_EQ(server.handle_instance(tampered).status.code,
            StatusCode::kBadSignature);
  // Same typed outcome as the direct CasService path.
  EXPECT_EQ(bed_.cas().handle_instance(tampered).status.code,
            StatusCode::kBadSignature);
  EXPECT_EQ(server.metrics().get_instance.errors.load(), 2u);
}

TEST_F(CasServerTest, PolicyCacheSkipsRepeatDbLoads) {
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 1});
  // Installed after the store is attached: written through, so even the
  // first request hits the decrypted-policy cache.
  bed_.cas().install_policy(singleton_policy("s"));

  ASSERT_TRUE(server.handle_instance(request("s")).ok());
  ASSERT_TRUE(server.handle_instance(request("s")).ok());
  EXPECT_EQ(server.policy_store().hits(), 2u);
  EXPECT_EQ(server.policy_store().misses(), 0u);

  // A policy installed before the server existed is pulled from the
  // encrypted DB once (miss), then served from the store.
  ASSERT_FALSE(server.handle_instance(request("cold")).ok());
  EXPECT_EQ(server.policy_store().misses(), 1u);
}

TEST_F(CasServerTest, PolicyReplaceTakesEffectThroughCache) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 1});
  ASSERT_TRUE(server.handle_instance(request("s")).ok());

  // Software update: new image version supersedes the old base hash.
  core::EnclaveImage v2 = image_;
  v2.code[0] ^= 0xff;
  const auto signed_v2 = signer_.sign_sinclave(v2);
  cas::Policy p2 = singleton_policy("s");
  p2.base_hash = signed_v2.base_hash;
  bed_.cas().install_policy(p2);

  EXPECT_FALSE(server.handle_instance(request("s")).ok());
  cas::InstanceRequest v2_request;
  v2_request.session_name = "s";
  v2_request.common_sigstruct = signed_v2.sigstruct;
  EXPECT_TRUE(server.handle_instance(v2_request).ok());
}

TEST_F(CasServerTest, PremintedCredentialsServeAsCacheHits) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 2});

  ASSERT_EQ(server.premint("s", signed_.sigstruct, 3), 3u);
  EXPECT_EQ(server.sigstruct_cache().size(), 3u);

  const auto resp = server.handle_instance(request("s"));
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_EQ(server.metrics().sigstruct_cache_hits.load(), 1u);
  EXPECT_EQ(server.metrics().sigstruct_cache_misses.load(), 0u);
  EXPECT_EQ(server.sigstruct_cache().size(), 2u);

  // A cached credential is a first-class one: the enclave built from it
  // initializes and attests end to end.
  core::InstancePage page;
  page.token = resp.token;
  page.verifier_id = resp.verifier_id;
  const auto started = runtime::start_enclave(
      bed_.cpu(), image_, resp.singleton_sigstruct, page);
  ASSERT_TRUE(started.ok());

  server.bind(bed_.network(), kServerAddress);
  auto rt = bed_.make_runtime(runtime::RuntimeMode::kSinclave);
  bed_.programs().register_program(
      "noop", [](runtime::AppContext&) { return 0; });
  runtime::RunOptions options;
  options.cas_address = kServerAddress;
  options.cas_identity = bed_.cas().identity();
  options.session_name = "s";
  const auto run = rt.run(started, options);
  EXPECT_TRUE(run.ok) << run.error;
  EXPECT_EQ(bed_.cas().tokens_used(), 1u);
}

TEST_F(CasServerTest, SignerRotationInvalidatesVerifyMemo) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 1});
  ASSERT_TRUE(server.handle_instance(request("s")).ok());  // memoized

  // Rotate the session's signer pin (same base hash). The old signer's
  // memoized SigStruct must be re-checked and rejected, exactly as the
  // direct CasService path rejects it.
  auto rng = crypto::Drbg::from_seed(77, "rotate");
  const auto new_key = crypto::RsaKeyPair::generate(rng, 1024);
  bed_.cas().add_signer_key(new_key);
  cas::Policy rotated = singleton_policy("s");
  rotated.expected_signer =
      crypto::sha256(new_key.public_key().modulus_be());
  bed_.cas().install_policy(rotated);

  const auto resp = server.handle_instance(request("s"));
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, StatusCode::kWrongSigner);
  EXPECT_EQ(resp.status.code,
            bed_.cas().handle_instance(request("s")).status.code);
}

TEST_F(CasServerTest, ResignedCommonSigstructFlushesStalePool) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 1});
  ASSERT_EQ(server.premint("s", signed_.sigstruct, 2), 2u);

  // Same image re-signed (same base hash, different SigStruct metadata):
  // pooled credentials copied the old metadata and must not be served.
  core::EnclaveImage resigned = image_;
  resigned.isv_svn = 2;
  const auto signed_v2 = signer_.sign_sinclave(resigned);
  ASSERT_EQ(signed_v2.base_hash.state, signed_.base_hash.state);

  cas::InstanceRequest v2_request;
  v2_request.session_name = "s";
  v2_request.common_sigstruct = signed_v2.sigstruct;
  const auto resp = server.handle_instance(v2_request);
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_EQ(resp.singleton_sigstruct.isv_svn, 2);
  EXPECT_EQ(server.sigstruct_cache().pooled("s"), 0u);  // stale pool gone
  EXPECT_EQ(server.metrics().sigstruct_cache_hits.load(), 0u);
}

TEST_F(CasServerTest, BackgroundRefillKeepsPoolWarm) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(),
                   CasServerConfig{.workers = 2, .premint_depth = 4});

  // First request verifies the common SigStruct (miss) and triggers an
  // asynchronous refill of the session pool.
  ASSERT_TRUE(server.handle_instance(request("s")).ok());
  server.pool().drain();
  EXPECT_EQ(server.sigstruct_cache().pooled("s"), 4u);
  EXPECT_GE(server.metrics().preminted_credentials.load(), 4u);

  // Next request is served from the pool.
  ASSERT_TRUE(server.handle_instance(request("s")).ok());
  EXPECT_EQ(server.metrics().sigstruct_cache_hits.load(), 1u);
}

TEST_F(CasServerTest, RefillCoalescesDeficitIntoMintBatches) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServerConfig cfg;
  cfg.workers = 2;
  cfg.premint_depth = 9;
  cfg.mint_batch = 4;
  CasServer server(&bed_.cas(), cfg);

  // First request misses, mints inline, and fires the low-watermark
  // refill; the refill tops the 9-deep pool up in ceil(9/4) = 3 batches.
  ASSERT_TRUE(server.handle_instance(request("s")).ok());
  server.pool().drain();
  EXPECT_EQ(server.sigstruct_cache().pooled("s"), 9u);
  EXPECT_EQ(server.metrics().preminted_credentials.load(), 9u);
  EXPECT_EQ(server.metrics().mint_batches.load(), 3u);

  // Every pooled credential issues as a first-class hit.
  for (int i = 0; i < 9; ++i)
    ASSERT_TRUE(server.handle_instance(request("s")).ok());
  EXPECT_EQ(server.metrics().sigstruct_cache_hits.load(), 9u);
}

TEST_F(CasServerTest, ConcurrentRequestsAcrossSessionsIssueUniqueTokens) {
  constexpr std::size_t kSessions = 4;
  std::vector<std::string> sessions;
  for (std::size_t i = 0; i < kSessions; ++i) {
    sessions.push_back("fleet-" + std::to_string(i));
    bed_.cas().install_policy(singleton_policy(sessions.back()));
  }
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 4});
  server.bind(bed_.network(), kServerAddress);

  workload::LoadGenConfig load;
  load.clients = 8;
  load.requests_per_client = 25;
  load.address = kServerAddress;
  load.sessions = sessions;
  const auto result =
      workload::run_instance_load(bed_.network(), signed_.sigstruct, load);

  EXPECT_EQ(result.failed, 0u) << result.first_error;
  EXPECT_EQ(result.ok, 200u);
  const std::set<std::string> unique(result.tokens.begin(),
                                     result.tokens.end());
  EXPECT_EQ(unique.size(), 200u);  // no token ever issued twice
  EXPECT_EQ(bed_.cas().tokens_outstanding(), 200u);
  EXPECT_EQ(server.metrics().get_instance.requests.load(), 200u);
  EXPECT_EQ(server.metrics().get_instance.errors.load(), 0u);
  EXPECT_EQ(server.metrics().get_instance.latency.snapshot().count, 200u);
}

TEST_F(CasServerTest, ClosedLoopWithThinkTimeCompletesAndPacesItself) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 2});
  server.bind(bed_.network(), kServerAddress);

  workload::LoadGenConfig load;
  load.clients = 4;
  load.requests_per_client = 5;
  load.address = kServerAddress;
  load.sessions = {"s"};
  load.think_time = workload::ThinkTime::kConstant;
  load.mean_think = std::chrono::milliseconds(5);
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      workload::run_instance_load(bed_.network(), signed_.sigstruct, load);
  const auto wall = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(result.failed, 0u) << result.first_error;
  EXPECT_EQ(result.ok, 20u);
  // 5 requests x 5ms constant think per client: the run cannot finish
  // faster than the think gaps it must sleep through.
  EXPECT_GE(wall, std::chrono::milliseconds(25));
}

// The core singleton guarantee under concurrency: many attesters racing
// with the SAME one-time token — whatever the interleaving, exactly one
// attestation succeeds and the token is spent exactly once.
TEST_F(CasServerTest, RacingReplaysOfOneTokenAttestExactlyOnce) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServer server(&bed_.cas(), CasServerConfig{.workers = 4});
  server.bind(bed_.network(), kServerAddress);

  // One genuine singleton enclave, started via the serving layer.
  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), kServerAddress, image_, signed_.sigstruct,
      "s");
  ASSERT_TRUE(start.ok()) << start.error;

  constexpr int kRacers = 8;
  std::atomic<int> accepted{0}, rejected{0};
  std::vector<std::thread> racers;
  for (int i = 0; i < kRacers; ++i) {
    racers.emplace_back([&, i] {
      // Each racer plays the runtime's attestation flow with its own
      // channel (own DH key, own quote) but the same one-time token.
      net::SecureClient client(
          crypto::Drbg::from_seed(1000 + i, "racer-channel"));
      const sgx::Report report =
          bed_.cpu().ereport(start.enclave.id, bed_.qe().target_info(),
                             net::channel_binding(client.dh_public()));
      const auto quote = bed_.qe().generate_quote(report);
      ASSERT_TRUE(quote.has_value());

      cas::AttestPayload payload;
      payload.session_name = "s";
      payload.quote = *quote;
      payload.token = start.token;

      const auto outcome =
          client.connect(bed_.network().connect(kServerAddress),
                         bed_.cas().identity(), payload.serialize());
      if (outcome.has_value())
        ++accepted;
      else
        ++rejected;
    });
  }
  for (auto& t : racers) t.join();

  EXPECT_EQ(accepted.load(), 1);
  EXPECT_EQ(rejected.load(), kRacers - 1);
  EXPECT_EQ(bed_.cas().tokens_used(), 1u);
  EXPECT_EQ(bed_.cas().tokens_outstanding(), 0u);
  EXPECT_EQ(server.metrics().attest.requests.load(),
            static_cast<std::uint64_t>(kRacers));
}

// --- overload protection: admission shedding + request deadlines ------------

TEST_F(CasServerTest, AdmissionLimitShedsTypedWithRetryAfterHint) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServerConfig cfg;
  cfg.workers = 2;
  cfg.backend_io = std::chrono::milliseconds(20);  // park admitted requests
  cfg.admission_limit = 2;
  cfg.shed_retry_after = std::chrono::milliseconds(7);
  CasServer server(&bed_.cas(), cfg);
  server.bind(bed_.network(), kServerAddress);

  constexpr int kClients = 8;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::atomic<long long> hint_ms{-1};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      cas::CasClient client(
          &bed_.network(),
          cas::CasClientConfig{.address = kServerAddress,
                               .retry = {.max_attempts = 1}});
      const auto got = client.get_instance("s", signed_.sigstruct);
      if (got.ok()) {
        ++ok;
      } else if (got.status.code == StatusCode::kUnavailable) {
        ++shed;
        if (const auto hint = parse_retry_after(got.status.detail))
          hint_ms = hint->count();
      } else {
        ++other;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_GT(ok.load(), 0);    // the admitted window was served
  EXPECT_GT(shed.load(), 0);  // the overflow was refused, not queued forever
  EXPECT_EQ(other.load(), 0); // every refusal was the typed shed status
  EXPECT_EQ(ok.load() + shed.load(), kClients);
  // The refusal carries the configured retry-after hint, parseable by the
  // canonical extractor (the format is a wire contract, not prose).
  EXPECT_EQ(hint_ms.load(), 7);
  const auto& m = server.metrics();
  EXPECT_EQ(m.requests_shed.load(), static_cast<std::uint64_t>(shed.load()));
  // Accounting closure: shed refusals count as answered-with-error, so
  // requests == ok + errors and nothing vanishes.
  EXPECT_EQ(m.get_instance.requests.load(),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(m.get_instance.errors.load(),
            static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(m.tokens_issued.load(), static_cast<std::uint64_t>(ok.load()));
}

TEST_F(CasServerTest, RequestDeadlineRefusesFastWithoutOccupyingTimers) {
  bed_.cas().install_policy(singleton_policy("s"));
  CasServerConfig cfg;
  cfg.workers = 1;
  cfg.backend_io = std::chrono::milliseconds(50);
  cfg.request_deadline = std::chrono::milliseconds(1);  // can never fit 50ms
  CasServer server(&bed_.cas(), cfg);
  server.bind(bed_.network(), kServerAddress);

  cas::CasClient client(&bed_.network(),
                        cas::CasClientConfig{.address = kServerAddress,
                                             .retry = {.max_attempts = 3}});
  const auto start = std::chrono::steady_clock::now();
  const auto got = client.get_instance("s", signed_.sigstruct);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(got.status.code, StatusCode::kDeadlineExceeded);
  // Deliberately non-retryable: the budget is gone, retrying the same
  // doomed request is the storm deadlines exist to stop.
  EXPECT_FALSE(got.status.retryable());
  EXPECT_EQ(got.attempts, 1u);
  // Refused up front — the server never parked the doomed request on the
  // 50 ms backend stall.
  EXPECT_LT(elapsed, std::chrono::milliseconds(40));
  EXPECT_EQ(server.timers().pending(), 0u);
  const auto& m = server.metrics();
  EXPECT_EQ(m.deadline_exceeded.load(), 1u);
  EXPECT_EQ(m.get_instance.errors.load(), 1u);
  EXPECT_EQ(m.tokens_issued.load(), 0u);  // no token minted for a doomed request
}

}  // namespace
}  // namespace sinclave::server
