// Tests for the network simulator and the attestation-bindable secure
// channel (server authentication, confidentiality, replay protection).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "net/sim_network.h"

namespace sinclave::net {
namespace {

crypto::Drbg rng(std::uint64_t seed) {
  return crypto::Drbg::from_seed(seed, "net-tests");
}

// --- SimNetwork ---

TEST(SimNetwork, RequestResponse) {
  SimNetwork net;
  net.listen("echo", [](ByteView req) {
    Bytes out{req.begin(), req.end()};
    out.push_back('!');
    return out;
  });
  auto conn = net.connect("echo");
  EXPECT_EQ(conn.call(to_bytes("hi")), to_bytes("hi!"));
  EXPECT_EQ(net.round_trips(), 1u);
}

TEST(SimNetwork, ConnectionRefusedWithoutListener) {
  SimNetwork net;
  EXPECT_THROW(net.connect("nobody"), Error);
}

TEST(SimNetwork, AddressCollisionRejected) {
  SimNetwork net;
  net.listen("a", [](ByteView) { return Bytes{}; });
  EXPECT_THROW(net.listen("a", [](ByteView) { return Bytes{}; }), Error);
}

TEST(SimNetwork, ShutdownBreaksConnections) {
  SimNetwork net;
  net.listen("svc", [](ByteView) { return Bytes{1}; });
  auto conn = net.connect("svc");
  net.shutdown("svc");
  EXPECT_FALSE(net.has_listener("svc"));
  EXPECT_THROW(conn.call(Bytes{}), Error);
}

TEST(SimNetwork, CallAfterNetworkDestructionThrows) {
  // Regression: a Connection used to hold a raw SimNetwork*, so calling
  // through it after the network died was use-after-free, not an error.
  std::optional<SimNetwork> net;
  net.emplace();
  net->listen("svc", [](ByteView) { return Bytes{1}; });
  auto conn = net->connect("svc");
  EXPECT_EQ(conn.call(Bytes{}), Bytes{1});
  net.reset();
  EXPECT_THROW(conn.call(Bytes{}), Error);
  EXPECT_THROW(conn.async_call(Bytes{}, [](Bytes, std::exception_ptr) {}),
               Error);
}

TEST(SimNetwork, CallRacingShutdownFailsCleanlyNeverDeadlocks) {
  // Regression: clients hammering call() while the listener shuts down
  // must each either get a response or a deterministic Error — and the
  // shutdown drain must terminate.
  SimNetwork net;
  net.listen("svc", [](ByteView) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Bytes{1};
  });
  std::atomic<std::uint64_t> ok{0}, refused{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t)
    clients.emplace_back([&] {
      std::optional<SimNetwork::Connection> conn;
      try {
        conn.emplace(net.connect("svc"));
      } catch (const Error&) {
        refused += 100;  // thread lost the race before its first call
        return;
      }
      for (int i = 0; i < 100; ++i) {
        try {
          conn->call(Bytes{});
          ++ok;
        } catch (const Error&) {
          ++refused;
        }
      }
    });
  // Gate the shutdown on observed successes (not a fixed sleep) so slow
  // CI cannot shut down before any call lands.
  while (ok.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  net.shutdown("svc");  // must not deadlock against the in-flight calls
  for (auto& t : clients) t.join();
  EXPECT_FALSE(net.has_listener("svc"));
  EXPECT_EQ(ok.load() + refused.load(), 400u);
  EXPECT_GT(ok.load(), 0u);       // some calls landed before shutdown
  EXPECT_GT(refused.load(), 0u);  // and the rest failed, deterministically
}

TEST(SimNetwork, VirtualTimeAccounting) {
  LatencyModel lat;
  lat.connect = std::chrono::microseconds(500);
  lat.round_trip = std::chrono::microseconds(200);
  lat.real_sleep = false;
  SimNetwork net(lat);
  net.listen("svc", [](ByteView) { return Bytes{}; });
  auto conn = net.connect("svc");
  conn.call(Bytes{});
  conn.call(Bytes{});
  EXPECT_EQ(net.virtual_time(), std::chrono::microseconds(900));
}

// --- secure channel ---

struct ChannelFixture : ::testing::Test {
  ChannelFixture()
      : identity_(crypto::RsaKeyPair::generate(setup_rng_, 1024)),
        other_identity_(crypto::RsaKeyPair::generate(setup_rng_, 1024)) {}

  /// Server that accepts every handshake and echoes requests uppercased.
  /// Hooks run concurrently (no server lock wraps them anymore), so the
  /// fixture guards its own capture state.
  void serve(const std::string& address) {
    server_ = std::make_unique<SecureServer>(
        &identity_, rng(2),
        [this](ByteView payload, ByteView, std::uint64_t, StatusCode*) {
          std::lock_guard lock(capture_mutex_);
          last_payload_ = Bytes{payload.begin(), payload.end()};
          return std::optional<Bytes>{to_bytes("welcome")};
        },
        [](std::uint64_t, ByteView plaintext) {
          Bytes out{plaintext.begin(), plaintext.end()};
          for (auto& b : out)
            b = static_cast<std::uint8_t>(std::toupper(b));
          return out;
        });
    net_.listen(address, [this](ByteView raw) { return server_->handle(raw); });
  }

  Bytes last_payload() const {
    std::lock_guard lock(capture_mutex_);
    return last_payload_;
  }

  crypto::Drbg setup_rng_ = rng(1);
  crypto::RsaKeyPair identity_;
  crypto::RsaKeyPair other_identity_;
  SimNetwork net_;
  std::unique_ptr<SecureServer> server_;
  mutable std::mutex capture_mutex_;
  Bytes last_payload_;
};

TEST_F(ChannelFixture, HandshakeAndEncryptedCall) {
  serve("svc");
  SecureClient client(rng(3));
  const auto hello =
      client.connect(net_.connect("svc"), identity_.public_key(),
                     to_bytes("client-payload"));
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(*hello, to_bytes("welcome"));
  EXPECT_EQ(last_payload(), to_bytes("client-payload"));
  EXPECT_EQ(client.call(to_bytes("abc")), to_bytes("ABC"));
  EXPECT_EQ(client.call(to_bytes("xyz")), to_bytes("XYZ"));
}

TEST_F(ChannelFixture, ServerIdentityPinningDetectsImpostor) {
  // The server signs with identity_, but the client expects other_identity_
  // — the exact check SinClave roots in the instance page.
  serve("svc");
  SecureClient client(rng(4));
  EXPECT_THROW(client.connect(net_.connect("svc"),
                              other_identity_.public_key(), {}),
               Error);
}

TEST_F(ChannelFixture, RejectedHandshakeYieldsNullopt) {
  server_ = std::make_unique<SecureServer>(
      &identity_, rng(5),
      [](ByteView, ByteView, std::uint64_t, StatusCode*) {
        return std::optional<Bytes>{};  // reject all
      },
      [](std::uint64_t, ByteView) { return Bytes{}; });
  net_.listen("svc", [this](ByteView raw) { return server_->handle(raw); });

  SecureClient client(rng(6));
  EXPECT_FALSE(
      client.connect(net_.connect("svc"), identity_.public_key(), {})
          .has_value());
  EXPECT_THROW(client.call(Bytes{}), Error);  // never connected
}

TEST_F(ChannelFixture, RejectionRecordCarriesTypedProtocolStatus) {
  // A rejecting hook may attach a protocol-level code to the rejection
  // record; verification refusals use the generic default.
  server_ = std::make_unique<SecureServer>(
      &identity_, rng(11),
      [](ByteView, ByteView, std::uint64_t, StatusCode* reject) {
        *reject = StatusCode::kUnsupportedVersion;
        return std::optional<Bytes>{};
      },
      [](std::uint64_t, ByteView) { return Bytes{}; });
  net_.listen("svc", [this](ByteView raw) { return server_->handle(raw); });

  SecureClient client(rng(12));
  StatusCode status = StatusCode::kOk;
  EXPECT_FALSE(client
                   .connect(net_.connect("svc"), identity_.public_key(), {},
                            &status)
                   .has_value());
  EXPECT_EQ(status, StatusCode::kUnsupportedVersion);
}

TEST_F(ChannelFixture, HostileRejectionStatusCannotReadAsSuccess) {
  // A hostile server answers a handshake with "rejected" + status byte 0
  // (= kOk) or an out-of-enum byte: neither may pass the whitelist — a
  // rejected handshake must never surface an ok (or unknown) status.
  for (const Bytes& wire : {Bytes{0x00, 0x00}, Bytes{0x00, 0xfe}}) {
    SimNetwork net;
    net.listen("svc", [wire](ByteView) { return wire; });
    SecureClient client(rng(13));
    StatusCode status = StatusCode::kOk;
    EXPECT_FALSE(client
                     .connect(net.connect("svc"), identity_.public_key(), {},
                              &status)
                     .has_value());
    EXPECT_EQ(status, StatusCode::kAttestationRejected);
  }
}

TEST_F(ChannelFixture, EavesdropperSeesNoPlaintext) {
  // Wrap the transport to capture ciphertext like an on-path adversary.
  std::vector<Bytes> wire;
  server_ = std::make_unique<SecureServer>(
      &identity_, rng(7),
      [](ByteView, ByteView, std::uint64_t, StatusCode*) {
        return std::optional<Bytes>{Bytes{}};
      },
      [](std::uint64_t, ByteView) { return to_bytes("topsecret-response"); });
  net_.listen("svc", [&](ByteView raw) {
    wire.emplace_back(raw.begin(), raw.end());
    Bytes resp = server_->handle(raw);
    wire.push_back(resp);
    return resp;
  });

  SecureClient client(rng(8));
  ASSERT_TRUE(client.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());
  client.call(to_bytes("topsecret-request"));

  const Bytes needle_req = to_bytes("topsecret-request");
  const Bytes needle_resp = to_bytes("topsecret-response");
  for (const Bytes& frame : wire) {
    const std::string hay(frame.begin(), frame.end());
    EXPECT_EQ(hay.find("topsecret-request"), std::string::npos);
    EXPECT_EQ(hay.find("topsecret-response"), std::string::npos);
  }
}

TEST_F(ChannelFixture, ReplayedDataFrameRejected) {
  serve("svc");
  SecureClient client(rng(9));
  ASSERT_TRUE(client.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());

  // Capture a legitimate encrypted frame by replaying raw bytes directly
  // against the server handler.
  client.call(to_bytes("one"));
  // Build a stale frame: counter 0 was already consumed.
  // (We reconstruct it by asking the client to produce another frame and
  // tampering the counter downward is covered by the server check.)
  // Directly exercise the server's counter check:
  // a second frame with counter 0 must be rejected.
  // The simplest realization: snapshot raw frame bytes via the network.
  Bytes captured;
  net_.shutdown("svc");
  net_.listen("svc", [&](ByteView raw) {
    captured = Bytes{raw.begin(), raw.end()};
    return server_->handle(raw);
  });
  SecureClient client2(rng(10));
  ASSERT_TRUE(client2.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());
  client2.call(to_bytes("fresh"));
  ASSERT_FALSE(captured.empty());

  // Replay the captured data frame verbatim: server must reject (counter
  // no longer fresh).
  const Bytes replay_response = server_->handle(captured);
  EXPECT_EQ(replay_response[0], 0);  // kStatusRejected
}

TEST_F(ChannelFixture, SessionsAreIndependent) {
  serve("svc");
  SecureClient a(rng(11)), b(rng(12));
  ASSERT_TRUE(a.connect(net_.connect("svc"), identity_.public_key(),
                        to_bytes("a")).has_value());
  ASSERT_TRUE(b.connect(net_.connect("svc"), identity_.public_key(),
                        to_bytes("b")).has_value());
  EXPECT_EQ(a.call(to_bytes("aa")), to_bytes("AA"));
  EXPECT_EQ(b.call(to_bytes("bb")), to_bytes("BB"));
  EXPECT_EQ(server_->open_sessions(), 2u);
  server_->close_session(1);
  EXPECT_EQ(server_->open_sessions(), 1u);
}

TEST_F(ChannelFixture, MalformedFramesRejectedGracefully) {
  serve("svc");
  EXPECT_EQ(server_->handle(Bytes{})[0], 0);
  EXPECT_EQ(server_->handle(Bytes{9, 9, 9})[0], 0);
  EXPECT_EQ(server_->handle(Bytes{1, 0, 0})[0], 0);  // truncated data frame
}

TEST_F(ChannelFixture, ConcurrentHandshakesWithInterleavedDataRecords) {
  // The striped-session design's core claim: many clients handshaking
  // while others push data records, with no coarse lock to serialize
  // them. Every session must come up with correct keys and every call
  // must round-trip — run under TSAN in CI, this also asserts the
  // lock-free handshake publication is race-free.
  serve("svc");
  constexpr int kThreads = 8;
  constexpr int kCallsPerClient = 6;
  std::atomic<int> ok_calls{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SecureClient client(rng(100 + static_cast<std::uint64_t>(t)));
      const auto hello =
          client.connect(net_.connect("svc"), identity_.public_key(),
                         to_bytes("c" + std::to_string(t)));
      ASSERT_TRUE(hello.has_value());
      for (int i = 0; i < kCallsPerClient; ++i) {
        const std::string msg = "m" + std::to_string(t) + std::to_string(i);
        Bytes expect = to_bytes(msg);
        for (auto& b : expect)
          b = static_cast<std::uint8_t>(std::toupper(b));
        ASSERT_EQ(client.call(to_bytes(msg)), expect);
        ++ok_calls;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_calls.load(), kThreads * kCallsPerClient);
  EXPECT_EQ(server_->open_sessions(),
            static_cast<std::size_t>(kThreads));
  const auto stats = server_->stats();
  EXPECT_EQ(stats.sessions_opened, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.sessions_high_water,
            static_cast<std::uint64_t>(kThreads));
}

TEST_F(ChannelFixture, CallAfterCloseSessionIsTypedRejection) {
  // A record for a just-closed session must produce a deterministic typed
  // rejection — kSessionNotAttested riding the rejection record — never a
  // torn decrypt or a generic mystery error.
  serve("svc");
  SecureClient client(rng(20));
  ASSERT_TRUE(client.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());
  EXPECT_EQ(client.call(to_bytes("ok")), to_bytes("OK"));
  server_->close_session(1);
  try {
    client.call(to_bytes("late"));
    FAIL() << "call after close must throw";
  } catch (const RecordRejectedError& e) {
    EXPECT_EQ(e.code(), StatusCode::kSessionNotAttested);
  }
}

TEST_F(ChannelFixture, IdleSessionsAreSweptActiveOnesSurvive) {
  // Two attested sessions; one keeps calling past the TTL, the other goes
  // quiet. Driving the round-robin sweep across every stripe must reap
  // exactly the idle one — typed kSessionNotAttested for its next record,
  // the sessions_expired stat up by one, and the warm session untouched.
  SecureServerOptions options;
  options.idle_ttl = std::chrono::milliseconds(20);
  server_ = std::make_unique<SecureServer>(
      &identity_, rng(30),
      [](ByteView, ByteView, std::uint64_t, StatusCode*) {
        return std::optional<Bytes>{Bytes{}};
      },
      [](std::uint64_t, ByteView plaintext) {
        return Bytes{plaintext.begin(), plaintext.end()};
      },
      options);
  net_.listen("svc", [this](ByteView raw) { return server_->handle(raw); });

  SecureClient active(rng(31));
  SecureClient idle(rng(32));
  ASSERT_TRUE(active.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());
  ASSERT_TRUE(idle.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());
  EXPECT_EQ(server_->open_sessions(), 2u);

  // Keep one session warm while the other's last activity ages past the
  // TTL (each call re-stamps the activity clock).
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(active.call(to_bytes("ping")), to_bytes("ping"));
  }
  std::size_t reaped = 0;
  for (std::size_t i = 0; i < options.session_stripes; ++i)
    reaped += server_->sweep_idle();
  EXPECT_EQ(reaped, 1u);
  EXPECT_EQ(server_->open_sessions(), 1u);
  EXPECT_EQ(server_->stats().sessions_expired, 1u);

  EXPECT_EQ(active.call(to_bytes("still-here")), to_bytes("still-here"));
  try {
    idle.call(to_bytes("ghost"));
    FAIL() << "expired session accepted a record";
  } catch (const RecordRejectedError& e) {
    EXPECT_EQ(e.code(), StatusCode::kSessionNotAttested);
  }
}

TEST_F(ChannelFixture, CloseSessionRacingInFlightRecordsNeverTears) {
  // Replay a captured raw data frame from many threads while the session
  // is closed mid-flight: every handle() must answer either a valid
  // encrypted response or a clean rejection record — and the close must
  // not deadlock against records already inside the session (TSAN-checked
  // in CI).
  Bytes captured;
  server_ = std::make_unique<SecureServer>(
      &identity_, rng(21),
      [](ByteView, ByteView, std::uint64_t, StatusCode*) {
        return std::optional<Bytes>{Bytes{}};
      },
      [](std::uint64_t, ByteView plaintext) {
        return Bytes{plaintext.begin(), plaintext.end()};
      });
  net_.listen("svc", [&](ByteView raw) {
    Bytes resp = server_->handle(raw);
    captured = Bytes{raw.begin(), raw.end()};
    return resp;
  });
  SecureClient client(rng(22));
  ASSERT_TRUE(client.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());
  client.call(to_bytes("seed-frame"));
  ASSERT_FALSE(captured.empty());
  ASSERT_EQ(net::classify_record(captured), RecordType::kData);

  std::atomic<bool> go{false};
  std::vector<std::thread> replayers;
  std::atomic<int> ok{0}, rejected{0};
  for (int t = 0; t < 4; ++t) {
    replayers.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < 50; ++i) {
        // The frame's counter was already consumed, so a pre-close answer
        // is the replay rejection; post-close it is the typed closed-
        // session rejection. Either way byte 0 says "rejected" — the
        // invariant is that it never crashes, tears, or deadlocks.
        const Bytes resp = server_->handle(captured);
        ASSERT_FALSE(resp.empty());
        if (resp[0] == 1)
          ++ok;
        else
          ++rejected;
      }
    });
  }
  std::thread closer([&] {
    while (!go.load()) {
    }
    server_->close_session(1);
  });
  go = true;
  for (auto& t : replayers) t.join();
  closer.join();
  EXPECT_EQ(ok.load(), 0);  // replayed counter: rejected before AND after
  EXPECT_EQ(rejected.load(), 200);
  EXPECT_EQ(server_->open_sessions(), 0u);
}

TEST_F(ChannelFixture, HooksMayCallBackIntoTheServer) {
  // The coarse-mutex era forbade hooks from re-entering the SecureServer;
  // the striped design lifts that. The handshake hook reads server state,
  // and the request handler closes its own session ("config delivered,
  // hang up") — both would have self-deadlocked before.
  server_ = std::make_unique<SecureServer>(
      &identity_, rng(23),
      [this](ByteView, ByteView, std::uint64_t, StatusCode*) {
        // Callback into the server from inside the handshake hook.
        (void)server_->open_sessions();
        (void)server_->stats();
        return std::optional<Bytes>{to_bytes("hi")};
      },
      [this](std::uint64_t session_id, ByteView) {
        server_->close_session(session_id);  // hang up after answering
        return to_bytes("bye");
      });
  net_.listen("svc", [this](ByteView raw) { return server_->handle(raw); });

  SecureClient client(rng(24));
  ASSERT_TRUE(client.connect(net_.connect("svc"), identity_.public_key(), {})
                  .has_value());
  // The in-flight record that triggered the close still completes.
  EXPECT_EQ(client.call(to_bytes("first")), to_bytes("bye"));
  EXPECT_EQ(server_->open_sessions(), 0u);
  // Every later record gets the typed closed-session rejection.
  EXPECT_THROW(client.call(to_bytes("second")), RecordRejectedError);
}

// --- deterministic fault injection ------------------------------------------

TEST(FaultInjection, SameSeedSameSequenceGivesByteIdenticalTrace) {
  // The headline determinism contract: the same plan driven by the same
  // single-threaded call sequence on a fresh network must produce a
  // byte-identical fault trace, equal counters, and the same set of
  // observed typed failures — a chaos run is an experiment, not an
  // anecdote.
  struct Run {
    std::string trace;
    FaultInjector::Stats stats;
    std::uint64_t failures = 0;
    std::uint64_t handled = 0;
  };
  const auto drive = [] {
    SimNetwork net;
    std::atomic<std::uint64_t> handled{0};
    net.listen("svc", [&](ByteView) {
      ++handled;
      return Bytes{42};
    });
    FaultPlan plan;
    plan.seed = 2026;
    auto& faults = plan.per_endpoint["svc"];
    faults.drop_request = 0.25;
    faults.drop_response = 0.2;
    faults.reset = 0.1;
    faults.delay = 0.15;
    faults.delay_amount = std::chrono::microseconds(10);
    net.set_fault_plan(plan);
    auto conn = net.connect("svc");
    Run run;
    for (int i = 0; i < 200; ++i) {
      try {
        (void)conn.call(Bytes{});
      } catch (const Error&) {
        ++run.failures;
      }
    }
    run.trace = net.fault_trace();
    run.stats = net.fault_stats();
    run.handled = handled.load();
    return run;
  };

  const Run a = drive();
  const Run b = drive();
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);  // byte-identical
  EXPECT_EQ(a.stats.ops, 200u);
  EXPECT_EQ(a.stats.ops, b.stats.ops);
  EXPECT_EQ(a.stats.requests_dropped, b.stats.requests_dropped);
  EXPECT_EQ(a.stats.responses_dropped, b.stats.responses_dropped);
  EXPECT_EQ(a.stats.resets, b.stats.resets);
  EXPECT_EQ(a.stats.delays, b.stats.delays);
  EXPECT_EQ(a.failures, b.failures);
  // The injected-fault counters close against the client's observed typed
  // failures: exactly the drops and resets fail the call (delays do not).
  EXPECT_EQ(a.failures, a.stats.requests_dropped + a.stats.resets +
                            a.stats.responses_dropped);
  EXPECT_GT(a.failures, 0u);
  // Request-side faults pre-empt the handler; response drops do not.
  EXPECT_EQ(a.handled, 200u - a.stats.requests_dropped - a.stats.resets);
}

TEST(FaultInjection, DropRequestPreemptsHandlerDropResponseDoesNot) {
  SimNetwork net;
  std::atomic<int> handled{0};
  net.listen("svc", [&](ByteView) {
    ++handled;
    return Bytes{7};
  });
  FaultPlan plan;
  plan.seed = 5;
  plan.per_endpoint["svc"].drop_request = 1.0;
  net.set_fault_plan(plan);
  auto conn = net.connect("svc");
  EXPECT_THROW(conn.call(Bytes{}), Error);
  EXPECT_EQ(handled.load(), 0);  // the handler never saw the request
  EXPECT_EQ(net.fault_stats().requests_dropped, 1u);

  plan.per_endpoint["svc"] = {};
  plan.per_endpoint["svc"].drop_response = 1.0;
  net.set_fault_plan(plan);  // fresh experiment: clock and counters reset
  EXPECT_THROW(conn.call(Bytes{}), Error);
  EXPECT_EQ(handled.load(), 1);  // side effects happened; the answer vanished
  EXPECT_EQ(net.fault_stats().responses_dropped, 1u);

  net.set_fault_plan({});  // heal
  EXPECT_EQ(conn.call(Bytes{}), Bytes{7});
}

TEST(FaultInjection, AsyncFaultsDeliverThroughTheCallbackNeverThrow) {
  SimNetwork net;
  net.listen("svc", [](ByteView) { return Bytes{1}; });
  FaultPlan plan;
  plan.seed = 8;
  plan.per_endpoint["svc"].reset = 1.0;
  net.set_fault_plan(plan);
  auto conn = net.connect("svc");
  std::atomic<int> calls{0};
  std::atomic<bool> failed{false};
  conn.async_call(Bytes{}, [&](Bytes, std::exception_ptr error) {
    ++calls;
    failed = error != nullptr;
  });
  EXPECT_EQ(calls.load(), 1);  // exactly once, never a hang
  EXPECT_TRUE(failed.load());
  EXPECT_EQ(net.fault_stats().resets, 1u);
}

TEST(FaultInjection, CorruptResponseFlipsExactlyOneBit) {
  SimNetwork net;
  const Bytes clean(64, 0x00);
  net.listen("svc", [&](ByteView) { return clean; });
  FaultPlan plan;
  plan.seed = 11;
  plan.per_endpoint["svc"].corrupt_response = 1.0;
  net.set_fault_plan(plan);
  auto conn = net.connect("svc");
  for (int i = 0; i < 16; ++i) {
    const Bytes got = conn.call(Bytes{});
    ASSERT_EQ(got.size(), clean.size());
    int flipped = 0;
    for (std::size_t b = 0; b < got.size(); ++b)
      flipped += std::popcount(
          static_cast<unsigned char>(got[b] ^ clean[b]));
    EXPECT_EQ(flipped, 1) << "op " << i;
  }
  EXPECT_EQ(net.fault_stats().corruptions, 16u);
}

TEST(FaultInjection, WindowsKeyOffTheLogicalClockNotWallTime) {
  SimNetwork net;
  net.listen("svc", [](ByteView) { return Bytes{1}; });
  FaultPlan plan;
  plan.seed = 3;
  FaultWindow window;
  window.from_op = 0;
  window.until_op = 3;
  window.address_prefix = "svc";
  window.faults.drop_request = 1.0;
  plan.windows.push_back(window);
  net.set_fault_plan(plan);
  auto conn = net.connect("svc");
  for (int i = 0; i < 3; ++i) EXPECT_THROW(conn.call(Bytes{}), Error);
  // Logical op 3 falls outside [0, 3): the partition has healed purely by
  // protocol progress — no sleeping, no wall clock.
  EXPECT_EQ(conn.call(Bytes{}), Bytes{1});
  const auto stats = net.fault_stats();
  EXPECT_EQ(stats.requests_dropped, 3u);
  EXPECT_EQ(stats.ops, 4u);
}

TEST(ChannelBinding, CommitsToDhKey) {
  const Bytes key1(256, 1), key2(256, 2);
  const auto b1 = channel_binding(key1);
  const auto b2 = channel_binding(key2);
  EXPECT_NE(b1, b2);
  // First 32 bytes are the hash, rest zero padding.
  EXPECT_EQ(Hash256::from_view(b1.view()), crypto::sha256(key1));
  for (std::size_t i = 32; i < 64; ++i) EXPECT_EQ(b1.data[i], 0);
}

}  // namespace
}  // namespace sinclave::net
