// Heap-allocation accounting for the signing hot path.
//
// This binary replaces the global operator new with a counting wrapper —
// which is why these tests live alone in their own test executable — and
// asserts the tentpole property of the windowed Montgomery kernels: after
// one warm-up call (which grows the scratch arena and the output's limb
// storage), steady-state exponentiation performs ZERO heap allocations.
// The old implementation allocated two vectors per modular multiplication,
// ~4,600 allocations per RSA-3072 signature.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "obs/trace.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sinclave::crypto {
namespace {

BigInt rand_odd_modulus(Drbg& rng, std::size_t bytes) {
  Bytes buf = rng.generate(bytes);
  buf[0] |= 0x80;
  buf[bytes - 1] |= 0x01;
  return BigInt::from_bytes_be(buf);
}

TEST(Allocation, SteadyStateWindowedExpIsAllocationFree) {
  Drbg rng = Drbg::from_seed(7, "alloc-exp");
  // 1536-bit modulus with a 1536-bit exponent: the shape of an RSA-3072
  // CRT half under the old two-prime split (the worst case this kernel
  // serves).
  const BigInt m = rand_odd_modulus(rng, 192);
  const Montgomery ctx(m);
  const BigInt base = BigInt::from_bytes_be(rng.generate(192));
  const BigInt exponent = BigInt::from_bytes_be(rng.generate(192));

  Montgomery::Scratch scratch;
  BigInt out;
  ctx.exp(base, exponent, scratch, &out);  // warm-up: arena + out grow here
  const BigInt expected = out;

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 5; ++i) ctx.exp(base, exponent, scratch, &out);
  const std::uint64_t allocated = g_allocations.load() - before;
  EXPECT_EQ(allocated, 0u);
  EXPECT_EQ(out, expected);
}

TEST(Allocation, SteadyStateExpU64AndMulModAreAllocationFree) {
  Drbg rng = Drbg::from_seed(8, "alloc-u64");
  const BigInt m = rand_odd_modulus(rng, 128);
  const Montgomery ctx(m);
  const BigInt a = BigInt::from_bytes_be(rng.generate(128));
  const BigInt b = BigInt::from_bytes_be(rng.generate(128));

  Montgomery::Scratch scratch;
  BigInt out;
  ctx.exp_u64(a, kRsaPublicExponent, scratch, &out);  // warm-up
  ctx.mul_mod(a, b, scratch, &out);
  ctx.reduce(a, scratch, &out);

  const std::uint64_t before = g_allocations.load();
  ctx.exp_u64(a, kRsaPublicExponent, scratch, &out);
  ctx.mul_mod(a, b, scratch, &out);
  ctx.reduce(a, scratch, &out);
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(Allocation, SteadyStateSignAllocationCountIsSmallAndFlat) {
  // The full sign path still materializes its results (the padded
  // message, the signature bytes, a handful of CRT intermediates) — but
  // the count must be small, and constant across calls: no hidden
  // per-multiplication allocations sneaking back in.
  Drbg rng = Drbg::from_seed(9, "alloc-sign");
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 1024);
  const Bytes msg = to_bytes("steady-state signing");

  Montgomery::Scratch scratch;
  (void)kp.sign_pkcs1_sha256(msg, scratch);  // warm-up

  const std::uint64_t before = g_allocations.load();
  (void)kp.sign_pkcs1_sha256(msg, scratch);
  const std::uint64_t second = g_allocations.load() - before;
  (void)kp.sign_pkcs1_sha256(msg, scratch);
  const std::uint64_t third = g_allocations.load() - before - second;

  EXPECT_EQ(second, third);
  EXPECT_LE(second, 40u);
}

}  // namespace
}  // namespace sinclave::crypto

namespace sinclave::obs {
namespace {

TEST(Allocation, SteadyStateSpanRecordingIsAllocationFree) {
  // The tracing hot path must never allocate: a span is two clock reads,
  // a histogram record, and a seqlocked ring-slot write. The first span a
  // thread records registers its ring with the tracer and the first use
  // of a phase interns it — both one-time costs paid by this warm-up.
  Tracer& tracer = Tracer::instance();
  Phase& phase = tracer.phase("alloc_test_phase");
  TraceContext ctx;
  ctx.trace_id = tracer.new_trace_id();
  ctx.request_id = 42;
  TraceScope scope(ctx);
  { Span warmup(phase); }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    Span span(phase);
  }
  // Explicit cross-thread records share the same ring write path.
  tracer.record_phase_span(phase, ctx, 0, 1000, 1);
  tracer.record_phase_root(phase, ctx, 0, 1000);
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(Allocation, SpanWithoutScopeIsAllocationFree) {
  Tracer& tracer = Tracer::instance();
  Phase& phase = tracer.phase("alloc_test_scopeless");
  { Span warmup(phase); }  // ring registration (thread may be fresh)

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    Span span(phase);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

}  // namespace
}  // namespace sinclave::obs
