// Unit + property tests for primality testing, RSA keygen, PKCS#1 v1.5
// signatures, and finite-field DH. Most tests use reduced key sizes so the
// suite stays fast; the full 3072-bit path is exercised once and measured
// properly in bench_fig7b_sigstruct.
#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"

namespace sinclave::crypto {
namespace {

Drbg test_rng(std::uint64_t seed) {
  return Drbg::from_seed(seed, "rsa-tests");
}

// --- primality ---

TEST(Primes, SmallPrimesRecognized) {
  Drbg rng = test_rng(1);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 101ull, 65537ull, 1009ull})
    EXPECT_TRUE(primes::is_probable_prime(BigInt{p}, rng)) << p;
}

TEST(Primes, SmallCompositesRejected) {
  Drbg rng = test_rng(2);
  for (std::uint64_t c : {1ull, 4ull, 9ull, 15ull, 91ull, 65535ull, 1001ull})
    EXPECT_FALSE(primes::is_probable_prime(BigInt{c}, rng)) << c;
}

TEST(Primes, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  Drbg rng = test_rng(3);
  for (std::uint64_t c : {561ull, 1105ull, 1729ull, 2465ull, 6601ull, 41041ull})
    EXPECT_FALSE(primes::is_probable_prime(BigInt{c}, rng)) << c;
}

TEST(Primes, ProductOfTwoPrimesRejected) {
  Drbg rng = test_rng(4);
  const BigInt p = primes::generate_prime(64, rng);
  const BigInt q = primes::generate_prime(64, rng);
  EXPECT_FALSE(primes::is_probable_prime(p * q, rng));
}

class PrimeGeneration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimeGeneration, ExactBitLengthAndOdd) {
  Drbg rng = test_rng(5 + GetParam());
  const BigInt p = primes::generate_prime(GetParam(), rng);
  EXPECT_EQ(p.bit_length(), GetParam());
  EXPECT_TRUE(p.is_odd());
  // Second-highest bit set (so products have exactly 2n bits):
  EXPECT_TRUE(p.bit(GetParam() - 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimeGeneration,
                         ::testing::Values(32, 64, 128, 256));

TEST(Primes, GenerationIsDeterministicPerSeed) {
  Drbg a = test_rng(77), b = test_rng(77);
  EXPECT_EQ(primes::generate_prime(128, a), primes::generate_prime(128, b));
}

// --- RSA ---

TEST(Rsa, GenerateRejectsBadSizes) {
  Drbg rng = test_rng(10);
  EXPECT_THROW(RsaKeyPair::generate(rng, 256), Error);
  EXPECT_THROW(RsaKeyPair::generate(rng, 513), Error);
}

TEST(Rsa, SignVerifyRoundTrip) {
  Drbg rng = test_rng(11);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 1024);
  const Bytes msg = to_bytes("sigstruct-under-test");
  const Bytes sig = kp.sign_pkcs1_sha256(msg);
  EXPECT_EQ(sig.size(), 128u);
  EXPECT_TRUE(kp.public_key().verify_pkcs1_sha256(msg, sig));
}

TEST(Rsa, VerifyRejectsWrongMessage) {
  Drbg rng = test_rng(12);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 1024);
  const Bytes sig = kp.sign_pkcs1_sha256(to_bytes("original"));
  EXPECT_FALSE(kp.public_key().verify_pkcs1_sha256(to_bytes("forged"), sig));
}

TEST(Rsa, VerifyRejectsCorruptedSignature) {
  Drbg rng = test_rng(13);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 1024);
  const Bytes msg = to_bytes("m");
  Bytes sig = kp.sign_pkcs1_sha256(msg);
  for (std::size_t pos : {0ul, sig.size() / 2, sig.size() - 1}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(kp.public_key().verify_pkcs1_sha256(msg, bad)) << pos;
  }
}

TEST(Rsa, VerifyRejectsWrongLengthSignature) {
  Drbg rng = test_rng(14);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 1024);
  const Bytes msg = to_bytes("m");
  Bytes sig = kp.sign_pkcs1_sha256(msg);
  sig.pop_back();
  EXPECT_FALSE(kp.public_key().verify_pkcs1_sha256(msg, sig));
  sig.push_back(0);
  sig.push_back(0);
  EXPECT_FALSE(kp.public_key().verify_pkcs1_sha256(msg, sig));
}

TEST(Rsa, VerifyRejectsOtherKeysSignature) {
  Drbg rng = test_rng(15);
  const RsaKeyPair a = RsaKeyPair::generate(rng, 1024);
  const RsaKeyPair b = RsaKeyPair::generate(rng, 1024);
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(b.public_key().verify_pkcs1_sha256(msg, a.sign_pkcs1_sha256(msg)));
}

TEST(Rsa, CrtMatchesPlainExponentiation) {
  Drbg rng = test_rng(16);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 768);
  const BigInt n = kp.public_key().n;
  Drbg rng2 = test_rng(17);
  for (int i = 0; i < 5; ++i) {
    const BigInt m = BigInt::random_below(
        n, [&](std::uint8_t* p, std::size_t len) { rng2.generate(p, len); });
    // Encrypt with e then decrypt with the CRT private op.
    const BigInt c = BigInt::mod_exp(m, BigInt{kRsaPublicExponent}, n);
    EXPECT_EQ(kp.private_op(c), m);
  }
}

TEST(Rsa, CrtMatchesPlainPrivateExponent) {
  // private_op against its definition: m^d mod n with the plain (non-CRT)
  // exponentiation over the full modulus.
  Drbg rng = test_rng(40);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 768);
  const BigInt n = kp.public_key().n;
  for (int i = 0; i < 3; ++i) {
    const BigInt m = BigInt::random_below(
        n, [&](std::uint8_t* p, std::size_t len) { rng.generate(p, len); });
    EXPECT_EQ(kp.private_op(m),
              BigInt::mod_exp(m, kp.private_exponent(), n));
  }
}

TEST(Rsa, PrivateOpBoundaryInputs) {
  Drbg rng = test_rng(41);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 512);
  const BigInt n = kp.public_key().n;
  EXPECT_EQ(kp.private_op(BigInt{}), BigInt{});     // 0^d = 0
  EXPECT_EQ(kp.private_op(BigInt{1}), BigInt{1});   // 1^d = 1
  // (n-1)^d = (-1)^d = n-1 (d is odd: e*d ≡ 1 mod the even phi).
  EXPECT_EQ(kp.private_op(n - BigInt{1}), n - BigInt{1});
}

TEST(Rsa, MultiPrimeKeySignsAndVerifies) {
  // >= 3072 bits divisible by three uses the three-prime CRT; the public
  // side must be none the wiser.
  Drbg rng = test_rng(42);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 3072);
  EXPECT_EQ(kp.public_key().n.bit_length(), 3072u);
  const Bytes msg = to_bytes("multi-prime sigstruct");
  const Bytes sig = kp.sign_pkcs1_sha256(msg);
  EXPECT_EQ(sig.size(), 384u);
  EXPECT_TRUE(kp.public_key().verify_pkcs1_sha256(msg, sig));
  EXPECT_FALSE(kp.public_key().verify_pkcs1_sha256(to_bytes("forged"), sig));
  // Garner recombination against the plain private exponent.
  const BigInt n = kp.public_key().n;
  Drbg rng2 = test_rng(43);
  const BigInt m = BigInt::random_below(
      n, [&](std::uint8_t* p, std::size_t len) { rng2.generate(p, len); });
  EXPECT_EQ(kp.private_op(m), BigInt::mod_exp(m, kp.private_exponent(), n));
}

TEST(Rsa, VerifyContextTracksModulusReassignment) {
  // The cached verification context must never outlive its modulus: a key
  // object whose `n` is overwritten re-derives the context.
  Drbg rng = test_rng(44);
  const RsaKeyPair a = RsaKeyPair::generate(rng, 512);
  const RsaKeyPair b = RsaKeyPair::generate(rng, 512);
  const Bytes msg = to_bytes("m");
  const Bytes sig_a = a.sign_pkcs1_sha256(msg);
  const Bytes sig_b = b.sign_pkcs1_sha256(msg);

  RsaPublicKey key = a.public_key();
  EXPECT_TRUE(key.verify_pkcs1_sha256(msg, sig_a));  // context built for a
  key.n = b.public_key().n;                          // rotate the modulus
  EXPECT_TRUE(key.verify_pkcs1_sha256(msg, sig_b));
  EXPECT_FALSE(key.verify_pkcs1_sha256(msg, sig_a));
}

TEST(Rsa, VerifyRejectsMalformedModulus) {
  Drbg rng = test_rng(45);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 512);
  const Bytes sig = kp.sign_pkcs1_sha256(to_bytes("m"));
  RsaPublicKey even;
  even.n = kp.public_key().n + BigInt{1};  // even modulus: never a real key
  EXPECT_FALSE(even.verify_pkcs1_sha256(to_bytes("m"), sig));
  RsaPublicKey one;
  one.n = BigInt{1};
  EXPECT_FALSE(one.verify_pkcs1_sha256(to_bytes("m"), sig));
}

TEST(Rsa, PrivateOpRejectsOutOfRange) {
  Drbg rng = test_rng(18);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 512);
  EXPECT_THROW(kp.private_op(kp.public_key().n), Error);
}

TEST(Rsa, DeterministicKeygenPerSeed) {
  Drbg a = test_rng(19), b = test_rng(19);
  EXPECT_EQ(RsaKeyPair::generate(a, 512).public_key().n,
            RsaKeyPair::generate(b, 512).public_key().n);
}

TEST(Rsa, PublicKeySerializationRoundTrip) {
  Drbg rng = test_rng(20);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 512);
  const Bytes wire = kp.public_key().serialize();
  EXPECT_EQ(RsaPublicKey::deserialize(wire), kp.public_key());
}

TEST(Rsa, ModulusHasRequestedSize) {
  Drbg rng = test_rng(21);
  EXPECT_EQ(RsaKeyPair::generate(rng, 1024).public_key().n.bit_length(), 1024u);
}

TEST(Rsa, SignaturesAreDeterministic) {
  // PKCS#1 v1.5 is deterministic: same key + message => same signature.
  Drbg rng = test_rng(22);
  const RsaKeyPair kp = RsaKeyPair::generate(rng, 512);
  EXPECT_EQ(kp.sign_pkcs1_sha256(to_bytes("m")),
            kp.sign_pkcs1_sha256(to_bytes("m")));
}

// --- DH ---

TEST(Dh, SharedSecretAgreement) {
  Drbg rng = test_rng(30);
  const DhKeyPair alice = DhKeyPair::generate(rng);
  const DhKeyPair bob = DhKeyPair::generate(rng);
  EXPECT_EQ(alice.shared_secret(bob.public_value()),
            bob.shared_secret(alice.public_value()));
}

TEST(Dh, DistinctEphemeralsDistinctSecrets) {
  Drbg rng = test_rng(31);
  const DhKeyPair a = DhKeyPair::generate(rng);
  const DhKeyPair b = DhKeyPair::generate(rng);
  const DhKeyPair c = DhKeyPair::generate(rng);
  EXPECT_NE(a.shared_secret(c.public_value()), b.shared_secret(c.public_value()));
}

TEST(Dh, PublicValueFixedWidth) {
  Drbg rng = test_rng(32);
  EXPECT_EQ(DhKeyPair::generate(rng).public_value().size(), 256u);
}

TEST(Dh, FromExponentMatchesGenerate) {
  // The secure server draws exponent bytes under its DRBG lease and runs
  // the modexp lock-free through from_exponent — the two constructions
  // must be the same key pair for the same bytes.
  Drbg draw = test_rng(36);
  const Bytes exponent = draw.generate(DhKeyPair::kExponentBytes);
  Drbg replay = test_rng(36);
  const DhKeyPair generated = DhKeyPair::generate(replay);
  const DhKeyPair rebuilt = DhKeyPair::from_exponent(exponent);
  EXPECT_EQ(generated.public_value(), rebuilt.public_value());

  Drbg other_rng = test_rng(37);
  const DhKeyPair peer = DhKeyPair::generate(other_rng);
  EXPECT_EQ(generated.shared_secret(peer.public_value()),
            rebuilt.shared_secret(peer.public_value()));
  EXPECT_THROW(DhKeyPair::from_exponent(Bytes(47, 1)), Error);
}

TEST(Dh, RejectsDegeneratePeerValues) {
  Drbg rng = test_rng(33);
  const DhKeyPair kp = DhKeyPair::generate(rng);
  EXPECT_THROW(kp.shared_secret(BigInt{0}.to_bytes_be(256)), Error);
  EXPECT_THROW(kp.shared_secret(BigInt{1}.to_bytes_be(256)), Error);
  const BigInt p = DhGroup::modp2048().p;
  EXPECT_THROW(kp.shared_secret((p - BigInt{1}).to_bytes_be(256)), Error);
  EXPECT_THROW(kp.shared_secret(p.to_bytes_be(256)), Error);
}

}  // namespace
}  // namespace sinclave::crypto
