// Unit tests for the SGX simulator: measurement log format, SigStruct,
// enclave lifecycle (ECREATE/EADD/EEXTEND/EINIT), reports, key derivation,
// and launch control.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "sgx/cpu.h"
#include "sgx/launch.h"
#include "sgx/measurement.h"
#include "sgx/sigstruct.h"

namespace sinclave::sgx {
namespace {

crypto::Drbg rng(std::uint64_t seed) {
  return crypto::Drbg::from_seed(seed, "sgx-tests");
}

Bytes random_page(std::uint64_t seed) {
  auto r = rng(seed);
  return r.generate(kPageSize);
}

// --- measurement log ---

TEST(MeasurementLog, EcreateMustBeFirst) {
  MeasurementLog log;
  EXPECT_THROW(log.eadd(0, SecInfo::reg_rw()), SgxFault);
  log.ecreate(1, 2 * kPageSize);
  EXPECT_THROW(log.ecreate(1, 2 * kPageSize), SgxFault);
}

TEST(MeasurementLog, RejectsMisalignedOffsets) {
  MeasurementLog log;
  log.ecreate(1, 2 * kPageSize);
  EXPECT_THROW(log.eadd(12, SecInfo::reg_rw()), SgxFault);
  const Bytes chunk(kExtendChunkSize, 0);
  EXPECT_THROW(log.eextend(100, chunk), SgxFault);
  EXPECT_THROW(log.eextend(0, Bytes(100, 0)), SgxFault);
}

TEST(MeasurementLog, DeterministicForSameOperations) {
  const Bytes page = random_page(1);
  auto build = [&] {
    MeasurementLog log;
    log.ecreate(1, 2 * kPageSize);
    log.add_measured_page(0, SecInfo::reg_rx(), page);
    return log.finalize();
  };
  EXPECT_EQ(build(), build());
}

TEST(MeasurementLog, SensitiveToEveryInput) {
  const Bytes page = random_page(2);
  auto base = [&](auto mutate) {
    MeasurementLog log;
    std::uint32_t ssa = 1;
    std::uint64_t size = 4 * kPageSize;
    std::uint64_t offset = kPageSize;
    SecInfo si = SecInfo::reg_rx();
    Bytes content = page;
    mutate(ssa, size, offset, si, content);
    log.ecreate(ssa, size);
    log.add_measured_page(offset, si, content);
    return log.finalize();
  };
  const Measurement reference =
      base([](auto&, auto&, auto&, auto&, auto&) {});
  EXPECT_NE(reference, base([](auto& ssa, auto&, auto&, auto&, auto&) { ssa = 2; }));
  EXPECT_NE(reference, base([](auto&, auto& size, auto&, auto&, auto&) {
              size += kPageSize;
            }));
  EXPECT_NE(reference, base([](auto&, auto&, auto& off, auto&, auto&) {
              off += kPageSize;
            }));
  EXPECT_NE(reference, base([](auto&, auto&, auto&, auto& si, auto&) {
              si = SecInfo::reg_rw();
            }));
  EXPECT_NE(reference, base([](auto&, auto&, auto&, auto&, auto& content) {
              content[4095] ^= 1;
            }));
}

TEST(MeasurementLog, FastAndInterruptibleAgree) {
  const Bytes page = random_page(3);
  MeasurementLog slow;
  FastMeasurementLog fast;
  slow.ecreate(1, 3 * kPageSize);
  fast.ecreate(1, 3 * kPageSize);
  slow.add_measured_page(0, SecInfo::reg_rx(), page);
  fast.add_measured_page(0, SecInfo::reg_rx(), page);
  slow.add_measured_page(kPageSize, SecInfo::reg_rw(), Bytes(kPageSize, 0));
  fast.add_measured_page(kPageSize, SecInfo::reg_rw(), Bytes(kPageSize, 0));
  EXPECT_EQ(slow.finalize(), fast.finalize());
}

TEST(MeasurementLog, FinalizeIsRepeatableAndNonDestructive) {
  MeasurementLog log;
  log.ecreate(1, 2 * kPageSize);
  const Measurement a = log.finalize();
  const Measurement b = log.finalize();
  EXPECT_EQ(a, b);
  log.add_measured_page(0, SecInfo::reg_rw(), Bytes(kPageSize, 0));
  EXPECT_NE(log.finalize(), a);
}

TEST(MeasurementLog, ResumeEqualsContinuous) {
  // The paper's core primitive at the measurement-log level: suspend after
  // the second page, resume elsewhere, measure a third page — identical to
  // a continuous log.
  const Bytes p0 = random_page(4), p1 = random_page(5), p2 = random_page(6);

  MeasurementLog continuous;
  continuous.ecreate(1, 3 * kPageSize);
  continuous.add_measured_page(0, SecInfo::reg_rx(), p0);
  continuous.add_measured_page(kPageSize, SecInfo::reg_rw(), p1);
  continuous.add_measured_page(2 * kPageSize, SecInfo::reg_rw(), p2);

  MeasurementLog first;
  first.ecreate(1, 3 * kPageSize);
  first.add_measured_page(0, SecInfo::reg_rx(), p0);
  first.add_measured_page(kPageSize, SecInfo::reg_rw(), p1);
  MeasurementLog second = MeasurementLog::resume(first.export_state());
  second.add_measured_page(2 * kPageSize, SecInfo::reg_rw(), p2);

  EXPECT_EQ(second.finalize(), continuous.finalize());
}

TEST(MeasurementLog, EveryOperationIsBlockAligned) {
  // Invariant the whole design rests on: after any operation the hash sits
  // on a 64-byte boundary and is exportable.
  MeasurementLog log;
  log.ecreate(1, 2 * kPageSize);
  EXPECT_NO_THROW(log.export_state());
  log.eadd(0, SecInfo::reg_rw());
  EXPECT_NO_THROW(log.export_state());
  log.eextend(0, Bytes(kExtendChunkSize, 7));
  EXPECT_NO_THROW(log.export_state());
}

// --- SigStruct ---

TEST(SigStruct, SignVerifyRoundTrip) {
  auto r = rng(10);
  const auto key = crypto::RsaKeyPair::generate(r, 1024);
  SigStruct sig;
  sig.enclave_hash.data[0] = 0xaa;
  sig.isv_prod_id = 7;
  sig.sign(key);
  EXPECT_TRUE(sig.signature_valid());
}

TEST(SigStruct, TamperedFieldInvalidatesSignature) {
  auto r = rng(11);
  const auto key = crypto::RsaKeyPair::generate(r, 1024);
  SigStruct sig;
  sig.sign(key);
  sig.isv_svn = 9;
  EXPECT_FALSE(sig.signature_valid());
}

TEST(SigStruct, SerializationRoundTrip) {
  auto r = rng(12);
  const auto key = crypto::RsaKeyPair::generate(r, 1024);
  SigStruct sig;
  sig.enclave_hash.data[31] = 1;
  sig.attributes.flags |= Attributes::kDebug;
  sig.debug_allowed = true;
  sig.date = 20231105;
  sig.sign(key);
  EXPECT_EQ(SigStruct::deserialize(sig.serialize()), sig);
}

TEST(SigStruct, MrSignerIsKeyHash) {
  auto r = rng(13);
  const auto k1 = crypto::RsaKeyPair::generate(r, 1024);
  const auto k2 = crypto::RsaKeyPair::generate(r, 1024);
  SigStruct a, b;
  a.sign(k1);
  b.sign(k2);
  EXPECT_NE(a.mr_signer(), b.mr_signer());
  a.sign(k2);
  EXPECT_EQ(a.mr_signer(), b.mr_signer());
}

// --- CPU lifecycle ---

class CpuTest : public ::testing::Test {
 protected:
  SgxCpu cpu_{SgxCpu::Config{42, {}, true}};
  crypto::Drbg rng_ = rng(20);
  crypto::RsaKeyPair signer_ = crypto::RsaKeyPair::generate(rng_, 1024);

  SgxCpu::EnclaveId build_simple(const Bytes& page,
                                 Attributes attrs = Attributes{}) {
    const auto id = cpu_.ecreate(2 * kPageSize, attrs);
    cpu_.add_measured_page(id, 0, page, SecInfo::reg_rx());
    cpu_.add_measured_page(id, kPageSize, ByteView{}, SecInfo::reg_rw());
    return id;
  }

  SigStruct sigstruct_for(SgxCpu::EnclaveId id,
                          Attributes attrs = Attributes{}) {
    SigStruct sig;
    sig.enclave_hash = cpu_.current_measurement(id);
    sig.attributes = attrs;
    sig.attribute_mask = Attributes{~std::uint64_t{Attributes::kInit},
                                    ~std::uint64_t{0}};
    sig.debug_allowed = attrs.debug();
    sig.sign(signer_);
    return sig;
  }
};

TEST_F(CpuTest, FullLifecycleInitializes) {
  const auto id = build_simple(random_page(21));
  EXPECT_FALSE(cpu_.initialized(id));
  EXPECT_EQ(cpu_.einit(id, sigstruct_for(id)), Verdict::kOk);
  EXPECT_TRUE(cpu_.initialized(id));
  EXPECT_EQ(cpu_.identity(id).mr_enclave, cpu_.current_measurement(id));
  EXPECT_TRUE(cpu_.identity(id).attributes.flags & Attributes::kInit);
}

TEST_F(CpuTest, EcreateRejectsBadSizes) {
  EXPECT_THROW(cpu_.ecreate(0, Attributes{}), SgxFault);
  EXPECT_THROW(cpu_.ecreate(kPageSize + 1, Attributes{}), SgxFault);
  Attributes preset_init;
  preset_init.flags |= Attributes::kInit;
  EXPECT_THROW(cpu_.ecreate(kPageSize, preset_init), SgxFault);
}

TEST_F(CpuTest, EaddValidatesPages) {
  const auto id = cpu_.ecreate(2 * kPageSize, Attributes{});
  EXPECT_THROW(cpu_.eadd(id, 3 * kPageSize, ByteView{}, SecInfo::reg_rw()),
               SgxFault);
  EXPECT_THROW(cpu_.eadd(id, 100, ByteView{}, SecInfo::reg_rw()), SgxFault);
  EXPECT_THROW(cpu_.eadd(id, 0, Bytes(10, 0), SecInfo::reg_rw()), SgxFault);
  cpu_.eadd(id, 0, ByteView{}, SecInfo::reg_rw());
  EXPECT_THROW(cpu_.eadd(id, 0, ByteView{}, SecInfo::reg_rw()), SgxFault);
}

TEST_F(CpuTest, EextendRequiresMappedPage) {
  const auto id = cpu_.ecreate(2 * kPageSize, Attributes{});
  EXPECT_THROW(cpu_.eextend(id, 0), SgxFault);
}

TEST_F(CpuTest, EinitRejectsMeasurementMismatch) {
  const auto id = build_simple(random_page(22));
  SigStruct sig = sigstruct_for(id);
  sig.enclave_hash.data[0] ^= 1;
  sig.sign(signer_);
  EXPECT_EQ(cpu_.einit(id, sig), Verdict::kMeasurementMismatch);
}

TEST_F(CpuTest, EinitRejectsBadSignature) {
  const auto id = build_simple(random_page(23));
  SigStruct sig = sigstruct_for(id);
  sig.signature[7] ^= 1;
  EXPECT_EQ(cpu_.einit(id, sig), Verdict::kBadSignature);
}

TEST_F(CpuTest, EinitRejectsAttributeMismatch) {
  Attributes debug_attrs;
  debug_attrs.flags |= Attributes::kDebug;
  const auto id = build_simple(random_page(24), debug_attrs);
  // SigStruct expects non-debug, mask covers the debug bit.
  SigStruct sig = sigstruct_for(id, Attributes{});
  EXPECT_EQ(cpu_.einit(id, sig), Verdict::kAttributesMismatch);
}

TEST_F(CpuTest, EinitRejectsDebugWithoutPermission) {
  Attributes debug_attrs;
  debug_attrs.flags |= Attributes::kDebug;
  const auto id = build_simple(random_page(25), debug_attrs);
  SigStruct sig = sigstruct_for(id, debug_attrs);
  sig.debug_allowed = false;
  sig.sign(signer_);
  EXPECT_EQ(cpu_.einit(id, sig), Verdict::kPolicyViolation);
}

TEST_F(CpuTest, ConstructionLockedAfterInit) {
  const auto id = build_simple(random_page(26));
  ASSERT_EQ(cpu_.einit(id, sigstruct_for(id)), Verdict::kOk);
  EXPECT_THROW(cpu_.eadd(id, 0, ByteView{}, SecInfo::reg_rw()), SgxFault);
  EXPECT_THROW(cpu_.eextend(id, 0), SgxFault);
  EXPECT_THROW(cpu_.einit(id, sigstruct_for(id)), SgxFault);
}

TEST_F(CpuTest, ZeroPagesShareStorageButMeasure) {
  // Two enclaves, one with explicit zero page, one with implicit.
  const auto a = cpu_.ecreate(kPageSize, Attributes{});
  cpu_.add_measured_page(a, 0, Bytes(kPageSize, 0), SecInfo::reg_rw());
  const auto b = cpu_.ecreate(kPageSize, Attributes{});
  cpu_.add_measured_page(b, 0, ByteView{}, SecInfo::reg_rw());
  EXPECT_EQ(cpu_.current_measurement(a), cpu_.current_measurement(b));
}

TEST_F(CpuTest, ReportGenerationAndVerification) {
  const auto prover = build_simple(random_page(27));
  ASSERT_EQ(cpu_.einit(prover, sigstruct_for(prover)), Verdict::kOk);
  const auto target = build_simple(random_page(28));
  ASSERT_EQ(cpu_.einit(target, sigstruct_for(target)), Verdict::kOk);

  ReportData data;
  data.data[0] = 0x42;
  const TargetInfo ti{cpu_.identity(target).mr_enclave,
                      cpu_.identity(target).attributes};
  const Report report = cpu_.ereport(prover, ti, data);

  EXPECT_EQ(report.identity.mr_enclave, cpu_.identity(prover).mr_enclave);
  EXPECT_EQ(report.report_data, data);
  EXPECT_TRUE(cpu_.verify_report(target, report));
  // The prover itself is not the target: its report key differs.
  EXPECT_FALSE(cpu_.verify_report(prover, report));
}

TEST_F(CpuTest, TamperedReportFailsVerification) {
  const auto prover = build_simple(random_page(29));
  ASSERT_EQ(cpu_.einit(prover, sigstruct_for(prover)), Verdict::kOk);
  const auto target = build_simple(random_page(30));
  ASSERT_EQ(cpu_.einit(target, sigstruct_for(target)), Verdict::kOk);

  const TargetInfo ti{cpu_.identity(target).mr_enclave,
                      cpu_.identity(target).attributes};
  Report report = cpu_.ereport(prover, ti, ReportData{});
  report.report_data.data[0] ^= 1;  // adversary rewrites REPORTDATA
  EXPECT_FALSE(cpu_.verify_report(target, report));
}

TEST_F(CpuTest, ReportsDoNotTransferAcrossPlatforms) {
  // A report MACed on one CPU must not verify on another (different fuses).
  SgxCpu other{SgxCpu::Config{99, {}, true}};
  const auto prover = build_simple(random_page(31));
  ASSERT_EQ(cpu_.einit(prover, sigstruct_for(prover)), Verdict::kOk);

  // Same enclave constructed on the other CPU.
  const auto other_id = other.ecreate(2 * kPageSize, Attributes{});
  other.add_measured_page(other_id, 0, random_page(31), SecInfo::reg_rx());
  other.add_measured_page(other_id, kPageSize, ByteView{}, SecInfo::reg_rw());
  SigStruct sig;
  sig.enclave_hash = other.current_measurement(other_id);
  sig.attribute_mask =
      Attributes{~std::uint64_t{Attributes::kInit}, ~std::uint64_t{0}};
  sig.sign(signer_);
  ASSERT_EQ(other.einit(other_id, sig), Verdict::kOk);

  const TargetInfo ti{other.identity(other_id).mr_enclave,
                      other.identity(other_id).attributes};
  const Report report = cpu_.ereport(prover, ti, ReportData{});
  EXPECT_FALSE(other.verify_report(other_id, report));
}

TEST_F(CpuTest, SealKeysFollowPolicy) {
  const Bytes page = random_page(32);
  const auto a = build_simple(page);
  ASSERT_EQ(cpu_.einit(a, sigstruct_for(a)), Verdict::kOk);
  const auto b = build_simple(page);  // identical enclave, same signer
  ASSERT_EQ(cpu_.einit(b, sigstruct_for(b)), Verdict::kOk);
  const auto c = build_simple(random_page(33));  // different code
  ASSERT_EQ(cpu_.einit(c, sigstruct_for(c)), Verdict::kOk);

  EXPECT_EQ(cpu_.egetkey_seal(a, SealPolicy::kMrEnclave),
            cpu_.egetkey_seal(b, SealPolicy::kMrEnclave));
  EXPECT_NE(cpu_.egetkey_seal(a, SealPolicy::kMrEnclave),
            cpu_.egetkey_seal(c, SealPolicy::kMrEnclave));
  // Signer policy: all three share the signer -> same key.
  EXPECT_EQ(cpu_.egetkey_seal(a, SealPolicy::kMrSigner),
            cpu_.egetkey_seal(c, SealPolicy::kMrSigner));
}

TEST_F(CpuTest, LaunchKeyRestrictedToLaunchEnclaves) {
  const auto id = build_simple(random_page(34));
  ASSERT_EQ(cpu_.einit(id, sigstruct_for(id)), Verdict::kOk);
  EXPECT_THROW(cpu_.egetkey_launch(id), SgxFault);
}

TEST_F(CpuTest, PreInitApisFault) {
  const auto id = build_simple(random_page(35));
  EXPECT_THROW(cpu_.identity(id), SgxFault);
  EXPECT_THROW(cpu_.ereport(id, TargetInfo{}, ReportData{}), SgxFault);
  EXPECT_THROW(cpu_.egetkey_seal(id, SealPolicy::kMrEnclave), SgxFault);
}

TEST_F(CpuTest, EremoveDestroysEnclave) {
  const auto id = build_simple(random_page(36));
  cpu_.eremove(id);
  EXPECT_THROW(cpu_.initialized(id), SgxFault);
  EXPECT_THROW(cpu_.eremove(id), SgxFault);
}

// --- Launch control (pre-FLC) ---

class LaunchControlTest : public ::testing::Test {
 protected:
  SgxCpu cpu_{SgxCpu::Config{7, {}, /*flexible_launch_control=*/false}};
  crypto::Drbg rng_ = rng(40);
  crypto::RsaKeyPair signer_ = crypto::RsaKeyPair::generate(rng_, 1024);

  SgxCpu::EnclaveId build(Attributes attrs) {
    const auto id = cpu_.ecreate(kPageSize, attrs);
    cpu_.add_measured_page(id, 0, ByteView{}, SecInfo::reg_rw());
    return id;
  }

  SigStruct sigstruct_for(SgxCpu::EnclaveId id, Attributes attrs) {
    SigStruct sig;
    sig.enclave_hash = cpu_.current_measurement(id);
    sig.attributes = attrs;
    sig.attribute_mask = Attributes{~std::uint64_t{Attributes::kInit},
                                    ~std::uint64_t{0}};
    sig.debug_allowed = attrs.debug();
    sig.sign(signer_);
    return sig;
  }
};

TEST_F(LaunchControlTest, ProductionNeedsToken) {
  const auto id = build(Attributes{});
  EXPECT_EQ(cpu_.einit(id, sigstruct_for(id, Attributes{})),
            Verdict::kPolicyViolation);
}

TEST_F(LaunchControlTest, WhitelistedSignerGetsToken) {
  const auto id = build(Attributes{});
  const SigStruct sig = sigstruct_for(id, Attributes{});

  LaunchAuthority authority(cpu_);
  authority.whitelist_signer(sig.mr_signer());
  const auto token = authority.request_token(
      cpu_.current_measurement(id), sig.mr_signer(), Attributes{});
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(cpu_.einit(id, sig, token), Verdict::kOk);
}

TEST_F(LaunchControlTest, NonWhitelistedSignerDenied) {
  LaunchAuthority authority(cpu_);
  const auto token =
      authority.request_token(Measurement{}, SignerId{}, Attributes{});
  EXPECT_FALSE(token.has_value());
}

TEST_F(LaunchControlTest, DebugEnclavesAlwaysLaunch) {
  Attributes debug_attrs;
  debug_attrs.flags |= Attributes::kDebug;
  const auto id = build(debug_attrs);
  EXPECT_EQ(cpu_.einit(id, sigstruct_for(id, debug_attrs)), Verdict::kOk);
}

TEST_F(LaunchControlTest, ForgedTokenRejected) {
  const auto id = build(Attributes{});
  const SigStruct sig = sigstruct_for(id, Attributes{});
  EinitToken forged;
  forged.mr_enclave = cpu_.current_measurement(id);
  forged.mr_signer = sig.mr_signer();
  forged.attributes = Attributes{};
  // MAC left zero: attacker has no launch key.
  EXPECT_EQ(cpu_.einit(id, sig, forged), Verdict::kBadMac);
}

TEST_F(LaunchControlTest, TokenForDifferentEnclaveRejected) {
  const auto id = build(Attributes{});
  const SigStruct sig = sigstruct_for(id, Attributes{});
  LaunchAuthority authority(cpu_);
  authority.whitelist_signer(sig.mr_signer());
  Measurement other;
  other.data[0] = 0xee;
  const auto token =
      authority.request_token(other, sig.mr_signer(), Attributes{});
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(cpu_.einit(id, sig, token), Verdict::kPolicyViolation);
}

// --- report serialization ---

TEST(Report, SerializationRoundTrip) {
  Report r;
  r.cpu_svn.data[3] = 9;
  r.identity.mr_enclave.data[0] = 1;
  r.identity.mr_signer.data[1] = 2;
  r.identity.attributes.flags = 0x55;
  r.identity.isv_prod_id = 3;
  r.identity.isv_svn = 4;
  r.report_data.data[63] = 0xff;
  r.key_id.data[5] = 6;
  r.mac.data[15] = 7;
  EXPECT_EQ(Report::deserialize(r.serialize()), r);
}

TEST(TargetInfo, SerializationRoundTrip) {
  TargetInfo t;
  t.mr_enclave.data[8] = 0x77;
  t.attributes.xfrm = 0x1f;
  EXPECT_EQ(TargetInfo::deserialize(t.serialize()), t);
}

TEST(EinitToken, SerializationRoundTrip) {
  EinitToken t;
  t.mr_enclave.data[0] = 5;
  t.debug = true;
  t.mac.data[0] = 9;
  EXPECT_EQ(EinitToken::deserialize(t.serialize()), t);
}

}  // namespace
}  // namespace sinclave::sgx
