// Differential known-answer tests: every generated vector (produced by an
// independent reference implementation — CPython's hashlib/hmac; see
// generated_kat.inc) must match all of this repository's implementations:
// the interruptible SHA-256, the optimized SHA-256 (including its SHA-NI
// path when the CPU has it), and HMAC.
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_fast.h"

#include "generated_kat.inc"

namespace sinclave::crypto {
namespace {

class GeneratedSha : public ::testing::TestWithParam<GeneratedShaVector> {};

TEST_P(GeneratedSha, InterruptibleMatchesReference) {
  const auto& v = GetParam();
  EXPECT_EQ(sha256(from_hex(v.msg_hex)).hex(), v.digest_hex);
}

TEST_P(GeneratedSha, FastMatchesReference) {
  const auto& v = GetParam();
  EXPECT_EQ(sha256_fast(from_hex(v.msg_hex)).hex(), v.digest_hex);
}

TEST_P(GeneratedSha, ResumedMidwayMatchesReference) {
  // Split at the largest block boundary, export/resume, finish.
  const auto& v = GetParam();
  const Bytes msg = from_hex(v.msg_hex);
  const std::size_t split = (msg.size() / 2) & ~std::size_t{63};
  Sha256 first;
  first.update(ByteView{msg.data(), split});
  Sha256 second = Sha256::resume(first.export_state());
  second.update(ByteView{msg.data() + split, msg.size() - split});
  EXPECT_EQ(second.finalize().hex(), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(Corpus, GeneratedSha,
                         ::testing::ValuesIn(kGeneratedShaVectors));

class GeneratedHmac : public ::testing::TestWithParam<GeneratedHmacVector> {};

TEST_P(GeneratedHmac, MatchesReference) {
  const auto& v = GetParam();
  EXPECT_EQ(hmac_sha256(from_hex(v.key_hex), from_hex(v.msg_hex)).hex(),
            v.mac_hex);
}

INSTANTIATE_TEST_SUITE_P(Corpus, GeneratedHmac,
                         ::testing::ValuesIn(kGeneratedHmacVectors));

}  // namespace
}  // namespace sinclave::crypto
