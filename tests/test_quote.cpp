// Tests for the quoting enclave and the attestation service — the local
// attestation -> quote -> remote verification chain of Fig. 3.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "quote/attestation_service.h"
#include "quote/quoting_enclave.h"
#include "sgx/cpu.h"

namespace sinclave::quote {
namespace {

class QuoteTest : public ::testing::Test {
 protected:
  QuoteTest() : qe_(cpu_, qe_rng_, 1024) {
    attestation_.register_platform(qe_.attestation_key());
    signer_ = std::make_unique<crypto::RsaKeyPair>(
        crypto::RsaKeyPair::generate(app_rng_, 1024));
  }

  sgx::SgxCpu::EnclaveId make_app_enclave(std::uint8_t fill) {
    const auto id = cpu_.ecreate(sgx::kPageSize, sgx::Attributes{});
    cpu_.add_measured_page(id, 0, Bytes(sgx::kPageSize, fill),
                           sgx::SecInfo::reg_rx());
    sgx::SigStruct sig;
    sig.enclave_hash = cpu_.current_measurement(id);
    sig.attribute_mask = sgx::Attributes{
        ~std::uint64_t{sgx::Attributes::kInit}, ~std::uint64_t{0}};
    sig.sign(*signer_);
    if (cpu_.einit(id, sig) != Verdict::kOk)
      throw Error("test enclave failed to init");
    return id;
  }

  sgx::Report app_report(sgx::SgxCpu::EnclaveId id,
                         const sgx::ReportData& data) {
    return cpu_.ereport(id, qe_.target_info(), data);
  }

  sgx::SgxCpu cpu_{sgx::SgxCpu::Config{1, {}, true}};
  crypto::Drbg qe_rng_ = crypto::Drbg::from_seed(2, "qe");
  crypto::Drbg app_rng_ = crypto::Drbg::from_seed(3, "app");
  QuotingEnclave qe_;
  AttestationService attestation_;
  std::unique_ptr<crypto::RsaKeyPair> signer_;
};

TEST_F(QuoteTest, EndToEndQuoteVerifies) {
  const auto id = make_app_enclave(0x11);
  sgx::ReportData data;
  data.data[0] = 0xab;
  const auto quote = qe_.generate_quote(app_report(id, data));
  ASSERT_TRUE(quote.has_value());

  const QuoteVerification v = attestation_.verify(*quote);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.identity->mr_enclave, cpu_.identity(id).mr_enclave);
  EXPECT_EQ(v.report_data->data[0], 0xab);
}

TEST_F(QuoteTest, QuoteStripsPlatformMac) {
  const auto id = make_app_enclave(0x12);
  const auto quote = qe_.generate_quote(app_report(id, sgx::ReportData{}));
  ASSERT_TRUE(quote.has_value());
  EXPECT_TRUE(quote->report.mac.is_zero());
}

TEST_F(QuoteTest, ForgedReportRejectedByQe) {
  // A report fabricated without the hardware MAC key must not quote: this
  // is why the paper's adversary needs a report *server* inside a real
  // enclave instead of fabricating reports directly.
  sgx::Report forged;
  forged.identity.mr_enclave.data[0] = 0x55;
  EXPECT_FALSE(qe_.generate_quote(forged).has_value());
}

TEST_F(QuoteTest, TamperedReportRejectedByQe) {
  const auto id = make_app_enclave(0x13);
  sgx::Report report = app_report(id, sgx::ReportData{});
  report.identity.mr_enclave.data[0] ^= 1;  // claim another enclave
  EXPECT_FALSE(qe_.generate_quote(report).has_value());
}

TEST_F(QuoteTest, TamperedQuoteRejectedByService) {
  const auto id = make_app_enclave(0x14);
  auto quote = qe_.generate_quote(app_report(id, sgx::ReportData{}));
  ASSERT_TRUE(quote.has_value());
  quote->report.report_data.data[0] ^= 1;  // rewrite bound channel key
  EXPECT_EQ(attestation_.verify(*quote).verdict, Verdict::kBadSignature);
}

TEST_F(QuoteTest, UnknownPlatformRejected) {
  const auto id = make_app_enclave(0x15);
  const auto quote = qe_.generate_quote(app_report(id, sgx::ReportData{}));
  ASSERT_TRUE(quote.has_value());

  AttestationService empty;
  EXPECT_EQ(empty.verify(*quote).verdict, Verdict::kSignerMismatch);
}

TEST_F(QuoteTest, RevokedPlatformRejected) {
  const auto id = make_app_enclave(0x16);
  const auto quote = qe_.generate_quote(app_report(id, sgx::ReportData{}));
  ASSERT_TRUE(quote.has_value());

  attestation_.revoke_platform(qe_.qe_id());
  EXPECT_EQ(attestation_.verify(*quote).verdict, Verdict::kSignerMismatch);
  EXPECT_EQ(attestation_.platform_count(), 0u);
}

TEST_F(QuoteTest, QuoteSerializationRoundTrip) {
  const auto id = make_app_enclave(0x17);
  const auto quote = qe_.generate_quote(app_report(id, sgx::ReportData{}));
  ASSERT_TRUE(quote.has_value());
  EXPECT_EQ(Quote::deserialize(quote->serialize()), *quote);
  // And a deserialized quote still verifies.
  EXPECT_TRUE(
      attestation_.verify(Quote::deserialize(quote->serialize())).ok());
}

TEST_F(QuoteTest, CrossPlatformQuoteDoesNotVerify) {
  // Quote from an unregistered second platform's QE.
  sgx::SgxCpu cpu2{sgx::SgxCpu::Config{77, {}, true}};
  crypto::Drbg rng2 = crypto::Drbg::from_seed(78, "qe2");
  QuotingEnclave qe2(cpu2, rng2, 1024);

  const auto id = cpu2.ecreate(sgx::kPageSize, sgx::Attributes{});
  cpu2.add_measured_page(id, 0, ByteView{}, sgx::SecInfo::reg_rw());
  sgx::SigStruct sig;
  sig.enclave_hash = cpu2.current_measurement(id);
  sig.attribute_mask = sgx::Attributes{
      ~std::uint64_t{sgx::Attributes::kInit}, ~std::uint64_t{0}};
  sig.sign(*signer_);
  ASSERT_EQ(cpu2.einit(id, sig), Verdict::kOk);

  const auto quote = qe2.generate_quote(
      cpu2.ereport(id, qe2.target_info(), sgx::ReportData{}));
  ASSERT_TRUE(quote.has_value());
  // attestation_ only trusts platform 1.
  EXPECT_FALSE(attestation_.verify(*quote).ok());
}

}  // namespace
}  // namespace sinclave::quote
