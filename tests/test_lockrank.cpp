// Tests for the debug lock-rank deadlock detector (common/mutex.h).
//
// The detector aborts the process on a violation, so the violating cases
// are gtest death tests: the statement runs in a child process and the
// parent asserts it died with the diagnostic on stderr. The suite forces
// the detector on via lockrank::set_enabled(true) so it works identically
// in Release (tier-1) and Debug builds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/mutex.h"

namespace sinclave {
namespace {

// Threads are spawned below, so the forking "fast" death-test style would
// be unsound; threadsafe re-executes the test body in a fresh child.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    lockrank::set_enabled(true);
  }
  void TearDown() override { lockrank::set_enabled(true); }

  // Ranks only matter relative to each other; these mirror a real chain.
  Mutex outer_{LockRank::kCasSigner, "test.outer"};       // rank 60
  Mutex inner_{LockRank::kCryptoRsaCtx, "test.inner"};    // rank 40
  Mutex inner2_{LockRank::kCryptoDrbg, "test.inner2"};    // rank 38
  Mutex peer_{LockRank::kCryptoRsaCtx, "test.peer"};      // rank 40 (equal)
};

TEST_F(LockRankTest, CorrectOrderPasses) {
  EXPECT_EQ(lockrank::held_count(), 0u);
  {
    MutexLock a(outer_);
    EXPECT_EQ(lockrank::held_count(), 1u);
    {
      MutexLock b(inner_);
      MutexLock c(inner2_);
      EXPECT_EQ(lockrank::held_count(), 3u);
    }
    EXPECT_EQ(lockrank::held_count(), 1u);
  }
  EXPECT_EQ(lockrank::held_count(), 0u);
}

TEST_F(LockRankTest, RankInversionDies) {
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        MutexLock a(inner_);
        MutexLock b(outer_);  // 60 while holding 40: inversion
      },
      "rank inversion");
}

TEST_F(LockRankTest, EqualRankDies) {
  // Two locks of the same rank must never nest: each side of an AB/BA
  // deadlock is individually "equal rank under equal rank".
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        MutexLock a(inner_);
        MutexLock b(peer_);
      },
      "rank inversion");
}

TEST_F(LockRankTest, RecursiveAcquisitionDies) {
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        outer_.lock();
        outer_.lock();
      },
      "recursive acquisition");
}

TEST_F(LockRankTest, SuccessfulTryLockIsCheckedStrictly) {
  // An out-of-order try_lock that SUCCEEDS still establishes a deadlock-
  // capable order against the blocking path, so it dies like lock().
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        MutexLock a(inner_);
        (void)outer_.try_lock();
      },
      "rank inversion");
}

TEST_F(LockRankTest, FailedTryLockLeavesStackUntouched) {
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    MutexLock lock(outer_);
    locked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!locked.load()) std::this_thread::yield();
  EXPECT_FALSE(outer_.try_lock());
  EXPECT_EQ(lockrank::held_count(), 0u);
  release.store(true);
  holder.join();
}

TEST_F(LockRankTest, HeldStackIsPerThread) {
  // This thread parks on an inner (low-rank) lock; another thread may
  // still run a full outer->inner chain — ranks are per thread, not
  // global state.
  MutexLock low(inner2_);
  std::thread other([&] {
    EXPECT_EQ(lockrank::held_count(), 0u);
    MutexLock a(outer_);
    MutexLock b(inner_);
    EXPECT_EQ(lockrank::held_count(), 2u);
  });
  other.join();
  EXPECT_EQ(lockrank::held_count(), 1u);
}

TEST_F(LockRankTest, CondVarWaitReleasesAndReacquiresRank) {
  CondVar cv;
  Mutex mu(LockRank::kThreadPool, "test.cv");
  bool flag = false;
  std::atomic<bool> waiting{false};

  std::thread waiter([&] {
    MutexLock lock(mu);
    EXPECT_EQ(lockrank::held_count(), 1u);
    waiting.store(true);
    while (!flag) cv.wait(mu);
    // Reacquired through the wait: the rank stack must be intact.
    EXPECT_EQ(lockrank::held_count(), 1u);
  });

  while (!waiting.load()) std::this_thread::yield();
  {
    // Acquiring mu here proves the waiter released it inside wait() —
    // and that its rank entry was popped (this thread's stack is its own,
    // but a still-held mu would simply deadlock this lock).
    MutexLock lock(mu);
    flag = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(lockrank::held_count(), 0u);
}

TEST_F(LockRankTest, SharedMutexFollowsSameRankRules) {
  SharedMutex db(LockRank::kCasPolicyDb, "test.db");
  {
    MutexLock a(outer_);
    ReaderLock r(db);  // 56 under 60: fine
    EXPECT_EQ(lockrank::held_count(), 2u);
  }
  {
    WriterLock w(db);
    MutexLock b(inner_);  // 40 under 56: fine
  }
  EXPECT_EQ(lockrank::held_count(), 0u);
}

TEST_F(LockRankTest, SharedReaderAboveHigherRankDies) {
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        SharedMutex db(LockRank::kCasPolicyDb, "test.db");
        MutexLock a(inner_);  // 40
        ReaderLock r(db);     // 56 over 40: inversion, reader or not
      },
      "rank inversion");
}

TEST_F(LockRankTest, SharedReacquisitionDies) {
  // reader -> (queued writer) -> same-thread reader deadlocks on a real
  // shared_mutex; the detector refuses the reacquisition outright.
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        SharedMutex db(LockRank::kCasPolicyDb, "test.db");
        db.lock_shared();
        db.lock_shared();
      },
      "recursive acquisition");
}

TEST_F(LockRankTest, AssertNoneHeldPassesWhenFree) {
  lockrank::assert_none_held("test section");  // must not abort
}

TEST_F(LockRankTest, AssertNoneHeldDiesUnderAnyLock) {
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        MutexLock a(inner2_);
        lockrank::assert_none_held("handshake crypto");
      },
      "must run with no locks held");
}

TEST_F(LockRankTest, DisabledDetectorIgnoresViolations) {
  lockrank::set_enabled(false);
  EXPECT_FALSE(lockrank::enabled());
  // The same shapes that die above run silently with the detector off
  // (different mutexes, so no real deadlock — only the *order* is wrong).
  inner_.lock();
  outer_.lock();
  outer_.unlock();
  inner_.unlock();
  lockrank::set_enabled(true);
  EXPECT_TRUE(lockrank::enabled());
  EXPECT_EQ(lockrank::held_count(), 0u);
  // And a release of a lock taken while disabled is silently ignored.
  lockrank::set_enabled(false);
  outer_.lock();
  lockrank::set_enabled(true);
  outer_.unlock();
  EXPECT_EQ(lockrank::held_count(), 0u);
}

TEST_F(LockRankTest, ContendedLockCountsCollisions) {
  std::atomic<std::uint64_t> collisions{0};
  {
    ContendedMutexLock uncontended(outer_, collisions);
    EXPECT_EQ(collisions.load(), 0u);
  }

  std::atomic<bool> locked{false};
  std::thread holder([&] {
    MutexLock lock(outer_);
    locked.store(true);
    // Hold long enough that the main thread's try_lock below runs while
    // we still own the lock (it spins on `locked`, so its attempt lands
    // microseconds in — far inside this window).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  while (!locked.load()) std::this_thread::yield();
  {
    ContendedMutexLock lock(outer_, collisions);
    EXPECT_EQ(collisions.load(), 1u);
  }
  holder.join();
}

}  // namespace
}  // namespace sinclave
