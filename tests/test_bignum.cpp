// Unit + property tests for the big-integer substrate.
#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"  // primes::generate_prime for boundary tests

namespace sinclave::crypto {
namespace {

BigInt rand_bigint(Drbg& rng, std::size_t bytes) {
  return BigInt::from_bytes_be(rng.generate(bytes));
}

TEST(BigInt, ZeroProperties) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z, BigInt{0});
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigInt, ByteRoundTrip) {
  const Bytes be = from_hex("0102030405060708090a0b0c0d0e0f10");
  const BigInt v = BigInt::from_bytes_be(be);
  EXPECT_EQ(v.to_bytes_be(), be);
  EXPECT_EQ(v.to_hex(), "102030405060708090a0b0c0d0e0f10");
}

TEST(BigInt, LeadingZerosIgnoredOnImport) {
  EXPECT_EQ(BigInt::from_bytes_be(from_hex("000000ff")), BigInt{255});
}

TEST(BigInt, PaddedExport) {
  const BigInt v{0xabcd};
  EXPECT_EQ(to_hex(v.to_bytes_be(4)), "0000abcd");
}

TEST(BigInt, BitAccess) {
  const BigInt v{0b1010};
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 4u);
}

TEST(BigInt, AddSubInverse) {
  Drbg rng = Drbg::from_seed(1, "addsub");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = rand_bigint(rng, 40);
    const BigInt b = rand_bigint(rng, 36);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST(BigInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigInt{1} - BigInt{2}, Error);
}

TEST(BigInt, AdditionCarryChain) {
  // 2^128 - 1 + 1 == 2^128
  const BigInt max = BigInt::from_hex(
      "ffffffffffffffffffffffffffffffff");
  const BigInt sum = max + BigInt{1};
  EXPECT_EQ(sum.to_hex(), "100000000000000000000000000000000");
}

TEST(BigInt, MulDistributes) {
  Drbg rng = Drbg::from_seed(2, "mul");
  for (int i = 0; i < 30; ++i) {
    const BigInt a = rand_bigint(rng, 24);
    const BigInt b = rand_bigint(rng, 24);
    const BigInt c = rand_bigint(rng, 24);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigInt, MulByZeroAndOne) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe1234");
  EXPECT_TRUE((a * BigInt{}).is_zero());
  EXPECT_EQ(a * BigInt{1}, a);
}

TEST(BigInt, ShiftsAreMulDivByPowersOfTwo) {
  Drbg rng = Drbg::from_seed(3, "shift");
  for (std::size_t s : {1u, 13u, 64u, 65u, 130u}) {
    const BigInt a = rand_bigint(rng, 30);
    EXPECT_EQ(a << s, a * BigInt::mod_exp(BigInt{2}, BigInt{s},
                                          BigInt::from_hex("1" + std::string(64, '0'))));
    EXPECT_EQ((a << s) >> s, a);
  }
}

TEST(BigInt, DivModInvariant) {
  Drbg rng = Drbg::from_seed(4, "divmod");
  for (int i = 0; i < 40; ++i) {
    const BigInt a = rand_bigint(rng, 48);
    BigInt b = rand_bigint(rng, 20);
    if (b.is_zero()) b = BigInt{7};
    const auto [q, r] = BigInt::div_mod(a, b);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigInt, DivByZeroThrows) {
  EXPECT_THROW(BigInt::div_mod(BigInt{1}, BigInt{}), Error);
}

TEST(BigInt, ModU64MatchesGeneralMod) {
  Drbg rng = Drbg::from_seed(5, "modu64");
  for (std::uint64_t d : {3ull, 65537ull, 0xffffffffffffffc5ull}) {
    const BigInt a = rand_bigint(rng, 56);
    EXPECT_EQ(BigInt{a.mod_u64(d)}, a.mod(BigInt{d}));
  }
}

TEST(BigInt, CompareOrdering) {
  const BigInt small{3}, big = BigInt::from_hex("10000000000000000");
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_LE(small, small);
  EXPECT_GE(big, big);
}

// --- modular exponentiation ---

TEST(ModExp, SmallKnownValues) {
  // 4^13 mod 497 = 445 (classic textbook example)
  EXPECT_EQ(BigInt::mod_exp(BigInt{4}, BigInt{13}, BigInt{497}), BigInt{445});
  // Fermat: a^(p-1) mod p == 1 for prime p
  EXPECT_EQ(BigInt::mod_exp(BigInt{2}, BigInt{1008}, BigInt{1009}), BigInt{1});
}

TEST(ModExp, ZeroAndOneExponent) {
  const BigInt m = BigInt::from_hex("ffffffffffffffffffffffc5");
  const BigInt b = BigInt::from_hex("123456789abcdef0");
  EXPECT_EQ(BigInt::mod_exp(b, BigInt{}, m), BigInt{1});
  EXPECT_EQ(BigInt::mod_exp(b, BigInt{1}, m), b.mod(m));
}

TEST(ModExp, MontgomeryMatchesPlainForOddModulus) {
  Drbg rng = Drbg::from_seed(6, "modexp");
  for (int i = 0; i < 10; ++i) {
    BigInt m = rand_bigint(rng, 16);
    if (!m.is_odd()) m = m + BigInt{1};
    if (m <= BigInt{1}) m = BigInt{3};
    const BigInt b = rand_bigint(rng, 16);
    const BigInt e = rand_bigint(rng, 4);
    // Plain square-and-multiply reference:
    BigInt ref{1};
    const BigInt base = b.mod(m);
    for (std::size_t j = e.bit_length(); j-- > 0;) {
      ref = (ref * ref).mod(m);
      if (e.bit(j)) ref = (ref * base).mod(m);
    }
    EXPECT_EQ(BigInt::mod_exp(b, e, m), ref);
  }
}

TEST(ModExp, MultiplicativeHomomorphism) {
  // (a*b)^e mod m == a^e * b^e mod m
  Drbg rng = Drbg::from_seed(7, "homo");
  BigInt m = rand_bigint(rng, 32);
  if (!m.is_odd()) m = m + BigInt{1};
  const BigInt a = rand_bigint(rng, 32);
  const BigInt b = rand_bigint(rng, 32);
  const BigInt e{65537};
  const BigInt lhs = BigInt::mod_exp((a * b).mod(m), e, m);
  const BigInt rhs = (BigInt::mod_exp(a, e, m) * BigInt::mod_exp(b, e, m)).mod(m);
  EXPECT_EQ(lhs, rhs);
}

TEST(ModExp, RejectsTrivialModulus) {
  EXPECT_THROW(BigInt::mod_exp(BigInt{2}, BigInt{2}, BigInt{1}), Error);
  EXPECT_THROW(BigInt::mod_exp(BigInt{2}, BigInt{2}, BigInt{}), Error);
}

TEST(ModExp, EvenModulusFallback) {
  // 3^5 mod 10 = 243 mod 10 = 3
  EXPECT_EQ(BigInt::mod_exp(BigInt{3}, BigInt{5}, BigInt{10}), BigInt{3});
}

// --- modular inverse / gcd ---

TEST(ModInverse, KnownValue) {
  // 3 * 4 = 12 ≡ 1 (mod 11)
  EXPECT_EQ(BigInt::mod_inverse(BigInt{3}, BigInt{11}), BigInt{4});
}

TEST(ModInverse, RandomInvertibles) {
  Drbg rng = Drbg::from_seed(8, "inv");
  const BigInt m = BigInt::from_hex(
      "fffffffffffffffffffffffffffffffeffffffffffffffff");  // odd
  for (int i = 0; i < 20; ++i) {
    BigInt a = rand_bigint(rng, 20);
    if (a.is_zero()) continue;
    if (!(BigInt::gcd(a, m) == BigInt{1})) continue;
    const BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv).mod(m), BigInt{1});
  }
}

TEST(ModInverse, NonInvertibleThrows) {
  EXPECT_THROW(BigInt::mod_inverse(BigInt{6}, BigInt{9}), Error);
}

TEST(Gcd, BasicValues) {
  EXPECT_EQ(BigInt::gcd(BigInt{48}, BigInt{18}), BigInt{6});
  EXPECT_EQ(BigInt::gcd(BigInt{17}, BigInt{13}), BigInt{1});
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}), BigInt{5});
}

TEST(RandomBelow, StaysInRange) {
  Drbg rng = Drbg::from_seed(9, "below");
  const BigInt bound = BigInt::from_hex("ffff00000001");
  for (int i = 0; i < 50; ++i) {
    const BigInt v = BigInt::random_below(
        bound, [&](std::uint8_t* p, std::size_t n) { rng.generate(p, n); });
    EXPECT_TRUE(v < bound);
  }
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(BigInt{10}), Error);
}

namespace {

/// The pre-windowing reference: plain MSB-first binary ladder, one
/// (Montgomery) modular multiplication per bit plus one per set bit.
BigInt ladder_exp(const Montgomery& ctx, const BigInt& base,
                  const BigInt& exp) {
  BigInt acc{1};
  const BigInt b = ctx.reduce(base);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    acc = ctx.mul_mod(acc, acc);
    if (exp.bit(i)) acc = ctx.mul_mod(acc, b);
  }
  return acc;
}

BigInt rand_odd_modulus(Drbg& rng, std::size_t bytes) {
  Bytes buf = rng.generate(bytes);
  buf[0] |= 0x80;          // full width
  buf[bytes - 1] |= 0x01;  // odd
  return BigInt::from_bytes_be(buf);
}

}  // namespace

TEST(Montgomery, WindowedExpMatchesBinaryLadder) {
  // Randomized cross-check of the fixed-window implementation against the
  // old square-and-multiply ladder, across the window-size breakpoints
  // (1-5 bit windows) and with bases both below and far above the modulus.
  Drbg rng = Drbg::from_seed(40, "windowed");
  for (const std::size_t mod_bytes : {9ul, 16ul, 33ul, 64ul}) {
    const BigInt m = rand_odd_modulus(rng, mod_bytes);
    const Montgomery ctx(m);
    for (const std::size_t exp_bytes : {1ul, 4ul, 11ul, 32ul, 64ul, 96ul}) {
      const BigInt base = rand_bigint(rng, 2 * mod_bytes);  // wide input
      const BigInt e = rand_bigint(rng, exp_bytes);
      EXPECT_EQ(ctx.exp(base, e), ladder_exp(ctx, base, e))
          << "mod_bytes=" << mod_bytes << " exp_bytes=" << exp_bytes;
    }
  }
}

TEST(Montgomery, ExpBoundaryExponents) {
  Drbg rng = Drbg::from_seed(41, "boundary");
  const BigInt p = rand_odd_modulus(rng, 24);
  const Montgomery ctx(p);
  const BigInt base = rand_bigint(rng, 24);
  EXPECT_EQ(ctx.exp(base, BigInt{}), BigInt{1});           // e = 0
  EXPECT_EQ(ctx.exp(base, BigInt{1}), base.mod(p));        // e = 1
  EXPECT_EQ(ctx.exp(BigInt{}, BigInt{17}), BigInt{});      // 0^e
  EXPECT_EQ(ctx.exp(BigInt{1}, p - BigInt{1}), BigInt{1});  // 1^e
}

TEST(Montgomery, FermatAtPrimeMinusOne) {
  // p - 1 as an exponent boundary on a real prime: a^(p-1) ≡ 1 mod p.
  Drbg rng = Drbg::from_seed(42, "fermat");
  const BigInt p = primes::generate_prime(192, rng);
  const Montgomery ctx(p);
  for (int i = 0; i < 4; ++i) {
    BigInt a = rand_bigint(rng, 20);
    if (a.is_zero()) a = BigInt{2};
    EXPECT_EQ(ctx.exp(a, p - BigInt{1}), BigInt{1});
  }
}

TEST(Montgomery, ExpU64MatchesGeneralExp) {
  Drbg rng = Drbg::from_seed(43, "expu64");
  const BigInt m = rand_odd_modulus(rng, 32);
  const Montgomery ctx(m);
  const BigInt base = rand_bigint(rng, 32);
  for (const std::uint64_t e : {0ull, 1ull, 2ull, 3ull, 65537ull,
                                0x8000000000000000ull, ~0ull}) {
    EXPECT_EQ(ctx.exp_u64(base, e), ctx.exp(base, BigInt{e})) << e;
  }
}

TEST(Montgomery, ReduceMatchesMod) {
  // reduce() folds arbitrary widths — including the 3x-modulus values the
  // multi-prime CRT feeds in — without long division; cross-check against
  // the div_mod-backed BigInt::mod.
  Drbg rng = Drbg::from_seed(44, "reduce");
  const BigInt m = rand_odd_modulus(rng, 24);
  const Montgomery ctx(m);
  for (const std::size_t bytes : {1ul, 8ul, 23ul, 24ul, 25ul, 48ul, 72ul,
                                  100ul}) {
    const BigInt v = rand_bigint(rng, bytes);
    EXPECT_EQ(ctx.reduce(v), v.mod(m)) << bytes;
  }
  EXPECT_EQ(ctx.reduce(BigInt{}), BigInt{});
  EXPECT_EQ(ctx.reduce(m), BigInt{});
}

TEST(Montgomery, MulModMatchesSchoolbook) {
  Drbg rng = Drbg::from_seed(45, "mulmod");
  const BigInt m = rand_odd_modulus(rng, 24);
  const Montgomery ctx(m);
  for (const std::size_t bytes : {8ul, 24ul, 48ul, 60ul}) {
    const BigInt a = rand_bigint(rng, bytes);
    const BigInt b = rand_bigint(rng, 24);
    EXPECT_EQ(ctx.mul_mod(a, b), (a * b).mod(m)) << bytes;
  }
}

TEST(Montgomery, ScratchReusedAcrossModulusSizes) {
  // One arena serving interleaved contexts of different limb counts —
  // exactly what the CRT sign path does with p and q (and the batcher
  // does across keys).
  Drbg rng = Drbg::from_seed(46, "scratch");
  const BigInt m_small = rand_odd_modulus(rng, 16);
  const BigInt m_large = rand_odd_modulus(rng, 64);
  const Montgomery small(m_small), large(m_large);
  Montgomery::Scratch scratch;
  for (int i = 0; i < 8; ++i) {
    const BigInt base = rand_bigint(rng, 40);
    const BigInt e = rand_bigint(rng, 12);
    BigInt a, b;
    small.exp(base, e, scratch, &a);
    large.exp(base, e, scratch, &b);
    EXPECT_EQ(a, small.exp(base, e));
    EXPECT_EQ(b, large.exp(base, e));
  }
}

TEST(Montgomery, LargeExponentiationMatchesFermat) {
  // 2^(p-1) ≡ 1 mod p for the MODP-2048 prime (it is prime).
  const BigInt p = BigInt::from_hex(
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
      "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
      "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
      "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
      "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
      "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
      "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
      "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
      "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
      "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
      "15728E5A8AACAA68FFFFFFFFFFFFFFFF");
  const Montgomery ctx(p);
  EXPECT_EQ(ctx.exp(BigInt{2}, p - BigInt{1}), BigInt{1});
}

}  // namespace
}  // namespace sinclave::crypto
